//! The CB-GAN discriminator: a PatchGAN.

use cachebox_nn::graph::Sequential;
use cachebox_nn::layers::{BatchNorm2d, Conv2d, Layer, LeakyRelu};
use cachebox_nn::{Param, Tensor};
use serde::{Deserialize, Serialize};

/// Configuration of the PatchGAN discriminator (Fig. 5b).
///
/// `n_layers` stride-2 stages set the receptive field of each output
/// patch: 1 → 16×16 (the paper's main experiments), 4 → 142×142 (RQ4's
/// larger models); the classic Pix2Pix 70×70 is `n_layers = 3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatchGanConfig {
    /// Input channels: access heatmap + (real or synthetic) miss heatmap.
    pub in_channels: usize,
    /// Base discriminator filter count (the paper uses ndf = 64).
    pub ndf: usize,
    /// Number of stride-2 down-sampling stages.
    pub n_layers: usize,
}

impl PatchGanConfig {
    /// Creates a configuration; `in_channels` is typically 2.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero.
    pub fn new(in_channels: usize, ndf: usize, n_layers: usize) -> Self {
        assert!(in_channels > 0 && ndf > 0 && n_layers > 0, "invalid discriminator config");
        PatchGanConfig { in_channels, ndf, n_layers }
    }

    /// Receptive field of one output patch:
    /// `rf(n) = 4 + Σ_{i<n} 3·2^i + 3·2^n + 3·2^n` simplifies to the
    /// Pix2Pix series 16, 34, 70, 142, 286 for n = 1…5.
    pub fn receptive_field(&self) -> usize {
        // Built backwards: rf = ((1*1 conv) expanded through each conv).
        let mut rf = 1usize;
        // Final 1-stride conv (k4) and the stride-1 feature conv (k4).
        rf += 3; // k4 s1
        rf += 3; // k4 s1
        for _ in 0..self.n_layers {
            rf = rf * 2 + 2; // k4 s2
        }
        rf
    }
}

/// The PatchGAN discriminator: maps an image pair to a grid of per-patch
/// real/fake *logits*.
///
/// # Example
///
/// ```
/// use cachebox_gan::{PatchGan, PatchGanConfig};
/// use cachebox_nn::{Tensor, layers::Layer};
///
/// let mut d = PatchGan::new(PatchGanConfig::new(2, 8, 1), 0);
/// assert_eq!(d.config().receptive_field(), 16);
/// let logits = d.forward(&Tensor::zeros([1, 2, 16, 16]), false);
/// assert_eq!(logits.c(), 1);
/// ```
#[derive(Debug)]
pub struct PatchGan {
    config: PatchGanConfig,
    net: Sequential,
}

impl PatchGan {
    /// Builds the discriminator; `seed` drives weight initialization.
    pub fn new(config: PatchGanConfig, seed: u64) -> Self {
        let mut net = Sequential::new()
            .push(Conv2d::new(config.in_channels, config.ndf, 4, 2, 1, seed * 151))
            .push(LeakyRelu::new(0.2));
        let mut ch = config.ndf;
        for i in 1..config.n_layers {
            let next = (config.ndf * (1 << i)).min(config.ndf * 8);
            net = net
                .push(Conv2d::new(ch, next, 4, 2, 1, seed * 151 + i as u64))
                .push(BatchNorm2d::new(next))
                .push(LeakyRelu::new(0.2));
            ch = next;
        }
        // Stride-1 feature stage then the 1-channel logit head.
        let next = (ch * 2).min(config.ndf * 8);
        net = net
            .push(Conv2d::new(ch, next, 4, 1, 1, seed * 151 + 97))
            .push(BatchNorm2d::new(next))
            .push(LeakyRelu::new(0.2))
            .push(Conv2d::new(next, 1, 4, 1, 1, seed * 151 + 98));
        PatchGan { config, net }
    }

    /// The discriminator's configuration.
    pub fn config(&self) -> &PatchGanConfig {
        &self.config
    }

    /// Visits the discriminator's single block under the name `net`, in
    /// parameter-visit order, for per-layer diagnostics such as the
    /// trainer's gradient-norm scan.
    pub fn visit_blocks(&mut self, visitor: &mut dyn FnMut(&str, &mut Sequential)) {
        visitor("net", &mut self.net);
    }
}

impl Layer for PatchGan {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.c(), self.config.in_channels, "input channel mismatch");
        self.net.forward(input, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.net.backward(grad_out)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.net.visit_params(visitor);
    }

    fn visit_buffers(&mut self, visitor: &mut dyn FnMut(&mut Vec<f32>)) {
        self.net.visit_buffers(visitor);
    }

    fn visit_named_params(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Param)) {
        self.visit_blocks(&mut |name, block| {
            block.visit_named_params(&format!("{prefix}{name}/"), visitor);
        });
    }

    fn visit_named_buffers(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Vec<f32>)) {
        self.visit_blocks(&mut |name, block| {
            block.visit_named_buffers(&format!("{prefix}{name}/"), visitor);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receptive_fields_match_pix2pix_series() {
        let rf = |n| PatchGanConfig::new(2, 8, n).receptive_field();
        assert_eq!(rf(1), 16);
        assert_eq!(rf(2), 34);
        assert_eq!(rf(3), 70);
        assert_eq!(rf(4), 142);
        assert_eq!(rf(5), 286);
    }

    #[test]
    fn output_is_patch_grid_of_logits() {
        let mut d = PatchGan::new(PatchGanConfig::new(2, 4, 2), 1);
        let out = d.forward(&Tensor::zeros([3, 2, 32, 32]), false);
        assert_eq!(out.n(), 3);
        assert_eq!(out.c(), 1);
        assert!(out.h() > 1, "patch grid, not a single scalar");
    }

    #[test]
    fn gradients_flow_to_input() {
        let mut d = PatchGan::new(PatchGanConfig::new(2, 4, 1), 2);
        let x = Tensor::from_vec(
            [1, 2, 16, 16],
            (0..512).map(|i| ((i % 7) as f32 - 3.0) / 3.0).collect(),
        );
        let y = d.forward(&x, true);
        d.zero_grad();
        let gx = d.backward(&Tensor::full(y.shape(), 1.0));
        assert_eq!(gx.shape(), x.shape());
        assert!(gx.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn deeper_discriminators_shrink_the_grid() {
        let mut d1 = PatchGan::new(PatchGanConfig::new(2, 4, 1), 3);
        let mut d2 = PatchGan::new(PatchGanConfig::new(2, 4, 2), 3);
        let x = Tensor::zeros([1, 2, 64, 64]);
        assert!(d2.forward(&x, false).h() < d1.forward(&x, false).h());
    }
}
