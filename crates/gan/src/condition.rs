//! Cache-parameter conditioning inputs.

use cachebox_nn::Tensor;
use serde::{Deserialize, Serialize};

/// The numeric cache parameters CB-GAN is conditioned on: the number of
/// sets and ways (§3.2.3).
///
/// Raw counts span orders of magnitude (32–2048 sets), so the features
/// fed to the embedding head are log₂-scaled, which keeps unseen
/// configurations (RQ3) within the numeric range spanned by training
/// configurations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheParams {
    /// Number of sets.
    pub sets: u32,
    /// Number of ways.
    pub ways: u32,
}

impl CacheParams {
    /// Creates the parameter pair.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(sets: u32, ways: u32) -> Self {
        assert!(sets > 0 && ways > 0, "cache parameters must be non-zero");
        CacheParams { sets, ways }
    }

    /// The two normalized features: `log2(sets)/12`, `log2(ways)/5`.
    pub fn features(&self) -> [f32; 2] {
        [(self.sets as f32).log2() / 12.0, (self.ways as f32).log2() / 5.0]
    }

    /// A `[n, 2, 1, 1]` tensor repeating the features `n` times — the
    /// shape the generator's parameter head expects.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn batch(&self, n: usize) -> Tensor {
        assert!(n > 0, "batch size must be non-zero");
        let f = self.features();
        let mut data = Vec::with_capacity(n * 2);
        for _ in 0..n {
            data.extend_from_slice(&f);
        }
        Tensor::from_vec([n, 2, 1, 1], data)
    }

    /// Stacks per-sample parameters into a `[n, 2, 1, 1]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty.
    pub fn batch_of(params: &[CacheParams]) -> Tensor {
        assert!(!params.is_empty(), "need at least one parameter pair");
        let mut data = Vec::with_capacity(params.len() * 2);
        for p in params {
            data.extend_from_slice(&p.features());
        }
        Tensor::from_vec([params.len(), 2, 1, 1], data)
    }
}

impl std::fmt::Display for CacheParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}set-{}way", self.sets, self.ways)
    }
}

/// Extended conditioning with the block size as a third feature —
/// the paper notes further parameters "can easily be added" (§3.2.3)
/// and lists block-size parameterisation as future work (§6.3). Use
/// with a generator built with `param_features = 3`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtendedCacheParams {
    /// The base (sets, ways) pair.
    pub base: CacheParams,
    /// log2 of the block size in bytes (6 ⇒ 64-byte blocks).
    pub block_offset_bits: u32,
}

impl ExtendedCacheParams {
    /// Creates the extended parameter triple.
    ///
    /// # Panics
    ///
    /// Panics if a count is zero or `block_offset_bits > 20`.
    pub fn new(sets: u32, ways: u32, block_offset_bits: u32) -> Self {
        assert!(block_offset_bits <= 20, "unreasonable block size");
        ExtendedCacheParams { base: CacheParams::new(sets, ways), block_offset_bits }
    }

    /// The three normalized features: the base pair plus a centred,
    /// scaled block-size term (zero at the paper's 64-byte default).
    pub fn features(&self) -> [f32; 3] {
        let [s, w] = self.base.features();
        [s, w, (self.block_offset_bits as f32 - 6.0) / 4.0]
    }

    /// A `[n, 3, 1, 1]` tensor repeating the features `n` times.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn batch(&self, n: usize) -> Tensor {
        assert!(n > 0, "batch size must be non-zero");
        let f = self.features();
        let mut data = Vec::with_capacity(n * 3);
        for _ in 0..n {
            data.extend_from_slice(&f);
        }
        Tensor::from_vec([n, 3, 1, 1], data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_are_log_scaled() {
        let p = CacheParams::new(64, 12);
        let f = p.features();
        assert!((f[0] - 6.0 / 12.0).abs() < 1e-6);
        assert!((f[1] - (12.0f32).log2() / 5.0).abs() < 1e-6);
    }

    #[test]
    fn distinct_configs_have_distinct_features() {
        let a = CacheParams::new(64, 12).features();
        let b = CacheParams::new(128, 6).features();
        assert_ne!(a, b);
    }

    #[test]
    fn batch_repeats_features() {
        let t = CacheParams::new(64, 12).batch(3);
        assert_eq!(t.shape(), [3, 2, 1, 1]);
        assert_eq!(t.sample(0), t.sample(2));
    }

    #[test]
    fn batch_of_mixes_configs() {
        let t = CacheParams::batch_of(&[CacheParams::new(64, 12), CacheParams::new(128, 3)]);
        assert_eq!(t.shape(), [2, 2, 1, 1]);
        assert_ne!(t.sample(0), t.sample(1));
    }

    #[test]
    fn display_matches_paper_naming() {
        assert_eq!(CacheParams::new(64, 12).to_string(), "64set-12way");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_sets() {
        CacheParams::new(0, 1);
    }

    #[test]
    fn extended_params_center_default_block_size() {
        let p = ExtendedCacheParams::new(64, 12, 6);
        let f = p.features();
        assert_eq!(f[2], 0.0, "64-byte blocks are the zero point");
        assert_eq!(&f[..2], &p.base.features());
        let bigger = ExtendedCacheParams::new(64, 12, 8);
        assert!(bigger.features()[2] > 0.0);
    }

    #[test]
    fn extended_batch_shape() {
        let t = ExtendedCacheParams::new(64, 12, 7).batch(2);
        assert_eq!(t.shape(), [2, 3, 1, 1]);
        assert_eq!(t.sample(0), t.sample(1));
    }

    #[test]
    fn three_feature_generator_accepts_extended_params() {
        use crate::unet::{UNetConfig, UNetGenerator};
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2).with_param_features(3), 1);
        let x = cachebox_nn::Tensor::zeros([1, 1, 8, 8]);
        let small_blocks = ExtendedCacheParams::new(64, 12, 5).batch(1);
        let large_blocks = ExtendedCacheParams::new(64, 12, 8).batch(1);
        let y1 = g.forward(&x, Some(&small_blocks), false);
        let y2 = g.forward(&x, Some(&large_blocks), false);
        assert_eq!(y1.shape(), [1, 1, 8, 8]);
        assert_ne!(y1, y2, "block size must influence the output");
    }
}
