//! Alternating GAN training (paper §3.2.2, Eq. 1).

use crate::data::{collate, Normalizer, Sample};
use crate::patchgan::PatchGan;
use crate::unet::{UNetAsLayer, UNetGenerator};
use cachebox_nn::layers::Layer;
use cachebox_nn::optim::Adam;
use cachebox_nn::replica::{GradExchange, GradLane, ReplicaCtx, SyncGroup};
use cachebox_nn::{loss, reduce, replica, Parallelism, Tensor};
use cachebox_telemetry as telemetry;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Training hyper-parameters.
///
/// The default learning rate is 2·10⁻³ rather than Pix2Pix's 2·10⁻⁴:
/// the reproduction's training budgets are a few thousand optimizer
/// steps (vs hundreds of thousands in the paper), and the higher rate
/// with linear decay reaches the same loss regimes in that budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Reconstruction weight λ (the paper uses 150).
    pub lambda: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Samples per batch.
    pub batch_size: usize,
    /// Passes over the dataset.
    pub epochs: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// Fraction of the epochs after which the learning rate decays
    /// linearly to zero (Pix2Pix trains at a constant rate for the first
    /// half and decays over the second). `1.0` disables decay.
    pub decay_after: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lambda: 150.0,
            lr: 2e-3,
            batch_size: 4,
            epochs: 10,
            seed: 0,
            decay_after: 0.5,
        }
    }
}

impl TrainConfig {
    /// Learning rate in effect at `epoch` under the linear decay rule.
    pub fn lr_at_epoch(&self, epoch: usize) -> f32 {
        let start = (self.epochs as f32 * self.decay_after).floor();
        if (epoch as f32) < start || self.epochs == 0 {
            return self.lr;
        }
        let span = (self.epochs as f32 - start).max(1.0);
        let remaining = (self.epochs as f32 - epoch as f32).max(0.0) / span;
        // Never fully zero — Adam rejects non-positive rates.
        self.lr * remaining.max(0.02)
    }
}

/// Losses averaged over one epoch (or measured at one step).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainStats {
    /// Discriminator BCE loss.
    pub d_loss: f32,
    /// Generator adversarial BCE loss.
    pub g_adv: f32,
    /// Generator L1 reconstruction loss (unweighted).
    pub g_l1: f32,
}

/// A fatal training fault. The optimizer step that would have consumed
/// the faulty state is skipped; neither network is mutated.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// Some parameter gradient became NaN or ±Inf, so the next
    /// optimizer step would poison the weights irrecoverably.
    ///
    /// `layer` names the first offending layer in visit order, e.g.
    /// `generator/down0/conv2d0` or `discriminator/net/batch_norm2d3`.
    NonFiniteGrad {
        /// Epoch in which the fault occurred (0 for bare [`GanTrainer::train_step`]).
        epoch: usize,
        /// Batch index within the epoch.
        batch: usize,
        /// Path of the first layer whose gradients are non-finite.
        layer: String,
        /// The layer's gradient L2 norm (NaN or ±Inf by construction).
        norm: f32,
    },
    /// The step's batch holds fewer samples than the requested replica
    /// count, so `R` non-empty shards cannot exist. The trainer refuses
    /// rather than silently training on fewer replicas than asked for
    /// (the pre-ragged implementation clamped — see
    /// `docs/PARALLEL_TRAINING.md` § error semantics).
    ReplicaOverflow {
        /// Epoch in which the fault occurred (0 for bare [`GanTrainer::train_step`]).
        epoch: usize,
        /// Batch index within the epoch.
        batch: usize,
        /// The replica count passed to [`GanTrainer::with_replicas`].
        requested: usize,
        /// Samples in the offending batch.
        batch_size: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::NonFiniteGrad { epoch, batch, layer, norm } => write!(
                f,
                "non-finite gradient (norm {norm}) in layer `{layer}` at epoch {epoch}, \
                 batch {batch}"
            ),
            TrainError::ReplicaOverflow { epoch, batch, requested, batch_size } => write!(
                f,
                "cannot shard a batch of {batch_size} samples across {requested} replicas \
                 at epoch {epoch}, batch {batch}; request at most one replica per sample"
            ),
        }
    }
}

impl std::error::Error for TrainError {}

/// Everything one replica worker hands back *at join time*: the global
/// per-sample loss subtotals for its shard and bookkeeping. Gradient
/// partials do not travel here — they stream through the worker's
/// [`GradLane`] as each loss term's backward pass finishes, so the
/// main-thread tree-reduction overlaps the remaining backward work.
struct ShardOut {
    /// Per-sample BCE subtotals for the real pair (label 1).
    real_rows: Vec<f32>,
    /// Per-sample BCE subtotals for the fake pair (label 0).
    fake_rows: Vec<f32>,
    /// Per-sample BCE subtotals for the adversarial loss (label 1).
    gan_rows: Vec<f32>,
    /// Per-sample L1 subtotals for the reconstruction loss.
    l1_rows: Vec<f32>,
    /// Global patch-logit element count (`n · patches_per_sample`).
    patch_total: usize,
    /// Global image element count (`n · c·h·w`).
    img_total: usize,
    /// Wall time this worker spent on its shard.
    shard_ns: u64,
}

/// The loss terms every replica submits through its [`GradLane`], in
/// submission order.
const GRAD_TERMS: usize = 3;

/// Runs one replica's share of a training step on the shard
/// `[lo, hi)` of the global batch.
///
/// The sequence of forward/backward calls is identical on every
/// replica, so the batch-norm rendezvous inside
/// [`replica::reduce_samples`] stays in lockstep. Gradients for each of
/// the discriminator's two loss terms are captured separately (the old
/// implementation snapshotted and restored grads around the adversarial
/// backward) and submitted through `lane` the moment they exist: term 0
/// (real-pair D) while the fake pair is still being processed, term 1
/// (fake-pair D) while the generator backward runs, term 2 (G) last.
/// The caller tree-reduces each term across replicas in fixed order and
/// sums the two discriminator trees, which is replica-count invariant.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    generator: &mut UNetGenerator,
    discriminator: &mut PatchGan,
    batch: &TrainSample,
    lo: usize,
    hi: usize,
    global_n: usize,
    lambda: f32,
    ctx: ReplicaCtx,
    g_len: usize,
    d_len: usize,
    lane: &mut GradLane,
) -> ShardOut {
    let start = Instant::now();
    let _shard = telemetry::span("gan.replica.shard");
    let _guard = replica::install(ctx);
    let shard_n = hi - lo;
    let (input_s, target_s, params_s);
    let (x, t, p): (&Tensor, &Tensor, Option<&Tensor>) = if lo == 0 && hi == global_n {
        (&batch.input, &batch.target, batch.params.as_ref())
    } else {
        input_s = batch.input.slice_samples(lo, hi);
        target_s = batch.target.slice_samples(lo, hi);
        params_s = batch.params.as_ref().map(|p| p.slice_samples(lo, hi));
        (&input_s, &target_s, params_s.as_ref())
    };

    // ---- Generator forward (kept cached for the G update below).
    let fake = {
        let _s = telemetry::span("gan.g_forward");
        generator.forward(x, p, true)
    };

    // ---- Discriminator gradients, one backward per loss term.
    let _d = telemetry::span("gan.d_update");
    discriminator.zero_grad();
    let real_pair = x.concat_channels(t);
    let d_real = discriminator.forward(&real_pair, true);
    let patch_total = d_real.len() / shard_n * global_n;
    let (real_rows, g_real) = loss::bce_with_logits_sharded(&d_real, 1.0, patch_total);
    discriminator.backward(&g_real.scale(0.5));
    let mut d_real_grads = lane.acquire(d_len);
    discriminator.read_grads_flat(&mut d_real_grads);
    lane.submit(d_real_grads);

    let fake_pair = x.concat_channels(&fake);
    let d_fake = discriminator.forward(&fake_pair, true);
    let (fake_rows, g_fake) = loss::bce_with_logits_sharded(&d_fake, 0.0, patch_total);
    // The generator's adversarial loss (label the fake "real") reuses
    // the same logits and cached activations — a third D forward would
    // waste the work and update every BatchNorm running stat a second
    // time for the fake pair.
    let (gan_rows, g_gan) = loss::bce_with_logits_sharded(&d_fake, 1.0, patch_total);
    discriminator.zero_grad();
    let g_pair = discriminator.backward(&g_gan);
    discriminator.zero_grad();
    discriminator.backward(&g_fake.scale(0.5));
    let mut d_fake_grads = lane.acquire(d_len);
    discriminator.read_grads_flat(&mut d_fake_grads);
    lane.submit(d_fake_grads);
    drop(_d);

    // ---- Generator gradients: adversarial plus λ-weighted L1.
    let _g = telemetry::span("gan.g_update");
    let (_g_input_part, g_fake_part) = g_pair.split_channels(x.c());
    let img_total = fake.len() / shard_n * global_n;
    let (l1_rows, g_l1) = loss::l1_sharded(&fake, t, img_total);
    let total = g_fake_part.add(&g_l1.scale(lambda));
    generator.zero_grad();
    generator.backward(&total);
    let mut g_grads = lane.acquire(g_len);
    UNetAsLayer(generator).read_grads_flat(&mut g_grads);
    lane.submit(g_grads);

    ShardOut {
        real_rows,
        fake_rows,
        gan_rows,
        l1_rows,
        patch_total,
        img_total,
        shard_ns: start.elapsed().as_nanos() as u64,
    }
}

/// One (input, target, params) batch already in tensor form.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSample {
    /// Access heatmap batch `[n, 1, h, w]` in the model domain.
    pub input: Tensor,
    /// Real miss heatmap batch `[n, 1, h, w]` in the model domain.
    pub target: Tensor,
    /// Cache parameter batch `[n, 2, 1, 1]`, if the model is conditioned.
    pub params: Option<Tensor>,
}

/// Alternating optimizer for CB-GAN.
///
/// # Example
///
/// ```
/// use cachebox_gan::{GanTrainer, PatchGan, PatchGanConfig, TrainConfig,
///                    UNetConfig, UNetGenerator, TrainSample};
/// use cachebox_nn::Tensor;
///
/// let g = UNetGenerator::new(UNetConfig::for_image_size(8, 2).with_dropout(false), 1);
/// let d = PatchGan::new(PatchGanConfig::new(2, 2, 1), 2);
/// let mut trainer = GanTrainer::new(g, d, TrainConfig { epochs: 1, ..Default::default() });
/// let batch = TrainSample {
///     input: Tensor::full([2, 1, 8, 8], -1.0),
///     target: Tensor::full([2, 1, 8, 8], -1.0),
///     params: None,
/// };
/// let stats = trainer.train_step(&batch).expect("gradients stay finite");
/// assert!(stats.d_loss.is_finite() && stats.g_l1.is_finite());
/// ```
#[derive(Debug)]
pub struct GanTrainer {
    generator: UNetGenerator,
    discriminator: PatchGan,
    opt_g: Adam,
    opt_d: Adam,
    config: TrainConfig,
    parallelism: Parallelism,
    /// Requested data-parallel replica count, honored exactly for every
    /// batch with at least that many samples.
    replicas: usize,
    /// Monotone step counter; keys the sharding-invariant dropout masks.
    step_counter: u64,
    /// Lazily built worker copies of the generator (replicas 1..R; the
    /// lead replica is the trainer's own model).
    g_replicas: Vec<UNetGenerator>,
    /// Lazily built worker copies of the discriminator.
    d_replicas: Vec<PatchGan>,
    /// Recycled gradient arenas for the [`GradExchange`]; warm after
    /// the first step, so the per-step exchange allocates nothing.
    grad_pool: Vec<Vec<f32>>,
    /// One-shot latch for the `gan.replica.mismatch` warning (the tail
    /// batch of an epoch can be smaller than R — see
    /// [`GanTrainer::fit_with_progress`]).
    warned_mismatch: bool,
    /// Heartbeat cadence override for this trainer; `None` inherits the
    /// process-wide [`cachebox_telemetry::heartbeat_every`] setting.
    heartbeat_every: Option<usize>,
    /// Replica-shard wall times observed since the last heartbeat —
    /// each heartbeat reports this window's p50/p90 and resets it.
    hb_shard: telemetry::Histogram,
}

impl GanTrainer {
    /// Creates a trainer owning both networks.
    pub fn new(generator: UNetGenerator, discriminator: PatchGan, config: TrainConfig) -> Self {
        let opt_g = Adam::new(config.lr);
        let opt_d = Adam::new(config.lr);
        GanTrainer {
            generator,
            discriminator,
            opt_g,
            opt_d,
            config,
            parallelism: Parallelism::current(),
            replicas: 1,
            step_counter: 0,
            g_replicas: Vec::new(),
            d_replicas: Vec::new(),
            grad_pool: Vec::new(),
            warned_mismatch: false,
            heartbeat_every: None,
            hb_shard: telemetry::Histogram::new(),
        }
    }

    /// Sets the thread budget installed for the GEMM kernels while
    /// fitting (defaults to the process-wide [`Parallelism::current`]).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Requests data-parallel training over **exactly** `replicas`
    /// model replicas — ragged (non-power-of-two) counts included.
    ///
    /// Each step splits the batch into `replicas` contiguous shards
    /// along canonical-tree node boundaries (the padded halving tree,
    /// `cachebox_nn::reduce::tree_splits`), runs one worker per shard
    /// against its own model copy (weights broadcast as one flat
    /// memcpy), and tree-reduces each loss term's per-replica gradient
    /// arenas in fixed replica order — overlapped with the next term's
    /// backward pass through a double-buffered [`GradExchange`]. Losses
    /// and post-step weights are **bitwise identical** for any replica
    /// count (see `docs/PARALLEL_TRAINING.md`).
    ///
    /// A batch must hold at least `replicas` samples:
    /// [`GanTrainer::train_step`] returns
    /// [`TrainError::ReplicaOverflow`] instead of silently training on
    /// fewer replicas (the pre-ragged implementation clamped to a power
    /// of two). [`GanTrainer::fit`] shrinks the count only for a
    /// smaller-than-`batch_size` tail chunk, with a one-shot
    /// `gan.replica.mismatch` telemetry warning.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        assert!(replicas > 0, "replica count must be non-zero");
        self.replicas = replicas;
        self
    }

    /// The requested replica count.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Overrides the heartbeat cadence for this trainer: emit one
    /// [`cachebox_telemetry::Heartbeat`] every `steps` optimizer steps
    /// (`0` disables). Without this override the trainer follows the
    /// process-wide [`cachebox_telemetry::heartbeat_every`] setting
    /// (`--heartbeat-every` / `CACHEBOX_HEARTBEAT_EVERY`).
    pub fn with_heartbeat_every(mut self, steps: usize) -> Self {
        self.heartbeat_every = Some(steps);
        self
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Borrows the generator (e.g. for inference after training).
    pub fn generator_mut(&mut self) -> &mut UNetGenerator {
        &mut self.generator
    }

    /// Consumes the trainer, returning the trained networks.
    pub fn into_networks(self) -> (UNetGenerator, PatchGan) {
        (self.generator, self.discriminator)
    }

    /// Performs one alternating optimization step on a batch and returns
    /// the step's losses.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] (reporting epoch 0, batch 0) if any
    /// parameter gradient turns NaN/±Inf; neither network is stepped
    /// with poisoned gradients.
    pub fn train_step(&mut self, batch: &TrainSample) -> Result<TrainStats, TrainError> {
        self.train_step_at(batch, 0, 0)
    }

    /// [`GanTrainer::train_step`] with the epoch and batch index recorded
    /// in any [`TrainError`] (as [`GanTrainer::fit`] does internally).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::NonFiniteGrad`] naming the first layer
    /// whose gradients are non-finite (the affected optimizer step is
    /// skipped), or [`TrainError::ReplicaOverflow`] if the batch holds
    /// fewer samples than the requested replica count — the replica
    /// count is honored exactly, never silently reduced.
    pub fn train_step_at(
        &mut self,
        batch: &TrainSample,
        epoch: usize,
        batch_idx: usize,
    ) -> Result<TrainStats, TrainError> {
        let n = batch.input.n();
        if self.replicas > n {
            self.warn_replica_mismatch(0, n);
            return Err(TrainError::ReplicaOverflow {
                epoch,
                batch: batch_idx,
                requested: self.replicas,
                batch_size: n,
            });
        }
        self.step_with_replicas(batch, epoch, batch_idx, self.replicas)
    }

    /// Emits the `gan.replica.requested`/`gan.replica.count` gauge pair
    /// plus, the first time the effective count diverges from the
    /// request, a one-shot `gan.replica.mismatch` warning event (and an
    /// stderr note, so the divergence is loud even without telemetry).
    /// `effective == 0` records a refused step.
    fn warn_replica_mismatch(&mut self, effective: usize, batch_n: usize) {
        telemetry::gauge("gan.replica.requested", self.replicas as f64);
        telemetry::gauge("gan.replica.count", effective as f64);
        if self.warned_mismatch {
            return;
        }
        self.warned_mismatch = true;
        telemetry::counter("gan.replica.mismatch", 1);
        telemetry::event(
            "gan.replica.mismatch",
            &[
                ("requested", (self.replicas as u64).into()),
                ("effective", (effective as u64).into()),
                ("batch", (batch_n as u64).into()),
            ],
        );
        if effective == 0 {
            eprintln!(
                "warning: refused train step: {} replicas requested over a batch of {batch_n}",
                self.replicas
            );
        } else {
            eprintln!(
                "warning: tail batch of {batch_n} samples trains on {effective} of the {} \
                 requested replicas",
                self.replicas
            );
        }
    }

    /// One optimization step on exactly `r_eff` replicas
    /// (`1 <= r_eff <= n`, already validated by the callers).
    fn step_with_replicas(
        &mut self,
        batch: &TrainSample,
        epoch: usize,
        batch_idx: usize,
        r_eff: usize,
    ) -> Result<TrainStats, TrainError> {
        let _step = telemetry::span("gan.train_step");
        let step_start = Instant::now();
        // Make the trainer's thread budget visible to the conv layers'
        // batch-sharding and GEMM dispatch even when a step is driven
        // directly (tests, benches) rather than through `fit`.
        self.parallelism.install();
        let n = batch.input.n();
        debug_assert!((1..=n).contains(&r_eff));
        let nonce = self.step_counter;
        // Advance even on a failed step: the legacy RNG stream also
        // advanced through a failed step's forward passes.
        self.step_counter += 1;
        let lambda = self.config.lambda;
        let g_len = UNetAsLayer(&mut self.generator).param_count();
        let d_len = self.discriminator.param_count();
        let group = Arc::new(SyncGroup::new(r_eff, n));
        telemetry::gauge("gan.replica.requested", self.replicas as f64);
        telemetry::gauge("gan.replica.count", r_eff as f64);

        // Gradient partials stream through the exchange as each loss
        // term's backward finishes, so the main thread tree-reduces
        // term k while the workers run term k+1's backward. An inline
        // single-replica run buffers every term (the reducer only runs
        // after the shard returns); threaded runs double-buffer.
        let depth = if r_eff == 1 { GRAD_TERMS } else { 2 };
        let exchange = GradExchange::new(r_eff, GRAD_TERMS, depth, &mut self.grad_pool);

        let (outs, reduced): (Vec<ShardOut>, Vec<Vec<f32>>) = if r_eff == 1 {
            // Single replica: run the shard inline on the main thread.
            // The context is still installed so dropout keying and the
            // batch-norm reduction take the same code path for every
            // replica count.
            let ctx = ReplicaCtx { group, replica: 0, sample_base: 0, step_nonce: nonce };
            let mut lane = exchange.take_lane(0);
            let out = run_shard(
                &mut self.generator,
                &mut self.discriminator,
                batch,
                0,
                n,
                n,
                lambda,
                ctx,
                g_len,
                d_len,
                &mut lane,
            );
            drop(lane);
            let reduced = exchange.reduce_terms(&mut self.grad_pool);
            (vec![out], reduced)
        } else {
            // Broadcast the lead weights into the cached worker models
            // as one flat copy each. Replica models share the lead's
            // init seed so keyed dropout masks agree across replicas.
            while self.g_replicas.len() < r_eff - 1 {
                self.g_replicas
                    .push(UNetGenerator::new(*self.generator.config(), self.generator.init_seed()));
                self.d_replicas.push(PatchGan::new(*self.discriminator.config(), 0));
            }
            let mut g_vals = vec![0.0f32; g_len];
            UNetAsLayer(&mut self.generator).read_values_flat(&mut g_vals);
            let mut d_vals = vec![0.0f32; d_len];
            self.discriminator.read_values_flat(&mut d_vals);
            for g in &mut self.g_replicas[..r_eff - 1] {
                UNetAsLayer(g).write_values_flat(&g_vals);
            }
            for d in &mut self.d_replicas[..r_eff - 1] {
                d.write_values_flat(&d_vals);
            }
            // Divide the thread budget between replicas so the total
            // worker count stays at the configured level; the budget
            // only affects scheduling, never numerics.
            let outer = self.parallelism.threads();
            Parallelism::new((outer / r_eff).max(1)).install();
            let generator = &mut self.generator;
            let discriminator = &mut self.discriminator;
            let grad_pool = &mut self.grad_pool;
            let gs: Vec<&mut UNetGenerator> =
                std::iter::once(generator).chain(self.g_replicas[..r_eff - 1].iter_mut()).collect();
            let ds: Vec<&mut PatchGan> = std::iter::once(discriminator)
                .chain(self.d_replicas[..r_eff - 1].iter_mut())
                .collect();
            let splits = reduce::tree_splits(n, r_eff);
            // std::thread::scope (not the crossbeam wrapper): the
            // rendezvous barrier inside SyncGroup requires the replicas
            // to genuinely run concurrently.
            let (outs, reduced) = std::thread::scope(|scope| {
                let handles: Vec<_> = gs
                    .into_iter()
                    .zip(ds)
                    .zip(splits.iter().enumerate())
                    .map(|((g, d), (r, &(lo, hi)))| {
                        let group = Arc::clone(&group);
                        let mut lane = exchange.take_lane(r);
                        scope.spawn(move || {
                            let ctx = ReplicaCtx {
                                group,
                                replica: r,
                                sample_base: lo,
                                step_nonce: nonce,
                            };
                            run_shard(g, d, batch, lo, hi, n, lambda, ctx, g_len, d_len, &mut lane)
                        })
                    })
                    .collect();
                // The main thread is the reducer: it folds each term in
                // fixed replica order the moment its partials are all
                // in, concurrently with the workers' remaining terms.
                let reduced = exchange.reduce_terms(grad_pool);
                let outs = handles
                    .into_iter()
                    .map(|h| h.join().expect("replica worker panicked"))
                    .collect::<Vec<_>>();
                (outs, reduced)
            });
            self.parallelism.install();
            (outs, reduced)
        };

        for o in &outs {
            telemetry::observe("gan.replica.shard_ns", o.shard_ns as f64);
            self.hb_shard.record(o.shard_ns as f64);
        }

        // ---- The exchange produced one fixed-order tree total per loss
        // term (the same halving tree the shards were split with, so
        // every replica count reproduces the single-replica sums
        // bitwise): real-pair D, fake-pair D, then G.
        let mut term_iter = reduced.into_iter();
        let d_grads = term_iter.next().expect("real-pair discriminator term");
        let d_fake_sum = term_iter.next().expect("fake-pair discriminator term");
        let g_grads = term_iter.next().expect("generator term");

        // Losses: per-sample subtotals concatenate in global sample
        // order (shards are contiguous and ascending), then tree-sum.
        let patch_total = outs[0].patch_total;
        let img_total = outs[0].img_total;
        let mut real_rows = Vec::with_capacity(n);
        let mut fake_rows = Vec::with_capacity(n);
        let mut gan_rows = Vec::with_capacity(n);
        let mut l1_rows = Vec::with_capacity(n);
        for o in &outs {
            real_rows.extend_from_slice(&o.real_rows);
            fake_rows.extend_from_slice(&o.fake_rows);
            gan_rows.extend_from_slice(&o.gan_rows);
            l1_rows.extend_from_slice(&o.l1_rows);
        }
        let l_real = reduce::tree_sum(&real_rows) / patch_total as f32;
        let l_fake = reduce::tree_sum(&fake_rows) / patch_total as f32;
        let l_gan = reduce::tree_sum(&gan_rows) / patch_total as f32;
        let l_l1 = reduce::tree_sum(&l1_rows) / img_total as f32;

        // ---- Discriminator step through the flat parameter store. The
        // two loss-term totals stage through the store's double
        // gradient arena: real-pass in front, fake-pass in back, folded
        // front += back (the same orientation the tree uses).
        let mut d_store = self.discriminator.export_store();
        d_store.grads_mut().copy_from_slice(&d_grads);
        d_store.back_grads_mut().copy_from_slice(&d_fake_sum);
        d_store.accumulate_back_grads();
        let (d_norm, d_bad) = d_store.grad_norm_scan();
        if let Some((layer, norm)) = d_bad {
            self.grad_pool.extend([d_grads, d_fake_sum, g_grads]);
            return Err(TrainError::NonFiniteGrad {
                epoch,
                batch: batch_idx,
                layer: format!("discriminator/{layer}"),
                norm,
            });
        }
        telemetry::gauge("gan.grad_norm.d", f64::from(d_norm));
        self.opt_d.step_store(&mut d_store);
        self.discriminator.import_values("", &d_store);

        // ---- Generator step.
        let mut g_store = UNetAsLayer(&mut self.generator).export_store();
        g_store.grads_mut().copy_from_slice(&g_grads);
        let (g_norm, g_bad) = g_store.grad_norm_scan();
        if let Some((layer, norm)) = g_bad {
            self.grad_pool.extend([d_grads, d_fake_sum, g_grads]);
            return Err(TrainError::NonFiniteGrad {
                epoch,
                batch: batch_idx,
                layer: format!("generator/{layer}"),
                norm,
            });
        }
        telemetry::gauge("gan.grad_norm.g", f64::from(g_norm));
        self.opt_g.step_store(&mut g_store);
        UNetAsLayer(&mut self.generator).import_values("", &g_store);

        // Retire the term totals back into the arena pool.
        self.grad_pool.extend([d_grads, d_fake_sum, g_grads]);

        let stats = TrainStats { d_loss: 0.5 * (l_real + l_fake), g_adv: l_gan, g_l1: l_l1 };
        self.maybe_heartbeat(epoch, n, step_start, &stats, f64::from(d_norm), f64::from(g_norm));
        Ok(stats)
    }

    /// Emits a [`telemetry::Heartbeat`] when this step lands on the
    /// configured cadence (trainer override, else the process-wide
    /// setting). Reports the shard-time window accumulated since the
    /// previous heartbeat and resets it.
    fn maybe_heartbeat(
        &mut self,
        epoch: usize,
        batch_n: usize,
        step_start: Instant,
        stats: &TrainStats,
        grad_norm_d: f64,
        grad_norm_g: f64,
    ) {
        let every = self.heartbeat_every.unwrap_or_else(telemetry::heartbeat_every);
        if every == 0 || !telemetry::enabled() {
            return;
        }
        // `step_counter` was already advanced past this step.
        if self.step_counter % every as u64 != 0 {
            return;
        }
        let secs = step_start.elapsed().as_secs_f64().max(1e-9);
        telemetry::heartbeat(&telemetry::Heartbeat {
            step: telemetry::next_heartbeat_step(),
            epoch: epoch as u64,
            d_loss: f64::from(stats.d_loss),
            g_adv: f64::from(stats.g_adv),
            g_l1: f64::from(stats.g_l1),
            grad_norm_d,
            grad_norm_g,
            samples_per_sec: batch_n as f64 / secs,
            shard_p50_ns: self.hb_shard.percentile(50.0),
            shard_p90_ns: self.hb_shard.percentile(90.0),
            rss_peak_kb: telemetry::peak_rss_kb(),
        });
        self.hb_shard = telemetry::Histogram::new();
    }

    /// Trains over a dataset of heatmap samples for `config.epochs`
    /// epochs with random batching, returning per-epoch averaged losses.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, or (fail-fast) on a non-finite
    /// gradient — see [`GanTrainer::fit_with_progress`].
    pub fn fit(&mut self, samples: &[Sample], norm: &Normalizer) -> Vec<TrainStats> {
        self.fit_with_progress(samples, norm, |_, _| {})
    }

    /// Like [`GanTrainer::fit`] but invoking `progress(epoch, stats)`
    /// after each epoch.
    ///
    /// The configured replica count is honored exactly for every full
    /// batch. The final chunk of an epoch can hold fewer than
    /// `batch_size` samples; if it holds fewer than `replicas`, that
    /// chunk alone trains on one replica per sample, and a one-shot
    /// `gan.replica.mismatch` warning (telemetry event + stderr) records
    /// the divergence — never silently. This cannot change any result:
    /// losses and weights are bitwise invariant in the replica count.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, if `replicas > batch_size` (no
    /// full batch could ever satisfy the request), or (fail-fast) if
    /// any gradient turns NaN/±Inf — the panic message carries the
    /// [`TrainError`] with the offending layer, epoch, and batch.
    pub fn fit_with_progress(
        &mut self,
        samples: &[Sample],
        norm: &Normalizer,
        mut progress: impl FnMut(usize, TrainStats),
    ) -> Vec<TrainStats> {
        assert!(!samples.is_empty(), "training set is empty");
        assert!(
            self.replicas <= self.config.batch_size,
            "replica count {} exceeds batch size {}; no batch can be sharded that wide",
            self.replicas,
            self.config.batch_size
        );
        self.parallelism.install();
        let conditioned = self.generator.config().param_features > 0;
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed ^ 0x6a17);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut history = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            let epoch_start = Instant::now();
            let lr = self.config.lr_at_epoch(epoch);
            self.opt_g.set_lr(lr);
            self.opt_d.set_lr(lr);
            order.shuffle(&mut rng);
            let mut sum = TrainStats::default();
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let refs: Vec<&Sample> = chunk.iter().map(|&i| &samples[i]).collect();
                let (input, target, params) = collate(&refs, norm);
                let batch = TrainSample { input, target, params: conditioned.then_some(params) };
                let r_eff = self.replicas.min(chunk.len());
                if r_eff != self.replicas {
                    self.warn_replica_mismatch(r_eff, chunk.len());
                }
                let stats = self
                    .step_with_replicas(&batch, epoch, batches, r_eff)
                    .unwrap_or_else(|e| panic!("GAN training diverged: {e}"));
                sum.d_loss += stats.d_loss;
                sum.g_adv += stats.g_adv;
                sum.g_l1 += stats.g_l1;
                batches += 1;
            }
            let avg = TrainStats {
                d_loss: sum.d_loss / batches as f32,
                g_adv: sum.g_adv / batches as f32,
                g_l1: sum.g_l1 / batches as f32,
            };
            if telemetry::enabled() {
                let secs = epoch_start.elapsed().as_secs_f64().max(1e-9);
                telemetry::event(
                    "gan.epoch",
                    &[
                        ("epoch", (epoch as u64).into()),
                        ("d_loss", f64::from(avg.d_loss).into()),
                        ("g_adv", f64::from(avg.g_adv).into()),
                        ("g_l1", f64::from(avg.g_l1).into()),
                        ("lr", f64::from(lr).into()),
                        ("batches", (batches as u64).into()),
                        ("samples_per_sec", (samples.len() as f64 / secs).into()),
                    ],
                );
            }
            progress(epoch, avg);
            history.push(avg);
            // After one full epoch the GEMM shard-time histogram has
            // enough samples to judge shard balance: derive the conv
            // batch-parallel chunk and refine the GEMM blocking for the
            // remaining epochs (no-ops when telemetry is off — the
            // compiled-in chunk default and the analytical blocking
            // stay; either way the numerics are bitwise unchanged).
            if epoch == 0 {
                let _ = cachebox_nn::tuning::autotune_conv_chunk(
                    self.parallelism,
                    self.config.batch_size,
                );
                let _ = cachebox_nn::tuning::autotune_gemm_blocking();
            }
        }
        history
    }

    /// Runs the trained generator in evaluation mode.
    pub fn generate(&mut self, input: &Tensor, params: Option<&Tensor>) -> Tensor {
        self.generator.forward(input, params, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::CacheParams;
    use crate::patchgan::PatchGanConfig;
    use crate::unet::UNetConfig;
    use cachebox_heatmap::Heatmap;

    fn tiny_trainer(epochs: usize, conditioned: bool, seed: u64) -> GanTrainer {
        let mut gc = UNetConfig::for_image_size(8, 4).with_dropout(false);
        if conditioned {
            gc = gc.with_param_features(2);
        }
        let g = UNetGenerator::new(gc, seed);
        let d = PatchGan::new(PatchGanConfig::new(2, 4, 1), seed + 1);
        GanTrainer::new(g, d, TrainConfig { epochs, batch_size: 2, lr: 2e-3, ..Default::default() })
    }

    /// A toy "cache filter": the miss map keeps only the top half of the
    /// access map (rows 0..4), as if lower rows always hit.
    fn toy_samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|k| {
                let mut access = Heatmap::zeros(8, 8);
                let mut miss = Heatmap::zeros(8, 8);
                for col in 0..8 {
                    for row in 0..8 {
                        let v = ((k + col + row) % 4) as f32;
                        access.set(row, col, v);
                        if row < 4 {
                            miss.set(row, col, v);
                        }
                    }
                }
                Sample { access, miss, params: CacheParams::new(64, 12) }
            })
            .collect()
    }

    #[test]
    fn losses_are_finite_and_l1_decreases() {
        let mut trainer = tiny_trainer(12, false, 3);
        let samples = toy_samples(8);
        let norm = Normalizer::new(4);
        let history = trainer.fit(&samples, &norm);
        assert_eq!(history.len(), 12);
        for s in &history {
            assert!(s.d_loss.is_finite() && s.g_adv.is_finite() && s.g_l1.is_finite());
        }
        let first = history[0].g_l1;
        let last = history.last().unwrap().g_l1;
        assert!(last < first, "L1 should fall: {first} -> {last}");
    }

    #[test]
    fn trained_generator_learns_the_toy_filter() {
        let mut trainer = tiny_trainer(40, false, 5);
        let samples = toy_samples(8);
        let norm = Normalizer::new(4);
        trainer.fit(&samples, &norm);
        // Evaluate on a training sample: output should zero the lower
        // half much more than the upper half.
        let x = norm.heatmap_to_tensor(&samples[0].access);
        let y = trainer.generate(&x, None);
        let out = norm.tensor_to_heatmap(&y, 0);
        let top: f32 = (0..4).map(|r| (0..8).map(|c| out.get(r, c)).sum::<f32>()).sum();
        let bottom: f32 = (4..8).map(|r| (0..8).map(|c| out.get(r, c)).sum::<f32>()).sum();
        assert!(bottom < top * 0.6, "lower half should be suppressed: top {top}, bottom {bottom}");
    }

    #[test]
    fn d_batchnorm_stats_match_two_forward_reference() {
        // One train_step must update the discriminator's BatchNorm
        // running statistics exactly as a reference discriminator that
        // sees the real pair once and the fake pair once. The old
        // implementation ran a third train-mode forward on the fake pair
        // purely for generator gradients, double-counting its stats.
        let seed = 33;
        let mut trainer = tiny_trainer(1, false, seed);
        let samples = toy_samples(2);
        let norm = Normalizer::new(4);
        let refs: Vec<&Sample> = samples.iter().collect();
        let (input, target, _params) = collate(&refs, &norm);

        // Same seeds as tiny_trainer → identical initial weights.
        let mut gen_ref =
            UNetGenerator::new(UNetConfig::for_image_size(8, 4).with_dropout(false), seed);
        let mut d_ref = PatchGan::new(PatchGanConfig::new(2, 4, 1), seed + 1);
        let fake = gen_ref.forward(&input, None, true);
        d_ref.forward(&input.concat_channels(&target), true);
        d_ref.forward(&input.concat_channels(&fake), true);

        trainer.train_step(&TrainSample { input, target, params: None }).unwrap();

        let mut expected: Vec<Vec<f32>> = Vec::new();
        d_ref.visit_buffers(&mut |b| expected.push(b.clone()));
        let mut actual: Vec<Vec<f32>> = Vec::new();
        trainer.discriminator.visit_buffers(&mut |b| actual.push(b.clone()));
        assert_eq!(expected.len(), actual.len());
        assert!(
            expected.iter().map(Vec::len).sum::<usize>() > 0,
            "discriminator should expose BatchNorm running stats"
        );
        for (e, a) in expected.iter().zip(&actual) {
            for (x, y) in e.iter().zip(a) {
                assert!((x - y).abs() < 1e-6, "running stats diverge: {x} vs {y}");
            }
        }
    }

    /// Sets the first weight of the first visited parameter to NaN.
    fn poison_generator(trainer: &mut GanTrainer) {
        let mut first = true;
        trainer.generator_mut().visit_params(&mut |p| {
            if first {
                p.value[0] = f32::NAN;
                first = false;
            }
        });
    }

    #[test]
    fn nan_gradient_is_caught_before_the_optimizer_step() {
        let mut trainer = tiny_trainer(1, false, 11);
        // A poisoned generator weight turns the fake image NaN, so the
        // discriminator's fake-side backward is the first to produce
        // non-finite gradients.
        poison_generator(&mut trainer);
        let samples = toy_samples(2);
        let norm = Normalizer::new(4);
        let refs: Vec<&Sample> = samples.iter().collect();
        let (input, target, _params) = collate(&refs, &norm);
        let err =
            trainer.train_step_at(&TrainSample { input, target, params: None }, 3, 7).unwrap_err();
        let TrainError::NonFiniteGrad { epoch, batch, ref layer, norm } = err else {
            panic!("expected NonFiniteGrad, got {err:?}");
        };
        assert_eq!(layer, "discriminator/net/conv2d0");
        assert!(!norm.is_finite(), "offending norm must be non-finite: {norm}");
        assert_eq!((epoch, batch), (3, 7));
        let msg = err.to_string();
        assert!(msg.contains("discriminator/net/conv2d0") && msg.contains("epoch 3"), "{msg}");
    }

    #[test]
    fn oversized_replica_request_is_an_error_not_a_clamp() {
        let samples = toy_samples(2);
        let norm = Normalizer::new(4);
        let refs: Vec<&Sample> = samples.iter().collect();
        let (input, target, _params) = collate(&refs, &norm);
        let batch = TrainSample { input, target, params: None };
        let mut trainer = tiny_trainer(1, false, 19).with_replicas(3);
        let err = trainer.train_step_at(&batch, 1, 2).unwrap_err();
        assert_eq!(
            err,
            TrainError::ReplicaOverflow { epoch: 1, batch: 2, requested: 3, batch_size: 2 }
        );
        let msg = err.to_string();
        assert!(msg.contains("3 replicas") && msg.contains("2 samples"), "{msg}");
        // The refused step must not have touched either network.
        let w = flat_weights(&mut trainer);
        let mut fresh = tiny_trainer(1, false, 19);
        assert_eq!(w, flat_weights(&mut fresh), "refused step mutated weights");
    }

    #[test]
    #[should_panic(expected = "exceeds batch size")]
    fn fit_rejects_more_replicas_than_batch_size() {
        let mut trainer = tiny_trainer(1, false, 23).with_replicas(8); // batch_size is 2
        trainer.fit(&toy_samples(4), &Normalizer::new(4));
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn fit_fails_fast_on_poisoned_weights() {
        let mut trainer = tiny_trainer(1, false, 13);
        poison_generator(&mut trainer);
        trainer.fit(&toy_samples(2), &Normalizer::new(4));
    }

    /// Flattens a trainer's post-step weights (generator then
    /// discriminator) for bitwise comparison.
    fn flat_weights(trainer: &mut GanTrainer) -> Vec<f32> {
        let g_len = UNetAsLayer(trainer.generator_mut()).param_count();
        let mut w = vec![0.0f32; g_len];
        UNetAsLayer(trainer.generator_mut()).read_values_flat(&mut w);
        let d_len = trainer.discriminator.param_count();
        let mut dw = vec![0.0f32; d_len];
        trainer.discriminator.read_values_flat(&mut dw);
        w.extend_from_slice(&dw);
        w
    }

    #[test]
    fn replica_counts_produce_bitwise_identical_steps() {
        let samples = toy_samples(4);
        let norm = Normalizer::new(4);
        let refs: Vec<&Sample> = samples.iter().collect();
        let (input, target, _params) = collate(&refs, &norm);
        let batch = TrainSample { input, target, params: None };
        let counts = [1usize, 2, 3, 4];
        let mut runs = Vec::new();
        for r in counts {
            let mut trainer = tiny_trainer(1, false, 21).with_replicas(r);
            let s1 = trainer.train_step(&batch).unwrap();
            let s2 = trainer.train_step(&batch).unwrap();
            runs.push((s1, s2, flat_weights(&mut trainer)));
        }
        let (s1, s2, w) = &runs[0];
        for (r, (r1, r2, rw)) in runs.iter().enumerate().skip(1) {
            let r_label = counts[r];
            for (a, b) in [(s1, r1), (s2, r2)] {
                assert_eq!(a.d_loss.to_bits(), b.d_loss.to_bits(), "d_loss differs at R={r_label}");
                assert_eq!(a.g_adv.to_bits(), b.g_adv.to_bits(), "g_adv differs at R={r_label}");
                assert_eq!(a.g_l1.to_bits(), b.g_l1.to_bits(), "g_l1 differs at R={r_label}");
            }
            assert_eq!(w.len(), rw.len());
            for (i, (a, b)) in w.iter().zip(rw).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "weight {i} differs at R={r_label}");
            }
        }
    }

    #[test]
    fn conditioned_training_runs() {
        let mut trainer = tiny_trainer(2, true, 7);
        let samples = toy_samples(4);
        let norm = Normalizer::new(4);
        let history = trainer.fit(&samples, &norm);
        assert_eq!(history.len(), 2);
    }

    #[test]
    fn progress_callback_fires_per_epoch() {
        let mut trainer = tiny_trainer(3, false, 9);
        let samples = toy_samples(4);
        let mut calls = 0;
        trainer.fit_with_progress(&samples, &Normalizer::new(4), |_, _| calls += 1);
        assert_eq!(calls, 3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn fit_rejects_empty_dataset() {
        tiny_trainer(1, false, 1).fit(&[], &Normalizer::new(4));
    }

    #[test]
    fn lr_decays_linearly_after_threshold() {
        let config = TrainConfig { epochs: 10, lr: 1.0, decay_after: 0.5, ..Default::default() };
        assert_eq!(config.lr_at_epoch(0), 1.0);
        assert_eq!(config.lr_at_epoch(4), 1.0);
        let mid = config.lr_at_epoch(7);
        let late = config.lr_at_epoch(9);
        assert!(mid < 1.0, "decay must have begun: {mid}");
        assert!(late < mid, "decay must be monotone: {late} vs {mid}");
        assert!(late > 0.0, "rate must stay positive for Adam");
    }

    #[test]
    fn decay_disabled_with_threshold_one() {
        let config = TrainConfig { epochs: 10, lr: 0.5, decay_after: 1.0, ..Default::default() };
        for epoch in 0..10 {
            assert_eq!(config.lr_at_epoch(epoch), 0.5);
        }
    }
}
