//! Alternating GAN training (paper §3.2.2, Eq. 1).

use crate::data::{collate, Normalizer, Sample};
use crate::patchgan::PatchGan;
use crate::unet::{UNetAsLayer, UNetGenerator};
use cachebox_nn::layers::Layer;
use cachebox_nn::optim::Adam;
use cachebox_nn::replica::{GradExchange, GradLane, ReplicaCtx, SyncGroup};
use cachebox_nn::{loss, reduce, replica, tuning, Parallelism, ParamStore, Tensor};
use cachebox_telemetry as telemetry;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Training hyper-parameters.
///
/// The default learning rate is 2·10⁻³ rather than Pix2Pix's 2·10⁻⁴:
/// the reproduction's training budgets are a few thousand optimizer
/// steps (vs hundreds of thousands in the paper), and the higher rate
/// with linear decay reaches the same loss regimes in that budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Reconstruction weight λ (the paper uses 150).
    pub lambda: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Samples per batch.
    pub batch_size: usize,
    /// Passes over the dataset.
    pub epochs: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// Fraction of the epochs after which the learning rate decays
    /// linearly to zero (Pix2Pix trains at a constant rate for the first
    /// half and decays over the second). `1.0` disables decay.
    pub decay_after: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lambda: 150.0,
            lr: 2e-3,
            batch_size: 4,
            epochs: 10,
            seed: 0,
            decay_after: 0.5,
        }
    }
}

impl TrainConfig {
    /// Learning rate in effect at `epoch` under the linear decay rule.
    pub fn lr_at_epoch(&self, epoch: usize) -> f32 {
        let start = (self.epochs as f32 * self.decay_after).floor();
        if (epoch as f32) < start || self.epochs == 0 {
            return self.lr;
        }
        let span = (self.epochs as f32 - start).max(1.0);
        let remaining = (self.epochs as f32 - epoch as f32).max(0.0) / span;
        // Never fully zero — Adam rejects non-positive rates.
        self.lr * remaining.max(0.02)
    }
}

/// Losses averaged over one epoch (or measured at one step).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainStats {
    /// Discriminator BCE loss.
    pub d_loss: f32,
    /// Generator adversarial BCE loss.
    pub g_adv: f32,
    /// Generator L1 reconstruction loss (unweighted).
    pub g_l1: f32,
}

/// A fatal training fault. The optimizer step that would have consumed
/// the faulty state is skipped; neither network is mutated.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// Some parameter gradient became NaN or ±Inf, so the next
    /// optimizer step would poison the weights irrecoverably.
    ///
    /// `layer` names the first offending layer in visit order, e.g.
    /// `generator/down0/conv2d0` or `discriminator/net/batch_norm2d3`.
    NonFiniteGrad {
        /// Epoch in which the fault occurred (0 for bare [`GanTrainer::train_step`]).
        epoch: usize,
        /// Batch index within the epoch.
        batch: usize,
        /// Path of the first layer whose gradients are non-finite.
        layer: String,
        /// The layer's gradient L2 norm (NaN or ±Inf by construction).
        norm: f32,
    },
    /// The step's batch holds fewer samples than the requested replica
    /// count, so `R` non-empty shards cannot exist. The trainer refuses
    /// rather than silently training on fewer replicas than asked for
    /// (the pre-ragged implementation clamped — see
    /// `docs/PARALLEL_TRAINING.md` § error semantics).
    ReplicaOverflow {
        /// Epoch in which the fault occurred (0 for bare [`GanTrainer::train_step`]).
        epoch: usize,
        /// Batch index within the epoch.
        batch: usize,
        /// The replica count passed to [`GanTrainer::with_replicas`].
        requested: usize,
        /// Samples in the offending batch.
        batch_size: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::NonFiniteGrad { epoch, batch, layer, norm } => write!(
                f,
                "non-finite gradient (norm {norm}) in layer `{layer}` at epoch {epoch}, \
                 batch {batch}"
            ),
            TrainError::ReplicaOverflow { epoch, batch, requested, batch_size } => write!(
                f,
                "cannot shard a batch of {batch_size} samples across {requested} replicas \
                 at epoch {epoch}, batch {batch}; request at most one replica per sample"
            ),
        }
    }
}

impl std::error::Error for TrainError {}

/// Everything one replica worker hands back *at join time*: the global
/// per-sample loss subtotals for its shard and bookkeeping. Gradient
/// partials do not travel here — they stream through the worker's
/// [`GradLane`] as each loss term's backward pass finishes, so the
/// main-thread tree-reduction overlaps the remaining backward work.
struct ShardOut {
    /// Per-sample BCE subtotals for the real pair (label 1).
    real_rows: Vec<f32>,
    /// Per-sample BCE subtotals for the fake pair (label 0).
    fake_rows: Vec<f32>,
    /// Per-sample BCE subtotals for the adversarial loss (label 1).
    gan_rows: Vec<f32>,
    /// Per-sample L1 subtotals for the reconstruction loss.
    l1_rows: Vec<f32>,
    /// Global patch-logit element count (`n · patches_per_sample`).
    patch_total: usize,
    /// Global image element count (`n · c·h·w`).
    img_total: usize,
    /// Wall time this worker spent on its shard.
    shard_ns: u64,
}

/// The loss terms every replica submits through its [`GradLane`], in
/// submission order.
const GRAD_TERMS: usize = 3;

/// Runs one replica's share of a training step on the shard
/// `[lo, hi)` of the global batch.
///
/// The sequence of forward/backward calls is identical on every
/// replica, so the batch-norm rendezvous inside
/// [`replica::reduce_samples`] stays in lockstep. Gradients for each of
/// the discriminator's two loss terms are captured separately (the old
/// implementation snapshotted and restored grads around the adversarial
/// backward) and submitted through `lane` the moment they exist: term 0
/// (real-pair D) while the fake pair is still being processed, term 1
/// (fake-pair D) while the generator backward runs, term 2 (G) last.
/// The caller tree-reduces each term across replicas in fixed order and
/// sums the two discriminator trees, which is replica-count invariant.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    generator: &mut UNetGenerator,
    discriminator: &mut PatchGan,
    batch: &TrainSample,
    lo: usize,
    hi: usize,
    global_n: usize,
    lambda: f32,
    ctx: ReplicaCtx,
    g_len: usize,
    d_len: usize,
    lane: &mut GradLane,
) -> ShardOut {
    let start = Instant::now();
    let _shard = telemetry::span("gan.replica.shard");
    // Nested per-worker span: under micro-batch pipelining each worker
    // is one (micro-batch, replica) cell of the shard grid, and the
    // span tree exposes those cells individually.
    let _micro = telemetry::span("gan.micro_batch.shard");
    let _guard = replica::install(ctx);
    let shard_n = hi - lo;
    let (input_s, target_s, params_s);
    let (x, t, p): (&Tensor, &Tensor, Option<&Tensor>) = if lo == 0 && hi == global_n {
        (&batch.input, &batch.target, batch.params.as_ref())
    } else {
        input_s = batch.input.slice_samples(lo, hi);
        target_s = batch.target.slice_samples(lo, hi);
        params_s = batch.params.as_ref().map(|p| p.slice_samples(lo, hi));
        (&input_s, &target_s, params_s.as_ref())
    };

    // ---- Generator forward (kept cached for the G update below).
    let fake = {
        let _s = telemetry::span("gan.g_forward");
        generator.forward(x, p, true)
    };

    // ---- Discriminator gradients, one backward per loss term.
    let _d = telemetry::span("gan.d_update");
    discriminator.zero_grad();
    let real_pair = x.concat_channels(t);
    let d_real = discriminator.forward(&real_pair, true);
    let patch_total = d_real.len() / shard_n * global_n;
    let (real_rows, g_real) = loss::bce_with_logits_sharded(&d_real, 1.0, patch_total);
    discriminator.backward(&g_real.scale(0.5));
    let mut d_real_grads = lane.acquire(d_len);
    discriminator.read_grads_flat(&mut d_real_grads);
    lane.submit(d_real_grads);

    let fake_pair = x.concat_channels(&fake);
    let d_fake = discriminator.forward(&fake_pair, true);
    let (fake_rows, g_fake) = loss::bce_with_logits_sharded(&d_fake, 0.0, patch_total);
    // The generator's adversarial loss (label the fake "real") reuses
    // the same logits and cached activations — a third D forward would
    // waste the work and update every BatchNorm running stat a second
    // time for the fake pair.
    let (gan_rows, g_gan) = loss::bce_with_logits_sharded(&d_fake, 1.0, patch_total);
    discriminator.zero_grad();
    let g_pair = discriminator.backward(&g_gan);
    discriminator.zero_grad();
    discriminator.backward(&g_fake.scale(0.5));
    let mut d_fake_grads = lane.acquire(d_len);
    discriminator.read_grads_flat(&mut d_fake_grads);
    lane.submit(d_fake_grads);
    drop(_d);

    // ---- Generator gradients: adversarial plus λ-weighted L1.
    let _g = telemetry::span("gan.g_update");
    let (_g_input_part, g_fake_part) = g_pair.split_channels(x.c());
    let img_total = fake.len() / shard_n * global_n;
    let (l1_rows, g_l1) = loss::l1_sharded(&fake, t, img_total);
    let total = g_fake_part.add(&g_l1.scale(lambda));
    generator.zero_grad();
    generator.backward(&total);
    let mut g_grads = lane.acquire(g_len);
    UNetAsLayer(generator).read_grads_flat(&mut g_grads);
    lane.submit(g_grads);

    ShardOut {
        real_rows,
        fake_rows,
        gan_rows,
        l1_rows,
        patch_total,
        img_total,
        shard_ns: start.elapsed().as_nanos() as u64,
    }
}

/// Provenance label recorded when [`tuning::MICRO_BATCHES_ENV_VAR`]
/// supplies the micro-batch count.
const MICRO_ENV_SOURCE: &str = "env:CACHEBOX_MICRO_BATCHES";

/// Streams one optimizer step over `store` in batches of consecutive
/// layer groups, each covering at least `chunk_scalars` parameters
/// (the last batch takes whatever remains). Bitwise equivalent to one
/// whole-store [`Adam::step_store`]: segment order and per-element
/// math are identical, only the loop is cut — which is what lets the
/// caller interleave the step with other pipeline work.
fn step_segments_chunked(opt: &mut Adam, store: &mut ParamStore, chunk_scalars: usize) {
    let _span = telemetry::span("nn.adam.step");
    opt.begin_step();
    let groups = store.layer_groups();
    let mut i = 0;
    while i < groups.len() {
        let seg_lo = groups[i].0;
        let mut seg_hi = groups[i].1;
        let mut j = i + 1;
        let (span_lo, mut span_hi) = store.scalar_span(seg_lo, seg_hi);
        while j < groups.len() && span_hi - span_lo < chunk_scalars {
            seg_hi = groups[j].1;
            span_hi = store.scalar_span(seg_lo, seg_hi).1;
            j += 1;
        }
        opt.step_segments(store, seg_lo, seg_hi);
        i = j;
    }
}

/// Outcome of the main thread's discriminator phase, run concurrently
/// with the workers' generator backward.
struct DPhase {
    /// `Ok(grad_norm)` when the step was applied; `Err((layer, norm))`
    /// when a non-finite gradient was found — in that case neither the
    /// optimizer moments nor the step counter were touched.
    result: Result<f32, (String, f32)>,
    /// `(start, end)` of the main-thread fold/scan/step work, in ns
    /// since the step began (for the overlap-ratio measurement).
    work: (u64, u64),
}

/// Receives the two discriminator gradient terms from `exchange`,
/// folds them through the store's double gradient arena, scans *every*
/// layer group for non-finite values, and — only when clean — streams
/// the Adam update segment batch by segment. Runs on the main thread
/// while the workers are still in the generator backward, which is the
/// tentpole overlap: the optimizer step no longer waits for the batch
/// boundary. Both term arenas are retired to `pool` before returning.
fn reduce_and_step_d(
    exchange: &mut GradExchange,
    pool: &mut Vec<Vec<f32>>,
    store: &mut ParamStore,
    opt: &mut Adam,
    chunk_scalars: usize,
    step_start: Instant,
) -> DPhase {
    let d_real = exchange.recv_term(pool);
    let d_fake = exchange.recv_term(pool);
    let work_lo = step_start.elapsed().as_nanos() as u64;
    store.grads_mut().copy_from_slice(&d_real);
    store.back_grads_mut().copy_from_slice(&d_fake);
    store.accumulate_back_grads();
    pool.extend([d_real, d_fake]);
    // The full scan happens before any segment steps: a non-finite
    // gradient anywhere must leave the optimizer state untouched.
    let (norm, bad) = store.grad_norm_scan();
    let result = match bad {
        Some(b) => Err(b),
        None => {
            step_segments_chunked(opt, store, chunk_scalars);
            Ok(norm)
        }
    };
    let work_hi = step_start.elapsed().as_nanos() as u64;
    DPhase { result, work: (work_lo, work_hi) }
}

/// One (input, target, params) batch already in tensor form.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSample {
    /// Access heatmap batch `[n, 1, h, w]` in the model domain.
    pub input: Tensor,
    /// Real miss heatmap batch `[n, 1, h, w]` in the model domain.
    pub target: Tensor,
    /// Cache parameter batch `[n, 2, 1, 1]`, if the model is conditioned.
    pub params: Option<Tensor>,
}

/// Alternating optimizer for CB-GAN.
///
/// # Example
///
/// ```
/// use cachebox_gan::{GanTrainer, PatchGan, PatchGanConfig, TrainConfig,
///                    UNetConfig, UNetGenerator, TrainSample};
/// use cachebox_nn::Tensor;
///
/// let g = UNetGenerator::new(UNetConfig::for_image_size(8, 2).with_dropout(false), 1);
/// let d = PatchGan::new(PatchGanConfig::new(2, 2, 1), 2);
/// let mut trainer = GanTrainer::new(g, d, TrainConfig { epochs: 1, ..Default::default() });
/// let batch = TrainSample {
///     input: Tensor::full([2, 1, 8, 8], -1.0),
///     target: Tensor::full([2, 1, 8, 8], -1.0),
///     params: None,
/// };
/// let stats = trainer.train_step(&batch).expect("gradients stay finite");
/// assert!(stats.d_loss.is_finite() && stats.g_l1.is_finite());
/// ```
#[derive(Debug)]
pub struct GanTrainer {
    generator: UNetGenerator,
    discriminator: PatchGan,
    opt_g: Adam,
    opt_d: Adam,
    config: TrainConfig,
    parallelism: Parallelism,
    /// Requested data-parallel replica count, honored exactly for every
    /// batch with at least that many samples.
    replicas: usize,
    /// Explicitly pinned micro-batch count ([`GanTrainer::with_micro_batches`]);
    /// `None` resolves env override → tuned install → 1 per step.
    micro_batches: Option<usize>,
    /// [`tuning::MICRO_BATCHES_ENV_VAR`], read once at construction.
    env_micro: Option<usize>,
    /// Last `(count, source)` recorded to the run manifest, so the
    /// provenance is re-recorded only when the resolution changes.
    recorded_micro: Option<(usize, &'static str)>,
    /// The previous step's deferred generator update: the optimizer and
    /// parameter store travel to a background thread that streams the
    /// Adam step while the caller prepares (or runs) the next step.
    /// Joined by [`GanTrainer::flush_pending_g`] before anything can
    /// read or replace the generator weights.
    pending_g: Option<JoinHandle<(Adam, ParamStore, u64)>>,
    /// `(overlapped_ns, work_ns)` of the most recently flushed
    /// background generator step, folded into the next step's
    /// `gan.pipeline.overlap_ratio`.
    g_flushed: (u64, u64),
    /// Overlap ratio measured at the last completed step.
    last_overlap: f64,
    /// Monotone step counter; keys the sharding-invariant dropout masks.
    step_counter: u64,
    /// Lazily built worker copies of the generator (replicas 1..R; the
    /// lead replica is the trainer's own model).
    g_replicas: Vec<UNetGenerator>,
    /// Lazily built worker copies of the discriminator.
    d_replicas: Vec<PatchGan>,
    /// Recycled gradient arenas for the [`GradExchange`]; warm after
    /// the first step, so the per-step exchange allocates nothing.
    grad_pool: Vec<Vec<f32>>,
    /// One-shot latch for the `gan.replica.mismatch` warning (the tail
    /// batch of an epoch can be smaller than R — see
    /// [`GanTrainer::fit_with_progress`]).
    warned_mismatch: bool,
    /// Heartbeat cadence override for this trainer; `None` inherits the
    /// process-wide [`cachebox_telemetry::heartbeat_every`] setting.
    heartbeat_every: Option<usize>,
    /// Replica-shard wall times observed since the last heartbeat —
    /// each heartbeat reports this window's p50/p90 and resets it.
    hb_shard: telemetry::Histogram,
}

impl GanTrainer {
    /// Creates a trainer owning both networks.
    pub fn new(generator: UNetGenerator, discriminator: PatchGan, config: TrainConfig) -> Self {
        let opt_g = Adam::new(config.lr);
        let opt_d = Adam::new(config.lr);
        GanTrainer {
            generator,
            discriminator,
            opt_g,
            opt_d,
            config,
            parallelism: Parallelism::current(),
            replicas: 1,
            micro_batches: None,
            env_micro: tuning::micro_batches_from_env(),
            recorded_micro: None,
            pending_g: None,
            g_flushed: (0, 0),
            last_overlap: 0.0,
            step_counter: 0,
            g_replicas: Vec::new(),
            d_replicas: Vec::new(),
            grad_pool: Vec::new(),
            warned_mismatch: false,
            heartbeat_every: None,
            hb_shard: telemetry::Histogram::new(),
        }
    }

    /// Sets the thread budget installed for the GEMM kernels while
    /// fitting (defaults to the process-wide [`Parallelism::current`]).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Requests data-parallel training over **exactly** `replicas`
    /// model replicas — ragged (non-power-of-two) counts included.
    ///
    /// Each step splits the batch into `replicas` contiguous shards
    /// along canonical-tree node boundaries (the padded halving tree,
    /// `cachebox_nn::reduce::tree_splits`), runs one worker per shard
    /// against its own model copy (weights broadcast as one flat
    /// memcpy), and tree-reduces each loss term's per-replica gradient
    /// arenas in fixed replica order — overlapped with the next term's
    /// backward pass through a double-buffered [`GradExchange`]. Losses
    /// and post-step weights are **bitwise identical** for any replica
    /// count (see `docs/PARALLEL_TRAINING.md`).
    ///
    /// A batch must hold at least `replicas` samples:
    /// [`GanTrainer::train_step`] returns
    /// [`TrainError::ReplicaOverflow`] instead of silently training on
    /// fewer replicas (the pre-ragged implementation clamped to a power
    /// of two). [`GanTrainer::fit`] shrinks the count only for a
    /// smaller-than-`batch_size` tail chunk, with a one-shot
    /// `gan.replica.mismatch` telemetry warning.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        assert!(replicas > 0, "replica count must be non-zero");
        self.replicas = replicas;
        self
    }

    /// The requested replica count.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Splits every training batch into **exactly** `micro_batches`
    /// micro-batches — ragged counts included — and pipelines them:
    /// all micro-batch shards run as concurrent workers of one
    /// batch-norm rendezvous group, gradient partials stream through
    /// the [`GradExchange`] in fixed worker order, and the
    /// discriminator's optimizer step starts while the workers are
    /// still in the generator backward. Each micro-batch is further
    /// sharded across the configured replica count, so micro-batches
    /// and replicas compose.
    ///
    /// Because every worker range is a node of the canonical halving
    /// tree over the batch, losses and post-step weights are **bitwise
    /// identical** for any micro-batch count `1 ≤ M ≤ batch` and any
    /// replica × micro-batch combination (see
    /// `docs/PARALLEL_TRAINING.md`). A request larger than the batch
    /// clamps to one sample per micro-batch (recorded by the
    /// `gan.micro_batch.requested`/`gan.micro_batch.count` gauges) —
    /// unlike the replica count, which is a hard capacity contract,
    /// the micro-batch count is a scheduling hint.
    ///
    /// Without this call the count resolves from
    /// [`tuning::MICRO_BATCHES_ENV_VAR`], then from any
    /// [`tuning::autotune_micro_batches`] install, then defaults to 1.
    ///
    /// # Panics
    ///
    /// Panics if `micro_batches` is zero.
    pub fn with_micro_batches(mut self, micro_batches: usize) -> Self {
        assert!(micro_batches > 0, "micro-batch count must be non-zero");
        self.micro_batches = Some(micro_batches);
        self
    }

    /// The micro-batch count the next step will request, before
    /// clamping to the batch size.
    pub fn micro_batches(&self) -> usize {
        self.resolve_micro_batches().0
    }

    /// `(count, provenance)` of the micro-batch request: explicit
    /// builder setting, else the environment override, else the
    /// telemetry-tuned install, else the default of one.
    fn resolve_micro_batches(&self) -> (usize, &'static str) {
        if let Some(m) = self.micro_batches {
            (m, "explicit")
        } else if let Some(m) = self.env_micro {
            (m, MICRO_ENV_SOURCE)
        } else if let Some(m) = tuning::micro_batches() {
            (m, tuning::MICRO_BATCHES_TUNED_SOURCE)
        } else {
            (1, "default")
        }
    }

    /// Records the resolved micro-batch count and its provenance in the
    /// run manifest, once per distinct resolution.
    fn record_micro_provenance(&mut self, micro_batches: usize, source: &'static str) {
        if self.recorded_micro == Some((micro_batches, source)) {
            return;
        }
        self.recorded_micro = Some((micro_batches, source));
        tuning::record_micro_batches(micro_batches, source);
    }

    /// Overlap fraction of the last completed step: main-thread
    /// optimizer work that ran concurrently with replica workers (the
    /// discriminator step) or with the caller's inter-step work (the
    /// previous step's deferred generator update), over all such work.
    /// `0.0` before the first step completes.
    pub fn last_overlap_ratio(&self) -> f64 {
        self.last_overlap
    }

    /// Lands the previous step's deferred generator update, if one is
    /// still in flight: joins the background thread, moves the
    /// optimizer back, and imports the stepped values into the live
    /// generator. Called before every weight read or new step, so the
    /// deferral is never observable — only the overlap is.
    fn flush_pending_g(&mut self) {
        let Some(handle) = self.pending_g.take() else {
            return;
        };
        let ready = handle.is_finished();
        let wait = Instant::now();
        let (opt_g, g_store, work_ns) = handle.join().expect("generator optimizer thread panicked");
        let wait_ns = if ready { 0 } else { wait.elapsed().as_nanos() as u64 };
        self.opt_g = opt_g;
        UNetAsLayer(&mut self.generator).import_values("", &g_store);
        self.g_flushed = (work_ns.saturating_sub(wait_ns), work_ns);
    }

    /// Overrides the heartbeat cadence for this trainer: emit one
    /// [`cachebox_telemetry::Heartbeat`] every `steps` optimizer steps
    /// (`0` disables). Without this override the trainer follows the
    /// process-wide [`cachebox_telemetry::heartbeat_every`] setting
    /// (`--heartbeat-every` / `CACHEBOX_HEARTBEAT_EVERY`).
    pub fn with_heartbeat_every(mut self, steps: usize) -> Self {
        self.heartbeat_every = Some(steps);
        self
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Borrows the generator (e.g. for inference after training).
    pub fn generator_mut(&mut self) -> &mut UNetGenerator {
        self.flush_pending_g();
        &mut self.generator
    }

    /// Consumes the trainer, returning the trained networks.
    pub fn into_networks(mut self) -> (UNetGenerator, PatchGan) {
        self.flush_pending_g();
        (self.generator, self.discriminator)
    }

    /// Performs one alternating optimization step on a batch and returns
    /// the step's losses.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] (reporting epoch 0, batch 0) if any
    /// parameter gradient turns NaN/±Inf; neither network is stepped
    /// with poisoned gradients.
    pub fn train_step(&mut self, batch: &TrainSample) -> Result<TrainStats, TrainError> {
        self.train_step_at(batch, 0, 0)
    }

    /// [`GanTrainer::train_step`] with the epoch and batch index recorded
    /// in any [`TrainError`] (as [`GanTrainer::fit`] does internally).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::NonFiniteGrad`] naming the first layer
    /// whose gradients are non-finite (the affected optimizer step is
    /// skipped), or [`TrainError::ReplicaOverflow`] if the batch holds
    /// fewer samples than the requested replica count — the replica
    /// count is honored exactly, never silently reduced.
    pub fn train_step_at(
        &mut self,
        batch: &TrainSample,
        epoch: usize,
        batch_idx: usize,
    ) -> Result<TrainStats, TrainError> {
        let n = batch.input.n();
        if self.replicas > n {
            self.warn_replica_mismatch(0, n);
            return Err(TrainError::ReplicaOverflow {
                epoch,
                batch: batch_idx,
                requested: self.replicas,
                batch_size: n,
            });
        }
        self.step_with_replicas(batch, epoch, batch_idx, self.replicas)
    }

    /// Emits the `gan.replica.requested`/`gan.replica.count` gauge pair
    /// plus, the first time the effective count diverges from the
    /// request, a one-shot `gan.replica.mismatch` warning event (and an
    /// stderr note, so the divergence is loud even without telemetry).
    /// `effective == 0` records a refused step.
    fn warn_replica_mismatch(&mut self, effective: usize, batch_n: usize) {
        telemetry::gauge("gan.replica.requested", self.replicas as f64);
        telemetry::gauge("gan.replica.count", effective as f64);
        if self.warned_mismatch {
            return;
        }
        self.warned_mismatch = true;
        telemetry::counter("gan.replica.mismatch", 1);
        telemetry::event(
            "gan.replica.mismatch",
            &[
                ("requested", (self.replicas as u64).into()),
                ("effective", (effective as u64).into()),
                ("batch", (batch_n as u64).into()),
            ],
        );
        if effective == 0 {
            eprintln!(
                "warning: refused train step: {} replicas requested over a batch of {batch_n}",
                self.replicas
            );
        } else {
            eprintln!(
                "warning: tail batch of {batch_n} samples trains on {effective} of the {} \
                 requested replicas",
                self.replicas
            );
        }
    }

    /// One pipelined optimization step on exactly `r_eff` replicas
    /// (`1 <= r_eff <= n`, already validated by the callers).
    ///
    /// The batch is cut into `M` micro-batches along canonical-tree
    /// node boundaries; each micro-batch is cut again across the
    /// replicas, and **all** resulting workers run concurrently in one
    /// batch-norm rendezvous group (micro-batches cannot run
    /// sequentially — every BatchNorm statistic couples the whole
    /// batch). Gradients stream through a frontier-plan
    /// [`GradExchange`], so the main thread folds and *steps the
    /// discriminator* while the workers are still in the generator
    /// backward; the generator's own step is handed to a background
    /// thread and lands at the next weight read. Everything is bitwise
    /// invariant in `(R, M)` because every worker range is a node of
    /// the same halving tree an unsharded run reduces with.
    fn step_with_replicas(
        &mut self,
        batch: &TrainSample,
        epoch: usize,
        batch_idx: usize,
        r_eff: usize,
    ) -> Result<TrainStats, TrainError> {
        // Land the previous step's deferred generator update before
        // this step's forwards can read the weights.
        self.flush_pending_g();
        let _step = telemetry::span("gan.train_step");
        let step_start = Instant::now();
        // Make the trainer's thread budget visible to the conv layers'
        // batch-sharding and GEMM dispatch even when a step is driven
        // directly (tests, benches) rather than through `fit`.
        self.parallelism.install();
        let n = batch.input.n();
        debug_assert!((1..=n).contains(&r_eff));
        let nonce = self.step_counter;
        // Advance even on a failed step: the legacy RNG stream also
        // advanced through a failed step's forward passes.
        self.step_counter += 1;
        let lambda = self.config.lambda;
        let g_len = UNetAsLayer(&mut self.generator).param_count();
        let d_len = self.discriminator.param_count();

        // ---- Worker plan: M micro-batch tree nodes, each sub-split
        // across min(r_eff, |micro|) replicas. `tree_splits` midpoints
        // are self-similar, so every sub-shard is a node of the full
        // batch tree and the flattened list is a valid reduction
        // frontier for any (R, M).
        let (m_req, m_source) = self.resolve_micro_batches();
        let m_eff = m_req.clamp(1, n);
        self.record_micro_provenance(m_req, m_source);
        telemetry::gauge("gan.micro_batch.requested", m_req as f64);
        telemetry::gauge("gan.micro_batch.count", m_eff as f64);
        telemetry::gauge("gan.replica.requested", self.replicas as f64);
        telemetry::gauge("gan.replica.count", r_eff as f64);
        let mut shards: Vec<(usize, usize)> = Vec::with_capacity(m_eff * r_eff);
        for &(mlo, mhi) in &reduce::tree_splits(n, m_eff) {
            let span = mhi - mlo;
            for &(slo, shi) in &reduce::tree_splits(span, r_eff.min(span)) {
                shards.push((mlo + slo, mlo + shi));
            }
        }
        let workers = shards.len();
        let group = Arc::new(SyncGroup::new(workers, n));

        // Gradient partials stream through the exchange as each loss
        // term's backward finishes, so the main thread merges term k
        // while the workers run term k+1's backward. An inline
        // single-worker run buffers every term (the reducer only runs
        // after the shard returns); threaded runs double-buffer.
        let depth = if workers == 1 { GRAD_TERMS } else { 2 };
        let mut exchange =
            GradExchange::for_shards(&shards, n, GRAD_TERMS, depth, &mut self.grad_pool);

        // Export both flat stores up front: the optimizers consume
        // these copies, so the discriminator step can stream *inside*
        // the worker scope while the live models — mutably lent to the
        // workers — stay at pre-step weights until the import below.
        let mut d_store = self.discriminator.export_store();
        let mut g_store = UNetAsLayer(&mut self.generator).export_store();
        let chunk = tuning::pipeline_chunk();
        // Last worker finish time (ns since step start), for the
        // overlap measurement.
        let workers_end = AtomicU64::new(0);

        let (outs, d_phase, g_term) = if workers == 1 {
            // Single worker: run the shard inline on the main thread.
            // The context is still installed so dropout keying and the
            // batch-norm reduction take the same code path for every
            // worker count.
            let ctx = ReplicaCtx { group, replica: 0, sample_base: 0, step_nonce: nonce };
            let mut lane = exchange.take_lane(0);
            let out = run_shard(
                &mut self.generator,
                &mut self.discriminator,
                batch,
                0,
                n,
                n,
                lambda,
                ctx,
                g_len,
                d_len,
                &mut lane,
            );
            drop(lane);
            workers_end.store(step_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let d_phase = reduce_and_step_d(
                &mut exchange,
                &mut self.grad_pool,
                &mut d_store,
                &mut self.opt_d,
                chunk,
                step_start,
            );
            let g_term = exchange.recv_term(&mut self.grad_pool);
            (vec![out], d_phase, g_term)
        } else {
            // Broadcast the lead weights into the cached worker models
            // as one flat copy each. Worker models share the lead's
            // init seed so keyed dropout masks agree across workers.
            while self.g_replicas.len() < workers - 1 {
                self.g_replicas
                    .push(UNetGenerator::new(*self.generator.config(), self.generator.init_seed()));
                self.d_replicas.push(PatchGan::new(*self.discriminator.config(), 0));
            }
            let mut g_vals = vec![0.0f32; g_len];
            UNetAsLayer(&mut self.generator).read_values_flat(&mut g_vals);
            let mut d_vals = vec![0.0f32; d_len];
            self.discriminator.read_values_flat(&mut d_vals);
            for g in &mut self.g_replicas[..workers - 1] {
                UNetAsLayer(g).write_values_flat(&g_vals);
            }
            for d in &mut self.d_replicas[..workers - 1] {
                d.write_values_flat(&d_vals);
            }
            // Divide the thread budget between workers so the total
            // thread count stays at the configured level; the budget
            // only affects scheduling, never numerics.
            let outer = self.parallelism.threads();
            Parallelism::new((outer / workers).max(1)).install();
            let generator = &mut self.generator;
            let discriminator = &mut self.discriminator;
            let grad_pool = &mut self.grad_pool;
            let opt_d = &mut self.opt_d;
            let gs: Vec<&mut UNetGenerator> = std::iter::once(generator)
                .chain(self.g_replicas[..workers - 1].iter_mut())
                .collect();
            let ds: Vec<&mut PatchGan> = std::iter::once(discriminator)
                .chain(self.d_replicas[..workers - 1].iter_mut())
                .collect();
            let workers_end = &workers_end;
            // std::thread::scope (not the crossbeam wrapper): the
            // rendezvous barrier inside SyncGroup requires the workers
            // to genuinely run concurrently.
            let result = std::thread::scope(|scope| {
                let handles: Vec<_> = gs
                    .into_iter()
                    .zip(ds)
                    .zip(shards.iter().enumerate())
                    .map(|((g, d), (w, &(lo, hi)))| {
                        let group = Arc::clone(&group);
                        let mut lane = exchange.take_lane(w);
                        scope.spawn(move || {
                            let ctx = ReplicaCtx {
                                group,
                                replica: w,
                                sample_base: lo,
                                step_nonce: nonce,
                            };
                            let out = run_shard(
                                g, d, batch, lo, hi, n, lambda, ctx, g_len, d_len, &mut lane,
                            );
                            workers_end.fetch_max(
                                step_start.elapsed().as_nanos() as u64,
                                Ordering::Relaxed,
                            );
                            out
                        })
                    })
                    .collect();
                // The main thread is the reducer *and* the
                // discriminator optimizer: it merges the two D terms in
                // fixed worker order as partials arrive, then streams
                // the D step — all while the workers run the generator
                // backward. That is the pipeline: the optimizer no
                // longer waits for the batch boundary.
                let d_phase = reduce_and_step_d(
                    &mut exchange,
                    grad_pool,
                    &mut d_store,
                    opt_d,
                    chunk,
                    step_start,
                );
                let g_term = exchange.recv_term(grad_pool);
                let outs = handles
                    .into_iter()
                    .map(|h| h.join().expect("replica worker panicked"))
                    .collect::<Vec<_>>();
                (outs, d_phase, g_term)
            });
            self.parallelism.install();
            result
        };

        for o in &outs {
            telemetry::observe("gan.replica.shard_ns", o.shard_ns as f64);
            self.hb_shard.record(o.shard_ns as f64);
        }

        // Losses: per-sample subtotals concatenate in global sample
        // order (worker shards are contiguous and ascending), then
        // tree-sum with full-batch denominators.
        let patch_total = outs[0].patch_total;
        let img_total = outs[0].img_total;
        let mut real_rows = Vec::with_capacity(n);
        let mut fake_rows = Vec::with_capacity(n);
        let mut gan_rows = Vec::with_capacity(n);
        let mut l1_rows = Vec::with_capacity(n);
        for o in &outs {
            real_rows.extend_from_slice(&o.real_rows);
            fake_rows.extend_from_slice(&o.fake_rows);
            gan_rows.extend_from_slice(&o.gan_rows);
            l1_rows.extend_from_slice(&o.l1_rows);
        }
        let l_real = reduce::tree_sum(&real_rows) / patch_total as f32;
        let l_fake = reduce::tree_sum(&fake_rows) / patch_total as f32;
        let l_gan = reduce::tree_sum(&gan_rows) / patch_total as f32;
        let l_l1 = reduce::tree_sum(&l1_rows) / img_total as f32;

        // ---- Overlap accounting: the D-phase work clipped to the last
        // worker finish (concurrent with the G backward), plus the
        // previous step's background G work that completed before its
        // flush (concurrent with the caller), over all such work.
        let DPhase { result: d_result, work: (d_lo, d_hi) } = d_phase;
        let we = workers_end.load(Ordering::Relaxed);
        let d_work = d_hi.saturating_sub(d_lo);
        let d_overlap = d_hi.min(we).saturating_sub(d_lo.min(we));
        let (g_overlap, g_work) = std::mem::take(&mut self.g_flushed);
        let total_work = d_work + g_work;
        self.last_overlap =
            if total_work == 0 { 0.0 } else { (d_overlap + g_overlap) as f64 / total_work as f64 };
        telemetry::gauge("gan.pipeline.overlap_ratio", self.last_overlap);

        // ---- Discriminator outcome. On a non-finite gradient the
        // phase skipped the step entirely, so neither the optimizer
        // moments nor the live model have been touched.
        let d_norm = match d_result {
            Ok(norm) => f64::from(norm),
            Err((layer, norm)) => {
                self.grad_pool.push(g_term);
                return Err(TrainError::NonFiniteGrad {
                    epoch,
                    batch: batch_idx,
                    layer: format!("discriminator/{layer}"),
                    norm,
                });
            }
        };
        telemetry::gauge("gan.grad_norm.d", d_norm);
        self.discriminator.import_values("", &d_store);

        // ---- Generator: fold and scan synchronously (the error must
        // surface from this call), then defer the segment-streamed
        // step to a background thread. It overlaps whatever the caller
        // does next — collating the next batch, this step's stats
        // handling — and lands at the next weight read via
        // [`GanTrainer::flush_pending_g`].
        g_store.grads_mut().copy_from_slice(&g_term);
        self.grad_pool.push(g_term);
        let (g_norm, g_bad) = g_store.grad_norm_scan();
        if let Some((layer, norm)) = g_bad {
            return Err(TrainError::NonFiniteGrad {
                epoch,
                batch: batch_idx,
                layer: format!("generator/{layer}"),
                norm,
            });
        }
        telemetry::gauge("gan.grad_norm.g", f64::from(g_norm));
        let mut opt_g = std::mem::replace(&mut self.opt_g, Adam::new(self.config.lr));
        self.pending_g = Some(std::thread::spawn(move || {
            let work = Instant::now();
            step_segments_chunked(&mut opt_g, &mut g_store, chunk);
            (opt_g, g_store, work.elapsed().as_nanos() as u64)
        }));

        let stats = TrainStats { d_loss: 0.5 * (l_real + l_fake), g_adv: l_gan, g_l1: l_l1 };
        self.maybe_heartbeat(epoch, n, step_start, &stats, d_norm, f64::from(g_norm));
        Ok(stats)
    }

    /// Emits a [`telemetry::Heartbeat`] when this step lands on the
    /// configured cadence (trainer override, else the process-wide
    /// setting). Reports the shard-time window accumulated since the
    /// previous heartbeat and resets it.
    fn maybe_heartbeat(
        &mut self,
        epoch: usize,
        batch_n: usize,
        step_start: Instant,
        stats: &TrainStats,
        grad_norm_d: f64,
        grad_norm_g: f64,
    ) {
        let every = self.heartbeat_every.unwrap_or_else(telemetry::heartbeat_every);
        if every == 0 || !telemetry::enabled() {
            return;
        }
        // `step_counter` was already advanced past this step.
        if !self.step_counter.is_multiple_of(every as u64) {
            return;
        }
        let secs = step_start.elapsed().as_secs_f64().max(1e-9);
        telemetry::heartbeat(&telemetry::Heartbeat {
            step: telemetry::next_heartbeat_step(),
            epoch: epoch as u64,
            d_loss: f64::from(stats.d_loss),
            g_adv: f64::from(stats.g_adv),
            g_l1: f64::from(stats.g_l1),
            grad_norm_d,
            grad_norm_g,
            samples_per_sec: batch_n as f64 / secs,
            shard_p50_ns: self.hb_shard.percentile(50.0),
            shard_p90_ns: self.hb_shard.percentile(90.0),
            rss_peak_kb: telemetry::peak_rss_kb(),
        });
        self.hb_shard = telemetry::Histogram::new();
    }

    /// Trains over a dataset of heatmap samples for `config.epochs`
    /// epochs with random batching, returning per-epoch averaged losses.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, or (fail-fast) on a non-finite
    /// gradient — see [`GanTrainer::fit_with_progress`].
    pub fn fit(&mut self, samples: &[Sample], norm: &Normalizer) -> Vec<TrainStats> {
        self.fit_with_progress(samples, norm, |_, _| {})
    }

    /// Like [`GanTrainer::fit`] but invoking `progress(epoch, stats)`
    /// after each epoch.
    ///
    /// The configured replica count is honored exactly for every full
    /// batch. The final chunk of an epoch can hold fewer than
    /// `batch_size` samples; if it holds fewer than `replicas`, that
    /// chunk alone trains on one replica per sample, and a one-shot
    /// `gan.replica.mismatch` warning (telemetry event + stderr) records
    /// the divergence — never silently. This cannot change any result:
    /// losses and weights are bitwise invariant in the replica count.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, if `replicas > batch_size` (no
    /// full batch could ever satisfy the request), or (fail-fast) if
    /// any gradient turns NaN/±Inf — the panic message carries the
    /// [`TrainError`] with the offending layer, epoch, and batch.
    pub fn fit_with_progress(
        &mut self,
        samples: &[Sample],
        norm: &Normalizer,
        mut progress: impl FnMut(usize, TrainStats),
    ) -> Vec<TrainStats> {
        assert!(!samples.is_empty(), "training set is empty");
        assert!(
            self.replicas <= self.config.batch_size,
            "replica count {} exceeds batch size {}; no batch can be sharded that wide",
            self.replicas,
            self.config.batch_size
        );
        self.parallelism.install();
        let conditioned = self.generator.config().param_features > 0;
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed ^ 0x6a17);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut history = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            let epoch_start = Instant::now();
            let lr = self.config.lr_at_epoch(epoch);
            // The generator optimizer may still be out on the previous
            // epoch's final background step; land it before retuning
            // the learning rate.
            self.flush_pending_g();
            self.opt_g.set_lr(lr);
            self.opt_d.set_lr(lr);
            order.shuffle(&mut rng);
            let mut sum = TrainStats::default();
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let refs: Vec<&Sample> = chunk.iter().map(|&i| &samples[i]).collect();
                let (input, target, params) = collate(&refs, norm);
                let batch = TrainSample { input, target, params: conditioned.then_some(params) };
                let r_eff = self.replicas.min(chunk.len());
                if r_eff != self.replicas {
                    self.warn_replica_mismatch(r_eff, chunk.len());
                }
                let stats = self
                    .step_with_replicas(&batch, epoch, batches, r_eff)
                    .unwrap_or_else(|e| panic!("GAN training diverged: {e}"));
                sum.d_loss += stats.d_loss;
                sum.g_adv += stats.g_adv;
                sum.g_l1 += stats.g_l1;
                batches += 1;
            }
            let avg = TrainStats {
                d_loss: sum.d_loss / batches as f32,
                g_adv: sum.g_adv / batches as f32,
                g_l1: sum.g_l1 / batches as f32,
            };
            if telemetry::enabled() {
                let secs = epoch_start.elapsed().as_secs_f64().max(1e-9);
                telemetry::event(
                    "gan.epoch",
                    &[
                        ("epoch", (epoch as u64).into()),
                        ("d_loss", f64::from(avg.d_loss).into()),
                        ("g_adv", f64::from(avg.g_adv).into()),
                        ("g_l1", f64::from(avg.g_l1).into()),
                        ("lr", f64::from(lr).into()),
                        ("batches", (batches as u64).into()),
                        ("samples_per_sec", (samples.len() as f64 / secs).into()),
                    ],
                );
            }
            progress(epoch, avg);
            history.push(avg);
            // After one full epoch the GEMM shard-time histogram has
            // enough samples to judge shard balance: derive the conv
            // batch-parallel chunk, refine the GEMM blocking, and size
            // the training pipeline (micro-batch count + optimizer
            // streaming chunk) for the remaining epochs. All no-ops
            // when telemetry is off — the compiled-in defaults stay;
            // either way the numerics are bitwise unchanged, so
            // adopting a tuned micro-batch count mid-fit is safe. An
            // explicit `with_micro_batches` or env override outranks
            // the tuned install (see `resolve_micro_batches`).
            if epoch == 0 {
                let _ = tuning::autotune_conv_chunk(self.parallelism, self.config.batch_size);
                let _ = tuning::autotune_gemm_blocking();
                let _ = tuning::autotune_micro_batches(self.parallelism, self.config.batch_size);
                let _ = tuning::autotune_pipeline_chunk();
            }
        }
        // The last step's generator update is still in flight; land it
        // so callers observe fully-trained weights.
        self.flush_pending_g();
        history
    }

    /// Runs the trained generator in evaluation mode.
    pub fn generate(&mut self, input: &Tensor, params: Option<&Tensor>) -> Tensor {
        self.flush_pending_g();
        self.generator.forward(input, params, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::CacheParams;
    use crate::patchgan::PatchGanConfig;
    use crate::unet::UNetConfig;
    use cachebox_heatmap::Heatmap;

    fn tiny_trainer(epochs: usize, conditioned: bool, seed: u64) -> GanTrainer {
        let mut gc = UNetConfig::for_image_size(8, 4).with_dropout(false);
        if conditioned {
            gc = gc.with_param_features(2);
        }
        let g = UNetGenerator::new(gc, seed);
        let d = PatchGan::new(PatchGanConfig::new(2, 4, 1), seed + 1);
        GanTrainer::new(g, d, TrainConfig { epochs, batch_size: 2, lr: 2e-3, ..Default::default() })
    }

    /// A toy "cache filter": the miss map keeps only the top half of the
    /// access map (rows 0..4), as if lower rows always hit.
    fn toy_samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|k| {
                let mut access = Heatmap::zeros(8, 8);
                let mut miss = Heatmap::zeros(8, 8);
                for col in 0..8 {
                    for row in 0..8 {
                        let v = ((k + col + row) % 4) as f32;
                        access.set(row, col, v);
                        if row < 4 {
                            miss.set(row, col, v);
                        }
                    }
                }
                Sample { access, miss, params: CacheParams::new(64, 12) }
            })
            .collect()
    }

    #[test]
    fn losses_are_finite_and_l1_decreases() {
        let mut trainer = tiny_trainer(12, false, 3);
        let samples = toy_samples(8);
        let norm = Normalizer::new(4);
        let history = trainer.fit(&samples, &norm);
        assert_eq!(history.len(), 12);
        for s in &history {
            assert!(s.d_loss.is_finite() && s.g_adv.is_finite() && s.g_l1.is_finite());
        }
        let first = history[0].g_l1;
        let last = history.last().unwrap().g_l1;
        assert!(last < first, "L1 should fall: {first} -> {last}");
    }

    #[test]
    fn trained_generator_learns_the_toy_filter() {
        let mut trainer = tiny_trainer(40, false, 5);
        let samples = toy_samples(8);
        let norm = Normalizer::new(4);
        trainer.fit(&samples, &norm);
        // Evaluate on a training sample: output should zero the lower
        // half much more than the upper half.
        let x = norm.heatmap_to_tensor(&samples[0].access);
        let y = trainer.generate(&x, None);
        let out = norm.tensor_to_heatmap(&y, 0);
        let top: f32 = (0..4).map(|r| (0..8).map(|c| out.get(r, c)).sum::<f32>()).sum();
        let bottom: f32 = (4..8).map(|r| (0..8).map(|c| out.get(r, c)).sum::<f32>()).sum();
        assert!(bottom < top * 0.6, "lower half should be suppressed: top {top}, bottom {bottom}");
    }

    #[test]
    fn d_batchnorm_stats_match_two_forward_reference() {
        // One train_step must update the discriminator's BatchNorm
        // running statistics exactly as a reference discriminator that
        // sees the real pair once and the fake pair once. The old
        // implementation ran a third train-mode forward on the fake pair
        // purely for generator gradients, double-counting its stats.
        let seed = 33;
        let mut trainer = tiny_trainer(1, false, seed);
        let samples = toy_samples(2);
        let norm = Normalizer::new(4);
        let refs: Vec<&Sample> = samples.iter().collect();
        let (input, target, _params) = collate(&refs, &norm);

        // Same seeds as tiny_trainer → identical initial weights.
        let mut gen_ref =
            UNetGenerator::new(UNetConfig::for_image_size(8, 4).with_dropout(false), seed);
        let mut d_ref = PatchGan::new(PatchGanConfig::new(2, 4, 1), seed + 1);
        let fake = gen_ref.forward(&input, None, true);
        d_ref.forward(&input.concat_channels(&target), true);
        d_ref.forward(&input.concat_channels(&fake), true);

        trainer.train_step(&TrainSample { input, target, params: None }).unwrap();

        let mut expected: Vec<Vec<f32>> = Vec::new();
        d_ref.visit_buffers(&mut |b| expected.push(b.clone()));
        let mut actual: Vec<Vec<f32>> = Vec::new();
        trainer.discriminator.visit_buffers(&mut |b| actual.push(b.clone()));
        assert_eq!(expected.len(), actual.len());
        assert!(
            expected.iter().map(Vec::len).sum::<usize>() > 0,
            "discriminator should expose BatchNorm running stats"
        );
        for (e, a) in expected.iter().zip(&actual) {
            for (x, y) in e.iter().zip(a) {
                assert!((x - y).abs() < 1e-6, "running stats diverge: {x} vs {y}");
            }
        }
    }

    /// Sets the first weight of the first visited parameter to NaN.
    fn poison_generator(trainer: &mut GanTrainer) {
        let mut first = true;
        trainer.generator_mut().visit_params(&mut |p| {
            if first {
                p.value[0] = f32::NAN;
                first = false;
            }
        });
    }

    #[test]
    fn nan_gradient_is_caught_before_the_optimizer_step() {
        let mut trainer = tiny_trainer(1, false, 11);
        // A poisoned generator weight turns the fake image NaN, so the
        // discriminator's fake-side backward is the first to produce
        // non-finite gradients.
        poison_generator(&mut trainer);
        let samples = toy_samples(2);
        let norm = Normalizer::new(4);
        let refs: Vec<&Sample> = samples.iter().collect();
        let (input, target, _params) = collate(&refs, &norm);
        let err =
            trainer.train_step_at(&TrainSample { input, target, params: None }, 3, 7).unwrap_err();
        let TrainError::NonFiniteGrad { epoch, batch, ref layer, norm } = err else {
            panic!("expected NonFiniteGrad, got {err:?}");
        };
        assert_eq!(layer, "discriminator/net/conv2d0");
        assert!(!norm.is_finite(), "offending norm must be non-finite: {norm}");
        assert_eq!((epoch, batch), (3, 7));
        let msg = err.to_string();
        assert!(msg.contains("discriminator/net/conv2d0") && msg.contains("epoch 3"), "{msg}");
    }

    #[test]
    fn oversized_replica_request_is_an_error_not_a_clamp() {
        let samples = toy_samples(2);
        let norm = Normalizer::new(4);
        let refs: Vec<&Sample> = samples.iter().collect();
        let (input, target, _params) = collate(&refs, &norm);
        let batch = TrainSample { input, target, params: None };
        let mut trainer = tiny_trainer(1, false, 19).with_replicas(3);
        let err = trainer.train_step_at(&batch, 1, 2).unwrap_err();
        assert_eq!(
            err,
            TrainError::ReplicaOverflow { epoch: 1, batch: 2, requested: 3, batch_size: 2 }
        );
        let msg = err.to_string();
        assert!(msg.contains("3 replicas") && msg.contains("2 samples"), "{msg}");
        // The refused step must not have touched either network.
        let w = flat_weights(&mut trainer);
        let mut fresh = tiny_trainer(1, false, 19);
        assert_eq!(w, flat_weights(&mut fresh), "refused step mutated weights");
    }

    #[test]
    #[should_panic(expected = "exceeds batch size")]
    fn fit_rejects_more_replicas_than_batch_size() {
        let mut trainer = tiny_trainer(1, false, 23).with_replicas(8); // batch_size is 2
        trainer.fit(&toy_samples(4), &Normalizer::new(4));
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn fit_fails_fast_on_poisoned_weights() {
        let mut trainer = tiny_trainer(1, false, 13);
        poison_generator(&mut trainer);
        trainer.fit(&toy_samples(2), &Normalizer::new(4));
    }

    /// Flattens a trainer's post-step weights (generator then
    /// discriminator) for bitwise comparison.
    fn flat_weights(trainer: &mut GanTrainer) -> Vec<f32> {
        let g_len = UNetAsLayer(trainer.generator_mut()).param_count();
        let mut w = vec![0.0f32; g_len];
        UNetAsLayer(trainer.generator_mut()).read_values_flat(&mut w);
        let d_len = trainer.discriminator.param_count();
        let mut dw = vec![0.0f32; d_len];
        trainer.discriminator.read_values_flat(&mut dw);
        w.extend_from_slice(&dw);
        w
    }

    #[test]
    fn replica_counts_produce_bitwise_identical_steps() {
        let samples = toy_samples(4);
        let norm = Normalizer::new(4);
        let refs: Vec<&Sample> = samples.iter().collect();
        let (input, target, _params) = collate(&refs, &norm);
        let batch = TrainSample { input, target, params: None };
        let counts = [1usize, 2, 3, 4];
        let mut runs = Vec::new();
        for r in counts {
            let mut trainer = tiny_trainer(1, false, 21).with_replicas(r);
            let s1 = trainer.train_step(&batch).unwrap();
            let s2 = trainer.train_step(&batch).unwrap();
            runs.push((s1, s2, flat_weights(&mut trainer)));
        }
        let (s1, s2, w) = &runs[0];
        for (r, (r1, r2, rw)) in runs.iter().enumerate().skip(1) {
            let r_label = counts[r];
            for (a, b) in [(s1, r1), (s2, r2)] {
                assert_eq!(a.d_loss.to_bits(), b.d_loss.to_bits(), "d_loss differs at R={r_label}");
                assert_eq!(a.g_adv.to_bits(), b.g_adv.to_bits(), "g_adv differs at R={r_label}");
                assert_eq!(a.g_l1.to_bits(), b.g_l1.to_bits(), "g_l1 differs at R={r_label}");
            }
            assert_eq!(w.len(), rw.len());
            for (i, (a, b)) in w.iter().zip(rw).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "weight {i} differs at R={r_label}");
            }
        }
    }

    #[test]
    fn micro_batch_counts_produce_bitwise_identical_steps() {
        let samples = toy_samples(4);
        let norm = Normalizer::new(4);
        let refs: Vec<&Sample> = samples.iter().collect();
        let (input, target, _params) = collate(&refs, &norm);
        let batch = TrainSample { input, target, params: None };
        let mut runs = Vec::new();
        for m in [1usize, 2, 3, 4] {
            let mut trainer = tiny_trainer(1, false, 27).with_micro_batches(m);
            let s1 = trainer.train_step(&batch).unwrap();
            let s2 = trainer.train_step(&batch).unwrap();
            runs.push((s1, s2, flat_weights(&mut trainer)));
        }
        // The joint micro-batch × replica refinement must also match.
        let mut joint = tiny_trainer(1, false, 27).with_micro_batches(2).with_replicas(2);
        let j1 = joint.train_step(&batch).unwrap();
        let j2 = joint.train_step(&batch).unwrap();
        runs.push((j1, j2, flat_weights(&mut joint)));
        let labels = ["M=2", "M=3", "M=4", "R=2 M=2"];
        let (s1, s2, w) = &runs[0];
        for (label, (r1, r2, rw)) in labels.iter().zip(runs.iter().skip(1)) {
            for (a, b) in [(s1, r1), (s2, r2)] {
                assert_eq!(a.d_loss.to_bits(), b.d_loss.to_bits(), "d_loss differs at {label}");
                assert_eq!(a.g_adv.to_bits(), b.g_adv.to_bits(), "g_adv differs at {label}");
                assert_eq!(a.g_l1.to_bits(), b.g_l1.to_bits(), "g_l1 differs at {label}");
            }
            assert_eq!(w.len(), rw.len());
            for (i, (a, b)) in w.iter().zip(rw).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "weight {i} differs at {label}");
            }
        }
    }

    #[test]
    fn oversized_micro_batch_request_clamps_and_matches() {
        // Unlike the replica count (a capacity contract), the
        // micro-batch count is a scheduling hint: M > batch clamps to
        // one sample per micro-batch and changes nothing bitwise.
        let samples = toy_samples(2);
        let norm = Normalizer::new(4);
        let refs: Vec<&Sample> = samples.iter().collect();
        let (input, target, _params) = collate(&refs, &norm);
        let batch = TrainSample { input, target, params: None };
        let mut base = tiny_trainer(1, false, 29);
        let b = base.train_step(&batch).unwrap();
        let mut wide = tiny_trainer(1, false, 29).with_micro_batches(16);
        assert_eq!(wide.micro_batches(), 16);
        let w = wide.train_step(&batch).unwrap();
        assert_eq!(b.d_loss.to_bits(), w.d_loss.to_bits());
        assert_eq!(b.g_l1.to_bits(), w.g_l1.to_bits());
        assert_eq!(flat_weights(&mut base), flat_weights(&mut wide));
    }

    #[test]
    fn one_optimizer_step_and_heartbeat_unit_per_batch_under_micro_batching() {
        let samples = toy_samples(4);
        let norm = Normalizer::new(4);
        let refs: Vec<&Sample> = samples.iter().collect();
        let (input, target, _params) = collate(&refs, &norm);
        let batch = TrainSample { input, target, params: None };
        let mut trainer = tiny_trainer(1, false, 31).with_micro_batches(3);
        assert_eq!(trainer.step_counter, 0);
        trainer.train_step(&batch).unwrap();
        assert_eq!(trainer.step_counter, 1, "micro-batches must not multiply optimizer steps");
        trainer.train_step(&batch).unwrap();
        assert_eq!(trainer.step_counter, 2);
        // The heartbeat cadence keys off the same counter, so M > 1
        // cannot emit more than one heartbeat per optimizer step.
        let ratio = trainer.last_overlap_ratio();
        assert!((0.0..=1.0).contains(&ratio), "overlap ratio out of range: {ratio}");
    }

    #[test]
    #[should_panic(expected = "micro-batch count must be non-zero")]
    fn zero_micro_batches_is_rejected() {
        let _ = tiny_trainer(1, false, 1).with_micro_batches(0);
    }

    #[test]
    fn conditioned_training_runs() {
        let mut trainer = tiny_trainer(2, true, 7);
        let samples = toy_samples(4);
        let norm = Normalizer::new(4);
        let history = trainer.fit(&samples, &norm);
        assert_eq!(history.len(), 2);
    }

    #[test]
    fn progress_callback_fires_per_epoch() {
        let mut trainer = tiny_trainer(3, false, 9);
        let samples = toy_samples(4);
        let mut calls = 0;
        trainer.fit_with_progress(&samples, &Normalizer::new(4), |_, _| calls += 1);
        assert_eq!(calls, 3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn fit_rejects_empty_dataset() {
        tiny_trainer(1, false, 1).fit(&[], &Normalizer::new(4));
    }

    #[test]
    fn lr_decays_linearly_after_threshold() {
        let config = TrainConfig { epochs: 10, lr: 1.0, decay_after: 0.5, ..Default::default() };
        assert_eq!(config.lr_at_epoch(0), 1.0);
        assert_eq!(config.lr_at_epoch(4), 1.0);
        let mid = config.lr_at_epoch(7);
        let late = config.lr_at_epoch(9);
        assert!(mid < 1.0, "decay must have begun: {mid}");
        assert!(late < mid, "decay must be monotone: {late} vs {mid}");
        assert!(late > 0.0, "rate must stay positive for Adam");
    }

    #[test]
    fn decay_disabled_with_threshold_one() {
        let config = TrainConfig { epochs: 10, lr: 0.5, decay_after: 1.0, ..Default::default() };
        for epoch in 0..10 {
            assert_eq!(config.lr_at_epoch(epoch), 0.5);
        }
    }
}
