//! Batched inference over heatmap sequences (RQ5).
//!
//! Inference over a benchmark means generating one synthetic miss
//! heatmap per access heatmap. Processing `batch_size` images per
//! generator call amortizes the per-call costs (buffer allocation,
//! weight repacking, dispatch) — the same mechanism that gives the
//! paper's 2.4× GPU speedup at batch 32, reproduced here on CPU.

use crate::condition::CacheParams;
use crate::data::Normalizer;
use crate::unet::{UNetAsLayer, UNetConfig, UNetGenerator};
use cachebox_heatmap::Heatmap;
use cachebox_nn::layers::Layer;
use cachebox_nn::Tensor;
use std::sync::{Arc, RwLock};

/// A frozen, shareable snapshot of a trained generator: the
/// architecture plus one flat read-only weight arena and one flat
/// buffer arena (batch-norm running statistics).
///
/// A `FrozenGenerator` is `Sync`, so any number of inference workers
/// can borrow one frozen copy and [`thaw`](FrozenGenerator::thaw)
/// cheap working models from it — each thaw is two flat memcpys into a
/// freshly built model, with no serialization or name matching
/// involved (contrast with a `Checkpoint`, which is the durable
/// on-disk form).
///
/// # Example
///
/// ```
/// use cachebox_gan::{infer::FrozenGenerator, UNetConfig, UNetGenerator};
/// use cachebox_nn::Tensor;
///
/// let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 7);
/// let frozen = FrozenGenerator::of(&mut g);
/// let mut copy = frozen.thaw();
/// let x = Tensor::zeros([1, 1, 8, 8]);
/// assert_eq!(g.forward(&x, None, false), copy.forward(&x, None, false));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenGenerator {
    config: UNetConfig,
    seed: u64,
    values: Vec<f32>,
    buffers: Vec<f32>,
}

impl FrozenGenerator {
    /// Freezes the generator's current weights and buffers into flat
    /// arenas (the generator itself is untouched).
    pub fn of(generator: &mut UNetGenerator) -> Self {
        let config = *generator.config();
        let seed = generator.init_seed();
        let mut layer = UNetAsLayer(generator);
        let mut values = vec![0.0f32; layer.param_count()];
        layer.read_values_flat(&mut values);
        let mut buffers = vec![0.0f32; layer.buffer_scalar_count()];
        layer.read_buffers_flat(&mut buffers);
        FrozenGenerator { config, seed, values, buffers }
    }

    /// The frozen architecture.
    pub fn config(&self) -> &UNetConfig {
        &self.config
    }

    /// Builds a mutable working copy from the frozen arenas.
    pub fn thaw(&self) -> UNetGenerator {
        let mut generator = UNetGenerator::new(self.config, self.seed);
        let mut layer = UNetAsLayer(&mut generator);
        layer.write_values_flat(&self.values);
        layer.write_buffers_flat(&self.buffers);
        generator
    }

    /// A 64-bit fingerprint of the frozen arenas: an FNV-1a fold over
    /// the raw weight and buffer bits (plus the architecture's init
    /// seed). Two frozen generators with bitwise-identical weights have
    /// equal fingerprints; any single flipped weight bit changes it.
    /// The evaluation service echoes this in every response so a client
    /// (and the mixed-arena stress test) can tell exactly which arena
    /// answered.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut fold = |bits: u64| {
            h ^= bits;
            h = h.wrapping_mul(PRIME);
        };
        fold(self.seed);
        fold(self.values.len() as u64);
        for v in self.values.iter().chain(&self.buffers) {
            fold(v.to_bits() as u64);
        }
        h
    }
}

/// One installed generation of frozen weights: the arena itself plus a
/// monotonically increasing epoch number and the arena's
/// [`fingerprint`](FrozenGenerator::fingerprint), computed once at
/// install time.
#[derive(Debug)]
pub struct FrozenEpoch {
    /// The shared read-only weight arena.
    pub generator: FrozenGenerator,
    /// Install generation: 0 for the boot arena, +1 per swap.
    pub epoch: u64,
    /// [`FrozenGenerator::fingerprint`] of the arena.
    pub fingerprint: u64,
}

/// An atomically swappable [`FrozenGenerator`] arena (ArcSwap-style
/// epoch pointer, built on `RwLock<Arc<_>>` so no external crate is
/// needed).
///
/// Readers call [`load`](ArenaSwap::load) to take a cheap `Arc` clone of
/// the current [`FrozenEpoch`] and then work against that snapshot for
/// as long as they like; [`install`](ArenaSwap::install) replaces the
/// pointer *between* loads, so in-flight inference on the old arena
/// finishes untorn — the old `Arc` stays alive until its last reader
/// drops it. The lock is held only for the pointer clone/replace, never
/// across inference.
///
/// # Example
///
/// ```
/// use cachebox_gan::infer::{ArenaSwap, FrozenGenerator};
/// use cachebox_gan::{UNetConfig, UNetGenerator};
///
/// let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 7);
/// let swap = ArenaSwap::new(FrozenGenerator::of(&mut g));
/// let before = swap.load();
/// let mut h = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 8);
/// swap.install(FrozenGenerator::of(&mut h));
/// let after = swap.load();
/// assert_eq!(before.epoch + 1, after.epoch);
/// assert_ne!(before.fingerprint, after.fingerprint);
/// // `before` still resolves the old arena — nothing tore.
/// assert_eq!(before.generator.fingerprint(), before.fingerprint);
/// ```
#[derive(Debug)]
pub struct ArenaSwap {
    current: RwLock<Arc<FrozenEpoch>>,
}

impl ArenaSwap {
    /// Installs `generator` as epoch 0.
    pub fn new(generator: FrozenGenerator) -> Self {
        let fingerprint = generator.fingerprint();
        ArenaSwap {
            current: RwLock::new(Arc::new(FrozenEpoch { generator, epoch: 0, fingerprint })),
        }
    }

    /// The current epoch snapshot. The returned `Arc` keeps its arena
    /// alive across any subsequent [`install`](ArenaSwap::install), so a
    /// worker that loads once per request can never observe a mix of
    /// two arenas.
    pub fn load(&self) -> Arc<FrozenEpoch> {
        Arc::clone(&self.current.read().expect("arena lock poisoned"))
    }

    /// Atomically replaces the arena, returning the new epoch snapshot.
    /// Loads racing the install observe either the old or the new arena
    /// in full, never a blend.
    pub fn install(&self, generator: FrozenGenerator) -> Arc<FrozenEpoch> {
        let fingerprint = generator.fingerprint();
        let mut slot = self.current.write().expect("arena lock poisoned");
        let next = Arc::new(FrozenEpoch { generator, epoch: slot.epoch + 1, fingerprint });
        *slot = Arc::clone(&next);
        next
    }
}

/// Generates synthetic miss heatmaps for every access heatmap, in order,
/// processing `batch_size` images per forward pass.
///
/// # Panics
///
/// Panics if `access_maps` is empty or `batch_size` is zero.
///
/// # Example
///
/// ```
/// use cachebox_gan::{infer::infer_batched, CacheParams, UNetConfig, UNetGenerator};
/// use cachebox_gan::data::Normalizer;
/// use cachebox_heatmap::Heatmap;
///
/// let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 0);
/// let maps = vec![Heatmap::zeros(8, 8); 5];
/// let norm = Normalizer::new(4);
/// let out = infer_batched(&mut g, &maps, None, &norm, 2);
/// assert_eq!(out.len(), 5);
/// ```
pub fn infer_batched(
    generator: &mut UNetGenerator,
    access_maps: &[Heatmap],
    params: Option<CacheParams>,
    norm: &Normalizer,
    batch_size: usize,
) -> Vec<Heatmap> {
    assert!(!access_maps.is_empty(), "no heatmaps to infer");
    assert!(batch_size > 0, "batch size must be non-zero");
    let mut out = Vec::with_capacity(access_maps.len());
    for chunk in access_maps.chunks(batch_size) {
        let refs: Vec<&Heatmap> = chunk.iter().collect();
        let input = norm.heatmaps_to_batch(&refs);
        let param_batch: Option<Tensor> = params.map(|p| p.batch(chunk.len()));
        let y = generator.forward(&input, param_batch.as_ref(), false);
        for i in 0..chunk.len() {
            out.push(norm.tensor_to_heatmap(&y, i));
        }
    }
    out
}

/// Multi-worker inference: splits the heatmap sequence across `workers`
/// threads, each thawing its own working copy from one shared
/// [`FrozenGenerator`] arena. Output order matches the input order.
///
/// On a multi-core host this parallelizes across images the same way the
/// paper's GPU batching parallelizes within a batch; on a single core it
/// degrades gracefully to sequential throughput.
///
/// # Panics
///
/// Panics if `access_maps` is empty or `workers`/`batch_size` is zero.
///
/// # Errors
///
/// Returns an error if a worker thread panics.
pub fn infer_parallel(
    generator: &mut UNetGenerator,
    access_maps: &[Heatmap],
    params: Option<CacheParams>,
    norm: &Normalizer,
    batch_size: usize,
    workers: usize,
) -> Result<Vec<Heatmap>, String> {
    assert!(!access_maps.is_empty(), "no heatmaps to infer");
    assert!(batch_size > 0, "batch size must be non-zero");
    assert!(workers > 0, "worker count must be non-zero");
    if workers == 1 {
        return Ok(infer_batched(generator, access_maps, params, norm, batch_size));
    }
    let frozen = FrozenGenerator::of(generator);
    infer_parallel_frozen(&frozen, access_maps, params, norm, batch_size, workers)
}

/// The balanced partition [`infer_parallel_frozen`] uses to honor the
/// requested worker count — now shared workspace-wide from
/// `cachebox_nn::parallel` so `par_map` (and through it
/// `evaluate_sweep`) shards with the same arithmetic instead of
/// duplicating it. Re-exported here for the existing callers.
pub use cachebox_nn::parallel::balanced_splits;

/// [`infer_parallel`] over an already-frozen generator: every worker
/// borrows the shared read-only arena and thaws a local model.
///
/// The input is split into exactly `min(workers, len)` contiguous
/// shards with per-worker load within ±1 heatmap
/// ([`balanced_splits`]); output order matches input order.
///
/// # Panics
///
/// Panics if `access_maps` is empty or `workers`/`batch_size` is zero.
///
/// # Errors
///
/// Returns an error if a worker thread panics.
pub fn infer_parallel_frozen(
    frozen: &FrozenGenerator,
    access_maps: &[Heatmap],
    params: Option<CacheParams>,
    norm: &Normalizer,
    batch_size: usize,
    workers: usize,
) -> Result<Vec<Heatmap>, String> {
    assert!(!access_maps.is_empty(), "no heatmaps to infer");
    assert!(batch_size > 0, "batch size must be non-zero");
    assert!(workers > 0, "worker count must be non-zero");
    let chunks: Vec<&[Heatmap]> = balanced_splits(access_maps.len(), workers)
        .into_iter()
        .map(|(lo, hi)| &access_maps[lo..hi])
        .collect();
    let norm = *norm;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move |_| -> Vec<Heatmap> {
                    let mut local = frozen.thaw();
                    infer_batched(&mut local, chunk, params, &norm, batch_size)
                })
            })
            .collect();
        let mut out = Vec::with_capacity(access_maps.len());
        for handle in handles {
            out.extend(handle.join().map_err(|_| "worker thread panicked".to_string())?);
        }
        Ok(out)
    })
    .map_err(|_| "inference scope panicked".to_string())?
}

/// Timing result of one batched-inference run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceTiming {
    /// Batch size used.
    pub batch_size: usize,
    /// Total wall-clock time for all images.
    pub total: std::time::Duration,
    /// Images processed.
    pub images: usize,
}

impl InferenceTiming {
    /// Average time per image.
    pub fn per_image(&self) -> std::time::Duration {
        self.total / self.images.max(1) as u32
    }
}

/// Runs [`infer_batched`] and measures wall-clock time (the Fig. 11
/// harness).
pub fn timed_inference(
    generator: &mut UNetGenerator,
    access_maps: &[Heatmap],
    params: Option<CacheParams>,
    norm: &Normalizer,
    batch_size: usize,
) -> (Vec<Heatmap>, InferenceTiming) {
    let start = std::time::Instant::now();
    let out = infer_batched(generator, access_maps, params, norm, batch_size);
    let total = start.elapsed();
    (out, InferenceTiming { batch_size, total, images: access_maps.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unet::UNetConfig;

    fn maps(n: usize) -> Vec<Heatmap> {
        (0..n)
            .map(|k| {
                let mut h = Heatmap::zeros(8, 8);
                h.set(k % 8, (k * 3) % 8, 2.0);
                h
            })
            .collect()
    }

    #[test]
    fn batched_matches_sequential() {
        // Same model, same inputs: output must not depend on batch size
        // (dropout disabled; batch norm in eval mode uses running stats).
        let config = UNetConfig::for_image_size(8, 4).with_dropout(false);
        let mut g = UNetGenerator::new(config, 4);
        let norm = Normalizer::new(4);
        let inputs = maps(6);
        let seq = infer_batched(&mut g, &inputs, None, &norm, 1);
        let batched = infer_batched(&mut g, &inputs, None, &norm, 3);
        assert_eq!(seq.len(), batched.len());
        for (a, b) in seq.iter().zip(&batched) {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-5, "batching changed the output");
            }
        }
    }

    #[test]
    fn conditioned_inference() {
        let config = UNetConfig::for_image_size(8, 2).with_param_features(2);
        let mut g = UNetGenerator::new(config, 1);
        let out =
            infer_batched(&mut g, &maps(3), Some(CacheParams::new(64, 12)), &Normalizer::new(4), 2);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn ragged_final_batch() {
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 1);
        let out = infer_batched(&mut g, &maps(7), None, &Normalizer::new(4), 4);
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn timing_reports_counts() {
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 1);
        let (out, t) = timed_inference(&mut g, &maps(4), None, &Normalizer::new(4), 2);
        assert_eq!(out.len(), 4);
        assert_eq!(t.images, 4);
        assert_eq!(t.batch_size, 2);
        assert!(t.per_image() <= t.total);
    }

    #[test]
    #[should_panic(expected = "no heatmaps")]
    fn rejects_empty_input() {
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 1);
        infer_batched(&mut g, &[], None, &Normalizer::new(4), 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let config = UNetConfig::for_image_size(8, 4).with_dropout(false);
        let mut g = UNetGenerator::new(config, 6);
        let norm = Normalizer::new(4);
        let inputs = maps(9);
        let seq = infer_batched(&mut g, &inputs, None, &norm, 2);
        let par = infer_parallel(&mut g, &inputs, None, &norm, 2, 3).unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-5, "parallel output diverged");
            }
        }
    }

    #[test]
    fn frozen_generator_thaws_bit_exact() {
        let config = UNetConfig::for_image_size(8, 4).with_dropout(false);
        let mut g = UNetGenerator::new(config, 8);
        // Train-mode forward first so the batch-norm running statistics
        // are non-trivial and must survive the freeze/thaw round trip.
        g.forward(&Tensor::full([2, 1, 8, 8], 0.5), None, true);
        let frozen = FrozenGenerator::of(&mut g);
        let mut copy = frozen.thaw();
        let x =
            Tensor::from_vec([1, 1, 8, 8], (0..64).map(|i| (i % 5) as f32 / 2.0 - 1.0).collect());
        assert_eq!(g.forward(&x, None, false), copy.forward(&x, None, false));
    }

    #[test]
    fn frozen_parallel_matches_sequential() {
        let config = UNetConfig::for_image_size(8, 4).with_dropout(false);
        let mut g = UNetGenerator::new(config, 6);
        let norm = Normalizer::new(4);
        let inputs = maps(9);
        let seq = infer_batched(&mut g, &inputs, None, &norm, 2);
        let frozen = FrozenGenerator::of(&mut g);
        let par = infer_parallel_frozen(&frozen, &inputs, None, &norm, 2, 3).unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-5, "frozen parallel output diverged");
            }
        }
    }

    #[test]
    fn balanced_splits_honor_worker_count_within_one() {
        // The regression shape: 9 items over 4 workers used to collapse
        // to 3 chunks of 3. It must be 4 shards of sizes [3, 2, 2, 2].
        assert_eq!(balanced_splits(9, 4), vec![(0, 3), (3, 5), (5, 7), (7, 9)]);
        for len in 1..=20usize {
            for parts in 1..=8usize {
                let splits = balanced_splits(len, parts);
                assert_eq!(splits.len(), parts.min(len), "len={len} parts={parts}");
                assert_eq!(splits[0].0, 0);
                assert_eq!(splits.last().unwrap().1, len);
                let sizes: Vec<usize> = splits.iter().map(|(lo, hi)| hi - lo).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(*min > 0, "empty shard at len={len} parts={parts}");
                assert!(max - min <= 1, "unbalanced {sizes:?} at len={len} parts={parts}");
                for w in splits.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "shards must be contiguous, in order");
                }
            }
        }
    }

    #[test]
    fn frozen_parallel_preserves_order_at_ragged_worker_counts() {
        // Each input heatmap carries a distinct marker value, so any
        // cross-worker reordering or dropped tail is caught exactly.
        let config = UNetConfig::for_image_size(8, 4).with_dropout(false);
        let mut g = UNetGenerator::new(config, 9);
        let norm = Normalizer::new(4);
        let inputs: Vec<Heatmap> = (0..9)
            .map(|k| {
                let mut h = Heatmap::zeros(8, 8);
                h.set(k % 8, k % 8, 1.0 + k as f32 * 0.25);
                h
            })
            .collect();
        let seq = infer_batched(&mut g, &inputs, None, &norm, 2);
        let frozen = FrozenGenerator::of(&mut g);
        for workers in [2usize, 4, 5, 9, 16] {
            let par = infer_parallel_frozen(&frozen, &inputs, None, &norm, 2, workers).unwrap();
            assert_eq!(seq.len(), par.len(), "workers={workers}");
            for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
                for (x, y) in a.data().iter().zip(b.data()) {
                    assert!((x - y).abs() < 1e-5, "output {i} diverged at workers={workers}");
                }
            }
        }
    }

    #[test]
    fn parallel_with_one_worker_is_sequential_path() {
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 1);
        let out = infer_parallel(&mut g, &maps(3), None, &Normalizer::new(4), 2, 1).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn fingerprint_tracks_weight_bits() {
        let config = UNetConfig::for_image_size(8, 2);
        let mut g = UNetGenerator::new(config, 3);
        let a = FrozenGenerator::of(&mut g);
        // Deterministic and stable across repeated freezes.
        assert_eq!(a.fingerprint(), FrozenGenerator::of(&mut g).fingerprint());
        // A different seed (different weights) changes it.
        let mut h = UNetGenerator::new(config, 4);
        assert_ne!(a.fingerprint(), FrozenGenerator::of(&mut h).fingerprint());
        // A single flipped weight bit changes it.
        let mut b = a.clone();
        b.values[0] = f32::from_bits(b.values[0].to_bits() ^ 1);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn arena_swap_bumps_epoch_and_keeps_old_readers_whole() {
        let config = UNetConfig::for_image_size(8, 2).with_dropout(false);
        let mut g = UNetGenerator::new(config, 1);
        let swap = ArenaSwap::new(FrozenGenerator::of(&mut g));
        let old = swap.load();
        assert_eq!(old.epoch, 0);
        let mut h = UNetGenerator::new(config, 2);
        let new = swap.install(FrozenGenerator::of(&mut h));
        assert_eq!(new.epoch, 1);
        assert_eq!(swap.load().fingerprint, new.fingerprint);
        // The old snapshot still thaws the old weights bit-exactly.
        let x = Tensor::zeros([1, 1, 8, 8]);
        let mut old_copy = old.generator.thaw();
        assert_eq!(g.forward(&x, None, false), old_copy.forward(&x, None, false));
    }

    /// The serve-crate contract: hammer inference from N workers while
    /// another thread swaps arenas in a loop. Every inference loads the
    /// epoch pointer once, so its output must match the arena named by
    /// the snapshot's fingerprint exactly — a mixed-arena inference
    /// (some layers from the old weights, some from the new) would
    /// produce a third output and fail the lookup.
    #[test]
    fn arena_swap_never_tears_under_concurrent_load() {
        let config = UNetConfig::for_image_size(8, 4).with_dropout(false);
        let norm = Normalizer::new(4);
        let inputs = maps(2);
        let mut frozen = Vec::new();
        let mut expected = std::collections::HashMap::new();
        for seed in [11u64, 22] {
            let mut g = UNetGenerator::new(config, seed);
            let f = FrozenGenerator::of(&mut g);
            let out = infer_batched(&mut g, &inputs, None, &norm, 2);
            expected.insert(f.fingerprint(), out);
            frozen.push(f);
        }
        let swap = ArenaSwap::new(frozen[0].clone());
        let stop = std::sync::atomic::AtomicBool::new(false);
        crossbeam::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|_| {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let epoch = swap.load();
                        assert_eq!(epoch.generator.fingerprint(), epoch.fingerprint);
                        let mut local = epoch.generator.thaw();
                        let out = infer_batched(&mut local, &inputs, None, &norm, 2);
                        assert_eq!(
                            &out, &expected[&epoch.fingerprint],
                            "inference mixed arenas at epoch {}",
                            epoch.epoch
                        );
                    }
                });
            }
            for round in 0..20 {
                let snap = swap.install(frozen[(round + 1) % 2].clone());
                assert_eq!(snap.epoch, round as u64 + 1);
                std::thread::yield_now();
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        })
        .expect("stress scope panicked");
    }
}
