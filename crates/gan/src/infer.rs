//! Batched inference over heatmap sequences (RQ5).
//!
//! Inference over a benchmark means generating one synthetic miss
//! heatmap per access heatmap. Processing `batch_size` images per
//! generator call amortizes the per-call costs (buffer allocation,
//! weight repacking, dispatch) — the same mechanism that gives the
//! paper's 2.4× GPU speedup at batch 32, reproduced here on CPU.

use crate::condition::CacheParams;
use crate::data::Normalizer;
use crate::unet::{UNetAsLayer, UNetConfig, UNetGenerator};
use cachebox_heatmap::Heatmap;
use cachebox_nn::layers::Layer;
use cachebox_nn::Tensor;

/// A frozen, shareable snapshot of a trained generator: the
/// architecture plus one flat read-only weight arena and one flat
/// buffer arena (batch-norm running statistics).
///
/// A `FrozenGenerator` is `Sync`, so any number of inference workers
/// can borrow one frozen copy and [`thaw`](FrozenGenerator::thaw)
/// cheap working models from it — each thaw is two flat memcpys into a
/// freshly built model, with no serialization or name matching
/// involved (contrast with a `Checkpoint`, which is the durable
/// on-disk form).
///
/// # Example
///
/// ```
/// use cachebox_gan::{infer::FrozenGenerator, UNetConfig, UNetGenerator};
/// use cachebox_nn::Tensor;
///
/// let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 7);
/// let frozen = FrozenGenerator::of(&mut g);
/// let mut copy = frozen.thaw();
/// let x = Tensor::zeros([1, 1, 8, 8]);
/// assert_eq!(g.forward(&x, None, false), copy.forward(&x, None, false));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenGenerator {
    config: UNetConfig,
    seed: u64,
    values: Vec<f32>,
    buffers: Vec<f32>,
}

impl FrozenGenerator {
    /// Freezes the generator's current weights and buffers into flat
    /// arenas (the generator itself is untouched).
    pub fn of(generator: &mut UNetGenerator) -> Self {
        let config = *generator.config();
        let seed = generator.init_seed();
        let mut layer = UNetAsLayer(generator);
        let mut values = vec![0.0f32; layer.param_count()];
        layer.read_values_flat(&mut values);
        let mut buffers = vec![0.0f32; layer.buffer_scalar_count()];
        layer.read_buffers_flat(&mut buffers);
        FrozenGenerator { config, seed, values, buffers }
    }

    /// The frozen architecture.
    pub fn config(&self) -> &UNetConfig {
        &self.config
    }

    /// Builds a mutable working copy from the frozen arenas.
    pub fn thaw(&self) -> UNetGenerator {
        let mut generator = UNetGenerator::new(self.config, self.seed);
        let mut layer = UNetAsLayer(&mut generator);
        layer.write_values_flat(&self.values);
        layer.write_buffers_flat(&self.buffers);
        generator
    }
}

/// Generates synthetic miss heatmaps for every access heatmap, in order,
/// processing `batch_size` images per forward pass.
///
/// # Panics
///
/// Panics if `access_maps` is empty or `batch_size` is zero.
///
/// # Example
///
/// ```
/// use cachebox_gan::{infer::infer_batched, CacheParams, UNetConfig, UNetGenerator};
/// use cachebox_gan::data::Normalizer;
/// use cachebox_heatmap::Heatmap;
///
/// let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 0);
/// let maps = vec![Heatmap::zeros(8, 8); 5];
/// let norm = Normalizer::new(4);
/// let out = infer_batched(&mut g, &maps, None, &norm, 2);
/// assert_eq!(out.len(), 5);
/// ```
pub fn infer_batched(
    generator: &mut UNetGenerator,
    access_maps: &[Heatmap],
    params: Option<CacheParams>,
    norm: &Normalizer,
    batch_size: usize,
) -> Vec<Heatmap> {
    assert!(!access_maps.is_empty(), "no heatmaps to infer");
    assert!(batch_size > 0, "batch size must be non-zero");
    let mut out = Vec::with_capacity(access_maps.len());
    for chunk in access_maps.chunks(batch_size) {
        let refs: Vec<&Heatmap> = chunk.iter().collect();
        let input = norm.heatmaps_to_batch(&refs);
        let param_batch: Option<Tensor> = params.map(|p| p.batch(chunk.len()));
        let y = generator.forward(&input, param_batch.as_ref(), false);
        for i in 0..chunk.len() {
            out.push(norm.tensor_to_heatmap(&y, i));
        }
    }
    out
}

/// Multi-worker inference: splits the heatmap sequence across `workers`
/// threads, each thawing its own working copy from one shared
/// [`FrozenGenerator`] arena. Output order matches the input order.
///
/// On a multi-core host this parallelizes across images the same way the
/// paper's GPU batching parallelizes within a batch; on a single core it
/// degrades gracefully to sequential throughput.
///
/// # Panics
///
/// Panics if `access_maps` is empty or `workers`/`batch_size` is zero.
///
/// # Errors
///
/// Returns an error if a worker thread panics.
pub fn infer_parallel(
    generator: &mut UNetGenerator,
    access_maps: &[Heatmap],
    params: Option<CacheParams>,
    norm: &Normalizer,
    batch_size: usize,
    workers: usize,
) -> Result<Vec<Heatmap>, String> {
    assert!(!access_maps.is_empty(), "no heatmaps to infer");
    assert!(batch_size > 0, "batch size must be non-zero");
    assert!(workers > 0, "worker count must be non-zero");
    if workers == 1 {
        return Ok(infer_batched(generator, access_maps, params, norm, batch_size));
    }
    let frozen = FrozenGenerator::of(generator);
    infer_parallel_frozen(&frozen, access_maps, params, norm, batch_size, workers)
}

/// The balanced partition [`infer_parallel_frozen`] uses to honor the
/// requested worker count — now shared workspace-wide from
/// `cachebox_nn::parallel` so `par_map` (and through it
/// `evaluate_sweep`) shards with the same arithmetic instead of
/// duplicating it. Re-exported here for the existing callers.
pub use cachebox_nn::parallel::balanced_splits;

/// [`infer_parallel`] over an already-frozen generator: every worker
/// borrows the shared read-only arena and thaws a local model.
///
/// The input is split into exactly `min(workers, len)` contiguous
/// shards with per-worker load within ±1 heatmap
/// ([`balanced_splits`]); output order matches input order.
///
/// # Panics
///
/// Panics if `access_maps` is empty or `workers`/`batch_size` is zero.
///
/// # Errors
///
/// Returns an error if a worker thread panics.
pub fn infer_parallel_frozen(
    frozen: &FrozenGenerator,
    access_maps: &[Heatmap],
    params: Option<CacheParams>,
    norm: &Normalizer,
    batch_size: usize,
    workers: usize,
) -> Result<Vec<Heatmap>, String> {
    assert!(!access_maps.is_empty(), "no heatmaps to infer");
    assert!(batch_size > 0, "batch size must be non-zero");
    assert!(workers > 0, "worker count must be non-zero");
    let chunks: Vec<&[Heatmap]> = balanced_splits(access_maps.len(), workers)
        .into_iter()
        .map(|(lo, hi)| &access_maps[lo..hi])
        .collect();
    let norm = *norm;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move |_| -> Vec<Heatmap> {
                    let mut local = frozen.thaw();
                    infer_batched(&mut local, chunk, params, &norm, batch_size)
                })
            })
            .collect();
        let mut out = Vec::with_capacity(access_maps.len());
        for handle in handles {
            out.extend(handle.join().map_err(|_| "worker thread panicked".to_string())?);
        }
        Ok(out)
    })
    .map_err(|_| "inference scope panicked".to_string())?
}

/// Timing result of one batched-inference run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceTiming {
    /// Batch size used.
    pub batch_size: usize,
    /// Total wall-clock time for all images.
    pub total: std::time::Duration,
    /// Images processed.
    pub images: usize,
}

impl InferenceTiming {
    /// Average time per image.
    pub fn per_image(&self) -> std::time::Duration {
        self.total / self.images.max(1) as u32
    }
}

/// Runs [`infer_batched`] and measures wall-clock time (the Fig. 11
/// harness).
pub fn timed_inference(
    generator: &mut UNetGenerator,
    access_maps: &[Heatmap],
    params: Option<CacheParams>,
    norm: &Normalizer,
    batch_size: usize,
) -> (Vec<Heatmap>, InferenceTiming) {
    let start = std::time::Instant::now();
    let out = infer_batched(generator, access_maps, params, norm, batch_size);
    let total = start.elapsed();
    (out, InferenceTiming { batch_size, total, images: access_maps.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unet::UNetConfig;

    fn maps(n: usize) -> Vec<Heatmap> {
        (0..n)
            .map(|k| {
                let mut h = Heatmap::zeros(8, 8);
                h.set(k % 8, (k * 3) % 8, 2.0);
                h
            })
            .collect()
    }

    #[test]
    fn batched_matches_sequential() {
        // Same model, same inputs: output must not depend on batch size
        // (dropout disabled; batch norm in eval mode uses running stats).
        let config = UNetConfig::for_image_size(8, 4).with_dropout(false);
        let mut g = UNetGenerator::new(config, 4);
        let norm = Normalizer::new(4);
        let inputs = maps(6);
        let seq = infer_batched(&mut g, &inputs, None, &norm, 1);
        let batched = infer_batched(&mut g, &inputs, None, &norm, 3);
        assert_eq!(seq.len(), batched.len());
        for (a, b) in seq.iter().zip(&batched) {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-5, "batching changed the output");
            }
        }
    }

    #[test]
    fn conditioned_inference() {
        let config = UNetConfig::for_image_size(8, 2).with_param_features(2);
        let mut g = UNetGenerator::new(config, 1);
        let out =
            infer_batched(&mut g, &maps(3), Some(CacheParams::new(64, 12)), &Normalizer::new(4), 2);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn ragged_final_batch() {
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 1);
        let out = infer_batched(&mut g, &maps(7), None, &Normalizer::new(4), 4);
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn timing_reports_counts() {
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 1);
        let (out, t) = timed_inference(&mut g, &maps(4), None, &Normalizer::new(4), 2);
        assert_eq!(out.len(), 4);
        assert_eq!(t.images, 4);
        assert_eq!(t.batch_size, 2);
        assert!(t.per_image() <= t.total);
    }

    #[test]
    #[should_panic(expected = "no heatmaps")]
    fn rejects_empty_input() {
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 1);
        infer_batched(&mut g, &[], None, &Normalizer::new(4), 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let config = UNetConfig::for_image_size(8, 4).with_dropout(false);
        let mut g = UNetGenerator::new(config, 6);
        let norm = Normalizer::new(4);
        let inputs = maps(9);
        let seq = infer_batched(&mut g, &inputs, None, &norm, 2);
        let par = infer_parallel(&mut g, &inputs, None, &norm, 2, 3).unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-5, "parallel output diverged");
            }
        }
    }

    #[test]
    fn frozen_generator_thaws_bit_exact() {
        let config = UNetConfig::for_image_size(8, 4).with_dropout(false);
        let mut g = UNetGenerator::new(config, 8);
        // Train-mode forward first so the batch-norm running statistics
        // are non-trivial and must survive the freeze/thaw round trip.
        g.forward(&Tensor::full([2, 1, 8, 8], 0.5), None, true);
        let frozen = FrozenGenerator::of(&mut g);
        let mut copy = frozen.thaw();
        let x =
            Tensor::from_vec([1, 1, 8, 8], (0..64).map(|i| (i % 5) as f32 / 2.0 - 1.0).collect());
        assert_eq!(g.forward(&x, None, false), copy.forward(&x, None, false));
    }

    #[test]
    fn frozen_parallel_matches_sequential() {
        let config = UNetConfig::for_image_size(8, 4).with_dropout(false);
        let mut g = UNetGenerator::new(config, 6);
        let norm = Normalizer::new(4);
        let inputs = maps(9);
        let seq = infer_batched(&mut g, &inputs, None, &norm, 2);
        let frozen = FrozenGenerator::of(&mut g);
        let par = infer_parallel_frozen(&frozen, &inputs, None, &norm, 2, 3).unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-5, "frozen parallel output diverged");
            }
        }
    }

    #[test]
    fn balanced_splits_honor_worker_count_within_one() {
        // The regression shape: 9 items over 4 workers used to collapse
        // to 3 chunks of 3. It must be 4 shards of sizes [3, 2, 2, 2].
        assert_eq!(balanced_splits(9, 4), vec![(0, 3), (3, 5), (5, 7), (7, 9)]);
        for len in 1..=20usize {
            for parts in 1..=8usize {
                let splits = balanced_splits(len, parts);
                assert_eq!(splits.len(), parts.min(len), "len={len} parts={parts}");
                assert_eq!(splits[0].0, 0);
                assert_eq!(splits.last().unwrap().1, len);
                let sizes: Vec<usize> = splits.iter().map(|(lo, hi)| hi - lo).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(*min > 0, "empty shard at len={len} parts={parts}");
                assert!(max - min <= 1, "unbalanced {sizes:?} at len={len} parts={parts}");
                for w in splits.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "shards must be contiguous, in order");
                }
            }
        }
    }

    #[test]
    fn frozen_parallel_preserves_order_at_ragged_worker_counts() {
        // Each input heatmap carries a distinct marker value, so any
        // cross-worker reordering or dropped tail is caught exactly.
        let config = UNetConfig::for_image_size(8, 4).with_dropout(false);
        let mut g = UNetGenerator::new(config, 9);
        let norm = Normalizer::new(4);
        let inputs: Vec<Heatmap> = (0..9)
            .map(|k| {
                let mut h = Heatmap::zeros(8, 8);
                h.set(k % 8, k % 8, 1.0 + k as f32 * 0.25);
                h
            })
            .collect();
        let seq = infer_batched(&mut g, &inputs, None, &norm, 2);
        let frozen = FrozenGenerator::of(&mut g);
        for workers in [2usize, 4, 5, 9, 16] {
            let par = infer_parallel_frozen(&frozen, &inputs, None, &norm, 2, workers).unwrap();
            assert_eq!(seq.len(), par.len(), "workers={workers}");
            for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
                for (x, y) in a.data().iter().zip(b.data()) {
                    assert!((x - y).abs() < 1e-5, "output {i} diverged at workers={workers}");
                }
            }
        }
    }

    #[test]
    fn parallel_with_one_worker_is_sequential_path() {
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 1);
        let out = infer_parallel(&mut g, &maps(3), None, &Normalizer::new(4), 2, 1).unwrap();
        assert_eq!(out.len(), 3);
    }
}
