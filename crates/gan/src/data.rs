//! Heatmap ⇄ tensor conversion and training batches.

use crate::condition::CacheParams;
use cachebox_heatmap::Heatmap;
use cachebox_nn::Tensor;
use serde::{Deserialize, Serialize};

/// Maps raw heatmap pixel counts to the `[-1, 1]` model domain and back.
///
/// Counts are first multiplied by `scale` (the paper scales pixel values
/// by two, §4.3), divided by the per-column maximum possible count
/// (`window`), clamped to `[0, 1]`, then affinely mapped to `[-1, 1]`
/// to match the generator's `tanh` output.
///
/// # Example
///
/// ```
/// use cachebox_gan::data::Normalizer;
///
/// let norm = Normalizer::new(100);
/// assert_eq!(norm.to_model(0.0), -1.0);
/// let roundtrip = norm.from_model(norm.to_model(20.0));
/// assert!((roundtrip - 20.0).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    window: f32,
    scale: f32,
    round: bool,
}

impl Normalizer {
    /// Creates a normalizer for heatmaps with `window` accesses per
    /// column, using the paper's ×2 pixel scaling.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window must be non-zero");
        Normalizer { window: window as f32, scale: 2.0, round: false }
    }

    /// Returns a copy with a custom pixel pre-scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn with_scale(mut self, scale: f32) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Returns a copy that rounds recovered counts to the nearest
    /// integer. Real heatmap pixels are integer access counts, so
    /// rounding is an unbiased de-noiser for generated maps: residual
    /// background noise below 0.5 counts vanishes instead of
    /// accumulating over thousands of pixels.
    pub fn with_rounding(mut self, round: bool) -> Self {
        self.round = round;
        self
    }

    /// Count → model domain (`[-1, 1]`).
    pub fn to_model(&self, count: f32) -> f32 {
        ((count * self.scale / self.window).clamp(0.0, 1.0)) * 2.0 - 1.0
    }

    /// Model domain → count (non-negative; rounded to the nearest
    /// integer when [`Normalizer::with_rounding`] is enabled).
    pub fn from_model(&self, value: f32) -> f32 {
        let count = ((value + 1.0) / 2.0).clamp(0.0, 1.0) * self.window / self.scale;
        if self.round {
            count.round()
        } else {
            count
        }
    }

    /// Converts a heatmap into a `[1, 1, h, w]` model tensor.
    pub fn heatmap_to_tensor(&self, heatmap: &Heatmap) -> Tensor {
        Tensor::from_vec(
            [1, 1, heatmap.height(), heatmap.width()],
            heatmap.data().iter().map(|&v| self.to_model(v)).collect(),
        )
    }

    /// Converts a batch of heatmaps into a `[n, 1, h, w]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `heatmaps` is empty or shapes differ.
    pub fn heatmaps_to_batch(&self, heatmaps: &[&Heatmap]) -> Tensor {
        assert!(!heatmaps.is_empty(), "need at least one heatmap");
        let (h, w) = (heatmaps[0].height(), heatmaps[0].width());
        let mut data = Vec::with_capacity(heatmaps.len() * h * w);
        for m in heatmaps {
            assert_eq!((m.height(), m.width()), (h, w), "heatmap shape mismatch");
            data.extend(m.data().iter().map(|&v| self.to_model(v)));
        }
        Tensor::from_vec([heatmaps.len(), 1, h, w], data)
    }

    /// Converts one sample of a `[n, 1, h, w]` tensor back to a heatmap
    /// of counts (negatives clamp to zero through the mapping).
    ///
    /// # Panics
    ///
    /// Panics if `sample` is out of range or `tensor.c() != 1`.
    pub fn tensor_to_heatmap(&self, tensor: &Tensor, sample: usize) -> Heatmap {
        assert_eq!(tensor.c(), 1, "expected single-channel tensor");
        assert!(sample < tensor.n(), "sample out of range");
        let data: Vec<f32> = tensor.sample(sample).iter().map(|&v| self.from_model(v)).collect();
        Heatmap::from_vec(tensor.h(), tensor.w(), data)
    }
}

/// One training sample: an access/miss heatmap pair plus the cache
/// parameters that produced the miss behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The access heatmap (model input).
    pub access: Heatmap,
    /// The real miss heatmap (target).
    pub miss: Heatmap,
    /// The cache configuration's parameters.
    pub params: CacheParams,
}

/// Assembles `(input, target, params)` tensors from a list of samples.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn collate(samples: &[&Sample], norm: &Normalizer) -> (Tensor, Tensor, Tensor) {
    assert!(!samples.is_empty(), "empty batch");
    let access: Vec<&Heatmap> = samples.iter().map(|s| &s.access).collect();
    let miss: Vec<&Heatmap> = samples.iter().map(|s| &s.miss).collect();
    let params: Vec<CacheParams> = samples.iter().map(|s| s.params).collect();
    (norm.heatmaps_to_batch(&access), norm.heatmaps_to_batch(&miss), CacheParams::batch_of(&params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_unsaturated_range() {
        let n = Normalizer::new(100);
        for count in [0.0, 1.0, 7.0, 25.0, 49.9] {
            let rt = n.from_model(n.to_model(count));
            assert!((rt - count).abs() < 1e-3, "count {count} -> {rt}");
        }
    }

    #[test]
    fn saturation_above_half_window_with_scale_two() {
        let n = Normalizer::new(100);
        assert_eq!(n.to_model(50.0), 1.0);
        assert_eq!(n.to_model(100.0), 1.0);
    }

    #[test]
    fn custom_scale_extends_range() {
        let n = Normalizer::new(100).with_scale(1.0);
        assert!((n.from_model(n.to_model(99.0)) - 99.0).abs() < 1e-3);
    }

    #[test]
    fn heatmap_tensor_roundtrip() {
        let n = Normalizer::new(10);
        let h = Heatmap::from_vec(2, 2, vec![0.0, 1.0, 2.0, 4.0]);
        let t = n.heatmap_to_tensor(&h);
        assert_eq!(t.shape(), [1, 1, 2, 2]);
        let back = n.tensor_to_heatmap(&t, 0);
        for (a, b) in h.data().iter().zip(back.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn batch_layout() {
        let n = Normalizer::new(10);
        let a = Heatmap::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Heatmap::from_vec(1, 2, vec![2.0, 3.0]);
        let t = n.heatmaps_to_batch(&[&a, &b]);
        assert_eq!(t.shape(), [2, 1, 1, 2]);
        let back = n.tensor_to_heatmap(&t, 1);
        assert!((back.get(0, 1) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn collate_shapes() {
        let sample = Sample {
            access: Heatmap::zeros(4, 4),
            miss: Heatmap::zeros(4, 4),
            params: CacheParams::new(64, 12),
        };
        let (x, y, p) = collate(&[&sample, &sample], &Normalizer::new(8));
        assert_eq!(x.shape(), [2, 1, 4, 4]);
        assert_eq!(y.shape(), [2, 1, 4, 4]);
        assert_eq!(p.shape(), [2, 2, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn collate_rejects_empty() {
        collate(&[], &Normalizer::new(8));
    }
}
