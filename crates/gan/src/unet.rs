//! The CB-GAN generator: a cache-parameter-conditioned U-Net.

use cachebox_nn::graph::Sequential;
use cachebox_nn::layers::{
    BatchNorm2d, Conv2d, ConvTranspose2d, Dropout, Layer, LeakyRelu, Linear, Relu, Tanh,
};
use cachebox_nn::{Param, Tensor};
use serde::{Deserialize, Serialize};

/// Configuration of the U-Net generator.
///
/// `depth` down-sampling blocks halve the spatial size from `image_size`
/// down to 1×1, mirroring the paper's Unet256/Unet512 (8 or 9 blocks over
/// 256/512-pixel images); channel widths grow `ngf, 2·ngf, 4·ngf, 8·ngf`
/// and cap at `8·ngf`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UNetConfig {
    /// Input image channels (1: the access heatmap).
    pub in_channels: usize,
    /// Output image channels (1: the synthetic miss heatmap).
    pub out_channels: usize,
    /// Base generator filter count (the paper uses ngf = 128).
    pub ngf: usize,
    /// Number of down/up blocks; `image_size` must equal `2^depth`.
    pub depth: usize,
    /// Square input image size.
    pub image_size: usize,
    /// Numeric conditioning features (2 = sets & ways; 0 disables the
    /// parameter head as in RQ4's combined model).
    pub param_features: usize,
    /// Width of the parameter embedding appended to the bottleneck.
    pub param_embed: usize,
    /// Whether the inner decoder blocks use dropout (Pix2Pix default).
    pub dropout: bool,
}

impl UNetConfig {
    /// Builds the natural configuration for a given image size: depth
    /// `log2(image_size)`, no parameter conditioning.
    ///
    /// # Panics
    ///
    /// Panics unless `image_size` is a power of two ≥ 4.
    pub fn for_image_size(image_size: usize, ngf: usize) -> Self {
        assert!(
            image_size.is_power_of_two() && image_size >= 4,
            "image size must be a power of two ≥ 4"
        );
        assert!(ngf > 0, "ngf must be non-zero");
        UNetConfig {
            in_channels: 1,
            out_channels: 1,
            ngf,
            depth: image_size.trailing_zeros() as usize,
            image_size,
            param_features: 0,
            param_embed: ngf,
            dropout: true,
        }
    }

    /// Enables or disables decoder dropout.
    pub fn with_dropout(mut self, dropout: bool) -> Self {
        self.dropout = dropout;
        self
    }

    /// Enables cache-parameter conditioning with `features` inputs.
    pub fn with_param_features(mut self, features: usize) -> Self {
        self.param_features = features;
        self
    }

    /// Sets the parameter-embedding width.
    ///
    /// # Panics
    ///
    /// Panics if `embed` is zero.
    pub fn with_param_embed(mut self, embed: usize) -> Self {
        assert!(embed > 0, "embedding width must be non-zero");
        self.param_embed = embed;
        self
    }

    /// Channel width after down block `i`.
    fn channels(&self, i: usize) -> usize {
        self.ngf * (1 << i.min(3))
    }
}

/// The conditioned U-Net generator (Fig. 5a).
///
/// Unlike ordinary layers this model takes *two* inputs — the access
/// heatmap batch and (optionally) the cache-parameter batch — so it
/// exposes its own `forward`/`backward` rather than implementing
/// [`Layer`]. See the [crate-level example](crate).
#[derive(Debug)]
pub struct UNetGenerator {
    config: UNetConfig,
    seed: u64,
    downs: Vec<Sequential>,
    ups: Vec<Sequential>,
    param_head: Option<Sequential>,
    // Backward bookkeeping from the last training forward.
    cache: Option<ForwardCache>,
}

#[derive(Debug)]
struct ForwardCache {
    /// Output channel width of each up block (for concat splits).
    up_out_channels: Vec<usize>,
    /// Channel width of the bottleneck (for the parameter split).
    bottleneck_channels: usize,
    had_params: bool,
}

impl UNetGenerator {
    /// Builds the generator; `seed` drives all weight initialization.
    ///
    /// # Panics
    ///
    /// Panics if `config.image_size != 2^config.depth` or `depth < 2`.
    pub fn new(config: UNetConfig, seed: u64) -> Self {
        assert!(config.depth >= 2, "need at least two down blocks");
        assert_eq!(config.image_size, 1 << config.depth, "image size must equal 2^depth");
        let d = config.depth;
        let mut downs = Vec::with_capacity(d);
        for i in 0..d {
            let in_c = if i == 0 { config.in_channels } else { config.channels(i - 1) };
            let out_c = config.channels(i);
            let mut block =
                Sequential::new().push(Conv2d::new(in_c, out_c, 4, 2, 1, seed * 131 + i as u64));
            // Pix2Pix omits normalization on the outermost and innermost
            // blocks (the innermost sees 1×1 activations).
            if i != 0 && i != d - 1 {
                block = block.push(BatchNorm2d::new(out_c));
            }
            block = block.push(LeakyRelu::new(0.2));
            downs.push(block);
        }
        let bottleneck_c = config.channels(d - 1);
        let embed = if config.param_features > 0 { config.param_embed } else { 0 };
        let mut ups = Vec::with_capacity(d);
        for i in 0..d {
            let in_c = if i == 0 { bottleneck_c + embed } else { 2 * config.channels(d - 1 - i) };
            let last = i == d - 1;
            let out_c = if last { config.out_channels } else { config.channels(d - 2 - i) };
            let mut block = Sequential::new().push(ConvTranspose2d::new(
                in_c,
                out_c,
                4,
                2,
                1,
                seed * 137 + i as u64,
            ));
            if last {
                block = block.push(Tanh::new());
            } else {
                block = block.push(BatchNorm2d::new(out_c)).push(Relu::new());
                if config.dropout && i < 3 {
                    block = block.push(Dropout::new(0.5, seed * 139 + i as u64));
                }
            }
            ups.push(block);
        }
        // Three fully connected layers (§3.2.3). No activation after the
        // last layer: a trailing ReLU can zero the whole embedding for
        // unlucky initializations, silencing the conditioning path.
        let param_head = (config.param_features > 0).then(|| {
            Sequential::new()
                .push(Linear::new(config.param_features, 16, seed * 149 + 1))
                .push(Relu::new())
                .push(Linear::new(16, 32, seed * 149 + 2))
                .push(Relu::new())
                .push(Linear::new(32, config.param_embed, seed * 149 + 3))
        });
        UNetGenerator { config, seed, downs, ups, param_head, cache: None }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &UNetConfig {
        &self.config
    }

    /// The seed this generator was built with. Training replicas are
    /// constructed with the same seed so that keyed dropout masks agree
    /// across replicas of the same model.
    pub fn init_seed(&self) -> u64 {
        self.seed
    }

    /// Runs the generator.
    ///
    /// `params` must be `Some` with shape `[n, param_features, 1, 1]`
    /// when the model was built with conditioning, `None` otherwise.
    ///
    /// # Panics
    ///
    /// Panics on input shape mismatch or a missing/superfluous parameter
    /// batch.
    pub fn forward(&mut self, input: &Tensor, params: Option<&Tensor>, train: bool) -> Tensor {
        assert_eq!(input.c(), self.config.in_channels, "input channel mismatch");
        assert_eq!(input.h(), self.config.image_size, "input height mismatch");
        assert_eq!(input.w(), self.config.image_size, "input width mismatch");
        assert_eq!(
            params.is_some(),
            self.param_head.is_some(),
            "model conditioning and params argument disagree"
        );
        let d = self.config.depth;
        let mut skips: Vec<Tensor> = Vec::with_capacity(d);
        let mut h = input.clone();
        for down in &mut self.downs {
            h = down.forward(&h, train);
            skips.push(h.clone());
        }
        let bottleneck_channels = h.c();
        if let (Some(head), Some(p)) = (self.param_head.as_mut(), params) {
            let e = head.forward(p, train);
            let e = e.reshape([h.n(), self.config.param_embed, 1, 1]);
            h = h.concat_channels(&e);
        }
        let mut up_out_channels = Vec::with_capacity(d);
        for i in 0..d {
            h = self.ups[i].forward(&h, train);
            up_out_channels.push(h.c());
            if i + 1 < d {
                h = h.concat_channels(&skips[d - 2 - i]);
            }
        }
        self.cache = train.then(|| ForwardCache {
            up_out_channels,
            bottleneck_channels,
            had_params: params.is_some(),
        });
        h
    }

    /// Back-propagates through the whole network, accumulating parameter
    /// gradients, and returns the gradient w.r.t. the input image batch.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode [`UNetGenerator::forward`].
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward before training forward");
        let d = self.config.depth;
        let mut skip_grads: Vec<Option<Tensor>> = (0..d).map(|_| None).collect();
        let mut g = grad_out.clone();
        for i in (0..d).rev() {
            if i + 1 < d {
                let (g_up, g_skip) = g.split_channels(cache.up_out_channels[i]);
                skip_grads[d - 2 - i] = Some(g_skip);
                g = self.ups[i].backward(&g_up);
            } else {
                g = self.ups[i].backward(&g);
            }
        }
        if cache.had_params {
            let (g_b, g_e) = g.split_channels(cache.bottleneck_channels);
            let head = self.param_head.as_mut().expect("cache says params were used");
            let n = g_e.n();
            head.backward(&g_e.reshape([n, self.config.param_embed, 1, 1]));
            g = g_b;
        }
        for i in (0..d).rev() {
            if let Some(sg) = skip_grads[i].take() {
                g = g.add(&sg);
            }
            g = self.downs[i].backward(&g);
        }
        g
    }

    /// Visits every learnable parameter (for optimizers/checkpoints).
    pub fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        for block in &mut self.downs {
            block.visit_params(visitor);
        }
        for block in &mut self.ups {
            block.visit_params(visitor);
        }
        if let Some(head) = &mut self.param_head {
            head.visit_params(visitor);
        }
    }

    /// Visits every block with a stable name (`down0`…, `up0`…,
    /// `param_head`), in parameter-visit order, for per-layer diagnostics
    /// such as the trainer's gradient-norm scan.
    pub fn visit_blocks(&mut self, visitor: &mut dyn FnMut(&str, &mut Sequential)) {
        for (i, block) in self.downs.iter_mut().enumerate() {
            visitor(&format!("down{i}"), block);
        }
        for (i, block) in self.ups.iter_mut().enumerate() {
            visitor(&format!("up{i}"), block);
        }
        if let Some(head) = &mut self.param_head {
            visitor("param_head", head);
        }
    }

    /// Visits every non-learnable state buffer (batch-norm running
    /// statistics) for checkpointing.
    pub fn visit_buffers(&mut self, visitor: &mut dyn FnMut(&mut Vec<f32>)) {
        for block in &mut self.downs {
            block.visit_buffers(visitor);
        }
        for block in &mut self.ups {
            block.visit_buffers(visitor);
        }
        if let Some(head) = &mut self.param_head {
            head.visit_buffers(visitor);
        }
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total learnable scalar count.
    pub fn param_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p| count += p.len());
        count
    }
}

/// Adapter letting optimizers (which take [`Layer`]) drive the two-input
/// generator.
#[derive(Debug)]
pub struct UNetAsLayer<'a>(pub &'a mut UNetGenerator);

impl Layer for UNetAsLayer<'_> {
    fn forward(&mut self, _input: &Tensor, _train: bool) -> Tensor {
        unimplemented!("UNetAsLayer only exposes parameters; call UNetGenerator::forward")
    }

    fn backward(&mut self, _grad_out: &Tensor) -> Tensor {
        unimplemented!("UNetAsLayer only exposes parameters; call UNetGenerator::backward")
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.0.visit_params(visitor);
    }

    fn visit_buffers(&mut self, visitor: &mut dyn FnMut(&mut Vec<f32>)) {
        self.0.visit_buffers(visitor);
    }

    fn visit_named_params(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Param)) {
        self.0.visit_blocks(&mut |name, block| {
            block.visit_named_params(&format!("{prefix}{name}/"), visitor);
        });
    }

    fn visit_named_buffers(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Vec<f32>)) {
        self.0.visit_blocks(&mut |name, block| {
            block.visit_named_buffers(&format!("{prefix}{name}/"), visitor);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::CacheParams;

    fn tiny_config() -> UNetConfig {
        UNetConfig::for_image_size(8, 4)
    }

    fn ramp(shape: [usize; 4]) -> Tensor {
        let len: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..len).map(|i| ((i % 13) as f32 - 6.0) / 6.0).collect())
    }

    #[test]
    fn output_shape_matches_input() {
        let mut g = UNetGenerator::new(tiny_config(), 1);
        let x = Tensor::zeros([2, 1, 8, 8]);
        let y = g.forward(&x, None, false);
        assert_eq!(y.shape(), [2, 1, 8, 8]);
        // Tanh output range.
        assert!(y.data().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn conditioned_model_requires_params() {
        let mut g = UNetGenerator::new(tiny_config().with_param_features(2), 2);
        let x = Tensor::zeros([1, 1, 8, 8]);
        let p = CacheParams::new(64, 12).batch(1);
        let y = g.forward(&x, Some(&p), false);
        assert_eq!(y.shape(), [1, 1, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn missing_params_rejected() {
        let mut g = UNetGenerator::new(tiny_config().with_param_features(2), 2);
        g.forward(&Tensor::zeros([1, 1, 8, 8]), None, false);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn superfluous_params_rejected() {
        let mut g = UNetGenerator::new(tiny_config(), 2);
        let p = CacheParams::new(64, 12).batch(1);
        g.forward(&Tensor::zeros([1, 1, 8, 8]), Some(&p), false);
    }

    #[test]
    fn params_change_output() {
        let mut g = UNetGenerator::new(tiny_config().with_param_features(2), 3);
        let x = ramp([1, 1, 8, 8]);
        let y1 = g.forward(&x, Some(&CacheParams::new(64, 12).batch(1)), false);
        let y2 = g.forward(&x, Some(&CacheParams::new(32, 1).batch(1)), false);
        assert_ne!(y1, y2, "conditioning must influence the output");
    }

    #[test]
    fn backward_produces_input_gradient_and_param_grads() {
        let mut g = UNetGenerator::new(tiny_config().with_param_features(2), 4);
        let x = ramp([2, 1, 8, 8]);
        let p = CacheParams::new(64, 12).batch(2);
        let y = g.forward(&x, Some(&p), true);
        g.zero_grad();
        let gx = g.backward(&Tensor::full(y.shape(), 1.0));
        assert_eq!(gx.shape(), x.shape());
        let mut any_nonzero = false;
        g.visit_params(&mut |pp| {
            if pp.grad.iter().any(|&v| v != 0.0) {
                any_nonzero = true;
            }
        });
        assert!(any_nonzero, "some parameter must receive gradient");
    }

    #[test]
    fn full_gradient_check_on_micro_unet() {
        // Finite-difference check of d(sum(out*coeff))/d(input) through
        // the entire network (depth 2, 4×4 images, dropout disabled so
        // the function is deterministic).
        let config = UNetConfig::for_image_size(4, 2).with_dropout(false);
        let mut g = UNetGenerator::new(config, 9);
        let x = ramp([1, 1, 4, 4]);
        let y = g.forward(&x, None, true);
        let coeff: Vec<f32> = (0..y.len()).map(|i| 1.0 + 0.05 * (i % 5) as f32).collect();
        let grad_out = Tensor::from_vec(y.shape(), coeff.clone());
        g.zero_grad();
        let gx = g.backward(&grad_out);
        let eps = 1e-2f32;
        let f = |t: &Tensor, g: &mut UNetGenerator| -> f32 {
            let o = g.forward(t, None, true);
            o.data().iter().zip(&coeff).map(|(a, b)| a * b).sum()
        };
        for i in (0..x.len()).step_by(3) {
            let mut plus = x.clone();
            plus.data_mut()[i] += eps;
            let mut minus = x.clone();
            minus.data_mut()[i] -= eps;
            let numeric = (f(&plus, &mut g) - f(&minus, &mut g)) / (2.0 * eps);
            let analytic = gx.data()[i];
            assert!(
                (numeric - analytic).abs() <= 3e-2 * (1.0 + numeric.abs().max(analytic.abs())),
                "grad mismatch at {i}: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn conditioned_gradient_check_on_micro_unet() {
        // Same finite-difference check but with the parameter head active,
        // exercising the bottleneck concat/split path.
        let config = UNetConfig::for_image_size(4, 2).with_dropout(false).with_param_features(2);
        let mut g = UNetGenerator::new(config, 13);
        let x = ramp([2, 1, 4, 4]);
        let p = CacheParams::new(64, 12).batch(2);
        let y = g.forward(&x, Some(&p), true);
        let coeff: Vec<f32> = (0..y.len()).map(|i| 1.0 + 0.05 * (i % 5) as f32).collect();
        let grad_out = Tensor::from_vec(y.shape(), coeff.clone());
        g.zero_grad();
        let gx = g.backward(&grad_out);
        let eps = 1e-2f32;
        let f = |t: &Tensor, g: &mut UNetGenerator| -> f32 {
            let o = g.forward(t, Some(&p), true);
            o.data().iter().zip(&coeff).map(|(a, b)| a * b).sum()
        };
        for i in (0..x.len()).step_by(5) {
            let mut plus = x.clone();
            plus.data_mut()[i] += eps;
            let mut minus = x.clone();
            minus.data_mut()[i] -= eps;
            let numeric = (f(&plus, &mut g) - f(&minus, &mut g)) / (2.0 * eps);
            let analytic = gx.data()[i];
            assert!(
                (numeric - analytic).abs() <= 3e-2 * (1.0 + numeric.abs().max(analytic.abs())),
                "grad mismatch at {i}: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn param_count_grows_with_ngf() {
        let mut small = UNetGenerator::new(UNetConfig::for_image_size(8, 4), 0);
        let mut big = UNetGenerator::new(UNetConfig::for_image_size(8, 8), 0);
        assert!(big.param_count() > small.param_count());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_image() {
        UNetConfig::for_image_size(24, 4);
    }
}
