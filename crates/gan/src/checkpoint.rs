//! Model checkpoints: persist a trained generator to disk.

use crate::unet::{UNetAsLayer, UNetConfig, UNetGenerator};
use cachebox_nn::optim::{Adam, AdamState};
use cachebox_nn::serialize::StateDict;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A serializable snapshot of a generator: its architecture plus
/// weights, and optionally the generator optimizer's Adam moments so a
/// training run can resume where it stopped.
///
/// The on-disk format is versioned through the [`StateDict`] wire
/// shape: snapshots written by current code carry named parameter
/// segments (v2), while files written before segment naming hold bare
/// positional tensor lists (v1). Both load — v1 files migrate
/// positionally and bit-exactly, and have no optimizer state.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use cachebox_gan::{checkpoint::Checkpoint, UNetConfig, UNetGenerator};
/// use cachebox_nn::Tensor;
///
/// let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 7);
/// let ckpt = Checkpoint::capture(&mut g);
/// let mut restored = ckpt.restore()?;
/// let x = Tensor::zeros([1, 1, 8, 8]);
/// assert_eq!(
///     g.forward(&x, None, false),
///     restored.forward(&x, None, false),
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Generator architecture.
    pub config: UNetConfig,
    /// Flattened weights in visit order.
    pub state: StateDict,
    /// Generator Adam moments, when captured mid-training. Absent from
    /// v1 checkpoints (and from snapshots taken without an optimizer).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub optim: Option<AdamState>,
}

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed checkpoint file.
    Decode(serde_json::Error),
    /// Weights do not fit the declared architecture.
    Mismatch(cachebox_nn::serialize::LoadStateError),
    /// Weights parse and fit but are unusable (non-finite values): a
    /// corrupted or half-written checkpoint that must never be
    /// hot-reloaded into a serving arena.
    Invalid(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            CheckpointError::Decode(e) => write!(f, "checkpoint decode failed: {e}"),
            CheckpointError::Mismatch(e) => write!(f, "checkpoint incompatible: {e}"),
            CheckpointError::Invalid(why) => write!(f, "checkpoint invalid: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Decode(e) => Some(e),
            CheckpointError::Mismatch(e) => Some(e),
            CheckpointError::Invalid(_) => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Decode(e)
    }
}

impl Checkpoint {
    /// Snapshots a generator's architecture and weights.
    pub fn capture(generator: &mut UNetGenerator) -> Self {
        let config = *generator.config();
        let state = StateDict::from_layer(&mut UNetAsLayer(generator));
        Checkpoint { config, state, optim: None }
    }

    /// Snapshots a generator together with its optimizer's Adam
    /// moments, so training can resume with warm moment estimates.
    pub fn capture_with_optim(generator: &mut UNetGenerator, optimizer: &Adam) -> Self {
        let mut ckpt = Checkpoint::capture(generator);
        ckpt.optim = Some(optimizer.export_state());
        ckpt
    }

    /// Rebuilds the generator's Adam optimizer from the snapshot, if
    /// optimizer state was captured.
    ///
    /// # Panics
    ///
    /// Panics if the stored learning rate is not positive (a corrupted
    /// checkpoint).
    pub fn restore_optimizer(&self) -> Option<Adam> {
        self.optim.as_ref().map(|state| {
            let mut opt = Adam::new(1e-3);
            opt.import_state(state);
            opt
        })
    }

    /// Rebuilds the generator from the snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Mismatch`] if the stored weights do not
    /// fit the stored architecture (a corrupted checkpoint).
    pub fn restore(&self) -> Result<UNetGenerator, CheckpointError> {
        let mut generator = UNetGenerator::new(self.config, 0);
        self.state
            .load_into(&mut UNetAsLayer(&mut generator))
            .map_err(CheckpointError::Mismatch)?;
        Ok(generator)
    }

    /// Writes the checkpoint as JSON.
    ///
    /// # Errors
    ///
    /// Returns I/O or encoding failures.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(file), self)?;
        Ok(())
    }

    /// Reads a checkpoint previously written by [`Checkpoint::save`].
    ///
    /// # Errors
    ///
    /// Returns I/O or decoding failures.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let file = std::fs::File::open(path)?;
        Ok(serde_json::from_reader(std::io::BufReader::new(file))?)
    }

    /// Checks every stored weight and buffer scalar is finite. A
    /// checkpoint that parses and fits the architecture can still be
    /// poisoned (NaN/Inf from a crashed trainer or a truncated float);
    /// installing it into a serving arena would silently answer garbage
    /// forever, so hot-reload refuses it up front.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Invalid`] naming the first offending
    /// tensor.
    pub fn validate(&self) -> Result<(), CheckpointError> {
        for t in self.state.params().iter().chain(self.state.buffers()) {
            if let Some(pos) = t.data.iter().position(|v| !v.is_finite()) {
                return Err(CheckpointError::Invalid(format!(
                    "non-finite value at scalar {pos} of tensor {:?}",
                    t.name
                )));
            }
        }
        Ok(())
    }

    /// Loads a checkpoint from disk, validates it ([`validate`]
    /// (Checkpoint::validate) plus the architecture fit of
    /// [`restore`](Checkpoint::restore)), and freezes it into a
    /// shareable arena — the hot-reload entry used by the evaluation
    /// service. Any failure leaves the caller's currently installed
    /// arena untouched; nothing is swapped here.
    ///
    /// # Errors
    ///
    /// Returns I/O, decode, mismatch, or validation failures.
    pub fn load_frozen_validated(
        path: &Path,
    ) -> Result<crate::infer::FrozenGenerator, CheckpointError> {
        let ckpt = Checkpoint::load(path)?;
        ckpt.validate()?;
        let mut generator = ckpt.restore()?;
        Ok(crate::infer::FrozenGenerator::of(&mut generator))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachebox_nn::Tensor;

    #[test]
    fn roundtrip_through_file() {
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2).with_param_features(2), 3);
        let ckpt = Checkpoint::capture(&mut g);
        let dir = std::env::temp_dir().join("cachebox_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        let mut restored = loaded.restore().unwrap();
        let x = Tensor::zeros([1, 1, 8, 8]);
        let p = crate::condition::CacheParams::new(64, 12).batch(1);
        assert_eq!(g.forward(&x, Some(&p), false), restored.forward(&x, Some(&p), false));
        std::fs::remove_file(&path).ok();
    }

    /// Renders a checkpoint in the legacy v1 wire shape: positional
    /// `tensors`/`buffers` float lists, no names, no version field, no
    /// optimizer state. This is byte-compatible with files written
    /// before parameter segments were named.
    fn v1_json(ckpt: &Checkpoint) -> String {
        let lists = |tensors: &[cachebox_nn::serialize::NamedTensor]| {
            let rows: Vec<String> = tensors
                .iter()
                .map(|t| {
                    let vals: Vec<String> = t.data.iter().map(|v| format!("{v}")).collect();
                    format!("[{}]", vals.join(","))
                })
                .collect();
            format!("[{}]", rows.join(","))
        };
        format!(
            r#"{{"config":{},"state":{{"tensors":{},"buffers":{}}}}}"#,
            serde_json::to_string(&ckpt.config).unwrap(),
            lists(ckpt.state.params()),
            lists(ckpt.state.buffers()),
        )
    }

    #[test]
    fn v1_checkpoint_migrates_bit_exact() {
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2).with_param_features(2), 9);
        let ckpt = Checkpoint::capture(&mut g);
        let legacy: Checkpoint = serde_json::from_str(&v1_json(&ckpt)).unwrap();
        assert!(legacy.state.is_positional(), "v1 files load as positional snapshots");
        assert!(legacy.optim.is_none(), "v1 files carry no optimizer state");
        // Positional tensors carry no names but identical bits.
        for (a, b) in ckpt.state.params().iter().zip(legacy.state.params()) {
            assert_eq!(a.data.len(), b.data.len());
            for (x, y) in a.data.iter().zip(&b.data) {
                assert_eq!(x.to_bits(), y.to_bits(), "v1 migration must be bit-exact");
            }
        }
        let mut restored = legacy.restore().unwrap();
        let x = Tensor::zeros([1, 1, 8, 8]);
        let p = crate::condition::CacheParams::new(64, 12).batch(1);
        assert_eq!(g.forward(&x, Some(&p), false), restored.forward(&x, Some(&p), false));
    }

    #[test]
    fn optimizer_state_roundtrips_through_file() {
        use cachebox_nn::layers::Layer;
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 5);
        let mut opt = Adam::new(2e-3);
        // Materialize moments with one step over real segments.
        let mut store = UNetAsLayer(&mut g).export_store();
        store.grads_mut().iter_mut().enumerate().for_each(|(i, v)| *v = (i % 5) as f32 * 0.1);
        opt.step_store(&mut store);
        let ckpt = Checkpoint::capture_with_optim(&mut g, &opt);
        let dir = std::env::temp_dir().join("cachebox_ckpt_optim_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        let restored = loaded.restore_optimizer().expect("optimizer state captured");
        assert_eq!(restored.export_state(), opt.export_state());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_fails() {
        let err = Checkpoint::load(Path::new("/nonexistent/cachebox.json")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn corrupted_state_is_rejected() {
        let mut small = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 1);
        let mut big_cfg = Checkpoint::capture(&mut small);
        big_cfg.config.ngf = 16; // architecture no longer matches weights
        assert!(matches!(big_cfg.restore(), Err(CheckpointError::Mismatch(_))));
    }

    #[test]
    fn validate_accepts_clean_and_rejects_nan() {
        use cachebox_nn::layers::Layer;
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 11);
        Checkpoint::capture(&mut g).validate().expect("fresh weights are finite");

        let mut store = UNetAsLayer(&mut g).export_store();
        store.values_mut()[3] = f32::NAN;
        UNetAsLayer(&mut g).import_values("", &store);
        let err = Checkpoint::capture(&mut g).validate().unwrap_err();
        assert!(matches!(err, CheckpointError::Invalid(_)));
        assert!(err.to_string().contains("non-finite"), "got: {err}");
    }

    #[test]
    fn load_frozen_validated_roundtrips_and_rejects_garbage() {
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 13);
        let dir = std::env::temp_dir().join("cachebox_ckpt_frozen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        // The roundtrip leg needs working serialization; environments
        // whose serde backend cannot write still cover the reject legs.
        if Checkpoint::capture(&mut g).save(&path).is_ok() {
            let frozen = Checkpoint::load_frozen_validated(&path).unwrap();
            let direct = crate::infer::FrozenGenerator::of(&mut g);
            assert_eq!(frozen.fingerprint(), direct.fingerprint());
        } else {
            eprintln!("checkpoint serialization unavailable; skipping roundtrip leg");
        }

        std::fs::write(&path, b"{not json at all").unwrap();
        let err = Checkpoint::load_frozen_validated(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Decode(_)));
        std::fs::remove_file(&path).ok();
    }
}
