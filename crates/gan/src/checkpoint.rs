//! Model checkpoints: persist a trained generator to disk.

use crate::unet::{UNetAsLayer, UNetConfig, UNetGenerator};
use cachebox_nn::serialize::StateDict;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A serializable snapshot of a generator: its architecture plus weights.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use cachebox_gan::{checkpoint::Checkpoint, UNetConfig, UNetGenerator};
/// use cachebox_nn::Tensor;
///
/// let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 7);
/// let ckpt = Checkpoint::capture(&mut g);
/// let mut restored = ckpt.restore()?;
/// let x = Tensor::zeros([1, 1, 8, 8]);
/// assert_eq!(
///     g.forward(&x, None, false),
///     restored.forward(&x, None, false),
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Generator architecture.
    pub config: UNetConfig,
    /// Flattened weights in visit order.
    pub state: StateDict,
}

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed checkpoint file.
    Decode(serde_json::Error),
    /// Weights do not fit the declared architecture.
    Mismatch(cachebox_nn::serialize::LoadStateError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            CheckpointError::Decode(e) => write!(f, "checkpoint decode failed: {e}"),
            CheckpointError::Mismatch(e) => write!(f, "checkpoint incompatible: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Decode(e) => Some(e),
            CheckpointError::Mismatch(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Decode(e)
    }
}

impl Checkpoint {
    /// Snapshots a generator's architecture and weights.
    pub fn capture(generator: &mut UNetGenerator) -> Self {
        let config = *generator.config();
        let state = StateDict::from_layer(&mut UNetAsLayer(generator));
        Checkpoint { config, state }
    }

    /// Rebuilds the generator from the snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Mismatch`] if the stored weights do not
    /// fit the stored architecture (a corrupted checkpoint).
    pub fn restore(&self) -> Result<UNetGenerator, CheckpointError> {
        let mut generator = UNetGenerator::new(self.config, 0);
        self.state
            .load_into(&mut UNetAsLayer(&mut generator))
            .map_err(CheckpointError::Mismatch)?;
        Ok(generator)
    }

    /// Writes the checkpoint as JSON.
    ///
    /// # Errors
    ///
    /// Returns I/O or encoding failures.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(file), self)?;
        Ok(())
    }

    /// Reads a checkpoint previously written by [`Checkpoint::save`].
    ///
    /// # Errors
    ///
    /// Returns I/O or decoding failures.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let file = std::fs::File::open(path)?;
        Ok(serde_json::from_reader(std::io::BufReader::new(file))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachebox_nn::Tensor;

    #[test]
    fn roundtrip_through_file() {
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(8, 2).with_param_features(2), 3);
        let ckpt = Checkpoint::capture(&mut g);
        let dir = std::env::temp_dir().join("cachebox_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        let mut restored = loaded.restore().unwrap();
        let x = Tensor::zeros([1, 1, 8, 8]);
        let p = crate::condition::CacheParams::new(64, 12).batch(1);
        assert_eq!(g.forward(&x, Some(&p), false), restored.forward(&x, Some(&p), false));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_fails() {
        let err = Checkpoint::load(Path::new("/nonexistent/cachebox.json")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn corrupted_state_is_rejected() {
        let mut small = UNetGenerator::new(UNetConfig::for_image_size(8, 2), 1);
        let mut big_cfg = Checkpoint::capture(&mut small);
        big_cfg.config.ngf = 16; // architecture no longer matches weights
        assert!(matches!(big_cfg.restore(), Err(CheckpointError::Mismatch(_))));
    }
}
