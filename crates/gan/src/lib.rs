//! CB-GAN: the CacheBox generative model (paper §3.2).
//!
//! CB-GAN is a Pix2Pix-style conditional GAN specialised for cache
//! behaviour:
//!
//! * [`UNetGenerator`] — an encoder/decoder U-Net with skip connections
//!   whose bottleneck is augmented with an embedding of the numeric
//!   *cache parameters* (sets, ways) produced by three fully connected
//!   layers (§3.2.3, Fig. 5a).
//! * [`PatchGan`] — a patch-level discriminator judging
//!   (access, miss) image pairs at a configurable receptive field
//!   (16×16 in the main experiments, 142×142 for RQ4; Fig. 5b).
//! * [`GanTrainer`] — alternating optimization of the adversarial +
//!   λ·L1 objective (Eq. 1, λ = 150) with Adam.
//! * [`data`] — heatmap ⇄ tensor conversion with the paper's ×2 pixel
//!   scaling, and dataset batching.
//! * [`infer`] — batched inference over many access heatmaps (RQ5),
//!   including multi-worker inference where each worker thaws a local
//!   model from one shared read-only [`FrozenGenerator`] arena.
//!
//! Training can run data-parallel: [`GanTrainer::with_replicas`]
//! splits every batch across **exactly** the requested number of model
//! replicas — ragged (non-power-of-two) counts included — and
//! overlap-reduces the flat per-replica gradient arenas in a fixed
//! padded-tree order, so losses and post-step weights are bitwise
//! identical for any replica count 1 ≤ R ≤ batch (see
//! `docs/PARALLEL_TRAINING.md`; R > batch is refused, never clamped).
//!
//! # Example
//!
//! ```
//! use cachebox_gan::{CacheParams, UNetConfig, UNetGenerator};
//! use cachebox_nn::Tensor;
//!
//! // A tiny conditioned U-Net over 16×16 heatmaps.
//! let mut g = UNetGenerator::new(UNetConfig::for_image_size(16, 8).with_param_features(2), 0);
//! let x = Tensor::zeros([2, 1, 16, 16]);
//! let params = CacheParams::new(64, 12).batch(2);
//! let y = g.forward(&x, Some(&params), false);
//! assert_eq!(y.shape(), [2, 1, 16, 16]);
//! ```

pub mod checkpoint;
pub mod condition;
pub mod data;
pub mod infer;
pub mod patchgan;
pub mod trainer;
pub mod unet;

pub use condition::{CacheParams, ExtendedCacheParams};
pub use infer::FrozenGenerator;
pub use patchgan::{PatchGan, PatchGanConfig};
pub use trainer::{GanTrainer, TrainConfig, TrainError, TrainSample, TrainStats};
pub use unet::{UNetConfig, UNetGenerator};
