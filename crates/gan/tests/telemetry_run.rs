//! Telemetry contract of a training run: the one-shot
//! `gan.replica.mismatch` counter, the replica gauges, sink-less
//! heartbeat cadence handling, and the autotuned conv chunk.
//!
//! The telemetry collector is process-global (one run per process), so
//! this binary holds exactly one test. No JSONL sink is configured:
//! everything is asserted on the in-process [`Summary`] the guard
//! returns, which also exercises the "summary only" path end to end.

use cachebox_gan::condition::CacheParams;
use cachebox_gan::data::{Normalizer, Sample};
use cachebox_gan::{GanTrainer, PatchGan, PatchGanConfig, TrainConfig, UNetConfig, UNetGenerator};
use cachebox_heatmap::Heatmap;
use cachebox_nn::Parallelism;
use cachebox_telemetry as telemetry;

fn toy_samples(n: usize) -> Vec<Sample> {
    (0..n)
        .map(|k| {
            let mut access = Heatmap::zeros(8, 8);
            let mut miss = Heatmap::zeros(8, 8);
            for col in 0..8 {
                for row in 0..8 {
                    let v = ((k + col + row) % 4) as f32;
                    access.set(row, col, v);
                    if row < 4 {
                        miss.set(row, col, v);
                    }
                }
            }
            Sample { access, miss, params: CacheParams::new(64, 12) }
        })
        .collect()
}

fn tiny_trainer(epochs: usize, seed: u64) -> GanTrainer {
    let gc = UNetConfig::for_image_size(8, 4).with_dropout(false);
    let g = UNetGenerator::new(gc, seed);
    let d = PatchGan::new(PatchGanConfig::new(2, 4, 1), seed + 1);
    GanTrainer::new(g, d, TrainConfig { epochs, batch_size: 2, lr: 2e-3, ..Default::default() })
}

#[test]
fn mismatch_fires_once_and_counters_reach_the_summary() {
    // Force GEMM sharding even on this toy model / a 1-CPU host, so the
    // `nn.gemm.shard_ns` histogram the autotuner reads actually fills.
    // Must precede the first kernel dispatch (the crossover is cached).
    std::env::set_var("CACHEBOX_GEMM_THRESHOLD", "1");
    let guard =
        telemetry::init(telemetry::TelemetryConfig::new("gan-telemetry-test").with_summary(false));
    assert!(telemetry::enabled());

    // 5 samples in batches of 2 with R=2: each epoch ends with a tail
    // chunk of 1 sample, so the mismatch condition occurs twice — the
    // warning must still fire exactly once.
    let mut trainer = tiny_trainer(2, 11)
        .with_replicas(2)
        .with_parallelism(Parallelism::new(2))
        .with_heartbeat_every(1);
    let history = trainer.fit(&toy_samples(5), &Normalizer::new(4));
    assert_eq!(history.len(), 2);

    let summary = guard.finish();
    assert_eq!(
        summary.counters.get("gan.replica.mismatch"),
        Some(&1),
        "one-shot mismatch counter: {:?}",
        summary.counters
    );
    // The gauge pair records the most recent step's effective count
    // (the epoch-final tail chunk of 1 sample).
    assert_eq!(summary.gauges["gan.replica.requested"], 2.0);
    assert_eq!(summary.gauges["gan.replica.count"], 1.0);
    // Every step recorded its shard wall times.
    assert!(summary.histograms["gan.replica.shard_ns"].count > 0);
    assert!(summary.span("gan.train_step").is_some());
    // Heartbeats were requested every step but no JSONL sink exists, so
    // nothing was written — emission must degrade, not crash.
    assert_eq!(summary.records, 0, "no sink, no records");
    // One epoch of shard timings is enough for the autotuner to install
    // a conv chunk (recorded in the manifest when a sink exists).
    assert!(
        cachebox_nn::tuning::conv_chunk().is_some(),
        "autotune after epoch 0 should install a chunk"
    );
    cachebox_nn::tuning::clear_conv_chunk();
}
