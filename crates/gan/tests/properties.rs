//! Property-based tests for CB-GAN components.

use cachebox_gan::data::Normalizer;
use cachebox_gan::{CacheParams, PatchGan, PatchGanConfig, UNetConfig, UNetGenerator};
use cachebox_heatmap::Heatmap;
use cachebox_nn::layers::Layer;
use cachebox_nn::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Normalizer round-trips counts below the saturation point.
    #[test]
    fn normalizer_roundtrip(
        window in 1u64..200,
        scale in 1.0f32..8.0,
        frac in 0.0f32..0.99,
    ) {
        let norm = Normalizer::new(window).with_scale(scale);
        let max_unsaturated = window as f32 / scale;
        let count = frac * max_unsaturated;
        let rt = norm.from_model(norm.to_model(count));
        prop_assert!((rt - count).abs() < 1e-2 * (1.0 + count), "{count} -> {rt}");
    }

    /// to_model is monotone in the count and bounded in [-1, 1].
    #[test]
    fn to_model_monotone(window in 1u64..100, scale in 1.0f32..8.0) {
        let norm = Normalizer::new(window).with_scale(scale);
        let mut prev = -1.0f32;
        for c in 0..(2 * window) {
            let v = norm.to_model(c as f32);
            prop_assert!((-1.0..=1.0).contains(&v));
            prop_assert!(v >= prev);
            prev = v;
        }
    }

    /// Rounded recovery always yields integral non-negative counts.
    #[test]
    fn rounding_yields_integers(window in 2u64..100, value in -1.0f32..1.0) {
        let norm = Normalizer::new(window).with_rounding(true);
        let count = norm.from_model(value);
        prop_assert!(count >= 0.0);
        prop_assert!((count - count.round()).abs() < 1e-6);
    }

    /// Cache-parameter features are distinct for distinct configurations
    /// over the paper's range.
    #[test]
    fn cache_params_injective(
        s1 in 0u32..7,
        w1 in 1u32..17,
        s2 in 0u32..7,
        w2 in 1u32..17,
    ) {
        let a = CacheParams::new(1 << (s1 + 4), w1);
        let b = CacheParams::new(1 << (s2 + 4), w2);
        if (a.sets, a.ways) != (b.sets, b.ways) {
            prop_assert_ne!(a.features(), b.features());
        } else {
            prop_assert_eq!(a.features(), b.features());
        }
    }

    /// Generator output is always within tanh range and input-shaped,
    /// for any valid ngf/size combination.
    #[test]
    fn generator_output_well_formed(
        size_pow in 2u32..5,
        ngf in 1usize..5,
        batch in 1usize..3,
        seed in 0u64..50,
    ) {
        let size = 1usize << size_pow;
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(size, ngf), seed);
        let x = Tensor::full([batch, 1, size, size], 0.25);
        let y = g.forward(&x, None, false);
        prop_assert_eq!(y.shape(), [batch, 1, size, size]);
        prop_assert!(y.data().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    /// Discriminator output grid size follows the stride-2 stage count.
    #[test]
    fn discriminator_grid_size(n_layers in 1usize..3, ndf in 1usize..6) {
        let mut d = PatchGan::new(PatchGanConfig::new(2, ndf, n_layers), 1);
        let size = 64usize;
        let out = d.forward(&Tensor::zeros([1, 2, size, size]), false);
        // Each stride-2 stage halves; the two stride-1 k4 convs each
        // shave 1 pixel (pad 1).
        let expected = size / (1 << n_layers) - 2;
        prop_assert_eq!(out.h(), expected);
    }

    /// Heatmap batch conversion round-trips sample order.
    #[test]
    fn batch_roundtrip_order(count in 1usize..6) {
        let norm = Normalizer::new(32);
        let maps: Vec<Heatmap> = (0..count)
            .map(|k| {
                let mut h = Heatmap::zeros(4, 4);
                h.set(k % 4, (k * 2) % 4, (k + 1) as f32);
                h
            })
            .collect();
        let refs: Vec<&Heatmap> = maps.iter().collect();
        let batch = norm.heatmaps_to_batch(&refs);
        for (k, original) in maps.iter().enumerate() {
            let back = norm.tensor_to_heatmap(&batch, k);
            for (a, b) in original.data().iter().zip(back.data()) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }
    }
}
