//! Replica-count invariance of data-parallel training.
//!
//! The contract (docs/PARALLEL_TRAINING.md): for any replica count R,
//! per-step losses and post-step weights are **bitwise identical** to
//! the single-replica run. Batch shards follow the canonical halving
//! tree, per-replica gradient arenas reduce pairwise in fixed replica
//! order, batch-norm statistics rendezvous over the global batch, and
//! dropout masks are keyed by global sample index — so the only thing R
//! changes is wall-clock time.
//!
//! The suite runs with and without `--features simd` (the GEMM
//! microkernel is bitwise identical across dispatch paths), and the CI
//! matrix runs it under `CACHEBOX_THREADS=1` and `=4`.

use cachebox_gan::condition::CacheParams;
use cachebox_gan::data::{Normalizer, Sample};
use cachebox_gan::unet::UNetAsLayer;
use cachebox_gan::{
    GanTrainer, PatchGan, PatchGanConfig, TrainConfig, TrainStats, UNetConfig, UNetGenerator,
};
use cachebox_heatmap::Heatmap;
use cachebox_nn::layers::Layer;

/// A toy "cache filter" dataset: the miss map keeps only the top half
/// of the access map, as if lower rows always hit.
fn toy_samples(n: usize) -> Vec<Sample> {
    (0..n)
        .map(|k| {
            let mut access = Heatmap::zeros(8, 8);
            let mut miss = Heatmap::zeros(8, 8);
            for col in 0..8 {
                for row in 0..8 {
                    let v = ((k + col + row) % 4) as f32;
                    access.set(row, col, v);
                    if row < 4 {
                        miss.set(row, col, v);
                    }
                }
            }
            Sample { access, miss, params: CacheParams::new(64, 12) }
        })
        .collect()
}

/// Trains a fresh model pair for three epochs with `replicas` workers
/// and returns the per-epoch losses plus the final flat weights and
/// batch-norm buffers of both networks.
fn run(replicas: usize, dropout: bool, conditioned: bool) -> (Vec<TrainStats>, Vec<f32>) {
    let mut gc = UNetConfig::for_image_size(8, 4).with_dropout(dropout);
    if conditioned {
        gc = gc.with_param_features(2);
    }
    let g = UNetGenerator::new(gc, 17);
    let d = PatchGan::new(PatchGanConfig::new(2, 4, 1), 18);
    let config = TrainConfig { epochs: 3, batch_size: 4, lr: 2e-3, ..Default::default() };
    let mut trainer = GanTrainer::new(g, d, config).with_replicas(replicas);
    let history = trainer.fit(&toy_samples(8), &Normalizer::new(4));
    let (mut g, mut d) = trainer.into_networks();
    let mut state = Vec::new();
    {
        let mut layer = UNetAsLayer(&mut g);
        let mut w = vec![0.0f32; layer.param_count()];
        layer.read_values_flat(&mut w);
        state.extend_from_slice(&w);
        let mut b = vec![0.0f32; layer.buffer_scalar_count()];
        layer.read_buffers_flat(&mut b);
        state.extend_from_slice(&b);
    }
    let mut w = vec![0.0f32; d.param_count()];
    d.read_values_flat(&mut w);
    state.extend_from_slice(&w);
    let mut b = vec![0.0f32; d.buffer_scalar_count()];
    d.read_buffers_flat(&mut b);
    state.extend_from_slice(&b);
    (history, state)
}

fn assert_bitwise_equal(
    r: usize,
    base: &(Vec<TrainStats>, Vec<f32>),
    got: &(Vec<TrainStats>, Vec<f32>),
) {
    assert_eq!(base.0.len(), got.0.len());
    for (epoch, (a, b)) in base.0.iter().zip(&got.0).enumerate() {
        assert_eq!(
            a.d_loss.to_bits(),
            b.d_loss.to_bits(),
            "d_loss differs at R={r}, epoch {epoch}: {} vs {}",
            a.d_loss,
            b.d_loss
        );
        assert_eq!(
            a.g_adv.to_bits(),
            b.g_adv.to_bits(),
            "g_adv differs at R={r}, epoch {epoch}: {} vs {}",
            a.g_adv,
            b.g_adv
        );
        assert_eq!(
            a.g_l1.to_bits(),
            b.g_l1.to_bits(),
            "g_l1 differs at R={r}, epoch {epoch}: {} vs {}",
            a.g_l1,
            b.g_l1
        );
    }
    assert_eq!(base.1.len(), got.1.len(), "state arenas differ in length at R={r}");
    for (i, (a, b)) in base.1.iter().zip(&got.1).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "state scalar {i} differs at R={r}: {a} vs {b}");
    }
}

#[test]
fn replica_counts_are_bitwise_invariant() {
    let base = run(1, false, false);
    for r in [2, 4] {
        assert_bitwise_equal(r, &base, &run(r, false, false));
    }
    assert!(base.0.iter().all(|s| s.d_loss.is_finite() && s.g_l1.is_finite()));
}

#[test]
fn replica_counts_are_bitwise_invariant_with_dropout() {
    // Dropout masks are keyed by (layer seed, step nonce, global sample,
    // element), so sharding the batch cannot change which activations
    // drop.
    let base = run(1, true, false);
    for r in [2, 4] {
        assert_bitwise_equal(r, &base, &run(r, true, false));
    }
}

#[test]
fn replica_counts_are_bitwise_invariant_when_conditioned() {
    let base = run(1, false, true);
    assert_bitwise_equal(2, &base, &run(2, false, true));
}

#[test]
fn oversized_replica_request_clamps_to_batch() {
    // R=16 over batches of 4 must clamp to 4 workers and still match.
    let base = run(1, false, false);
    assert_bitwise_equal(16, &base, &run(16, false, false));
}
