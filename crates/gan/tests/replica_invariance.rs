//! Replica-count invariance of data-parallel training.
//!
//! The contract (docs/PARALLEL_TRAINING.md): for any replica count
//! 1 ≤ R ≤ batch — ragged counts included — per-step losses and
//! post-step weights are **bitwise identical** to the single-replica
//! run. Batch shards follow the canonical (padded) halving tree,
//! per-replica gradient arenas reduce pairwise in fixed replica order,
//! batch-norm statistics rendezvous over the global batch, and dropout
//! masks are keyed by global sample index — so the only thing R changes
//! is wall-clock time. Requests for more replicas than samples are
//! refused loudly, never clamped.
//!
//! The suite runs with and without `--features simd` (the GEMM
//! microkernel is bitwise identical across dispatch paths), and the CI
//! matrix runs it under `CACHEBOX_THREADS=1`, `=3`, and `=4`.

use cachebox_gan::condition::CacheParams;
use cachebox_gan::data::{Normalizer, Sample};
use cachebox_gan::unet::UNetAsLayer;
use cachebox_gan::{
    GanTrainer, PatchGan, PatchGanConfig, TrainConfig, TrainError, TrainStats, UNetConfig,
    UNetGenerator,
};
use cachebox_heatmap::Heatmap;
use cachebox_nn::layers::Layer;

/// A toy "cache filter" dataset: the miss map keeps only the top half
/// of the access map, as if lower rows always hit.
fn toy_samples(n: usize) -> Vec<Sample> {
    (0..n)
        .map(|k| {
            let mut access = Heatmap::zeros(8, 8);
            let mut miss = Heatmap::zeros(8, 8);
            for col in 0..8 {
                for row in 0..8 {
                    let v = ((k + col + row) % 4) as f32;
                    access.set(row, col, v);
                    if row < 4 {
                        miss.set(row, col, v);
                    }
                }
            }
            Sample { access, miss, params: CacheParams::new(64, 12) }
        })
        .collect()
}

/// Trains a fresh model pair for three epochs with `replicas` workers
/// over `samples` toy samples in batches of `batch_size`, returning the
/// per-epoch losses plus the final flat weights and batch-norm buffers
/// of both networks.
fn run_sized(
    replicas: usize,
    dropout: bool,
    conditioned: bool,
    batch_size: usize,
    samples: usize,
) -> (Vec<TrainStats>, Vec<f32>) {
    let mut gc = UNetConfig::for_image_size(8, 4).with_dropout(dropout);
    if conditioned {
        gc = gc.with_param_features(2);
    }
    let g = UNetGenerator::new(gc, 17);
    let d = PatchGan::new(PatchGanConfig::new(2, 4, 1), 18);
    let config = TrainConfig { epochs: 3, batch_size, lr: 2e-3, ..Default::default() };
    let mut trainer = GanTrainer::new(g, d, config).with_replicas(replicas);
    let history = trainer.fit(&toy_samples(samples), &Normalizer::new(4));
    let (mut g, mut d) = trainer.into_networks();
    let mut state = Vec::new();
    {
        let mut layer = UNetAsLayer(&mut g);
        let mut w = vec![0.0f32; layer.param_count()];
        layer.read_values_flat(&mut w);
        state.extend_from_slice(&w);
        let mut b = vec![0.0f32; layer.buffer_scalar_count()];
        layer.read_buffers_flat(&mut b);
        state.extend_from_slice(&b);
    }
    let mut w = vec![0.0f32; d.param_count()];
    d.read_values_flat(&mut w);
    state.extend_from_slice(&w);
    let mut b = vec![0.0f32; d.buffer_scalar_count()];
    d.read_buffers_flat(&mut b);
    state.extend_from_slice(&b);
    (history, state)
}

/// [`run_sized`] at the suite's default shape: batches of 4 over 8
/// samples.
fn run(replicas: usize, dropout: bool, conditioned: bool) -> (Vec<TrainStats>, Vec<f32>) {
    run_sized(replicas, dropout, conditioned, 4, 8)
}

fn assert_bitwise_equal(
    r: usize,
    base: &(Vec<TrainStats>, Vec<f32>),
    got: &(Vec<TrainStats>, Vec<f32>),
) {
    assert_eq!(base.0.len(), got.0.len());
    for (epoch, (a, b)) in base.0.iter().zip(&got.0).enumerate() {
        assert_eq!(
            a.d_loss.to_bits(),
            b.d_loss.to_bits(),
            "d_loss differs at R={r}, epoch {epoch}: {} vs {}",
            a.d_loss,
            b.d_loss
        );
        assert_eq!(
            a.g_adv.to_bits(),
            b.g_adv.to_bits(),
            "g_adv differs at R={r}, epoch {epoch}: {} vs {}",
            a.g_adv,
            b.g_adv
        );
        assert_eq!(
            a.g_l1.to_bits(),
            b.g_l1.to_bits(),
            "g_l1 differs at R={r}, epoch {epoch}: {} vs {}",
            a.g_l1,
            b.g_l1
        );
    }
    assert_eq!(base.1.len(), got.1.len(), "state arenas differ in length at R={r}");
    for (i, (a, b)) in base.1.iter().zip(&got.1).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "state scalar {i} differs at R={r}: {a} vs {b}");
    }
}

#[test]
fn replica_counts_are_bitwise_invariant() {
    let base = run(1, false, false);
    for r in [2, 3, 4] {
        assert_bitwise_equal(r, &base, &run(r, false, false));
    }
    assert!(base.0.iter().all(|s| s.d_loss.is_finite() && s.g_l1.is_finite()));
}

#[test]
fn ragged_replica_counts_are_bitwise_invariant() {
    // Batches of 6: the ragged counts the pow2 clamp used to silently
    // round down (3 → 2, 5 → 4, 6 → 4) must now run exactly and still
    // reproduce the single-replica bits.
    let base = run_sized(1, false, false, 6, 12);
    for r in [3, 5, 6] {
        assert_bitwise_equal(r, &base, &run_sized(r, false, false, 6, 12));
    }
}

#[test]
fn odd_batch_sizes_are_bitwise_invariant() {
    // Odd batches exercise uneven tree splits at every level (a batch
    // of 5 over 3 replicas shards as 1/2/2).
    let base = run_sized(1, false, false, 5, 10);
    for r in [2, 3, 5] {
        assert_bitwise_equal(r, &base, &run_sized(r, false, false, 5, 10));
    }
}

#[test]
fn replica_counts_are_bitwise_invariant_with_dropout() {
    // Dropout masks are keyed by (layer seed, step nonce, global sample,
    // element), so sharding the batch cannot change which activations
    // drop.
    let base = run(1, true, false);
    for r in [2, 3, 4] {
        assert_bitwise_equal(r, &base, &run(r, true, false));
    }
}

#[test]
fn replica_counts_are_bitwise_invariant_when_conditioned() {
    let base = run(1, false, true);
    assert_bitwise_equal(2, &base, &run(2, false, true));
    assert_bitwise_equal(3, &base, &run(3, false, true));
}

#[test]
fn ragged_tail_batch_shrinks_and_stays_invariant() {
    // 10 samples in batches of 4 leave a tail batch of 2. fit() shrinks
    // only that tail (R_eff = 2 for R = 4) with a one-shot warning and
    // still matches the single-replica run bitwise.
    let base = run_sized(1, false, false, 4, 10);
    for r in [3, 4] {
        assert_bitwise_equal(r, &base, &run_sized(r, false, false, 4, 10));
    }
}

#[test]
fn oversized_replica_request_is_refused() {
    // R=16 over batches of 4 used to clamp silently; train_step now
    // returns ReplicaOverflow and fit refuses up front.
    let g = UNetGenerator::new(UNetConfig::for_image_size(8, 4).with_dropout(false), 17);
    let d = PatchGan::new(PatchGanConfig::new(2, 4, 1), 18);
    let config = TrainConfig { epochs: 1, batch_size: 4, lr: 2e-3, ..Default::default() };
    let mut trainer = GanTrainer::new(g, d, config).with_replicas(16);

    let samples = toy_samples(4);
    let norm = Normalizer::new(4);
    let refs: Vec<&Sample> = samples.iter().collect();
    let (input, target, _params) = cachebox_gan::data::collate(&refs, &norm);
    let batch = cachebox_gan::TrainSample { input, target, params: None };
    match trainer.train_step(&batch) {
        Err(TrainError::ReplicaOverflow { requested: 16, batch_size: 4, .. }) => {}
        other => panic!("expected ReplicaOverflow, got {other:?}"),
    }

    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        trainer.fit(&samples, &norm);
    }))
    .unwrap_err();
    let msg = panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("exceeds batch size"), "unexpected panic message: {msg}");
}
