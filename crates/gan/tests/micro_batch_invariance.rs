//! Micro-batch invariance of pipelined training.
//!
//! The contract (docs/PARALLEL_TRAINING.md § micro-batch pipelining):
//! for any micro-batch count 1 ≤ M ≤ batch — ragged counts included —
//! and any replica count combined with it, per-step losses and
//! post-step weights are **bitwise identical** to the unpipelined
//! (M = 1, R = 1) run. Micro-batch shards follow the canonical halving
//! tree, replica sub-shards refine the same tree (midpoints are
//! self-similar), gradient terms merge along the frontier plan in
//! fixed worker order, batch-norm statistics rendezvous over the
//! global batch with every micro-batch's workers concurrent, and the
//! segment-streamed optimizer steps replay the whole-arena update in
//! identical element order — so the only thing (R, M) changes is when
//! work happens, never what it computes.
//!
//! The CI micro-batch matrix additionally runs the full gan suite
//! under `CACHEBOX_MICRO_BATCHES=1` and `=3`.

use cachebox_gan::condition::CacheParams;
use cachebox_gan::data::{Normalizer, Sample};
use cachebox_gan::unet::UNetAsLayer;
use cachebox_gan::{
    GanTrainer, PatchGan, PatchGanConfig, TrainConfig, TrainStats, UNetConfig, UNetGenerator,
};
use cachebox_heatmap::Heatmap;
use cachebox_nn::layers::Layer;

/// A toy "cache filter" dataset: the miss map keeps only the top half
/// of the access map, as if lower rows always hit.
fn toy_samples(n: usize) -> Vec<Sample> {
    (0..n)
        .map(|k| {
            let mut access = Heatmap::zeros(8, 8);
            let mut miss = Heatmap::zeros(8, 8);
            for col in 0..8 {
                for row in 0..8 {
                    let v = ((k + col + row) % 4) as f32;
                    access.set(row, col, v);
                    if row < 4 {
                        miss.set(row, col, v);
                    }
                }
            }
            Sample { access, miss, params: CacheParams::new(64, 12) }
        })
        .collect()
}

/// Trains a fresh model pair for three epochs with `micro_batches`
/// micro-batches and `replicas` replicas over `samples` toy samples in
/// batches of `batch_size`, returning the per-epoch losses plus the
/// final flat weights and batch-norm buffers of both networks.
fn run_sized(
    micro_batches: usize,
    replicas: usize,
    dropout: bool,
    conditioned: bool,
    batch_size: usize,
    samples: usize,
) -> (Vec<TrainStats>, Vec<f32>) {
    let mut gc = UNetConfig::for_image_size(8, 4).with_dropout(dropout);
    if conditioned {
        gc = gc.with_param_features(2);
    }
    let g = UNetGenerator::new(gc, 17);
    let d = PatchGan::new(PatchGanConfig::new(2, 4, 1), 18);
    let config = TrainConfig { epochs: 3, batch_size, lr: 2e-3, ..Default::default() };
    let mut trainer =
        GanTrainer::new(g, d, config).with_replicas(replicas).with_micro_batches(micro_batches);
    let history = trainer.fit(&toy_samples(samples), &Normalizer::new(4));
    let (mut g, mut d) = trainer.into_networks();
    let mut state = Vec::new();
    {
        let mut layer = UNetAsLayer(&mut g);
        let mut w = vec![0.0f32; layer.param_count()];
        layer.read_values_flat(&mut w);
        state.extend_from_slice(&w);
        let mut b = vec![0.0f32; layer.buffer_scalar_count()];
        layer.read_buffers_flat(&mut b);
        state.extend_from_slice(&b);
    }
    let mut w = vec![0.0f32; d.param_count()];
    d.read_values_flat(&mut w);
    state.extend_from_slice(&w);
    let mut b = vec![0.0f32; d.buffer_scalar_count()];
    d.read_buffers_flat(&mut b);
    state.extend_from_slice(&b);
    (history, state)
}

/// [`run_sized`] at the suite's default shape: batches of 4 over 8
/// samples.
fn run(
    micro_batches: usize,
    replicas: usize,
    dropout: bool,
    conditioned: bool,
) -> (Vec<TrainStats>, Vec<f32>) {
    run_sized(micro_batches, replicas, dropout, conditioned, 4, 8)
}

fn assert_bitwise_equal(
    label: &str,
    base: &(Vec<TrainStats>, Vec<f32>),
    got: &(Vec<TrainStats>, Vec<f32>),
) {
    assert_eq!(base.0.len(), got.0.len());
    for (epoch, (a, b)) in base.0.iter().zip(&got.0).enumerate() {
        assert_eq!(
            a.d_loss.to_bits(),
            b.d_loss.to_bits(),
            "d_loss differs at {label}, epoch {epoch}: {} vs {}",
            a.d_loss,
            b.d_loss
        );
        assert_eq!(
            a.g_adv.to_bits(),
            b.g_adv.to_bits(),
            "g_adv differs at {label}, epoch {epoch}: {} vs {}",
            a.g_adv,
            b.g_adv
        );
        assert_eq!(
            a.g_l1.to_bits(),
            b.g_l1.to_bits(),
            "g_l1 differs at {label}, epoch {epoch}: {} vs {}",
            a.g_l1,
            b.g_l1
        );
    }
    assert_eq!(base.1.len(), got.1.len(), "state arenas differ in length at {label}");
    for (i, (a, b)) in base.1.iter().zip(&got.1).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "state scalar {i} differs at {label}: {a} vs {b}");
    }
}

#[test]
fn micro_batch_counts_are_bitwise_invariant() {
    // M ∈ {2, 3, 4} over batches of 4: ragged 3 exercises uneven tree
    // splits; 4 is the one-sample-per-micro-batch extreme.
    let base = run(1, 1, false, false);
    for m in [2, 3, 4] {
        assert_bitwise_equal(&format!("M={m}"), &base, &run(m, 1, false, false));
    }
    assert!(base.0.iter().all(|s| s.d_loss.is_finite() && s.g_l1.is_finite()));
}

#[test]
fn micro_batches_compose_with_replicas_bitwise() {
    // The joint grid: each micro-batch is sub-sharded across the
    // replicas, and the hierarchical frontier must still reproduce the
    // whole-batch tree.
    let base = run(1, 1, false, false);
    for (m, r) in [(2, 2), (2, 3), (3, 2), (4, 3)] {
        assert_bitwise_equal(&format!("M={m} R={r}"), &base, &run(m, r, false, false));
    }
}

#[test]
fn ragged_micro_and_replica_composition_is_bitwise_invariant() {
    // The satellite regression shape: batches of 11 across R=3
    // replicas and M=5 micro-batches (micro sizes 2/3/3/1/2, each
    // sub-sharded again — a worker per (micro, replica) cell, clamped
    // where a micro-batch is smaller than R). 22 samples also leave no
    // tail, so every batch runs the full grid.
    let base = run_sized(1, 1, false, false, 11, 22);
    assert_bitwise_equal("M=5 R=3 batch=11", &base, &run_sized(5, 3, false, false, 11, 22));
    assert_bitwise_equal("M=11 R=1 batch=11", &base, &run_sized(11, 1, false, false, 11, 22));
}

#[test]
fn micro_batches_are_bitwise_invariant_with_dropout() {
    // Dropout masks are keyed by (layer seed, step nonce, global
    // sample, element), so micro-batch sharding cannot change which
    // activations drop.
    let base = run(1, 1, true, false);
    for (m, r) in [(2, 1), (3, 1), (4, 1), (2, 3)] {
        assert_bitwise_equal(&format!("M={m} R={r} dropout"), &base, &run(m, r, true, false));
    }
}

#[test]
fn micro_batches_are_bitwise_invariant_when_conditioned() {
    let base = run(1, 1, false, true);
    for (m, r) in [(2, 1), (4, 1), (3, 3)] {
        assert_bitwise_equal(&format!("M={m} R={r} cond"), &base, &run(m, r, false, true));
    }
}

#[test]
fn tail_batches_stay_invariant_under_micro_batching() {
    // 10 samples in batches of 4 leave a tail batch of 2; both the
    // micro-batch count and the replica count clamp on that tail and
    // the run still matches the unpipelined bits.
    let base = run_sized(1, 1, false, false, 4, 10);
    for (m, r) in [(3, 1), (4, 4)] {
        assert_bitwise_equal(
            &format!("M={m} R={r} tail"),
            &base,
            &run_sized(m, r, false, false, 4, 10),
        );
    }
}
