//! Per-set replacement policy implementations.
//!
//! Each cache set owns a [`SetReplacer`] tracking recency/insertion state
//! for its ways. The cache core informs the replacer of hits and fills and
//! asks it for a victim way when the set is full.

use crate::config::ReplacementPolicyKind;
use std::fmt;

/// Per-set replacement state.
///
/// Implementations are created through [`new_set_replacer`]; the trait is
/// object-safe so the cache can store heterogeneous policies uniformly.
pub trait SetReplacer: fmt::Debug + Send {
    /// Called when `way` hits.
    fn on_hit(&mut self, way: usize);
    /// Called when a new block is filled into `way`.
    fn on_fill(&mut self, way: usize);
    /// Chooses the victim way. Only called when every way is occupied.
    fn victim(&mut self) -> usize;
}

/// Creates the per-set state for `policy` with `ways` ways.
///
/// `seed` perturbs stochastic policies (Random) so distinct sets make
/// independent — but deterministic — choices.
pub fn new_set_replacer(
    policy: ReplacementPolicyKind,
    ways: usize,
    seed: u64,
) -> Box<dyn SetReplacer> {
    match policy {
        ReplacementPolicyKind::Lru => Box::new(Lru::new(ways)),
        ReplacementPolicyKind::Fifo => Box::new(Fifo::new(ways)),
        ReplacementPolicyKind::Random => Box::new(RandomVictim::new(ways, seed)),
        ReplacementPolicyKind::TreePlru => Box::new(TreePlru::new(ways)),
        ReplacementPolicyKind::Srrip => Box::new(Srrip::new(ways)),
    }
}

/// True LRU via per-way timestamps.
#[derive(Debug)]
struct Lru {
    stamps: Vec<u64>,
    clock: u64,
}

impl Lru {
    fn new(ways: usize) -> Self {
        Lru { stamps: vec![0; ways], clock: 0 }
    }

    fn touch(&mut self, way: usize) {
        self.clock += 1;
        self.stamps[way] = self.clock;
    }
}

impl SetReplacer for Lru {
    fn on_hit(&mut self, way: usize) {
        self.touch(way);
    }

    fn on_fill(&mut self, way: usize) {
        self.touch(way);
    }

    fn victim(&mut self) -> usize {
        self.stamps
            .iter()
            .enumerate()
            .min_by_key(|(_, &stamp)| stamp)
            .map(|(way, _)| way)
            .expect("set has at least one way")
    }
}

/// FIFO: evict the oldest fill; hits do not refresh.
#[derive(Debug)]
struct Fifo {
    stamps: Vec<u64>,
    clock: u64,
}

impl Fifo {
    fn new(ways: usize) -> Self {
        Fifo { stamps: vec![0; ways], clock: 0 }
    }
}

impl SetReplacer for Fifo {
    fn on_hit(&mut self, _way: usize) {}

    fn on_fill(&mut self, way: usize) {
        self.clock += 1;
        self.stamps[way] = self.clock;
    }

    fn victim(&mut self) -> usize {
        self.stamps
            .iter()
            .enumerate()
            .min_by_key(|(_, &stamp)| stamp)
            .map(|(way, _)| way)
            .expect("set has at least one way")
    }
}

/// Deterministic pseudo-random victim selection (xorshift64*).
#[derive(Debug)]
struct RandomVictim {
    ways: usize,
    state: u64,
}

impl RandomVictim {
    fn new(ways: usize, seed: u64) -> Self {
        RandomVictim { ways, state: seed | 1 }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl SetReplacer for RandomVictim {
    fn on_hit(&mut self, _way: usize) {}

    fn on_fill(&mut self, _way: usize) {}

    fn victim(&mut self) -> usize {
        (self.next() % self.ways as u64) as usize
    }
}

/// Tree-based pseudo-LRU over the next power of two of `ways`.
///
/// Internal nodes hold one bit pointing toward the pseudo-least-recently
/// used half. Hits and fills flip the bits along the way's path; the
/// victim walk follows the bits. Victims landing on padding ways (when
/// `ways` is not a power of two) are clamped to the last real way.
#[derive(Debug)]
struct TreePlru {
    ways: usize,
    leaves: usize,
    bits: Vec<bool>,
}

impl TreePlru {
    fn new(ways: usize) -> Self {
        let leaves = ways.next_power_of_two().max(2);
        TreePlru { ways, leaves, bits: vec![false; leaves - 1] }
    }

    fn touch(&mut self, way: usize) {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut span = self.leaves;
        while span > 1 {
            let half = span / 2;
            let go_right = way >= lo + half;
            // Point away from the touched half.
            self.bits[node] = !go_right;
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo += half;
            }
            span = half;
        }
    }
}

impl SetReplacer for TreePlru {
    fn on_hit(&mut self, way: usize) {
        self.touch(way);
    }

    fn on_fill(&mut self, way: usize) {
        self.touch(way);
    }

    fn victim(&mut self) -> usize {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut span = self.leaves;
        while span > 1 {
            let half = span / 2;
            let go_right = self.bits[node];
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo += half;
            }
            span = half;
        }
        lo.min(self.ways - 1)
    }
}

/// SRRIP with 2-bit re-reference prediction values.
///
/// Blocks are inserted with RRPV 2 ("long"), promoted to 0 on hit; the
/// victim is the first way with RRPV 3, aging all ways when none exists.
#[derive(Debug)]
struct Srrip {
    rrpv: Vec<u8>,
}

const RRPV_MAX: u8 = 3;

impl Srrip {
    fn new(ways: usize) -> Self {
        Srrip { rrpv: vec![RRPV_MAX; ways] }
    }
}

impl SetReplacer for Srrip {
    fn on_hit(&mut self, way: usize) {
        self.rrpv[way] = 0;
    }

    fn on_fill(&mut self, way: usize) {
        self.rrpv[way] = RRPV_MAX - 1;
    }

    fn victim(&mut self) -> usize {
        loop {
            if let Some(way) = self.rrpv.iter().position(|&r| r == RRPV_MAX) {
                return way;
            }
            for r in &mut self.rrpv {
                *r += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_all(replacer: &mut dyn SetReplacer, ways: usize) {
        for way in 0..ways {
            replacer.on_fill(way);
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut r = Lru::new(4);
        fill_all(&mut r, 4);
        r.on_hit(0); // order now: 1 (oldest), 2, 3, 0
        assert_eq!(r.victim(), 1);
        r.on_hit(1);
        assert_eq!(r.victim(), 2);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut r = Fifo::new(3);
        fill_all(&mut r, 3);
        r.on_hit(0);
        r.on_hit(0);
        assert_eq!(r.victim(), 0, "hits must not refresh FIFO order");
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let mut a = RandomVictim::new(8, 42);
        let mut b = RandomVictim::new(8, 42);
        for _ in 0..100 {
            let (va, vb) = (a.victim(), b.victim());
            assert_eq!(va, vb);
            assert!(va < 8);
        }
        let mut c = RandomVictim::new(8, 43);
        let differs = (0..100).any(|_| a.victim() != c.victim());
        assert!(differs, "different seeds should diverge");
    }

    #[test]
    fn plru_victim_avoids_most_recent() {
        let mut r = TreePlru::new(4);
        fill_all(&mut r, 4);
        let hot = 3;
        r.on_hit(hot);
        assert_ne!(r.victim(), hot);
    }

    #[test]
    fn plru_handles_non_power_of_two_ways() {
        let mut r = TreePlru::new(3);
        fill_all(&mut r, 3);
        for _ in 0..16 {
            let v = r.victim();
            assert!(v < 3);
            r.on_fill(v);
        }
    }

    #[test]
    fn plru_single_way_degenerate() {
        let mut r = TreePlru::new(1);
        r.on_fill(0);
        assert_eq!(r.victim(), 0);
    }

    #[test]
    fn srrip_prefers_distant_rereference() {
        let mut r = Srrip::new(4);
        fill_all(&mut r, 4);
        r.on_hit(2); // RRPV 0 for way 2, RRPV 2 elsewhere
        let v = r.victim();
        assert_ne!(v, 2);
    }

    #[test]
    fn srrip_ages_when_no_max() {
        let mut r = Srrip::new(2);
        r.on_fill(0);
        r.on_fill(1);
        r.on_hit(0);
        r.on_hit(1);
        // All RRPV 0; victim must still terminate.
        let v = r.victim();
        assert!(v < 2);
    }

    #[test]
    fn factory_builds_every_policy() {
        for policy in [
            ReplacementPolicyKind::Lru,
            ReplacementPolicyKind::Fifo,
            ReplacementPolicyKind::Random,
            ReplacementPolicyKind::TreePlru,
            ReplacementPolicyKind::Srrip,
        ] {
            let mut r = new_set_replacer(policy, 4, 1);
            fill_all(&mut *r, 4);
            assert!(r.victim() < 4, "policy {policy}");
        }
    }

    #[test]
    fn lru_sequence_of_evictions_cycles() {
        let mut r = Lru::new(2);
        r.on_fill(0);
        r.on_fill(1);
        let v1 = r.victim();
        assert_eq!(v1, 0);
        r.on_fill(v1);
        assert_eq!(r.victim(), 1);
    }
}
