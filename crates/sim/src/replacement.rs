//! Per-set replacement policy implementations.
//!
//! Each cache set owns a [`SetReplacer`] tracking recency/insertion state
//! for its ways. The cache core informs the replacer of hits and fills and
//! asks it for a victim way when the set is full.

use crate::config::ReplacementPolicyKind;
use std::fmt;

/// Per-set replacement state.
///
/// Implementations are created through [`new_set_replacer`]; the trait is
/// object-safe so the cache can store heterogeneous policies uniformly.
pub trait SetReplacer: fmt::Debug + Send {
    /// Called when `way` hits.
    fn on_hit(&mut self, way: usize);
    /// Called when a new block is filled into `way`.
    fn on_fill(&mut self, way: usize);
    /// Chooses the victim way. Only called when every way is occupied.
    fn victim(&mut self) -> usize;
}

/// Creates the per-set state for `policy` with `ways` ways.
///
/// `seed` perturbs stochastic policies (Random) so distinct sets make
/// independent — but deterministic — choices.
pub fn new_set_replacer(
    policy: ReplacementPolicyKind,
    ways: usize,
    seed: u64,
) -> Box<dyn SetReplacer> {
    match policy {
        ReplacementPolicyKind::Lru => Box::new(Lru::new(ways)),
        ReplacementPolicyKind::Fifo => Box::new(Fifo::new(ways)),
        ReplacementPolicyKind::Random => Box::new(RandomVictim::new(ways, seed)),
        ReplacementPolicyKind::TreePlru => Box::new(TreePlru::new(ways)),
        ReplacementPolicyKind::Srrip => Box::new(Srrip::new(ways)),
    }
}

/// True LRU via per-way timestamps.
#[derive(Debug)]
struct Lru {
    stamps: Vec<u64>,
    clock: u64,
}

impl Lru {
    fn new(ways: usize) -> Self {
        Lru { stamps: vec![0; ways], clock: 0 }
    }

    fn touch(&mut self, way: usize) {
        self.clock += 1;
        self.stamps[way] = self.clock;
    }
}

impl SetReplacer for Lru {
    fn on_hit(&mut self, way: usize) {
        self.touch(way);
    }

    fn on_fill(&mut self, way: usize) {
        self.touch(way);
    }

    fn victim(&mut self) -> usize {
        self.stamps
            .iter()
            .enumerate()
            .min_by_key(|(_, &stamp)| stamp)
            .map(|(way, _)| way)
            .expect("set has at least one way")
    }
}

/// FIFO: evict the oldest fill; hits do not refresh.
#[derive(Debug)]
struct Fifo {
    stamps: Vec<u64>,
    clock: u64,
}

impl Fifo {
    fn new(ways: usize) -> Self {
        Fifo { stamps: vec![0; ways], clock: 0 }
    }
}

impl SetReplacer for Fifo {
    fn on_hit(&mut self, _way: usize) {}

    fn on_fill(&mut self, way: usize) {
        self.clock += 1;
        self.stamps[way] = self.clock;
    }

    fn victim(&mut self) -> usize {
        self.stamps
            .iter()
            .enumerate()
            .min_by_key(|(_, &stamp)| stamp)
            .map(|(way, _)| way)
            .expect("set has at least one way")
    }
}

/// Deterministic pseudo-random victim selection (xorshift64*).
#[derive(Debug)]
struct RandomVictim {
    ways: usize,
    state: u64,
}

impl RandomVictim {
    fn new(ways: usize, seed: u64) -> Self {
        // The cache seeds sets 1, 2, 3, …; `seed | 1` would collapse each
        // even/odd pair (2k, 2k+1) onto one xorshift state, correlating
        // adjacent sets. Finalize with splitmix64 so nearby seeds land on
        // unrelated (and always non-zero) states.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        RandomVictim { ways, state: z.max(1) }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl SetReplacer for RandomVictim {
    fn on_hit(&mut self, _way: usize) {}

    fn on_fill(&mut self, _way: usize) {}

    fn victim(&mut self) -> usize {
        (self.next() % self.ways as u64) as usize
    }
}

/// Tree-based pseudo-LRU over the next power of two of `ways`.
///
/// Internal nodes hold one bit pointing toward the pseudo-least-recently
/// used half. Hits and fills flip the bits along the way's path; the
/// victim walk follows the bits. When `ways` is not a power of two the
/// walk treats padding leaves as most-recently-used and steers into the
/// sibling subtree, so real ways keep their PLRU ordering instead of the
/// last real way absorbing every padding-bound walk.
#[derive(Debug)]
struct TreePlru {
    ways: usize,
    leaves: usize,
    bits: Vec<bool>,
}

impl TreePlru {
    fn new(ways: usize) -> Self {
        let leaves = ways.next_power_of_two().max(2);
        TreePlru { ways, leaves, bits: vec![false; leaves - 1] }
    }

    fn touch(&mut self, way: usize) {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut span = self.leaves;
        while span > 1 {
            let half = span / 2;
            let go_right = way >= lo + half;
            // Point away from the touched half.
            self.bits[node] = !go_right;
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo += half;
            }
            span = half;
        }
    }
}

impl SetReplacer for TreePlru {
    fn on_hit(&mut self, way: usize) {
        self.touch(way);
    }

    fn on_fill(&mut self, way: usize) {
        self.touch(way);
    }

    fn victim(&mut self) -> usize {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut span = self.leaves;
        while span > 1 {
            let half = span / 2;
            // Never descend into a subtree holding only padding leaves
            // (`lo + half >= ways`); padding counts as most-recently-used.
            // The left subtree always contains a real way, so `lo < ways`
            // holds throughout and the final leaf needs no clamping.
            let go_right = self.bits[node] && lo + half < self.ways;
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo += half;
            }
            span = half;
        }
        lo
    }
}

/// SRRIP with 2-bit re-reference prediction values.
///
/// Blocks are inserted with RRPV 2 ("long"), promoted to 0 on hit; the
/// victim is the first way with RRPV 3, aging all ways when none exists.
#[derive(Debug)]
struct Srrip {
    rrpv: Vec<u8>,
}

const RRPV_MAX: u8 = 3;

impl Srrip {
    fn new(ways: usize) -> Self {
        Srrip { rrpv: vec![RRPV_MAX; ways] }
    }
}

impl SetReplacer for Srrip {
    fn on_hit(&mut self, way: usize) {
        self.rrpv[way] = 0;
    }

    fn on_fill(&mut self, way: usize) {
        self.rrpv[way] = RRPV_MAX - 1;
    }

    fn victim(&mut self) -> usize {
        loop {
            if let Some(way) = self.rrpv.iter().position(|&r| r == RRPV_MAX) {
                return way;
            }
            for r in &mut self.rrpv {
                *r += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_all(replacer: &mut dyn SetReplacer, ways: usize) {
        for way in 0..ways {
            replacer.on_fill(way);
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut r = Lru::new(4);
        fill_all(&mut r, 4);
        r.on_hit(0); // order now: 1 (oldest), 2, 3, 0
        assert_eq!(r.victim(), 1);
        r.on_hit(1);
        assert_eq!(r.victim(), 2);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut r = Fifo::new(3);
        fill_all(&mut r, 3);
        r.on_hit(0);
        r.on_hit(0);
        assert_eq!(r.victim(), 0, "hits must not refresh FIFO order");
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let mut a = RandomVictim::new(8, 42);
        let mut b = RandomVictim::new(8, 42);
        for _ in 0..100 {
            let (va, vb) = (a.victim(), b.victim());
            assert_eq!(va, vb);
            assert!(va < 8);
        }
        let mut c = RandomVictim::new(8, 43);
        let differs = (0..100).any(|_| a.victim() != c.victim());
        assert!(differs, "different seeds should diverge");
    }

    #[test]
    fn random_adjacent_seeds_diverge() {
        // The cache seeds sets 1, 2, 3, …; a plain `seed | 1` collapsed
        // each even/odd pair onto one state, so sets 2 and 3 made
        // identical "random" choices.
        let mut a = RandomVictim::new(8, 2);
        let mut b = RandomVictim::new(8, 3);
        let differs = (0..100).any(|_| a.victim() != b.victim());
        assert!(differs, "adjacent seeds must yield distinct victim streams");
    }

    #[test]
    fn random_all_adjacent_set_pairs_diverge() {
        // Sweep the seed range a realistic cache uses (one per set) and
        // require every adjacent pair to diverge within a few draws.
        for seed in 1u64..64 {
            let mut a = RandomVictim::new(16, seed);
            let mut b = RandomVictim::new(16, seed + 1);
            let differs = (0..64).any(|_| a.victim() != b.victim());
            assert!(differs, "seeds {seed} and {} collide", seed + 1);
        }
    }

    #[test]
    fn plru_victim_avoids_most_recent() {
        let mut r = TreePlru::new(4);
        fill_all(&mut r, 4);
        let hot = 3;
        r.on_hit(hot);
        assert_ne!(r.victim(), hot);
    }

    #[test]
    fn plru_handles_non_power_of_two_ways() {
        let mut r = TreePlru::new(3);
        fill_all(&mut r, 3);
        for _ in 0..16 {
            let v = r.victim();
            assert!(v < 3);
            r.on_fill(v);
        }
    }

    #[test]
    fn plru_padding_walk_does_not_evict_recent_way() {
        // 6 ways → 8 leaves, padding 6 and 7. After hitting 4, 5, 0 the
        // root and right-half bits point into the padding subtree; the
        // old clamp then evicted way 5 — touched one step earlier — while
        // steering picks way 4, the LRU way of the right half.
        let mut r = TreePlru::new(6);
        fill_all(&mut r, 6);
        r.on_hit(4);
        r.on_hit(5);
        r.on_hit(0);
        assert_eq!(r.victim(), 4);
    }

    #[test]
    fn plru_victim_distribution_covers_all_ways() {
        // Under steady evict/refill cycling every real way must take
        // evictions. The old clamp starved way 4 of a 6-way set entirely
        // (0 evictions) and routed half of all evictions to way 5.
        for ways in [3usize, 6] {
            let mut r = TreePlru::new(ways);
            fill_all(&mut r, ways);
            let rounds = ways * 64;
            let mut counts = vec![0usize; ways];
            for _ in 0..rounds {
                let v = r.victim();
                assert!(v < ways, "victim {v} out of range for {ways} ways");
                counts[v] += 1;
                r.on_fill(v);
            }
            assert!(counts.iter().all(|&c| c > 0), "{ways}-way starvation: {counts:?}");
            if ways == 6 {
                let max = *counts.iter().max().unwrap();
                assert!(max <= rounds / 3, "{ways}-way skew: {counts:?}");
            }
        }
    }

    #[test]
    fn plru_single_way_degenerate() {
        let mut r = TreePlru::new(1);
        r.on_fill(0);
        assert_eq!(r.victim(), 0);
    }

    #[test]
    fn srrip_prefers_distant_rereference() {
        let mut r = Srrip::new(4);
        fill_all(&mut r, 4);
        r.on_hit(2); // RRPV 0 for way 2, RRPV 2 elsewhere
        let v = r.victim();
        assert_ne!(v, 2);
    }

    #[test]
    fn srrip_ages_when_no_max() {
        let mut r = Srrip::new(2);
        r.on_fill(0);
        r.on_fill(1);
        r.on_hit(0);
        r.on_hit(1);
        // All RRPV 0; victim must still terminate.
        let v = r.victim();
        assert!(v < 2);
    }

    #[test]
    fn factory_builds_every_policy() {
        for policy in [
            ReplacementPolicyKind::Lru,
            ReplacementPolicyKind::Fifo,
            ReplacementPolicyKind::Random,
            ReplacementPolicyKind::TreePlru,
            ReplacementPolicyKind::Srrip,
        ] {
            let mut r = new_set_replacer(policy, 4, 1);
            fill_all(&mut *r, 4);
            assert!(r.victim() < 4, "policy {policy}");
        }
    }

    #[test]
    fn lru_sequence_of_evictions_cycles() {
        let mut r = Lru::new(2);
        r.on_fill(0);
        r.on_fill(1);
        let v1 = r.victim();
        assert_eq!(v1, 0);
        r.on_fill(v1);
        assert_eq!(r.victim(), 1);
    }
}
