//! Multi-level cache hierarchy simulation.
//!
//! The paper's key observation (§2) is that *every bus* between memory
//! components carries a trace renderable as a heatmap: the stream entering
//! L1 is the program's access trace; the stream entering L2 is L1's miss
//! trace; and so on. [`CacheHierarchy::run`] replays a trace through up to
//! three levels and returns, for each level, both streams.

use crate::cache::Cache;
use crate::config::{CacheConfig, InclusionPolicy};
use crate::stats::CacheStats;
use cachebox_trace::Trace;
use serde::{Deserialize, Serialize};

/// Configuration of a multi-level hierarchy.
///
/// # Example
///
/// ```
/// use cachebox_sim::{CacheConfig, HierarchyConfig};
///
/// let config = HierarchyConfig::three_level(
///     CacheConfig::new(64, 12),
///     CacheConfig::new(1024, 8),
///     CacheConfig::new(2048, 16),
/// );
/// assert_eq!(config.levels.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Per-level configurations, innermost (L1) first.
    pub levels: Vec<CacheConfig>,
    /// Inclusion policy between adjacent levels.
    pub inclusion: InclusionPolicy,
}

impl HierarchyConfig {
    /// Builds a hierarchy from innermost-first level configurations.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn new(levels: Vec<CacheConfig>) -> Self {
        assert!(!levels.is_empty(), "hierarchy needs at least one level");
        HierarchyConfig { levels, inclusion: InclusionPolicy::default() }
    }

    /// Convenience constructor for the paper's L1/L2/L3 setup.
    pub fn three_level(l1: CacheConfig, l2: CacheConfig, l3: CacheConfig) -> Self {
        Self::new(vec![l1, l2, l3])
    }

    /// Returns a copy with the given inclusion policy.
    pub fn with_inclusion(mut self, inclusion: InclusionPolicy) -> Self {
        self.inclusion = inclusion;
        self
    }

    /// The paper's default hierarchy: 64set-12way L1, 1024set-8way L2,
    /// 2048set-16way L3.
    pub fn paper_default() -> Self {
        Self::three_level(
            CacheConfig::new(64, 12),
            CacheConfig::new(1024, 8),
            CacheConfig::new(2048, 16),
        )
    }
}

/// The two streams observed at one cache level.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LevelStreams {
    /// Accesses entering the level (its demand stream).
    pub accesses: Trace,
    /// Accesses that missed (the stream leaving toward the next level).
    pub misses: Trace,
    /// Per-access hit flags aligned with `accesses`.
    pub hit_flags: Vec<bool>,
    /// The level's counters for this run.
    pub stats: CacheStats,
}

impl LevelStreams {
    /// Hit rate at this level for this run.
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }
}

/// Result of replaying a trace through the full hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HierarchyResult {
    /// Per-level streams, innermost (L1) first.
    pub levels: Vec<LevelStreams>,
}

impl HierarchyResult {
    /// Streams at `level` (0 = L1).
    pub fn level(&self, level: usize) -> &LevelStreams {
        &self.levels[level]
    }
}

/// A multi-level cache hierarchy.
///
/// # Example
///
/// ```
/// use cachebox_sim::{CacheHierarchy, HierarchyConfig, CacheConfig};
/// use cachebox_trace::{Address, MemoryAccess, Trace};
///
/// let mut hierarchy = CacheHierarchy::new(HierarchyConfig::new(vec![
///     CacheConfig::new(2, 1),
///     CacheConfig::new(8, 2),
/// ]));
/// let trace: Trace = (0..64u64)
///     .map(|i| MemoryAccess::load(i, Address::new((i % 8) * 64)))
///     .collect();
/// let result = hierarchy.run(&trace);
/// // L2 sees exactly L1's misses.
/// assert_eq!(
///     result.level(1).accesses.len(),
///     result.level(0).misses.len(),
/// );
/// ```
#[derive(Debug)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    caches: Vec<Cache>,
}

impl CacheHierarchy {
    /// Creates an all-cold hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        let caches = config.levels.iter().map(|&c| Cache::new(c)).collect();
        CacheHierarchy { config, caches }
    }

    /// The hierarchy's configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Empties every level.
    pub fn flush(&mut self) {
        for cache in &mut self.caches {
            cache.flush();
        }
    }

    /// Replays `trace` through every level, threading each level's miss
    /// stream into the next, and returns the per-level streams.
    ///
    /// All caches start cold for this run (the hierarchy is flushed
    /// first), matching the paper's warmup-free ChampSim runs.
    pub fn run(&mut self, trace: &Trace) -> HierarchyResult {
        let _span = cachebox_telemetry::span("sim.hierarchy.run");
        self.flush();
        let n = self.caches.len();
        let mut accesses: Vec<Trace> = (0..n).map(|_| Trace::new()).collect();
        let mut misses: Vec<Trace> = (0..n).map(|_| Trace::new()).collect();
        let mut hit_flags: Vec<Vec<bool>> = (0..n).map(|_| Vec::new()).collect();
        // Thread each access through the levels immediately so inclusive
        // back-invalidations are ordered correctly relative to later
        // accesses.
        for access in trace {
            for level in 0..n {
                accesses[level].push(*access);
                let outcome = self.caches[level].access(access.address, access.kind.is_store());
                hit_flags[level].push(outcome.is_hit());
                match outcome {
                    crate::cache::AccessOutcome::Hit => break,
                    crate::cache::AccessOutcome::Miss { evicted } => {
                        if self.config.inclusion == InclusionPolicy::Inclusive {
                            if let Some(ev) = evicted {
                                for inner in 0..level {
                                    self.caches[inner].invalidate_block(ev.block);
                                }
                            }
                        }
                        misses[level].push(*access);
                    }
                }
            }
        }
        for (level, cache) in self.caches.iter().enumerate() {
            cache.stats().record_telemetry(&format!("L{level}.{}", cache.config().name()));
        }
        let levels = accesses
            .into_iter()
            .zip(misses)
            .zip(hit_flags)
            .zip(&self.caches)
            .map(|(((accesses, misses), hit_flags), cache)| LevelStreams {
                accesses,
                misses,
                hit_flags,
                stats: *cache.stats(),
            })
            .collect();
        HierarchyResult { levels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachebox_trace::{Address, MemoryAccess};

    fn cyclic_trace(blocks: u64, len: u64) -> Trace {
        (0..len).map(|i| MemoryAccess::load(i, Address::new((i % blocks) * 64))).collect()
    }

    #[test]
    fn miss_stream_threads_between_levels() {
        let mut h = CacheHierarchy::new(HierarchyConfig::new(vec![
            CacheConfig::new(1, 2), // 2 blocks
            CacheConfig::new(1, 8), // 8 blocks
        ]));
        let r = h.run(&cyclic_trace(4, 400));
        // L1 (2 blocks, cyclic 4 with LRU) thrashes: every access misses.
        assert_eq!(r.level(0).stats.hits, 0);
        // L2 holds all 4 blocks: only cold misses escape.
        assert_eq!(r.level(1).stats.misses, 4);
        assert_eq!(r.level(1).accesses.len(), r.level(0).misses.len());
        assert_eq!(r.level(1).hit_rate(), (400.0 - 4.0) / 400.0);
    }

    #[test]
    fn l1_hit_suppresses_l2_traffic() {
        let mut h = CacheHierarchy::new(HierarchyConfig::new(vec![
            CacheConfig::new(4, 2),
            CacheConfig::new(16, 2),
        ]));
        let r = h.run(&cyclic_trace(2, 100));
        assert_eq!(r.level(0).stats.misses, 2);
        assert_eq!(r.level(1).accesses.len(), 2);
    }

    #[test]
    fn three_level_monotone_traffic() {
        let mut h = CacheHierarchy::new(HierarchyConfig::paper_default());
        let trace = cyclic_trace(2000, 20_000);
        let r = h.run(&trace);
        assert_eq!(r.levels.len(), 3);
        for w in r.levels.windows(2) {
            assert!(
                w[1].accesses.len() <= w[0].accesses.len(),
                "traffic must shrink (or stay equal) moving outward"
            );
            assert_eq!(w[1].accesses, w[0].misses);
        }
    }

    #[test]
    fn inclusive_back_invalidation() {
        // L1 big, L2 tiny: L2 evictions must kick blocks out of L1.
        let config = HierarchyConfig::new(vec![CacheConfig::new(16, 4), CacheConfig::new(1, 1)])
            .with_inclusion(InclusionPolicy::Inclusive);
        let mut h = CacheHierarchy::new(config);
        // Access block 0 then block 1: block 1's L2 fill evicts block 0
        // from L2, which must invalidate block 0 in L1 as well.
        let trace: Trace = vec![
            MemoryAccess::load(0, Address::new(0)),
            MemoryAccess::load(1, Address::new(64)),
            MemoryAccess::load(2, Address::new(0)),
        ]
        .into();
        let r = h.run(&trace);
        // Third access re-misses in L1 because of the back-invalidation.
        assert_eq!(r.level(0).stats.misses, 3);
    }

    #[test]
    fn non_inclusive_keeps_inner_copies() {
        let config = HierarchyConfig::new(vec![CacheConfig::new(16, 4), CacheConfig::new(1, 1)]);
        let mut h = CacheHierarchy::new(config);
        let trace: Trace = vec![
            MemoryAccess::load(0, Address::new(0)),
            MemoryAccess::load(1, Address::new(64)),
            MemoryAccess::load(2, Address::new(0)),
        ]
        .into();
        let r = h.run(&trace);
        // Third access hits in L1: L2's eviction does not disturb L1.
        assert_eq!(r.level(0).stats.misses, 2);
        assert_eq!(r.level(0).stats.hits, 1);
    }

    #[test]
    fn run_is_cold_start_each_time() {
        let mut h = CacheHierarchy::new(HierarchyConfig::new(vec![CacheConfig::new(4, 2)]));
        let t = cyclic_trace(2, 10);
        let r1 = h.run(&t);
        let r2 = h.run(&t);
        assert_eq!(r1, r2, "runs must be independent (cold start)");
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_hierarchy_rejected() {
        HierarchyConfig::new(vec![]);
    }
}
