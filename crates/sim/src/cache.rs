//! The set-associative cache core.

use crate::config::{CacheConfig, WritePolicy};
use crate::prefetch::Prefetcher;
use crate::replacement::{new_set_replacer, SetReplacer};
use crate::result::SimResult;
use crate::stats::CacheStats;
use cachebox_trace::{Address, MemoryAccess, Trace};

/// A line evicted or invalidated from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Block number of the departing line.
    pub block: u64,
    /// Whether the line was dirty (requires a writeback).
    pub dirty: bool,
}

/// Outcome of a single demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The block was present.
    Hit,
    /// The block was absent and has been filled, possibly evicting a line.
    Miss {
        /// Line evicted to make room, if the set was full.
        evicted: Option<EvictedLine>,
    },
}

impl AccessOutcome {
    /// Returns `true` for [`AccessOutcome::Hit`].
    pub const fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

#[derive(Debug)]
struct Line {
    tag: u64,
    dirty: bool,
    prefetched: bool,
}

#[derive(Debug)]
struct CacheSet {
    lines: Vec<Option<Line>>,
    replacer: Box<dyn SetReplacer>,
}

impl CacheSet {
    fn find(&self, tag: u64) -> Option<usize> {
        self.lines.iter().position(|line| line.as_ref().is_some_and(|l| l.tag == tag))
    }

    fn free_way(&self) -> Option<usize> {
        self.lines.iter().position(Option::is_none)
    }
}

/// A single set-associative, write-allocate, write-back cache.
///
/// Replays demand accesses and optional prefetch fills; see the
/// [crate-level example](crate) for basic usage.
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<CacheSet>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-cold) cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = (0..config.sets)
            .map(|i| CacheSet {
                lines: (0..config.ways).map(|_| None).collect(),
                replacer: new_set_replacer(config.policy, config.ways, i as u64 + 1),
            })
            .collect();
        Cache { config, sets, stats: CacheStats::default() }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the counters (cache contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Empties the cache (contents and counters).
    pub fn flush(&mut self) {
        *self = Cache::new(self.config);
    }

    /// Performs one demand access to a byte address.
    pub fn access(&mut self, address: Address, is_store: bool) -> AccessOutcome {
        self.access_block(address.block(self.config.block_offset_bits), is_store)
    }

    /// Performs one demand access to a block number.
    pub fn access_block(&mut self, block: u64, is_store: bool) -> AccessOutcome {
        let write_through = self.config.write_policy == WritePolicy::WriteThroughNoAllocate;
        let set_idx = self.config.set_index_of_block(block);
        let tag = self.config.tag_of_block(block);
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.find(tag) {
            self.stats.hits += 1;
            let line = set.lines[way].as_mut().expect("found way is occupied");
            if line.prefetched {
                line.prefetched = false;
                self.stats.useful_prefetches += 1;
            }
            if is_store {
                if write_through {
                    self.stats.write_throughs += 1;
                } else {
                    line.dirty = true;
                }
            }
            set.replacer.on_hit(way);
            return AccessOutcome::Hit;
        }
        self.stats.misses += 1;
        if is_store && write_through {
            // No-write-allocate: the store goes straight through without
            // filling the cache.
            self.stats.write_throughs += 1;
            return AccessOutcome::Miss { evicted: None };
        }
        let evicted = self.fill(block, is_store && !write_through, false);
        AccessOutcome::Miss { evicted }
    }

    /// Checks presence without disturbing replacement state or counters.
    pub fn contains_block(&self, block: u64) -> bool {
        let set = &self.sets[self.config.set_index_of_block(block)];
        set.find(self.config.tag_of_block(block)).is_some()
    }

    /// Fills `block` as a prefetch. Returns the evicted line, if any.
    /// Does nothing (and returns `None`) when the block is already present.
    pub fn fill_prefetch(&mut self, block: u64) -> Option<EvictedLine> {
        if self.contains_block(block) {
            return None;
        }
        self.stats.prefetches += 1;
        self.fill(block, false, true)
    }

    /// Removes `block` if present (back-invalidation from an outer level).
    pub fn invalidate_block(&mut self, block: u64) -> Option<EvictedLine> {
        let set_idx = self.config.set_index_of_block(block);
        let tag = self.config.tag_of_block(block);
        let set = &mut self.sets[set_idx];
        let way = set.find(tag)?;
        let line = set.lines[way].take().expect("found way is occupied");
        self.stats.invalidations += 1;
        if line.dirty {
            self.stats.writebacks += 1;
        }
        Some(EvictedLine { block, dirty: line.dirty })
    }

    fn fill(&mut self, block: u64, dirty: bool, prefetched: bool) -> Option<EvictedLine> {
        let set_idx = self.config.set_index_of_block(block);
        let tag = self.config.tag_of_block(block);
        let set = &mut self.sets[set_idx];
        let (way, evicted) = match set.free_way() {
            Some(way) => (way, None),
            None => {
                let way = set.replacer.victim();
                let old = set.lines[way].take().expect("victim way is occupied");
                self.stats.evictions += 1;
                if old.dirty {
                    self.stats.writebacks += 1;
                }
                (
                    way,
                    Some(EvictedLine {
                        block: self.config.block_of(set_idx, old.tag),
                        dirty: old.dirty,
                    }),
                )
            }
        };
        set.lines[way] = Some(Line { tag, dirty, prefetched });
        set.replacer.on_fill(way);
        evicted
    }

    /// Replays a whole trace, returning per-access hit flags and stats.
    ///
    /// Counters are reset at the start of the run so the result reflects
    /// exactly this trace.
    pub fn run(&mut self, trace: &Trace) -> SimResult {
        let _span = cachebox_telemetry::span("sim.run");
        self.reset_stats();
        let hit_flags =
            trace.iter().map(|a| self.access(a.address, a.kind.is_store()).is_hit()).collect();
        self.stats.record_telemetry(&self.config.name());
        SimResult { hit_flags, stats: self.stats }
    }

    /// Replays a trace with a prefetcher attached.
    ///
    /// On every demand access the prefetcher observes the access (and
    /// whether it hit) and may return candidate addresses which are filled
    /// into the cache. Returns the simulation result plus the trace of
    /// issued prefetch addresses (stamped with the triggering access's
    /// instruction number) — the "prefetch heatmap" stream of RQ7.
    pub fn run_with_prefetcher(
        &mut self,
        trace: &Trace,
        prefetcher: &mut dyn Prefetcher,
    ) -> (SimResult, Trace) {
        let _span = cachebox_telemetry::span("sim.run_with_prefetcher");
        self.reset_stats();
        let mut hit_flags = Vec::with_capacity(trace.len());
        let mut prefetch_trace = Trace::with_capacity(trace.len() / 4);
        let mut candidates = Vec::new();
        for a in trace {
            let hit = self.access(a.address, a.kind.is_store()).is_hit();
            hit_flags.push(hit);
            candidates.clear();
            prefetcher.observe(a, hit, &mut candidates);
            for &addr in &candidates {
                let block = addr.block(self.config.block_offset_bits);
                if !self.contains_block(block) {
                    self.fill_prefetch(block);
                    prefetch_trace.push(MemoryAccess::load(a.instr, addr));
                }
            }
        }
        self.stats.record_telemetry(&self.config.name());
        (SimResult { hit_flags, stats: self.stats }, prefetch_trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplacementPolicyKind;
    use cachebox_trace::trace::TraceBuilder;

    fn addr(block: u64) -> Address {
        Address::new(block * 64)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::new(4, 2));
        assert!(!c.access(addr(0), false).is_hit());
        assert!(c.access(addr(0), false).is_hit());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn same_block_different_offsets_hit() {
        let mut c = Cache::new(CacheConfig::new(4, 2));
        c.access(Address::new(0), false);
        assert!(c.access(Address::new(63), false).is_hit());
        assert!(!c.access(Address::new(64), false).is_hit());
    }

    #[test]
    fn lru_eviction_order() {
        // Direct-mapped within one set: 1 set, 2 ways.
        let mut c = Cache::new(CacheConfig::new(1, 2));
        c.access(addr(0), false);
        c.access(addr(1), false);
        c.access(addr(0), false); // 1 is now LRU
        match c.access(addr(2), false) {
            AccessOutcome::Miss { evicted: Some(e) } => assert_eq!(e.block, 1),
            other => panic!("expected eviction of block 1, got {other:?}"),
        }
        assert!(c.access(addr(0), false).is_hit());
        assert!(!c.contains_block(1));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = Cache::new(CacheConfig::new(1, 1));
        c.access(addr(0), true); // store => dirty
        c.access(addr(1), false); // evicts dirty block 0
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = Cache::new(CacheConfig::new(1, 1));
        c.access(addr(0), false);
        c.access(addr(0), true); // hit, now dirty
        c.access(addr(1), false);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = Cache::new(CacheConfig::new(4, 2));
        c.access(addr(0), true);
        let ev = c.invalidate_block(0).expect("block present");
        assert!(ev.dirty);
        assert!(!c.contains_block(0));
        assert_eq!(c.invalidate_block(0), None);
        assert_eq!(c.stats().invalidations, 1);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn prefetch_fill_and_usefulness() {
        let mut c = Cache::new(CacheConfig::new(4, 2));
        c.fill_prefetch(5);
        assert!(c.contains_block(5));
        assert_eq!(c.stats().prefetches, 1);
        assert!(c.access(addr(5), false).is_hit());
        assert_eq!(c.stats().useful_prefetches, 1);
        // A second hit must not double-count usefulness.
        c.access(addr(5), false);
        assert_eq!(c.stats().useful_prefetches, 1);
    }

    #[test]
    fn prefetch_of_present_block_is_noop() {
        let mut c = Cache::new(CacheConfig::new(4, 2));
        c.access(addr(3), false);
        assert_eq!(c.fill_prefetch(3), None);
        assert_eq!(c.stats().prefetches, 0);
    }

    #[test]
    fn run_resets_stats_between_calls() {
        let mut c = Cache::new(CacheConfig::new(4, 2));
        let mut b = TraceBuilder::new();
        b.load(addr(0)).load(addr(0));
        let t = b.finish();
        let r1 = c.run(&t);
        let r2 = c.run(&t);
        assert_eq!(r1.stats.misses, 1);
        // Second run: block already resident, no misses.
        assert_eq!(r2.stats.misses, 0);
        assert_eq!(r2.stats.accesses(), 2);
    }

    #[test]
    fn flush_empties_contents() {
        let mut c = Cache::new(CacheConfig::new(4, 2));
        c.access(addr(0), false);
        c.flush();
        assert!(!c.contains_block(0));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes_with_lru() {
        // 1 set, 4 ways, cyclic over 5 blocks: LRU always evicts the next
        // block to be used => 0% hit rate after warmup.
        let mut c = Cache::new(CacheConfig::new(1, 4));
        let mut b = TraceBuilder::new();
        for i in 0..50u64 {
            b.load(addr(i % 5));
        }
        let r = c.run(&b.finish());
        assert_eq!(r.stats.hits, 0, "LRU must thrash on cyclic overcapacity pattern");
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let mut c = Cache::new(CacheConfig::new(1, 8));
        let mut b = TraceBuilder::new();
        for i in 0..80u64 {
            b.load(addr(i % 5));
        }
        let r = c.run(&b.finish());
        assert_eq!(r.stats.misses, 5, "only cold misses expected");
    }

    #[test]
    fn set_indexing_separates_conflicting_blocks() {
        // Blocks 0 and 4 map to set 0 of a 4-set cache; 1 maps to set 1.
        let mut c = Cache::new(CacheConfig::new(4, 1));
        c.access(addr(0), false);
        c.access(addr(1), false);
        c.access(addr(4), false); // evicts 0, not 1
        assert!(!c.contains_block(0));
        assert!(c.contains_block(1));
        assert!(c.contains_block(4));
    }

    #[test]
    fn write_through_no_allocate_semantics() {
        use crate::config::WritePolicy;
        let config = CacheConfig::new(4, 2).with_write_policy(WritePolicy::WriteThroughNoAllocate);
        let mut c = Cache::new(config);
        // Store miss: does not fill.
        assert!(!c.access(addr(0), true).is_hit());
        assert!(!c.contains_block(0));
        assert_eq!(c.stats().write_throughs, 1);
        // Load fills; subsequent store hit writes through, no dirty line.
        c.access(addr(0), false);
        assert!(c.access(addr(0), true).is_hit());
        assert_eq!(c.stats().write_throughs, 2);
        // Evicting the line must not cause a writeback (never dirty).
        c.access(addr(4), false);
        c.access(addr(8), false);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn write_through_loads_unaffected() {
        use crate::config::WritePolicy;
        let wt = CacheConfig::new(8, 2).with_write_policy(WritePolicy::WriteThroughNoAllocate);
        let wb = CacheConfig::new(8, 2);
        let trace: Trace =
            (0..200u64).map(|i| MemoryAccess::load(i, Address::new((i % 24) * 64))).collect();
        let mut a = Cache::new(wt);
        let mut b = Cache::new(wb);
        assert_eq!(a.run(&trace).stats.hits, b.run(&trace).stats.hits);
    }

    #[test]
    fn policies_all_simulate() {
        for policy in [
            ReplacementPolicyKind::Lru,
            ReplacementPolicyKind::Fifo,
            ReplacementPolicyKind::Random,
            ReplacementPolicyKind::TreePlru,
            ReplacementPolicyKind::Srrip,
        ] {
            let mut c = Cache::new(CacheConfig::new(2, 2).with_policy(policy));
            let mut b = TraceBuilder::new();
            for i in 0..100u64 {
                b.load(addr(i % 7));
            }
            let r = c.run(&b.finish());
            assert_eq!(r.stats.accesses(), 100);
            assert!(r.stats.misses >= 7, "at least cold misses for {policy}");
        }
    }
}
