//! Cache statistics counters.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// Counters collected while simulating a cache.
///
/// # Example
///
/// ```
/// use cachebox_sim::CacheStats;
///
/// let mut stats = CacheStats::default();
/// stats.hits = 90;
/// stats.misses = 10;
/// assert_eq!(stats.accesses(), 100);
/// assert!((stats.hit_rate() - 0.9).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Lines evicted to make room for a fill.
    pub evictions: u64,
    /// Dirty lines written back on eviction or invalidation.
    pub writebacks: u64,
    /// Prefetch fills issued into the cache.
    pub prefetches: u64,
    /// Prefetched lines that were later hit by a demand access.
    pub useful_prefetches: u64,
    /// Lines removed by back-invalidation from an outer level.
    pub invalidations: u64,
    /// Stores propagated immediately under a write-through policy.
    pub write_throughs: u64,
}

impl CacheStats {
    /// Total demand accesses (hits + misses).
    pub const fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; 0.0 when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Miss rate in `[0, 1]`; 0.0 when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Fraction of issued prefetches that proved useful.
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetches == 0 {
            0.0
        } else {
            self.useful_prefetches as f64 / self.prefetches as f64
        }
    }

    /// When telemetry is active, publishes the counters under
    /// `sim.<label>.{accesses,hits,misses,evictions,writebacks}`;
    /// repeated runs with the same label accumulate. A no-op (without
    /// allocating) when telemetry is disabled.
    pub fn record_telemetry(&self, label: &str) {
        use cachebox_telemetry as telemetry;
        if !telemetry::enabled() {
            return;
        }
        telemetry::counter(&format!("sim.{label}.accesses"), self.accesses());
        telemetry::counter(&format!("sim.{label}.hits"), self.hits);
        telemetry::counter(&format!("sim.{label}.misses"), self.misses);
        telemetry::counter(&format!("sim.{label}.evictions"), self.evictions);
        telemetry::counter(&format!("sim.{label}.writebacks"), self.writebacks);
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.evictions += rhs.evictions;
        self.writebacks += rhs.writebacks;
        self.prefetches += rhs.prefetches;
        self.useful_prefetches += rhs.useful_prefetches;
        self.invalidations += rhs.invalidations;
        self.write_throughs += rhs.write_throughs;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses={} hits={} misses={} hit_rate={:.4} evictions={} writebacks={} prefetches={}",
            self.accesses(),
            self.hits,
            self.misses,
            self.hit_rate(),
            self.evictions,
            self.writebacks,
            self.prefetches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_rates_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.prefetch_accuracy(), 0.0);
    }

    #[test]
    fn rates_sum_to_one() {
        let s = CacheStats { hits: 3, misses: 7, ..Default::default() };
        assert!((s.hit_rate() + s.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = CacheStats { hits: 1, misses: 2, evictions: 3, ..Default::default() };
        let b = CacheStats { hits: 10, misses: 20, writebacks: 5, ..Default::default() };
        a += b;
        assert_eq!(a.hits, 11);
        assert_eq!(a.misses, 22);
        assert_eq!(a.evictions, 3);
        assert_eq!(a.writebacks, 5);
    }

    #[test]
    fn display_mentions_hit_rate() {
        let s = CacheStats { hits: 1, misses: 1, ..Default::default() };
        assert!(s.to_string().contains("hit_rate=0.5000"));
    }
}
