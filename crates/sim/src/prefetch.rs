//! Hardware prefetcher models.
//!
//! RQ7 of the paper extends CacheBox to learn prefetcher behaviour: the
//! prefetcher observes the demand address stream and emits prefetch
//! addresses, which become the *prefetch heatmap* paired with the access
//! heatmap. The paper evaluates a next-line prefetcher; a stride/stream
//! prefetcher is included for the extension experiments.

use cachebox_trace::{Address, MemoryAccess};
use std::fmt;

/// When a prefetcher fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefetchTrigger {
    /// Fire on every demand access (ChampSim's `next_line` behaviour).
    #[default]
    OnAccess,
    /// Fire only on demand misses.
    OnMiss,
}

/// A hardware prefetcher observing the demand stream.
///
/// Implementations push candidate prefetch *byte addresses* into `out`;
/// the cache decides whether each candidate actually fills (already
/// present lines are skipped).
pub trait Prefetcher: fmt::Debug + Send {
    /// Observes one demand access (`hit` tells whether it hit) and emits
    /// zero or more prefetch candidates.
    fn observe(&mut self, access: &MemoryAccess, hit: bool, out: &mut Vec<Address>);

    /// Resets internal state.
    fn reset(&mut self);
}

/// Next-line prefetcher: prefetches the block following each access.
///
/// # Example
///
/// ```
/// use cachebox_sim::{NextLinePrefetcher, Prefetcher, PrefetchTrigger};
/// use cachebox_trace::{Address, MemoryAccess};
///
/// let mut p = NextLinePrefetcher::new(6, PrefetchTrigger::OnAccess);
/// let mut out = Vec::new();
/// p.observe(&MemoryAccess::load(0, Address::new(0)), false, &mut out);
/// assert_eq!(out, vec![Address::new(64)]);
/// ```
#[derive(Debug, Clone)]
pub struct NextLinePrefetcher {
    block_offset_bits: u32,
    trigger: PrefetchTrigger,
    /// How many consecutive next blocks to prefetch (degree).
    degree: u32,
}

impl NextLinePrefetcher {
    /// Creates a degree-1 next-line prefetcher for `2^block_offset_bits`-byte
    /// blocks.
    pub fn new(block_offset_bits: u32, trigger: PrefetchTrigger) -> Self {
        NextLinePrefetcher { block_offset_bits, trigger, degree: 1 }
    }

    /// Sets the prefetch degree (number of consecutive next blocks).
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn with_degree(mut self, degree: u32) -> Self {
        assert!(degree > 0, "degree must be non-zero");
        self.degree = degree;
        self
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn observe(&mut self, access: &MemoryAccess, hit: bool, out: &mut Vec<Address>) {
        if self.trigger == PrefetchTrigger::OnMiss && hit {
            return;
        }
        let block_bytes = 1i64 << self.block_offset_bits;
        let base = access.address.block_base(self.block_offset_bits);
        for d in 1..=self.degree as i64 {
            out.push(base.offset(d * block_bytes));
        }
    }

    fn reset(&mut self) {}
}

/// Per-region stride detector state.
#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    region: u64,
    last_block: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// A region-based stride (stream) prefetcher.
///
/// Trace records carry sequence numbers rather than program counters, so
/// instead of ChampSim's IP-stride table this prefetcher keys its stride
/// detectors by address region (page), which captures the same
/// regular-stream behaviour from the information available in a trace.
/// Strides are confirmed after two consecutive matches before prefetches
/// are issued.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    block_offset_bits: u32,
    region_bits: u32,
    degree: u32,
    table: Vec<StrideEntry>,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher with `table_size` region detectors
    /// (rounded up to a power of two), 4 KiB regions, and degree 2.
    ///
    /// # Panics
    ///
    /// Panics if `table_size` is zero.
    pub fn new(block_offset_bits: u32, table_size: usize) -> Self {
        assert!(table_size > 0, "table size must be non-zero");
        StridePrefetcher {
            block_offset_bits,
            region_bits: 12,
            degree: 2,
            table: vec![StrideEntry::default(); table_size.next_power_of_two()],
        }
    }

    /// Sets the prefetch degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn with_degree(mut self, degree: u32) -> Self {
        assert!(degree > 0, "degree must be non-zero");
        self.degree = degree;
        self
    }

    fn slot(&self, region: u64) -> usize {
        (region as usize) & (self.table.len() - 1)
    }
}

impl Prefetcher for StridePrefetcher {
    fn observe(&mut self, access: &MemoryAccess, _hit: bool, out: &mut Vec<Address>) {
        let block = access.address.block(self.block_offset_bits);
        let region = access.address.as_u64() >> self.region_bits;
        let slot = self.slot(region);
        let degree = self.degree;
        let block_offset_bits = self.block_offset_bits;
        let entry = &mut self.table[slot];
        if !entry.valid || entry.region != region {
            *entry =
                StrideEntry { region, last_block: block, stride: 0, confidence: 0, valid: true };
            return;
        }
        let stride = block as i64 - entry.last_block as i64;
        if stride == 0 {
            return; // same block; keep state
        }
        if stride == entry.stride {
            entry.confidence = entry.confidence.saturating_add(1);
        } else {
            entry.stride = stride;
            entry.confidence = 0;
        }
        entry.last_block = block;
        if entry.confidence >= 1 {
            for d in 1..=degree as i64 {
                let target = block as i64 + d * entry.stride;
                if target >= 0 {
                    out.push(Address::new((target as u64) << block_offset_bits));
                }
            }
        }
    }

    fn reset(&mut self) {
        self.table.fill(StrideEntry::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(instr: u64, addr: u64) -> MemoryAccess {
        MemoryAccess::load(instr, Address::new(addr))
    }

    #[test]
    fn next_line_on_miss_only() {
        let mut p = NextLinePrefetcher::new(6, PrefetchTrigger::OnMiss);
        let mut out = Vec::new();
        p.observe(&load(0, 0), true, &mut out);
        assert!(out.is_empty());
        p.observe(&load(1, 0), false, &mut out);
        assert_eq!(out, vec![Address::new(64)]);
    }

    #[test]
    fn next_line_degree() {
        let mut p = NextLinePrefetcher::new(6, PrefetchTrigger::OnAccess).with_degree(3);
        let mut out = Vec::new();
        p.observe(&load(0, 128), false, &mut out);
        assert_eq!(out, vec![Address::new(192), Address::new(256), Address::new(320)]);
    }

    #[test]
    fn next_line_aligns_to_block_base() {
        let mut p = NextLinePrefetcher::new(6, PrefetchTrigger::OnAccess);
        let mut out = Vec::new();
        p.observe(&load(0, 70), false, &mut out);
        assert_eq!(out, vec![Address::new(128)]);
    }

    #[test]
    fn stride_detects_unit_stream() {
        let mut p = StridePrefetcher::new(6, 16).with_degree(1);
        let mut out = Vec::new();
        // Three accesses with stride 64 bytes (1 block): confidence builds
        // after the second identical stride.
        p.observe(&load(0, 0), false, &mut out);
        p.observe(&load(1, 64), false, &mut out);
        assert!(out.is_empty(), "stride not yet confirmed");
        p.observe(&load(2, 128), false, &mut out);
        assert_eq!(out, vec![Address::new(192)]);
    }

    #[test]
    fn stride_detects_negative_stride() {
        let mut p = StridePrefetcher::new(6, 16).with_degree(1);
        let mut out = Vec::new();
        p.observe(&load(0, 1024), false, &mut out);
        p.observe(&load(1, 960), false, &mut out);
        p.observe(&load(2, 896), false, &mut out);
        assert_eq!(out, vec![Address::new(832)]);
    }

    #[test]
    fn stride_resets_on_region_change() {
        let mut p = StridePrefetcher::new(6, 16).with_degree(1);
        let mut out = Vec::new();
        p.observe(&load(0, 0), false, &mut out);
        p.observe(&load(1, 64), false, &mut out);
        // Jump to a different 4 KiB region mapping to the same slot only if
        // table is small; use table 1 to force collision.
        let mut q = StridePrefetcher::new(6, 1).with_degree(1);
        out.clear();
        q.observe(&load(0, 0), false, &mut out);
        q.observe(&load(1, 0x10_0000), false, &mut out);
        q.observe(&load(2, 0x10_0040), false, &mut out);
        assert!(out.is_empty(), "collision evicts detector; stride not confirmed yet");
    }

    #[test]
    fn stride_ignores_same_block_rereference() {
        let mut p = StridePrefetcher::new(6, 16).with_degree(1);
        let mut out = Vec::new();
        p.observe(&load(0, 0), false, &mut out);
        p.observe(&load(1, 8), false, &mut out); // same block
        p.observe(&load(2, 64), false, &mut out);
        p.observe(&load(3, 128), false, &mut out);
        assert_eq!(out, vec![Address::new(192)]);
    }

    #[test]
    fn reset_clears_state() {
        let mut p = StridePrefetcher::new(6, 4).with_degree(1);
        let mut out = Vec::new();
        p.observe(&load(0, 0), false, &mut out);
        p.observe(&load(1, 64), false, &mut out);
        p.reset();
        p.observe(&load(2, 128), false, &mut out);
        assert!(out.is_empty(), "reset must drop learned strides");
    }
}
