//! Cache configuration types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Replacement policy selector.
///
/// The paper's ground-truth data is collected with LRU (ChampSim's
/// default); the other policies support ablations and the multi-policy
/// extension discussed in §6.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReplacementPolicyKind {
    /// Least recently used (paper default).
    #[default]
    Lru,
    /// First in, first out.
    Fifo,
    /// Uniform random victim (deterministic per-seed).
    Random,
    /// Tree-based pseudo-LRU.
    TreePlru,
    /// Static re-reference interval prediction (2-bit RRPV).
    Srrip,
}

impl fmt::Display for ReplacementPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReplacementPolicyKind::Lru => "lru",
            ReplacementPolicyKind::Fifo => "fifo",
            ReplacementPolicyKind::Random => "random",
            ReplacementPolicyKind::TreePlru => "tree-plru",
            ReplacementPolicyKind::Srrip => "srrip",
        })
    }
}

/// Write handling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WritePolicy {
    /// Write-back, write-allocate (ChampSim's and the paper's setting):
    /// stores dirty the line; misses on stores fill the cache.
    #[default]
    WriteBackAllocate,
    /// Write-through, no-write-allocate: stores propagate immediately
    /// (counted in [`CacheStats::write_throughs`]) and store misses do
    /// not fill the cache.
    ///
    /// [`CacheStats::write_throughs`]: crate::CacheStats::write_throughs
    WriteThroughNoAllocate,
}

/// Hierarchy inclusion policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum InclusionPolicy {
    /// Lower levels may hold blocks absent from upper levels
    /// (ChampSim's default behaviour).
    #[default]
    NonInclusive,
    /// Evicting a block from an outer level back-invalidates inner levels.
    Inclusive,
}

/// Geometry and policy of a single cache level.
///
/// The paper identifies configurations by `<sets>set-<ways>way` with a
/// fixed 64-byte block; [`CacheConfig::name`] renders that form.
///
/// # Example
///
/// ```
/// use cachebox_sim::CacheConfig;
///
/// let l1 = CacheConfig::new(64, 12);
/// assert_eq!(l1.name(), "64set-12way");
/// assert_eq!(l1.capacity_bytes(), 64 * 12 * 64);
/// assert_eq!(l1.capacity_blocks(), 768);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity (lines per set).
    pub ways: usize,
    /// log2 of the block size in bytes (6 ⇒ 64-byte blocks, the paper's
    /// fixed choice).
    pub block_offset_bits: u32,
    /// Replacement policy.
    pub policy: ReplacementPolicyKind,
    /// Write handling policy.
    pub write_policy: WritePolicy,
}

impl CacheConfig {
    /// Creates a configuration with 64-byte blocks and LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a non-zero power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two() && sets > 0, "sets must be a non-zero power of two");
        assert!(ways > 0, "ways must be non-zero");
        CacheConfig {
            sets,
            ways,
            block_offset_bits: 6,
            policy: ReplacementPolicyKind::Lru,
            write_policy: WritePolicy::default(),
        }
    }

    /// Returns a copy with the given write policy.
    pub fn with_write_policy(mut self, write_policy: WritePolicy) -> Self {
        self.write_policy = write_policy;
        self
    }

    /// Returns a copy with the given replacement policy.
    pub fn with_policy(mut self, policy: ReplacementPolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with a block size of `2^block_offset_bits` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_offset_bits` exceeds 20 (1 MiB blocks).
    pub fn with_block_offset_bits(mut self, block_offset_bits: u32) -> Self {
        assert!(block_offset_bits <= 20, "unreasonable block size");
        self.block_offset_bits = block_offset_bits;
        self
    }

    /// Block size in bytes.
    pub const fn block_bytes(&self) -> u64 {
        1 << self.block_offset_bits
    }

    /// Total capacity in bytes.
    pub const fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * self.block_bytes()
    }

    /// Total capacity in blocks (sets × ways).
    pub const fn capacity_blocks(&self) -> u64 {
        (self.sets * self.ways) as u64
    }

    /// The paper's `<sets>set-<ways>way` naming.
    pub fn name(&self) -> String {
        format!("{}set-{}way", self.sets, self.ways)
    }

    /// The set index for a block number.
    pub const fn set_index_of_block(&self, block: u64) -> usize {
        (block & (self.sets as u64 - 1)) as usize
    }

    /// The tag for a block number.
    pub const fn tag_of_block(&self, block: u64) -> u64 {
        block >> self.sets.trailing_zeros()
    }

    /// Reconstructs the block number from a set index and tag.
    pub const fn block_of(&self, set: usize, tag: u64) -> u64 {
        (tag << self.sets.trailing_zeros()) | set as u64
    }

    /// The cache parameters fed to CB-GAN: `(sets, ways)`.
    pub const fn gan_parameters(&self) -> (f32, f32) {
        (self.sets as f32, self.ways as f32)
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} B blocks, {})", self.name(), self.block_bytes(), self.policy)
    }
}

/// The paper's standard configurations (§5).
pub mod presets {
    use super::CacheConfig;

    /// L1D baseline: 64 sets × 12 ways (48 KiB).
    pub fn l1_64s_12w() -> CacheConfig {
        CacheConfig::new(64, 12)
    }

    /// RQ2 set: the four L1 configurations one model is trained on.
    pub fn rq2_train_configs() -> Vec<CacheConfig> {
        vec![
            CacheConfig::new(64, 12),
            CacheConfig::new(128, 12),
            CacheConfig::new(128, 6),
            CacheConfig::new(128, 3),
        ]
    }

    /// RQ3 set: the three configurations never seen in training.
    pub fn rq3_unseen_configs() -> Vec<CacheConfig> {
        vec![CacheConfig::new(256, 6), CacheConfig::new(256, 12), CacheConfig::new(32, 12)]
    }

    /// L2 baseline: 1024 sets × 8 ways (512 KiB).
    pub fn l2_1024s_8w() -> CacheConfig {
        CacheConfig::new(1024, 8)
    }

    /// L3 baseline: 2048 sets × 16 ways (2 MiB).
    pub fn l3_2048s_16w() -> CacheConfig {
        CacheConfig::new(2048, 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_matches_paper_format() {
        assert_eq!(CacheConfig::new(128, 6).name(), "128set-6way");
    }

    #[test]
    fn geometry_roundtrip() {
        let c = CacheConfig::new(64, 12);
        for block in [0u64, 1, 63, 64, 12345, u64::MAX >> 7] {
            let set = c.set_index_of_block(block);
            let tag = c.tag_of_block(block);
            assert_eq!(c.block_of(set, tag), block);
            assert!(set < c.sets);
        }
    }

    #[test]
    fn capacities() {
        let c = CacheConfig::new(1024, 8);
        assert_eq!(c.capacity_bytes(), 512 * 1024);
        assert_eq!(c.capacity_blocks(), 8192);
        assert_eq!(c.block_bytes(), 64);
    }

    #[test]
    fn builder_methods() {
        let c = CacheConfig::new(64, 4)
            .with_policy(ReplacementPolicyKind::Fifo)
            .with_block_offset_bits(7);
        assert_eq!(c.policy, ReplacementPolicyKind::Fifo);
        assert_eq!(c.block_bytes(), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        CacheConfig::new(100, 4);
    }

    #[test]
    #[should_panic(expected = "ways")]
    fn rejects_zero_ways() {
        CacheConfig::new(64, 0);
    }

    #[test]
    fn presets_match_paper() {
        assert_eq!(presets::l1_64s_12w().name(), "64set-12way");
        let names: Vec<String> = presets::rq2_train_configs().iter().map(|c| c.name()).collect();
        assert_eq!(names, ["64set-12way", "128set-12way", "128set-6way", "128set-3way"]);
        let unseen: Vec<String> = presets::rq3_unseen_configs().iter().map(|c| c.name()).collect();
        assert_eq!(unseen, ["256set-6way", "256set-12way", "32set-12way"]);
        assert_eq!(presets::l2_1024s_8w().capacity_bytes(), 512 * 1024);
        assert_eq!(presets::l3_2048s_16w().capacity_bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn display_includes_policy() {
        let s = CacheConfig::new(64, 12).to_string();
        assert!(s.contains("64set-12way") && s.contains("lru"));
    }
}
