//! A MultiCacheSim-style baseline simulator.
//!
//! Figure 11 of the paper compares CBox inference time against
//! [MultiCacheSim](https://github.com/blucia0a/MultiCacheSim), a simple,
//! high-throughput multiprocessor cache simulator. This module mirrors
//! that simulator's design decisions — a per-cache vector of line objects
//! scanned linearly on every access, MSI-style coherence bookkeeping, and
//! the ability to simulate several caches over the same reference stream
//! simultaneously — so the throughput comparison has a realistic,
//! similarly-engineered counterpart.
//!
//! It intentionally does *not* reuse the optimized [`crate::Cache`]
//! core: the point of the baseline is to model the constant factors of a
//! straightforward implementation.

use crate::config::CacheConfig;
use crate::stats::CacheStats;
use cachebox_trace::Trace;
use serde::{Deserialize, Serialize};

/// MSI coherence states kept per line, as MultiCacheSim does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoherenceState {
    Modified,
    Shared,
    Invalid,
}

#[derive(Debug, Clone)]
struct SimpleLine {
    tag: u64,
    set: usize,
    state: CoherenceState,
    last_use: u64,
}

/// One cache inside the multi-cache simulator.
#[derive(Debug)]
struct SimpleCache {
    config: CacheConfig,
    // A flat vector of lines, scanned linearly — MultiCacheSim's layout.
    lines: Vec<SimpleLine>,
    clock: u64,
    stats: CacheStats,
}

impl SimpleCache {
    fn new(config: CacheConfig) -> Self {
        SimpleCache { config, lines: Vec::new(), clock: 0, stats: CacheStats::default() }
    }

    fn access(&mut self, block: u64, is_store: bool) -> bool {
        self.clock += 1;
        let set = self.config.set_index_of_block(block);
        let tag = self.config.tag_of_block(block);
        // Linear scan over every resident line (the baseline's signature
        // inefficiency, faithful to the original's per-access search).
        let mut found = None;
        for (i, line) in self.lines.iter().enumerate() {
            if line.set == set && line.tag == tag && line.state != CoherenceState::Invalid {
                found = Some(i);
                break;
            }
        }
        if let Some(i) = found {
            self.stats.hits += 1;
            self.lines[i].last_use = self.clock;
            if is_store {
                self.lines[i].state = CoherenceState::Modified;
            }
            return true;
        }
        self.stats.misses += 1;
        // Count lines in this set; evict LRU if the set is full.
        let in_set: Vec<usize> = self
            .lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.set == set && l.state != CoherenceState::Invalid)
            .map(|(i, _)| i)
            .collect();
        if in_set.len() >= self.config.ways {
            let victim = in_set
                .into_iter()
                .min_by_key(|&i| self.lines[i].last_use)
                .expect("set is non-empty");
            self.stats.evictions += 1;
            if self.lines[victim].state == CoherenceState::Modified {
                self.stats.writebacks += 1;
            }
            self.lines.swap_remove(victim);
        }
        self.lines.push(SimpleLine {
            tag,
            set,
            state: if is_store { CoherenceState::Modified } else { CoherenceState::Shared },
            last_use: self.clock,
        });
        false
    }
}

/// Result of a [`MultiCacheSim`] run: per-config stats, aligned with the
/// configurations passed at construction.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MultiCacheResult {
    /// One stats record per simulated cache configuration.
    pub per_cache: Vec<CacheStats>,
}

/// Simulates one reference stream through several caches simultaneously,
/// in MultiCacheSim's style.
///
/// # Example
///
/// ```
/// use cachebox_sim::{CacheConfig, multicache::MultiCacheSim};
/// use cachebox_trace::{Address, MemoryAccess, Trace};
///
/// let mut sim = MultiCacheSim::new(vec![
///     CacheConfig::new(2, 1),
///     CacheConfig::new(8, 4),
/// ]);
/// let trace: Trace = (0..100u64)
///     .map(|i| MemoryAccess::load(i, Address::new((i % 16) * 64)))
///     .collect();
/// let result = sim.run(&trace);
/// // The larger cache can only do better.
/// assert!(result.per_cache[1].hit_rate() >= result.per_cache[0].hit_rate());
/// ```
#[derive(Debug)]
pub struct MultiCacheSim {
    caches: Vec<SimpleCache>,
}

impl MultiCacheSim {
    /// Creates a simulator running every configuration in parallel over
    /// the same stream.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn new(configs: Vec<CacheConfig>) -> Self {
        assert!(!configs.is_empty(), "need at least one cache configuration");
        MultiCacheSim { caches: configs.into_iter().map(SimpleCache::new).collect() }
    }

    /// Replays the trace through every cache, returning per-cache stats.
    /// Caches start cold on each call.
    pub fn run(&mut self, trace: &Trace) -> MultiCacheResult {
        let _span = cachebox_telemetry::span("sim.multicache.run");
        for cache in &mut self.caches {
            *cache = SimpleCache::new(cache.config);
        }
        for access in trace {
            for cache in &mut self.caches {
                let block = access.address.block(cache.config.block_offset_bits);
                cache.access(block, access.kind.is_store());
            }
        }
        for cache in &self.caches {
            cache.stats.record_telemetry(&cache.config.name());
        }
        MultiCacheResult { per_cache: self.caches.iter().map(|c| c.stats).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cache;
    use cachebox_trace::{Address, MemoryAccess};
    use rand::{Rng, SeedableRng};

    fn random_trace(seed: u64, len: usize, blocks: u64) -> Trace {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len as u64)
            .map(|i| {
                let b: u64 = rng.gen_range(0..blocks);
                if rng.gen_bool(0.3) {
                    MemoryAccess::store(i, Address::new(b * 64))
                } else {
                    MemoryAccess::load(i, Address::new(b * 64))
                }
            })
            .collect()
    }

    #[test]
    fn agrees_with_optimized_cache_on_lru() {
        // Both implement LRU write-allocate caches, so hit/miss counts
        // must match exactly.
        for seed in 0..5 {
            let trace = random_trace(seed, 3000, 256);
            let config = CacheConfig::new(16, 4);
            let mut fast = Cache::new(config);
            let fast_result = fast.run(&trace);
            let mut slow = MultiCacheSim::new(vec![config]);
            let slow_result = slow.run(&trace);
            assert_eq!(fast_result.stats.hits, slow_result.per_cache[0].hits, "seed {seed}");
            assert_eq!(fast_result.stats.misses, slow_result.per_cache[0].misses);
        }
    }

    #[test]
    fn simulates_multiple_configs_at_once() {
        let trace = random_trace(9, 2000, 512);
        let configs = vec![CacheConfig::new(4, 2), CacheConfig::new(64, 8)];
        let mut sim = MultiCacheSim::new(configs);
        let result = sim.run(&trace);
        assert_eq!(result.per_cache.len(), 2);
        assert!(result.per_cache[1].hits >= result.per_cache[0].hits);
    }

    #[test]
    fn store_then_evict_writes_back() {
        let mut sim = MultiCacheSim::new(vec![CacheConfig::new(1, 1)]);
        let trace: Trace =
            vec![MemoryAccess::store(0, Address::new(0)), MemoryAccess::load(1, Address::new(64))]
                .into();
        let result = sim.run(&trace);
        assert_eq!(result.per_cache[0].writebacks, 1);
    }

    #[test]
    fn runs_are_cold_start() {
        let trace = random_trace(3, 500, 64);
        let mut sim = MultiCacheSim::new(vec![CacheConfig::new(8, 2)]);
        let a = sim.run(&trace);
        let b = sim.run(&trace);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_config_list() {
        MultiCacheSim::new(vec![]);
    }
}
