//! Trace-driven cache simulation for CacheBox.
//!
//! This crate is the reproduction's substitute for ChampSim: it replays a
//! memory access [`Trace`](cachebox_trace::Trace) through a set-associative
//! cache (or a full L1/L2/L3 [hierarchy]) and records, for every
//! access, whether it hit or missed. Those per-access outcomes are the
//! ground truth from which `cachebox-heatmap` builds the *miss heatmaps*
//! CB-GAN is trained on.
//!
//! Provided components:
//!
//! * [`Cache`] — a single set-associative cache with pluggable
//!   [replacement policies](replacement) (LRU, FIFO, Random, tree-PLRU,
//!   SRRIP), write-allocate/write-back semantics, and optional
//!   [prefetching](prefetch).
//! * [`CacheHierarchy`] — a multi-level hierarchy producing the per-level
//!   access and miss streams the paper renders as bus heatmaps.
//! * [`multicache`] — a deliberately simple "MultiCacheSim-style" simulator
//!   used as the throughput comparison point in Figure 11.
//!
//! # Example
//!
//! ```
//! use cachebox_sim::{Cache, CacheConfig};
//! use cachebox_trace::{Address, MemoryAccess, Trace};
//!
//! // A small direct-mapped cache: 4 sets, 1 way, 64-byte blocks.
//! let config = CacheConfig::new(4, 1);
//! let mut cache = Cache::new(config);
//! let trace: Trace = (0..8u64)
//!     .map(|i| MemoryAccess::load(i, Address::new((i % 2) * 64)))
//!     .collect();
//! let result = cache.run(&trace);
//! // Two cold misses, then alternating hits.
//! assert_eq!(result.stats.misses, 2);
//! assert_eq!(result.stats.hits, 6);
//! ```

pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod multicache;
pub mod prefetch;
pub mod replacement;
pub mod result;
pub mod stats;
pub mod victim;

pub use cache::{AccessOutcome, Cache, EvictedLine};
pub use config::{CacheConfig, InclusionPolicy, ReplacementPolicyKind};
pub use hierarchy::{CacheHierarchy, HierarchyConfig, HierarchyResult, LevelStreams};
pub use prefetch::{NextLinePrefetcher, PrefetchTrigger, Prefetcher, StridePrefetcher};
pub use result::SimResult;
pub use stats::CacheStats;
