//! Simulation result types.

use crate::CacheStats;
use cachebox_trace::Trace;
use serde::{Deserialize, Serialize};

/// The outcome of replaying a trace through one cache.
///
/// Carries the per-access hit flags (aligned with the input trace) plus
/// aggregate [`CacheStats`]. The miss trace — the stream leaving this
/// cache level — is derived with [`SimResult::miss_trace`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SimResult {
    /// `hit_flags[i]` is `true` iff access `i` of the input trace hit.
    pub hit_flags: Vec<bool>,
    /// Aggregate counters.
    pub stats: CacheStats,
}

impl SimResult {
    /// Builds the miss trace: the subset of `input` accesses that missed,
    /// with their original instruction numbers preserved (the stream on
    /// the bus *behind* this cache).
    ///
    /// # Panics
    ///
    /// Panics if `input` does not have the same length as the hit flags.
    pub fn miss_trace(&self, input: &Trace) -> Trace {
        assert_eq!(input.len(), self.hit_flags.len(), "trace/hit-flag length mismatch");
        input.iter().zip(&self.hit_flags).filter(|(_, &hit)| !hit).map(|(a, _)| *a).collect()
    }

    /// Builds the hit trace (complement of [`SimResult::miss_trace`]).
    ///
    /// # Panics
    ///
    /// Panics if `input` does not have the same length as the hit flags.
    pub fn hit_trace(&self, input: &Trace) -> Trace {
        assert_eq!(input.len(), self.hit_flags.len(), "trace/hit-flag length mismatch");
        input.iter().zip(&self.hit_flags).filter(|(_, &hit)| hit).map(|(a, _)| *a).collect()
    }

    /// Hit rate over the replayed trace.
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachebox_trace::{Address, MemoryAccess};

    #[test]
    fn miss_and_hit_traces_partition_input() {
        let input: Trace = (0..4u64).map(|i| MemoryAccess::load(i, Address::new(i))).collect();
        let result = SimResult {
            hit_flags: vec![false, true, true, false],
            stats: CacheStats { hits: 2, misses: 2, ..Default::default() },
        };
        let misses = result.miss_trace(&input);
        let hits = result.hit_trace(&input);
        assert_eq!(misses.len(), 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(misses[0].instr, 0);
        assert_eq!(misses[1].instr, 3);
        assert_eq!(hits[0].instr, 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn miss_trace_validates_length() {
        let input: Trace = vec![MemoryAccess::load(0, Address::new(0))].into();
        SimResult { hit_flags: vec![], stats: CacheStats::default() }.miss_trace(&input);
    }
}
