//! Victim cache (paper §6.3 future work).
//!
//! A small fully associative buffer holding the last few lines evicted
//! from a primary cache. A primary miss that hits the victim buffer
//! swaps the line back instead of going to the next level, absorbing
//! conflict misses of low-associativity caches.

use crate::cache::{AccessOutcome, Cache, EvictedLine};
use crate::config::CacheConfig;
use crate::result::SimResult;
use crate::stats::CacheStats;
use cachebox_trace::{Address, Trace};

/// A primary cache augmented with a fully associative victim buffer.
///
/// # Example
///
/// ```
/// use cachebox_sim::{CacheConfig, victim::VictimCache};
/// use cachebox_trace::{Address, MemoryAccess, Trace};
///
/// // Direct-mapped primary thrashes on two conflicting blocks; a
/// // 2-entry victim buffer absorbs the conflict.
/// let mut vc = VictimCache::new(CacheConfig::new(4, 1), 2);
/// let trace: Trace = (0..32u64)
///     .map(|i| MemoryAccess::load(i, Address::new((i % 2) * 4 * 64)))
///     .collect();
/// let result = vc.run(&trace);
/// assert_eq!(result.stats.misses, 2, "only the cold misses remain");
/// ```
#[derive(Debug)]
pub struct VictimCache {
    primary: Cache,
    /// Victim entries: (block, dirty), most recently inserted last.
    victims: Vec<(u64, bool)>,
    capacity: usize,
    victim_hits: u64,
}

impl VictimCache {
    /// Creates a primary cache with a `victim_entries`-line victim
    /// buffer.
    ///
    /// # Panics
    ///
    /// Panics if `victim_entries` is zero.
    pub fn new(primary: CacheConfig, victim_entries: usize) -> Self {
        assert!(victim_entries > 0, "victim buffer needs at least one entry");
        VictimCache {
            primary: Cache::new(primary),
            victims: Vec::with_capacity(victim_entries),
            capacity: victim_entries,
            victim_hits: 0,
        }
    }

    /// The primary cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        self.primary.config()
    }

    /// Hits served by the victim buffer so far.
    pub fn victim_hits(&self) -> u64 {
        self.victim_hits
    }

    fn stash(&mut self, evicted: EvictedLine) {
        if self.victims.len() == self.capacity {
            self.victims.remove(0); // oldest victim leaves (FIFO)
        }
        self.victims.push((evicted.block, evicted.dirty));
    }

    /// One demand access: primary first, then the victim buffer. A
    /// victim hit re-fills the primary (counting as a hit overall).
    pub fn access(&mut self, address: Address, is_store: bool) -> bool {
        let block = address.block(self.primary.config().block_offset_bits);
        match self.primary.access_block(block, is_store) {
            AccessOutcome::Hit => true,
            AccessOutcome::Miss { evicted } => {
                if let Some(ev) = evicted {
                    self.stash(ev);
                }
                if let Some(pos) = self.victims.iter().position(|&(b, _)| b == block) {
                    // The line we just filled from memory was actually in
                    // the victim buffer: count it as a (victim) hit and
                    // drop the stale victim entry.
                    self.victims.remove(pos);
                    self.victim_hits += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Replays a trace, starting cold, returning per-access hit flags
    /// where victim-buffer hits count as hits.
    pub fn run(&mut self, trace: &Trace) -> SimResult {
        self.primary.flush();
        self.victims.clear();
        self.victim_hits = 0;
        let mut stats = CacheStats::default();
        let hit_flags: Vec<bool> = trace
            .iter()
            .map(|a| {
                let hit = self.access(a.address, a.kind.is_store());
                if hit {
                    stats.hits += 1;
                } else {
                    stats.misses += 1;
                }
                hit
            })
            .collect();
        stats.evictions = self.primary.stats().evictions;
        stats.writebacks = self.primary.stats().writebacks;
        SimResult { hit_flags, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachebox_trace::MemoryAccess;

    fn conflict_trace(stride_sets: u64, blocks: u64, len: u64) -> Trace {
        (0..len)
            .map(|i| MemoryAccess::load(i, Address::new((i % blocks) * stride_sets * 64)))
            .collect()
    }

    #[test]
    fn victim_buffer_absorbs_conflict_misses() {
        // 4-set direct-mapped cache; 3 blocks all mapping to set 0.
        let trace = conflict_trace(4, 3, 60);
        let mut plain = Cache::new(CacheConfig::new(4, 1));
        let plain_result = plain.run(&trace);
        let mut vc = VictimCache::new(CacheConfig::new(4, 1), 4);
        let vc_result = vc.run(&trace);
        assert_eq!(plain_result.stats.hits, 0, "direct-mapped thrashes");
        assert_eq!(vc_result.stats.misses, 3, "victim buffer leaves only cold misses");
        assert!(vc.victim_hits() > 0);
    }

    #[test]
    fn victim_buffer_capacity_bounds_benefit() {
        // 5 conflicting blocks, 2-entry victim buffer: cyclic pattern
        // still misses (FIFO buffer too small).
        let trace = conflict_trace(4, 5, 100);
        let mut vc = VictimCache::new(CacheConfig::new(4, 1), 2);
        let result = vc.run(&trace);
        assert!(result.stats.misses > 50, "tiny victim buffer cannot fix a 5-way conflict");
    }

    #[test]
    fn no_worse_than_plain_cache() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let trace: Trace = (0..3000u64)
            .map(|i| MemoryAccess::load(i, Address::new(rng.gen_range(0..256u64) * 64)))
            .collect();
        let config = CacheConfig::new(16, 2);
        let mut plain = Cache::new(config);
        let plain_hits = plain.run(&trace).stats.hits;
        let mut vc = VictimCache::new(config, 8);
        let vc_hits = vc.run(&trace).stats.hits;
        assert!(vc_hits >= plain_hits, "victim cache must not lose hits: {vc_hits} < {plain_hits}");
    }

    #[test]
    fn run_resets_state() {
        let trace = conflict_trace(4, 2, 20);
        let mut vc = VictimCache::new(CacheConfig::new(4, 1), 2);
        let a = vc.run(&trace);
        let b = vc.run(&trace);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn rejects_zero_capacity() {
        VictimCache::new(CacheConfig::new(4, 1), 0);
    }
}
