//! Property-based tests for the cache simulator.

use cachebox_sim::victim::VictimCache;
use cachebox_sim::{Cache, CacheConfig, CacheHierarchy, HierarchyConfig, ReplacementPolicyKind};
use cachebox_trace::{Address, MemoryAccess, Trace};
use proptest::prelude::*;

fn arbitrary_trace(max_block: u64) -> impl Strategy<Value = Trace> {
    prop::collection::vec((0..max_block, prop::bool::ANY), 1..300).prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (block, store))| {
                let addr = Address::new(block * 64);
                if store {
                    MemoryAccess::store(i as u64, addr)
                } else {
                    MemoryAccess::load(i as u64, addr)
                }
            })
            .collect()
    })
}

fn any_policy() -> impl Strategy<Value = ReplacementPolicyKind> {
    prop_oneof![
        Just(ReplacementPolicyKind::Lru),
        Just(ReplacementPolicyKind::Fifo),
        Just(ReplacementPolicyKind::Random),
        Just(ReplacementPolicyKind::TreePlru),
        Just(ReplacementPolicyKind::Srrip),
    ]
}

proptest! {
    /// Under any policy: hits + misses = accesses, misses ≥ distinct
    /// blocks' cold misses, and the simulation is deterministic.
    #[test]
    fn conservation_and_determinism(
        trace in arbitrary_trace(128),
        policy in any_policy(),
        sets_log2 in 0u32..4,
        ways in 1usize..5,
    ) {
        let config = CacheConfig::new(1 << sets_log2, ways).with_policy(policy);
        let mut cache = Cache::new(config);
        let a = cache.run(&trace);
        prop_assert_eq!(a.stats.accesses(), trace.len() as u64);
        let distinct = trace.footprint_blocks(6).len() as u64;
        prop_assert!(a.stats.misses >= distinct, "at least one cold miss per block");
        let mut cache2 = Cache::new(config);
        let b = cache2.run(&trace);
        prop_assert_eq!(a, b);
    }

    /// Writebacks require prior stores: a read-only trace never writes
    /// back, under any policy.
    #[test]
    fn no_writebacks_without_stores(
        blocks in prop::collection::vec(0u64..256, 1..300),
        policy in any_policy(),
    ) {
        let trace: Trace = blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| MemoryAccess::load(i as u64, Address::new(b * 64)))
            .collect();
        let mut cache = Cache::new(CacheConfig::new(4, 2).with_policy(policy));
        let result = cache.run(&trace);
        prop_assert_eq!(result.stats.writebacks, 0);
    }

    /// A cache big enough for the whole footprint only takes cold misses,
    /// under any policy.
    #[test]
    fn full_capacity_only_cold_misses(
        trace in arbitrary_trace(32),
        policy in any_policy(),
    ) {
        // 64 sets × 4 ways = 256 blocks ≫ 32-block footprint, and with
        // ≤32 distinct blocks at most one block maps to each of 32 sets…
        // regardless, capacity exceeds footprint so no replacement ever
        // evicts a live block *within one set* only if associativity
        // suffices; use fully associative (1 set, 64 ways) to be exact.
        let config = CacheConfig::new(1, 64).with_policy(policy);
        let mut cache = Cache::new(config);
        let result = cache.run(&trace);
        let distinct = trace.footprint_blocks(6).len() as u64;
        prop_assert_eq!(result.stats.misses, distinct);
    }

    /// Hierarchy levels are consistent: level k+1's access count equals
    /// level k's miss count, and per-level flags match the stream split.
    #[test]
    fn hierarchy_stream_consistency(trace in arbitrary_trace(512)) {
        let mut h = CacheHierarchy::new(HierarchyConfig::new(vec![
            CacheConfig::new(2, 2),
            CacheConfig::new(8, 2),
            CacheConfig::new(32, 4),
        ]));
        let result = h.run(&trace);
        for level in &result.levels {
            prop_assert_eq!(level.hit_flags.len(), level.accesses.len());
            let misses = level.hit_flags.iter().filter(|&&f| !f).count();
            prop_assert_eq!(misses, level.misses.len());
        }
        for w in result.levels.windows(2) {
            prop_assert_eq!(&w[1].accesses, &w[0].misses);
        }
    }

    /// A victim cache never has fewer hits than the bare primary.
    #[test]
    fn victim_cache_dominates_primary(trace in arbitrary_trace(64)) {
        let config = CacheConfig::new(4, 1);
        let mut plain = Cache::new(config);
        let plain_hits = plain.run(&trace).stats.hits;
        let mut vc = VictimCache::new(config, 4);
        let vc_hits = vc.run(&trace).stats.hits;
        prop_assert!(vc_hits >= plain_hits);
    }

    /// Block-size parameterisation (paper §6.3): larger blocks never
    /// increase the miss count of a fully associative cache holding the
    /// same *byte* capacity on a sequential scan.
    #[test]
    fn larger_blocks_help_sequential_scans(len in 32u64..256) {
        let trace: Trace =
            (0..len).map(|i| MemoryAccess::load(i, Address::new(i * 8))).collect();
        let mut prev_misses = u64::MAX;
        for bits in [4u32, 6, 8] {
            let config = CacheConfig::new(1, 16).with_block_offset_bits(bits);
            let mut cache = Cache::new(config);
            let misses = cache.run(&trace).stats.misses;
            prop_assert!(misses <= prev_misses, "block 2^{bits}: {misses} > {prev_misses}");
            prev_misses = misses;
        }
    }
}
