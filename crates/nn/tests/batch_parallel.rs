//! Thread-count invariance of the batch-parallel conv layers.
//!
//! The determinism contract (`docs/KERNELS.md`): forward outputs, input
//! gradients, and weight/bias gradients of `Conv2d` and
//! `ConvTranspose2d` are BITWISE identical for any `CACHEBOX_THREADS`,
//! because batch sharding computes per-sample contributions with the
//! exact same operations as the serial loop and reduces them in sample
//! index order.
//!
//! This lives in its own integration-test binary because it installs
//! process-global thread budgets, which must not race with other tests.

use cachebox_nn::layers::{Conv2d, ConvTranspose2d, Layer, Linear};
use cachebox_nn::{Parallelism, Tensor};

fn filled(shape: [usize; 4], phase: usize) -> Tensor {
    let len: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..len).map(|i| (((i * 7 + phase) % 13) as f32 - 6.0) / 6.0).collect())
}

/// Forward + backward for one layer under an installed thread budget;
/// returns (output, input grad, all param grads).
fn run<L: Layer>(
    make: impl Fn() -> L,
    input: &Tensor,
    threads: usize,
) -> (Tensor, Tensor, Vec<Vec<f32>>) {
    Parallelism::new(threads).install();
    let mut layer = make();
    let out = layer.forward(input, true);
    let grad_out = filled(out.shape(), 5);
    layer.zero_grad();
    let grad_in = layer.backward(&grad_out);
    let mut grads = Vec::new();
    layer.visit_params(&mut |p| grads.push(p.grad.clone()));
    Parallelism::serial().install();
    (out, grad_in, grads)
}

fn assert_thread_invariant<L: Layer>(make: impl Fn() -> L, input: &Tensor, label: &str) {
    let reference = run(&make, input, 1);
    for threads in [2, 4] {
        let got = run(&make, input, threads);
        assert_eq!(reference.0, got.0, "{label}: forward diverged at {threads} threads");
        assert_eq!(reference.1, got.1, "{label}: input grad diverged at {threads} threads");
        assert_eq!(reference.2, got.2, "{label}: param grads diverged at {threads} threads");
    }
}

#[test]
fn conv_layers_are_bitwise_invariant_across_thread_counts() {
    // Batch 6 across 1/2/4 threads covers even and ragged shard splits.
    let input = filled([6, 3, 9, 9], 1);
    assert_thread_invariant(|| Conv2d::new(3, 5, 4, 2, 1, 42), &input, "conv2d");
    assert_thread_invariant(|| ConvTranspose2d::new(3, 4, 4, 2, 1, 42), &input, "conv_transpose2d");

    // Batch sizes around the thread count: 1 (fully serial), 3 (ragged),
    // 4 (one sample per worker at 4 threads).
    for batch in [1usize, 3, 4] {
        let input = filled([batch, 2, 7, 7], 2);
        assert_thread_invariant(|| Conv2d::new(2, 3, 3, 1, 1, 7), &input, "conv2d small");
        assert_thread_invariant(
            || ConvTranspose2d::new(2, 3, 3, 2, 1, 7),
            &input,
            "conv_transpose2d small",
        );
    }

    // Linear has no batch sharding, but its row-split GEMM must also be
    // thread-transparent.
    let input = filled([5, 6, 1, 1], 3);
    assert_thread_invariant(|| Linear::new(6, 4, 11), &input, "linear");
}
