//! Proves the zero-transient-allocation contract of the training hot
//! path: after one warm-up step populates the thread-local scratch pool,
//! steady-state conv/deconv/linear forward + backward performs **no**
//! heap allocation at all.
//!
//! Runs fully serial (`Parallelism::serial()`): spawning scoped worker
//! threads inherently allocates, so the contract is scoped to the
//! single-threaded path the pool serves. Lives in its own test binary
//! because of the global counting allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cachebox_nn::layers::{Conv2d, ConvTranspose2d, Layer, Linear};
use cachebox_nn::{Parallelism, Tensor};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn filled(shape: [usize; 4]) -> Tensor {
    let len: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..len).map(|i| ((i * 7 % 13) as f32 - 6.0) / 6.0).collect())
}

/// One training-shaped iteration: forward, loss-less synthetic gradient,
/// backward, for a conv → deconv → linear stack (shapes chosen so the
/// blocked GEMM path is exercised, not just the naive fallback).
fn step(
    conv: &mut Conv2d,
    deconv: &mut ConvTranspose2d,
    linear: &mut Linear,
    input: &Tensor,
    grad_seed: &Tensor,
) {
    let a = conv.forward(input, true);
    let b = deconv.forward(&a, true);
    let flat = b.len() / b.n();
    let _ = linear.forward(&b.clone().reshape([b.n(), flat, 1, 1]), true);
    conv.zero_grad();
    deconv.zero_grad();
    linear.zero_grad();
    let g_lin = linear.backward(grad_seed);
    let [n, ch, h, w] = b.shape();
    let g_deconv = deconv.backward(&g_lin.reshape([n, ch, h, w]));
    let _ = conv.backward(&g_deconv);
}

#[test]
fn steady_state_training_path_does_not_allocate() {
    Parallelism::serial().install();
    let mut conv = Conv2d::new(3, 16, 4, 2, 1, 1);
    let mut deconv = ConvTranspose2d::new(16, 8, 4, 2, 1, 2);
    let mut linear = Linear::new(8 * 16 * 16, 4, 3);
    let input = filled([2, 3, 16, 16]);
    let grad_seed = filled([2, 4, 1, 1]);

    // Warm-up: fills the thread-local scratch pool with a buffer of
    // every capacity the step needs. Two passes so capacities that are
    // still in flight during the first pass also land in the pool.
    step(&mut conv, &mut deconv, &mut linear, &input, &grad_seed);
    step(&mut conv, &mut deconv, &mut linear, &input, &grad_seed);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..3 {
        step(&mut conv, &mut deconv, &mut linear, &input, &grad_seed);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state conv/deconv/linear fwd+bwd allocated {} times",
        after - before
    );
}
