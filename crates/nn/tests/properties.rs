//! Property-based tests for the neural-network substrate.

use cachebox_nn::gemm::{col2im, gemm, gemm_a_bt_acc, gemm_at_b_acc, im2col, PatchGrid};
use cachebox_nn::geometry::{
    self, Blocking, CacheGeometry, GeometrySource, KC_MAX, KC_MIN, MC_MAX, NC_MAX,
};
use cachebox_nn::layers::{Conv2d, ConvTranspose2d, Layer, Linear};
use cachebox_nn::parallel::{
    gemm_a_bt_acc_with, gemm_acc_with, gemm_at_b_acc_with, gemm_with, Parallelism,
};
use cachebox_nn::Tensor;
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2.0f32..2.0, len..=len)
}

proptest! {
    /// GEMM is linear in its left operand: (αA)B = α(AB).
    #[test]
    fn gemm_left_linearity(
        a in small_vec(6),
        b in small_vec(8),
        alpha in -3.0f32..3.0,
    ) {
        let (m, k, n) = (3, 2, 4);
        let mut ab = vec![0.0; m * n];
        gemm(&a, &b, m, k, n, &mut ab);
        let scaled_a: Vec<f32> = a.iter().map(|v| v * alpha).collect();
        let mut sab = vec![0.0; m * n];
        gemm(&scaled_a, &b, m, k, n, &mut sab);
        for (x, y) in ab.iter().zip(&sab) {
            prop_assert!((x * alpha - y).abs() < 1e-3, "{x} * {alpha} != {y}");
        }
    }

    /// The transposed GEMM variants agree with explicit transposition.
    #[test]
    fn gemm_transpose_variants_consistent(
        a in small_vec(12),
        b in small_vec(20),
    ) {
        let (m, k, n) = (3, 4, 5);
        let mut reference = vec![0.0; m * n];
        gemm(&a, &b, m, k, n, &mut reference);
        // aᵀ path.
        let mut a_t = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                a_t[p * m + i] = a[i * k + p];
            }
        }
        let mut out = vec![0.0; m * n];
        gemm_at_b_acc(&a_t, &b, m, k, n, &mut out);
        for (x, y) in reference.iter().zip(&out) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        // bᵀ path.
        let mut b_t = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                b_t[j * k + p] = b[p * n + j];
            }
        }
        let mut out2 = vec![0.0; m * n];
        gemm_a_bt_acc(&a, &b_t, m, k, n, &mut out2);
        for (x, y) in reference.iter().zip(&out2) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// col2im is the exact adjoint of im2col for random geometries:
    /// ⟨im2col(x), y⟩ = ⟨x, col2im(y)⟩.
    #[test]
    fn imcol_adjointness(
        channels in 1usize..3,
        height in 3usize..8,
        width in 3usize..8,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        let grid = PatchGrid { channels, height, width, kernel, stride, pad };
        prop_assume!(height + 2 * pad >= kernel && width + 2 * pad >= kernel);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let img_len = channels * height * width;
        let col_len = grid.patch_rows() * grid.positions();
        let x: Vec<f32> = (0..img_len).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f32> = (0..col_len).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut cols = vec![0.0; col_len];
        im2col(&x, &grid, &mut cols);
        let lhs: f64 = cols.iter().zip(&y).map(|(a, b)| (a * b) as f64).sum();
        let mut img = vec![0.0; img_len];
        col2im(&y, &grid, &mut img);
        let rhs: f64 = x.iter().zip(&img).map(|(a, b)| (a * b) as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    /// Zero-bias convolutions are homogeneous: conv(αx) = α·conv(x).
    #[test]
    fn conv_homogeneity(seed in 0u64..500, alpha in -2.0f32..2.0) {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, seed);
        // Zero the bias (second parameter).
        let mut idx = 0;
        conv.visit_params(&mut |p| {
            if idx == 1 {
                p.value.fill(0.0);
            }
            idx += 1;
        });
        let x = Tensor::from_vec(
            [1, 2, 4, 4],
            (0..32).map(|i| ((i * 7 % 11) as f32 - 5.0) / 5.0).collect(),
        );
        let y = conv.forward(&x, false);
        let y_scaled = conv.forward(&x.scale(alpha), false);
        for (a, b) in y.data().iter().zip(y_scaled.data()) {
            prop_assert!((a * alpha - b).abs() < 1e-3);
        }
    }

    /// Conv followed by its mirror ConvTranspose restores spatial shape
    /// for arbitrary valid geometry.
    #[test]
    fn conv_convt_shape_inverse(
        cin in 1usize..3,
        cout in 1usize..4,
        size_pow in 2u32..5,
    ) {
        let size = 1usize << size_pow;
        let mut down = Conv2d::new(cin, cout, 4, 2, 1, 1);
        let mut up = ConvTranspose2d::new(cout, cin, 4, 2, 1, 2);
        let x = Tensor::zeros([1, cin, size, size]);
        let mid = down.forward(&x, false);
        prop_assert_eq!(mid.shape(), [1, cout, size / 2, size / 2]);
        let back = up.forward(&mid, false);
        prop_assert_eq!(back.shape(), x.shape());
    }

    /// Linear layers are affine: f(x+y) - f(y) = f(x) - f(0).
    #[test]
    fn linear_affinity(seed in 0u64..500) {
        let mut l = Linear::new(3, 2, seed);
        let x = Tensor::from_vec([1, 3, 1, 1], vec![0.3, -0.7, 1.1]);
        let y = Tensor::from_vec([1, 3, 1, 1], vec![-0.2, 0.5, 0.9]);
        let zero = Tensor::zeros([1, 3, 1, 1]);
        let f = |t: &Tensor, l: &mut Linear| l.forward(t, false);
        let lhs = f(&x.add(&y), &mut l).add(&f(&zero, &mut l).scale(-1.0));
        let rhs = f(&x, &mut l).add(&f(&y, &mut l)).add(&f(&zero, &mut l).scale(-2.0));
        for (a, b) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Row-partitioned parallel GEMM matches the serial kernel for
    /// ragged shapes (m not divisible by the thread count, thread
    /// counts exceeding the row count) across every variant. The row
    /// split reuses the serial kernel per chunk, so results should be
    /// bitwise identical; 1e-5 is the documented contract.
    #[test]
    fn parallel_gemm_matches_serial(
        m in 1usize..17,
        k in 1usize..9,
        n in 1usize..13,
        threads in 2usize..9,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let a_t: Vec<f32> = (0..k * m).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b_t: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let bias: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let par = Parallelism::new(threads);

        let mut serial = vec![0.0f32; m * n];
        gemm(&a, &b, m, k, n, &mut serial);
        let mut parallel = vec![0.0f32; m * n];
        gemm_with(par, &a, &b, m, k, n, &mut parallel);
        for (x, y) in serial.iter().zip(&parallel) {
            prop_assert!((x - y).abs() <= 1e-5, "gemm: {x} vs {y}");
        }

        let mut serial_acc = bias.clone();
        cachebox_nn::gemm::gemm_acc(&a, &b, m, k, n, &mut serial_acc);
        let mut parallel_acc = bias.clone();
        gemm_acc_with(par, &a, &b, m, k, n, &mut parallel_acc);
        for (x, y) in serial_acc.iter().zip(&parallel_acc) {
            prop_assert!((x - y).abs() <= 1e-5, "gemm_acc: {x} vs {y}");
        }

        let mut serial_at = bias.clone();
        gemm_at_b_acc(&a_t, &b, m, k, n, &mut serial_at);
        let mut parallel_at = bias.clone();
        gemm_at_b_acc_with(par, &a_t, &b, m, k, n, &mut parallel_at);
        for (x, y) in serial_at.iter().zip(&parallel_at) {
            prop_assert!((x - y).abs() <= 1e-5, "gemm_at_b_acc: {x} vs {y}");
        }

        let mut serial_bt = bias.clone();
        gemm_a_bt_acc(&a, &b_t, m, k, n, &mut serial_bt);
        let mut parallel_bt = bias;
        gemm_a_bt_acc_with(par, &a, &b_t, m, k, n, &mut parallel_bt);
        for (x, y) in serial_bt.iter().zip(&parallel_bt) {
            prop_assert!((x - y).abs() <= 1e-5, "gemm_a_bt_acc: {x} vs {y}");
        }
    }

    /// Every geometry — including degenerate ones like a 1 KiB L1d or
    /// an absent L3 — derives a blocking that satisfies the packing
    /// invariants: microkernel alignment, legal floors/ceilings, and
    /// each panel-fits-cache inequality except where a floor clamp is
    /// binding.
    #[test]
    fn derived_blocking_satisfies_invariants(
        l1d_kib in 1usize..1024,
        l2_kib in 1usize..65536,
        l3_mib in 0usize..1024, // 0 = absent L3
        threads in 1usize..32,
    ) {
        let geo = CacheGeometry {
            l1d: l1d_kib << 10,
            l2: l2_kib << 10,
            l3: (l3_mib > 0).then_some(l3_mib << 20),
            line: 64,
            source: GeometrySource::Env,
        };
        let (mr, nr) = (4usize, 8usize);
        let b = Blocking::for_geometry(&geo, mr, nr, threads);
        prop_assert_eq!(b.mc % mr, 0, "mc MR-aligned: {:?}", b);
        prop_assert_eq!(b.nc % nr, 0, "nc NR-aligned: {:?}", b);
        prop_assert!((KC_MIN..=KC_MAX).contains(&b.kc), "kc in range: {:?}", b);
        prop_assert!((mr..=MC_MAX).contains(&b.mc), "mc in range: {:?}", b);
        prop_assert!((nr..=NC_MAX).contains(&b.nc), "nc in range: {:?}", b);
        // Panel inequalities hold unless the floor clamp had to win.
        prop_assert!(
            b.kc * nr * 4 <= geo.l1d / 2 || b.kc == KC_MIN,
            "B strip fits half L1d: {:?} vs {}", b, geo.l1d
        );
        prop_assert!(
            b.mc * b.kc * 4 <= geo.l2 / 2 || b.mc == mr,
            "A panel fits half L2: {:?} vs {}", b, geo.l2
        );
        let llc_share = geo.l3.map(|l3| l3 / threads).unwrap_or(geo.l2);
        prop_assert!(
            b.kc * b.nc * 4 <= llc_share || b.nc == nr,
            "B panel fits LLC share: {:?} vs {}", b, llc_share
        );
    }

    /// `CACHEBOX_CACHE_GEOMETRY` specs round-trip exactly through
    /// `spec()`/`parse()` for arbitrary geometries.
    #[test]
    fn geometry_spec_roundtrips(
        l1d in 1usize..(1 << 24),
        l2 in 1usize..(1 << 28),
        l3 in 0usize..(1 << 30), // 0 = absent L3
        line_pow in 5u32..9,     // 32..=256 byte lines
    ) {
        let geo = CacheGeometry {
            l1d,
            l2,
            l3: (l3 > 0).then_some(l3),
            line: 1 << line_pow,
            source: GeometrySource::Env,
        };
        let parsed = CacheGeometry::parse(&geo.spec());
        prop_assert!(parsed.is_ok(), "spec {} rejected: {:?}", geo.spec(), parsed.err());
        prop_assert_eq!(parsed.unwrap(), geo, "spec: {}", geo.spec());
    }

    /// Tensor concat/split are mutually inverse for arbitrary shapes.
    #[test]
    fn concat_split_inverse(
        n in 1usize..4,
        c1 in 1usize..5,
        c2 in 1usize..5,
        hw in 1usize..5,
    ) {
        let a = Tensor::full([n, c1, hw, hw], 1.5);
        let b = Tensor::full([n, c2, hw, hw], -0.5);
        let (a2, b2) = a.concat_channels(&b).split_channels(c1);
        prop_assert_eq!(a2, a);
        prop_assert_eq!(b2, b);
    }
}

/// The blocked/packed kernels are BITWISE identical to the naive
/// oracles for all three GEMM variants, across shapes straddling the
/// MR/NR/MC/KC tile boundaries and for inputs dense with exact zeros
/// (which exercise the naive kernels' zero-skip branch).
///
/// Deliberately a plain deterministic sweep rather than a `proptest!`
/// case: exact bitwise failures should reproduce from the shape and
/// seed alone, with no shrinking in the way.
#[test]
fn blocked_gemm_bitwise_equals_naive() {
    fn fill(len: usize, seed: u64, zero_dense: bool) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let bits = (state >> 33) as u32;
                if zero_dense && bits & 1 == 0 {
                    0.0
                } else {
                    (bits % 2048) as f32 / 1024.0 - 1.0
                }
            })
            .collect()
    }

    // Shapes around the microkernel (4x8), MC (64), and KC (256) edges,
    // plus deliberately awkward primes.
    let shapes: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 96, 1),
        (3, 5, 7),
        (4, 8, 8),
        (5, 9, 17),
        (7, 300, 9),
        (13, 64, 31),
        (39, 95, 39),
        (65, 257, 33),
    ];
    for &(m, k, n) in shapes {
        for seed in 0..4u64 {
            for zero_dense in [false, true] {
                let label = format!("m={m} k={k} n={n} seed={seed} zero_dense={zero_dense}");
                let a = fill(m * k, seed, zero_dense);
                let b = fill(k * n, seed ^ 0x5a5a, zero_dense);
                let bias = fill(m * n, seed ^ 0x33, false);

                let mut expect = bias.clone();
                cachebox_nn::gemm::gemm_acc(&a, &b, m, k, n, &mut expect);
                let mut got = bias.clone();
                cachebox_nn::blocked::gemm_acc(&a, &b, m, k, n, &mut got);
                assert_eq!(expect, got, "gemm_acc not bitwise identical ({label})");

                let a_t = fill(k * m, seed ^ 0x77, zero_dense);
                let mut expect = bias.clone();
                gemm_at_b_acc(&a_t, &b, m, k, n, &mut expect);
                let mut got = bias.clone();
                cachebox_nn::blocked::gemm_at_b_acc(&a_t, &b, m, k, n, &mut got);
                assert_eq!(expect, got, "gemm_at_b_acc not bitwise identical ({label})");

                let b_t = fill(n * k, seed ^ 0xc3, zero_dense);
                let mut expect = bias.clone();
                gemm_a_bt_acc(&a, &b_t, m, k, n, &mut expect);
                let mut got = bias.clone();
                cachebox_nn::blocked::gemm_a_bt_acc(&a, &b_t, m, k, n, &mut got);
                assert_eq!(expect, got, "gemm_a_bt_acc not bitwise identical ({label})");
            }
        }
    }
}

/// Blocking is a pure performance knob and the microkernel tiers are
/// interchangeable: every dispatchable SIMD level produces bits
/// identical to the naive oracle under blockings derived from wildly
/// different synthetic cache geometries, on ragged multi-block shapes.
/// (The CI geometry-matrix leg additionally covers the
/// `CACHEBOX_CACHE_GEOMETRY` env path end to end; here the synthetic
/// geometries are installed directly so one process can sweep several.)
#[test]
fn blocked_gemm_bitwise_under_synthetic_geometries_and_simd_levels() {
    use cachebox_nn::blocked::{self, SimdLevel};

    fn fill(len: usize, seed: u64, zero_dense: bool) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let bits = (state >> 33) as u32;
                if zero_dense && bits & 1 == 0 {
                    0.0
                } else {
                    (bits % 2048) as f32 / 1024.0 - 1.0
                }
            })
            .collect()
    }

    // Tiny (floors everything) and huge (ceilings everything), per the
    // CI matrix, plus the analytic blocking for whatever this host is.
    let synthetic_specs = ["L1d:4K,L2:64K", "L1d:512K,L2:8M,L3:64M"];
    let mut blockings: Vec<(String, Blocking)> = synthetic_specs
        .iter()
        .map(|spec| {
            let geo = CacheGeometry::parse(spec).expect("valid synthetic spec");
            (spec.to_string(), Blocking::for_geometry(&geo, 4, 8, 2))
        })
        .collect();
    blockings.push(("host-analytic".to_string(), geometry::analytic_blocking()));

    // Ragged shapes spanning several blocks of even the tiny blocking.
    let shapes: &[(usize, usize, usize)] = &[(3, 5, 7), (37, 300, 51), (65, 257, 33)];

    for (geo_label, blocking) in &blockings {
        geometry::install_blocking(*blocking, "test:synthetic");
        for level in [SimdLevel::Scalar, SimdLevel::Lanes8, SimdLevel::Lanes16] {
            blocked::set_simd_cap(level);
            for &(m, k, n) in shapes {
                for zero_dense in [false, true] {
                    let label = format!(
                        "geometry {geo_label} ({}), cap {level:?} (ran {:?}), \
                         m={m} k={k} n={n} zero_dense={zero_dense}",
                        blocking.label(),
                        blocked::active_simd_level(),
                    );
                    let a = fill(m * k, 7, zero_dense);
                    let b = fill(k * n, 11, zero_dense);
                    let bias = fill(m * n, 13, false);

                    let mut expect = bias.clone();
                    cachebox_nn::gemm::gemm_acc(&a, &b, m, k, n, &mut expect);
                    let mut got = bias.clone();
                    cachebox_nn::blocked::gemm_acc(&a, &b, m, k, n, &mut got);
                    assert_eq!(expect, got, "gemm_acc not bitwise identical ({label})");

                    let a_t = fill(k * m, 17, zero_dense);
                    let mut expect = bias.clone();
                    gemm_at_b_acc(&a_t, &b, m, k, n, &mut expect);
                    let mut got = bias.clone();
                    cachebox_nn::blocked::gemm_at_b_acc(&a_t, &b, m, k, n, &mut got);
                    assert_eq!(expect, got, "gemm_at_b_acc not bitwise identical ({label})");

                    let b_t = fill(n * k, 19, zero_dense);
                    let mut expect = bias.clone();
                    gemm_a_bt_acc(&a, &b_t, m, k, n, &mut expect);
                    let mut got = bias.clone();
                    cachebox_nn::blocked::gemm_a_bt_acc(&a, &b_t, m, k, n, &mut got);
                    assert_eq!(expect, got, "gemm_a_bt_acc not bitwise identical ({label})");
                }
            }
        }
    }
    blocked::set_simd_enabled(true);
    geometry::clear_blocking();
}
