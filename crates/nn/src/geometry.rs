//! Host cache-hierarchy detection and cache-aware GEMM blocking.
//!
//! CacheBox *learns* cache behaviour, so its own hottest kernel should
//! not ignore the cache it runs on. This module discovers the host's
//! L1d/L2/L3 geometry once per process and derives the GotoBLAS
//! blocking parameters (`MC`, `KC`, `NC` — see [`crate::blocked`]) from
//! it analytically, replacing the former hard-coded `64/256/256`.
//!
//! # Detection sources, in priority order
//!
//! 1. **`CACHEBOX_CACHE_GEOMETRY`** — an explicit override for tests,
//!    CI, and cross-host reproduction: `L1d:32K,L2:512K,L3:16M`
//!    (the `L3` entry is optional, `Line:64` may set the line size).
//!    Malformed input is rejected **loudly** (the process panics with
//!    the parse error rather than silently mistuning).
//! 2. **Linux sysfs** — `/sys/devices/system/cpu/cpu0/cache/index*`.
//! 3. **CPUID** (x86_64) — deterministic cache parameters, leaf `0x4`
//!    (Intel) falling back to leaf `0x8000001D` (AMD).
//! 4. **A conservative default** — 32 KiB L1d, 256 KiB L2, no L3,
//!    64-byte lines: small enough that the derived blocking is safe on
//!    any post-2010 x86/ARM core, at worst leaving headroom unused.
//!
//! The chosen source is carried in [`CacheGeometry::source`] and
//! reported by benchmarks and the telemetry run manifest so recorded
//! numbers stay interpretable across hosts.
//!
//! # Blocking derivation
//!
//! [`Blocking::for_geometry`] sizes the three panel parameters so each
//! packed operand stays resident in its intended cache level (`f32` =
//! 4 bytes; `MR`/`NR` are the microkernel tile from [`crate::blocked`]):
//!
//! * `KC·NR·4 ≤ ½·L1d` — the B strip the microkernel streams per tile
//!   stays L1-resident, leaving half of L1d for the A strip and C tile;
//! * `MC·KC·4 ≤ ½·L2` — the packed A panel stays L2-resident alongside
//!   a share of the B panel;
//! * `KC·NC·4 ≤ L3/threads` (or `≤ L2` when no L3 exists) — the packed
//!   B panel fits this worker's share of the last-level cache.
//!
//! Results are rounded down to `MR`/`NR` multiples and clamped to sane
//! floors and ceilings so degenerate geometries (`L1d:1K`, absent L3)
//! still yield a valid blocking. Whatever blocking is chosen, kernel
//! outputs are **bitwise identical** — blocking is a pure performance
//! knob (see the determinism contract in `docs/KERNELS.md`).
//!
//! After enough GEMM shard timings exist, the telemetry autotuner may
//! refine the analytical blocking ([`crate::tuning::autotune_gemm_blocking`])
//! and [`install_blocking`] it process-wide; [`blocking`] always
//! returns the active choice and [`blocking_source`] says where it
//! came from.

use std::sync::{OnceLock, RwLock};

/// Environment variable overriding cache detection:
/// `CACHEBOX_CACHE_GEOMETRY=L1d:32K,L2:512K,L3:16M` (L3 and `Line:`
/// optional; sizes accept `K`/`M`/`G` suffixes or plain bytes).
pub const GEOMETRY_ENV_VAR: &str = "CACHEBOX_CACHE_GEOMETRY";

/// Where a [`CacheGeometry`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometrySource {
    /// Parsed from [`GEOMETRY_ENV_VAR`].
    Env,
    /// Read from `/sys/devices/system/cpu/cpu0/cache`.
    Sysfs,
    /// Queried via x86 CPUID deterministic cache parameters.
    Cpuid,
    /// The documented conservative fallback.
    Default,
}

impl GeometrySource {
    /// Stable label for reports and manifests.
    pub fn label(self) -> &'static str {
        match self {
            GeometrySource::Env => "env",
            GeometrySource::Sysfs => "sysfs",
            GeometrySource::Cpuid => "cpuid",
            GeometrySource::Default => "default",
        }
    }
}

/// The host data-cache hierarchy, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// L1 data cache capacity.
    pub l1d: usize,
    /// Unified L2 capacity (per core on every supported host).
    pub l2: usize,
    /// Last-level cache capacity, when one exists (shared across cores).
    pub l3: Option<usize>,
    /// Cache line size.
    pub line: usize,
    /// Which detector produced this geometry.
    pub source: GeometrySource,
}

/// The conservative fallback used when no detector succeeds: small
/// enough to be safe on any modern core (a too-small assumed cache only
/// wastes headroom; a too-large one thrashes).
pub const DEFAULT_GEOMETRY: CacheGeometry = CacheGeometry {
    l1d: 32 * 1024,
    l2: 256 * 1024,
    l3: None,
    line: 64,
    source: GeometrySource::Default,
};

/// Parses a size with an optional binary suffix: `32K`, `16M`, `1G`,
/// or plain bytes. Suffixes are case-insensitive.
pub fn parse_size(s: &str) -> Result<usize, String> {
    let s = s.trim();
    if s.is_empty() {
        return Err("empty size".to_string());
    }
    let (digits, shift) = match s.as_bytes()[s.len() - 1].to_ascii_uppercase() {
        b'K' => (&s[..s.len() - 1], 10),
        b'M' => (&s[..s.len() - 1], 20),
        b'G' => (&s[..s.len() - 1], 30),
        b'0'..=b'9' => (s, 0),
        other => return Err(format!("bad size suffix {:?} in {s:?}", other as char)),
    };
    let n: usize = digits.trim().parse().map_err(|e| format!("bad size number in {s:?}: {e}"))?;
    n.checked_shl(shift).filter(|&v| v > 0).ok_or_else(|| format!("size out of range: {s:?}"))
}

fn format_size(bytes: usize) -> String {
    for (shift, suffix) in [(30u32, "G"), (20, "M"), (10, "K")] {
        if bytes >= (1 << shift) && bytes.is_multiple_of(1 << shift) {
            return format!("{}{suffix}", bytes >> shift);
        }
    }
    bytes.to_string()
}

impl CacheGeometry {
    /// Parses the `L1d:32K,L2:512K,L3:16M[,Line:64]` override syntax.
    /// `L1d` and `L2` are required; `L3` and `Line` are optional.
    /// Unknown keys, duplicate keys, zero sizes, and malformed numbers
    /// are all rejected with a descriptive error.
    pub fn parse(spec: &str) -> Result<CacheGeometry, String> {
        let mut l1d = None;
        let mut l2 = None;
        let mut l3 = None;
        let mut line = None;
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                return Err(format!("empty entry in geometry spec {spec:?}"));
            }
            let (key, value) =
                entry.split_once(':').ok_or_else(|| format!("entry {entry:?} is not KEY:SIZE"))?;
            let size = parse_size(value)?;
            let slot = match key.trim().to_ascii_lowercase().as_str() {
                "l1d" => &mut l1d,
                "l2" => &mut l2,
                "l3" => &mut l3,
                "line" => &mut line,
                other => {
                    return Err(format!(
                        "unknown geometry key {other:?} (expected L1d, L2, L3, or Line)"
                    ))
                }
            };
            if slot.replace(size).is_some() {
                return Err(format!("duplicate geometry key in {entry:?}"));
            }
        }
        Ok(CacheGeometry {
            l1d: l1d.ok_or_else(|| format!("geometry spec {spec:?} is missing L1d"))?,
            l2: l2.ok_or_else(|| format!("geometry spec {spec:?} is missing L2"))?,
            l3,
            line: line.unwrap_or(64),
            source: GeometrySource::Env,
        })
    }

    /// The canonical spec string; `parse(g.spec())` round-trips exactly
    /// (modulo the source, which `spec` does not encode).
    pub fn spec(&self) -> String {
        let mut s = format!("L1d:{},L2:{}", format_size(self.l1d), format_size(self.l2));
        if let Some(l3) = self.l3 {
            s.push_str(&format!(",L3:{}", format_size(l3)));
        }
        if self.line != 64 {
            s.push_str(&format!(",Line:{}", self.line));
        }
        s
    }
}

/// Reads one sysfs cache attribute as a trimmed string.
fn sysfs_read(index: usize, attr: &str) -> Option<String> {
    let path = format!("/sys/devices/system/cpu/cpu0/cache/index{index}/{attr}");
    std::fs::read_to_string(path).ok().map(|s| s.trim().to_string())
}

/// Walks `/sys/devices/system/cpu/cpu0/cache/index*`. Returns `None`
/// unless both an L1 data (or unified) cache and an L2 are present.
fn detect_sysfs() -> Option<CacheGeometry> {
    let mut l1d = None;
    let mut l2 = None;
    let mut l3 = None;
    let mut line = None;
    for index in 0..16 {
        let Some(level) = sysfs_read(index, "level") else { break };
        let Some(ty) = sysfs_read(index, "type") else { break };
        let Some(size) = sysfs_read(index, "size").and_then(|s| parse_size(&s).ok()) else {
            continue;
        };
        if line.is_none() {
            line = sysfs_read(index, "coherency_line_size").and_then(|s| s.parse().ok());
        }
        match (level.as_str(), ty.as_str()) {
            ("1", "Data") | ("1", "Unified") => l1d = Some(size),
            ("2", _) => l2 = Some(size),
            ("3", _) => l3 = Some(size),
            _ => {}
        }
    }
    Some(CacheGeometry {
        l1d: l1d?,
        l2: l2?,
        l3,
        line: line.unwrap_or(64),
        source: GeometrySource::Sysfs,
    })
}

/// Queries the deterministic cache parameters CPUID leaf. Intel
/// exposes them at leaf `0x4`; AMD mirrors the layout at
/// `0x8000001D` (gated on the extended-leaf ceiling).
#[cfg(target_arch = "x86_64")]
fn detect_cpuid() -> Option<CacheGeometry> {
    use std::arch::x86_64::__cpuid_count;

    let max_basic = __cpuid_count(0, 0).eax;
    let max_extended = __cpuid_count(0x8000_0000, 0).eax;
    let leaf = if max_basic >= 4 {
        Some(0x4u32)
    } else if max_extended >= 0x8000_001D {
        Some(0x8000_001Du32)
    } else {
        None
    }?;

    let mut l1d = None;
    let mut l2 = None;
    let mut l3 = None;
    let mut line = None;
    for subleaf in 0..16 {
        // Invalid subleaves report cache type 0, ending the walk.
        let regs = __cpuid_count(leaf, subleaf);
        let cache_type = regs.eax & 0x1f;
        if cache_type == 0 {
            break; // no more caches
        }
        let level = (regs.eax >> 5) & 0x7;
        let ways = ((regs.ebx >> 22) & 0x3ff) as usize + 1;
        let partitions = ((regs.ebx >> 12) & 0x3ff) as usize + 1;
        let line_size = (regs.ebx & 0xfff) as usize + 1;
        let sets = regs.ecx as usize + 1;
        let size = ways * partitions * line_size * sets;
        if line.is_none() {
            line = Some(line_size);
        }
        // type 1 = data, 3 = unified; 2 (instruction) is skipped.
        match (level, cache_type) {
            (1, 1) | (1, 3) => l1d = Some(size),
            (2, 1) | (2, 3) => l2 = Some(size),
            (3, 1) | (3, 3) => l3 = Some(size),
            _ => {}
        }
    }
    // Intel's leaf-4 fallback on AMD parts reports nothing useful;
    // retry the AMD leaf before giving up.
    if (l1d.is_none() || l2.is_none()) && leaf == 0x4 && max_extended >= 0x8000_001D {
        return detect_cpuid_amd(max_extended);
    }
    Some(CacheGeometry {
        l1d: l1d?,
        l2: l2?,
        l3,
        line: line.unwrap_or(64),
        source: GeometrySource::Cpuid,
    })
}

#[cfg(target_arch = "x86_64")]
fn detect_cpuid_amd(max_extended: u32) -> Option<CacheGeometry> {
    use std::arch::x86_64::__cpuid_count;
    if max_extended < 0x8000_001D {
        return None;
    }
    let mut l1d = None;
    let mut l2 = None;
    let mut l3 = None;
    let mut line = None;
    for subleaf in 0..16 {
        let regs = __cpuid_count(0x8000_001D, subleaf);
        let cache_type = regs.eax & 0x1f;
        if cache_type == 0 {
            break;
        }
        let level = (regs.eax >> 5) & 0x7;
        let ways = ((regs.ebx >> 22) & 0x3ff) as usize + 1;
        let partitions = ((regs.ebx >> 12) & 0x3ff) as usize + 1;
        let line_size = (regs.ebx & 0xfff) as usize + 1;
        let sets = regs.ecx as usize + 1;
        let size = ways * partitions * line_size * sets;
        if line.is_none() {
            line = Some(line_size);
        }
        match (level, cache_type) {
            (1, 1) | (1, 3) => l1d = Some(size),
            (2, 1) | (2, 3) => l2 = Some(size),
            (3, 1) | (3, 3) => l3 = Some(size),
            _ => {}
        }
    }
    Some(CacheGeometry {
        l1d: l1d?,
        l2: l2?,
        l3,
        line: line.unwrap_or(64),
        source: GeometrySource::Cpuid,
    })
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_cpuid() -> Option<CacheGeometry> {
    None
}

/// The host cache geometry, detected once per process: env override →
/// sysfs → CPUID → [`DEFAULT_GEOMETRY`].
///
/// # Panics
///
/// Panics when [`GEOMETRY_ENV_VAR`] is set but malformed — a typo'd
/// override silently falling back to detection would invalidate the
/// test or benchmark that set it.
pub fn detect() -> &'static CacheGeometry {
    static GEOMETRY: OnceLock<CacheGeometry> = OnceLock::new();
    GEOMETRY.get_or_init(|| {
        if let Ok(spec) = std::env::var(GEOMETRY_ENV_VAR) {
            return CacheGeometry::parse(&spec).unwrap_or_else(|e| {
                panic!("invalid {GEOMETRY_ENV_VAR}: {e}");
            });
        }
        detect_sysfs().or_else(detect_cpuid).unwrap_or(DEFAULT_GEOMETRY)
    })
}

// ---------------------------------------------------------------------
// Blocking derivation.
// ---------------------------------------------------------------------

/// Floor for the depth block: below this, per-block packing overhead
/// dominates any cache effect.
pub const KC_MIN: usize = 16;

/// Ceiling for the depth block: longer accumulation runs stop helping
/// once the strip streams from L1 anyway, and the pack buffers grow.
pub const KC_MAX: usize = 1024;

/// Ceiling for the A-panel rows per block.
pub const MC_MAX: usize = 1024;

/// Ceiling for the B-panel columns per block (bounds the packed B panel
/// to `NC_MAX·KC_MAX·4 = 32 MiB`, inside the scratch arena's pool cap).
pub const NC_MAX: usize = 8192;

/// The three GotoBLAS blocking parameters consumed by
/// [`crate::blocked`]: rows of A packed per block (`mc`), depth of one
/// packed block (`kc`), and columns of B packed per block (`nc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocking {
    /// Rows of A packed per block (`MC`): the `MC×KC` A panel targets
    /// half of L2.
    pub mc: usize,
    /// Depth of one packed block (`KC`): the `KC×NR` B strip targets
    /// half of L1d.
    pub kc: usize,
    /// Columns of B packed per block (`NC`): the `KC×NC` B panel
    /// targets this worker's share of L3 (or L2 when no L3 exists).
    pub nc: usize,
}

/// The pre-geometry-aware constants (`64/256/256`), kept as a named
/// reference point for benchmarks and regression comparisons.
pub const FIXED_BLOCKING: Blocking = Blocking { mc: 64, kc: 256, nc: 256 };

fn round_down(value: usize, multiple: usize) -> usize {
    (value / multiple) * multiple
}

impl Blocking {
    /// Derives the blocking for `geo` analytically (see the module docs
    /// for the three panel inequalities). `mr`/`nr` are the microkernel
    /// tile dimensions, `threads` the worker count sharing the L3.
    pub fn for_geometry(geo: &CacheGeometry, mr: usize, nr: usize, threads: usize) -> Blocking {
        let f32s = std::mem::size_of::<f32>();
        let (mr, nr) = (mr.max(1), nr.max(1));
        // KC·NR·4 ≤ ½·L1d, rounded to a multiple of 8 so full-depth
        // lane loops stay tidy.
        let kc_raw = geo.l1d / 2 / (nr * f32s);
        let kc = round_down(kc_raw, 8).clamp(KC_MIN, KC_MAX);
        // MC·KC·4 ≤ ½·L2.
        let mc_raw = geo.l2 / 2 / (kc * f32s);
        let mc = round_down(mc_raw, mr).clamp(mr, MC_MAX);
        // KC·NC·4 ≤ L3 share (conservative: the panel must also fit L2
        // when the host reports no L3).
        let budget = geo.l3.map(|l3| l3 / threads.max(1)).unwrap_or(geo.l2);
        let nc_raw = budget / (kc * f32s);
        let nc = round_down(nc_raw, nr).clamp(nr, NC_MAX);
        Blocking { mc, kc, nc }
    }

    /// Clamps all three parameters into their legal ranges (used when
    /// installing an externally supplied blocking).
    pub fn sanitized(self, mr: usize, nr: usize) -> Blocking {
        Blocking {
            mc: round_down(self.mc.max(mr), mr.max(1)).clamp(mr.max(1), MC_MAX),
            kc: self.kc.clamp(1, KC_MAX),
            nc: round_down(self.nc.max(nr), nr.max(1)).clamp(nr.max(1), NC_MAX),
        }
    }

    /// Compact `mc=…,kc=…,nc=…` form for reports and manifests.
    pub fn label(&self) -> String {
        format!("mc={},kc={},nc={}", self.mc, self.kc, self.nc)
    }
}

/// The process-wide installed blocking override, if any, with the label
/// of whoever installed it (e.g. the telemetry autotuner).
static INSTALLED: RwLock<Option<(Blocking, &'static str)>> = RwLock::new(None);

/// Installs `blocking` (sanitized) as the process-wide choice consumed
/// by every subsequent blocked GEMM call. `source` names the installer
/// for [`blocking_source`] (e.g. `"telemetry:nn.gemm.shard_ns"`).
/// Numerics are unaffected: every blocking yields bitwise-identical
/// output, so installs may race harmlessly with running kernels.
pub fn install_blocking(blocking: Blocking, source: &'static str) {
    let sane = blocking.sanitized(crate::blocked::MR, crate::blocked::NR);
    *INSTALLED.write().expect("blocking lock poisoned") = Some((sane, source));
}

/// Removes any installed override; [`blocking`] returns to the
/// analytical derivation.
pub fn clear_blocking() {
    *INSTALLED.write().expect("blocking lock poisoned") = None;
}

/// The analytical blocking for the detected geometry under the current
/// microkernel dispatch width and thread budget.
pub fn analytic_blocking() -> Blocking {
    Blocking::for_geometry(
        detect(),
        crate::blocked::MR,
        crate::blocked::dispatch_nr(),
        crate::parallel::Parallelism::current().threads(),
    )
}

/// The active blocking: the installed override when present, otherwise
/// the analytical derivation. Read once per GEMM call.
pub fn blocking() -> Blocking {
    if let Some((b, _)) = *INSTALLED.read().expect("blocking lock poisoned") {
        return b;
    }
    analytic_blocking()
}

/// Where the active blocking came from: the installer's label for an
/// override, otherwise `analytic:{detection source}`.
pub fn blocking_source() -> &'static str {
    if let Some((_, source)) = *INSTALLED.read().expect("blocking lock poisoned") {
        return source;
    }
    match detect().source {
        GeometrySource::Env => "analytic:env",
        GeometrySource::Sysfs => "analytic:sysfs",
        GeometrySource::Cpuid => "analytic:cpuid",
        GeometrySource::Default => "analytic:default",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_size_suffixes_and_rejections() {
        assert_eq!(parse_size("32K").unwrap(), 32 * 1024);
        assert_eq!(parse_size("16m").unwrap(), 16 << 20);
        assert_eq!(parse_size("1G").unwrap(), 1 << 30);
        assert_eq!(parse_size("4096").unwrap(), 4096);
        assert!(parse_size("").is_err());
        assert!(parse_size("0").is_err());
        assert!(parse_size("32Q").is_err());
        assert!(parse_size("K").is_err());
        assert!(parse_size("-4K").is_err());
    }

    #[test]
    fn geometry_parse_roundtrip() {
        for spec in ["L1d:32K,L2:512K,L3:16M", "L1d:4K,L2:64K", "L1d:48K,L2:2M,L3:260M,Line:128"] {
            let geo = CacheGeometry::parse(spec).unwrap();
            let again = CacheGeometry::parse(&geo.spec()).unwrap();
            assert_eq!(geo, again, "{spec}");
        }
        let geo = CacheGeometry::parse("l1d:32k, l2:512k").unwrap();
        assert_eq!(geo.l1d, 32 * 1024, "keys and suffixes are case-insensitive");
        assert_eq!(geo.l3, None);
        assert_eq!(geo.line, 64);
        assert_eq!(geo.source, GeometrySource::Env);
    }

    #[test]
    fn geometry_parse_rejects_malformed_specs_loudly() {
        for bad in [
            "",
            "L1d:32K",               // missing L2
            "L2:512K",               // missing L1d
            "L1d:32K,L2:512K,L4:1M", // unknown key
            "L1d:32K,L2:512K,L2:1M", // duplicate key
            "L1d:0,L2:512K",         // zero size
            "L1d:32K,L2:512Q",       // bad suffix
            "L1d:32K,,L2:512K",      // empty entry
            "L1d=32K,L2=512K",       // wrong separator
        ] {
            assert!(CacheGeometry::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn default_blocking_matches_documented_inequalities() {
        let b = Blocking::for_geometry(&DEFAULT_GEOMETRY, 4, 8, 1);
        assert!(b.kc * 8 * 4 <= DEFAULT_GEOMETRY.l1d / 2, "B strip fits half L1d");
        assert!(b.mc * b.kc * 4 <= DEFAULT_GEOMETRY.l2 / 2, "A panel fits half L2");
        assert!(b.kc * b.nc * 4 <= DEFAULT_GEOMETRY.l2, "no L3: B panel bounded by L2");
        assert_eq!(b.mc % 4, 0);
        assert_eq!(b.nc % 8, 0);
    }

    #[test]
    fn degenerate_geometries_yield_sane_floors() {
        // Small but derivable: the formulas still apply directly.
        let tiny = CacheGeometry::parse("L1d:1K,L2:4K").unwrap();
        let b = Blocking::for_geometry(&tiny, 4, 8, 1);
        assert_eq!(b.kc, KC_MIN, "1K L1d floors kc");
        assert_eq!(b.mc, 32, "4K L2 / 2 / (16·4B) = 32 rows");
        assert_eq!(b.nc, 64, "4K L2 / (16·4B) = 64 cols");

        // Absurdly small: every parameter hits its floor.
        let absurd = CacheGeometry::parse("L1d:64,L2:256").unwrap();
        let b = Blocking::for_geometry(&absurd, 4, 8, 1);
        assert_eq!(b.kc, KC_MIN);
        assert_eq!(b.mc, 4, "mc floors at MR");
        assert_eq!(b.nc, 8, "nc floors at NR");

        let huge = CacheGeometry::parse("L1d:1G,L2:1G,L3:1G").unwrap();
        let b = Blocking::for_geometry(&huge, 4, 8, 1);
        assert_eq!(b.kc, KC_MAX);
        assert_eq!(b.mc, MC_MAX);
        assert_eq!(b.nc, NC_MAX);
    }

    #[test]
    fn l3_share_scales_down_with_threads() {
        let geo = CacheGeometry::parse("L1d:32K,L2:512K,L3:16M").unwrap();
        let alone = Blocking::for_geometry(&geo, 4, 8, 1);
        let crowded = Blocking::for_geometry(&geo, 4, 8, 8);
        assert!(crowded.nc <= alone.nc, "more threads → smaller L3 share");
        assert_eq!(alone.kc, crowded.kc, "kc depends only on L1d");
    }

    #[test]
    fn sanitize_clamps_degenerate_installs() {
        let b = Blocking { mc: 0, kc: 0, nc: 3 }.sanitized(4, 8);
        assert_eq!(b, Blocking { mc: 4, kc: 1, nc: 8 });
        let b = Blocking { mc: 1 << 20, kc: 1 << 20, nc: 1 << 20 }.sanitized(4, 8);
        assert_eq!(b, Blocking { mc: MC_MAX, kc: KC_MAX, nc: NC_MAX });
    }

    #[test]
    fn detect_returns_consistent_geometry() {
        let geo = detect();
        assert!(geo.l1d > 0 && geo.l2 > 0 && geo.line > 0);
        // Whatever the source, the derived blocking must be legal.
        let b = Blocking::for_geometry(geo, 4, 8, 2);
        assert!((KC_MIN..=KC_MAX).contains(&b.kc));
        assert!(b.mc >= 4 && b.nc >= 8);
    }
}
