//! A minimal CPU deep-learning framework for CacheBox.
//!
//! The paper implements CB-GAN in PyTorch; mature image-to-image GAN
//! training stacks do not exist in pure Rust, so this crate provides the
//! required subset from scratch:
//!
//! * [`Tensor`] — dense NCHW `f32` tensors.
//! * [`layers`] — `Conv2d`, `ConvTranspose2d`, `BatchNorm2d`,
//!   `InstanceNorm2d`, `Linear`, `ReLU`/`LeakyReLU`/`Tanh`/`Sigmoid`,
//!   `Dropout`, each with hand-derived backward passes (validated by
//!   finite-difference tests).
//! * [`loss`] — L1, MSE, and numerically stable BCE-with-logits.
//! * [`optim`] — Adam (Pix2Pix defaults) and SGD.
//! * [`graph::Sequential`] — a layer container for straight-line models;
//!   CB-GAN's U-Net wires its skip connections explicitly on top of the
//!   layer primitives.
//! * [`parallel`] — row-partitioned multithreaded GEMM dispatch plus the
//!   [`Parallelism`] thread-count plumbing shared by the trainer, the
//!   data pipeline, and the benchmark harness.
//! * [`blocked`] — the cache-blocked, packed GEMM whose microkernel is
//!   dispatched at runtime (portable scalar, AVX `f32x8`, or AVX-512
//!   `f32x16` behind the `simd` feature; NEON on aarch64); bitwise
//!   identical to the naive [`gemm`] oracle in every variant.
//! * [`geometry`] — host cache-hierarchy detection (sysfs / CPUID /
//!   `CACHEBOX_CACHE_GEOMETRY` override) and the analytical derivation
//!   of the GEMM blocking parameters from it.
//! * [`scratch`] — thread-local buffer recycling backing pack panels,
//!   im2col matrices, and [`Tensor`] storage, so steady-state training
//!   performs no transient heap allocation (see `docs/KERNELS.md`).
//! * [`store`] — the flat [`ParamStore`]: one contiguous value arena and
//!   one gradient arena per model, split into named, stably-ordered
//!   segments. Optimizers and serialization operate on stores; layers
//!   bridge in and out via `export_store`/`import_values`.
//! * [`reduce`] — the canonical recursive-halving sample reduction whose
//!   self-similarity makes sharded gradient sums bitwise identical to
//!   unsharded ones for any power-of-two shard count.
//! * [`replica`] — the data-parallel replica context: a rendezvous for
//!   batch-global statistics (Sync-BN) plus the sample-index plumbing
//!   that keys sharding-invariant dropout masks
//!   (see `docs/PARALLEL_TRAINING.md`).
//!
//! Design note: models here are two fixed DAGs, so the crate uses explicit
//! per-layer `forward`/`backward` methods rather than a general autograd
//! tape — smaller, fully testable, and fast enough for single-core CPU
//! training at the reproduction's scale.
//!
//! # Example
//!
//! ```
//! use cachebox_nn::{Tensor, layers::{Layer, Linear}, loss, optim::Adam};
//!
//! // Fit y = 2x with one linear layer.
//! let mut layer = Linear::new(1, 1, 0);
//! let mut adam = Adam::new(0.1);
//! for _ in 0..1000 {
//!     let x = Tensor::from_vec([4, 1, 1, 1], vec![0.0, 1.0, 2.0, 3.0]);
//!     let target = Tensor::from_vec([4, 1, 1, 1], vec![0.0, 2.0, 4.0, 6.0]);
//!     let y = layer.forward(&x, true);
//!     let (_, grad) = loss::mse(&y, &target);
//!     layer.zero_grad();
//!     layer.backward(&grad);
//!     adam.step_layer(&mut layer);
//! }
//! let probe = layer.forward(&Tensor::from_vec([1, 1, 1, 1], vec![5.0]), false);
//! assert!((probe.data()[0] - 10.0).abs() < 0.3);
//! ```

pub mod blocked;
pub mod gemm;
pub mod geometry;
pub mod graph;
pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod parallel;
pub mod param;
pub mod reduce;
pub mod replica;
pub mod scratch;
pub mod serialize;
pub mod store;
pub mod tensor;
pub mod tuning;

pub use parallel::Parallelism;
pub use param::Param;
pub use store::ParamStore;
pub use tensor::Tensor;
