//! Learnable parameters.

use serde::{Deserialize, Serialize};

/// A learnable parameter tensor: its values and accumulated gradient.
///
/// Layers own their `Param`s and expose them to optimizers through
/// [`Layer::visit_params`](crate::layers::Layer::visit_params); visiting
/// order is stable, which is how [`Adam`](crate::optim::Adam) associates
/// moment state with parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter values.
    pub value: Vec<f32>,
    /// Accumulated gradient (same length as `value`).
    pub grad: Vec<f32>,
}

impl Param {
    /// Creates a parameter from initial values with a zero gradient.
    pub fn new(value: Vec<f32>) -> Self {
        let grad = vec![0.0; value.len()];
        Param { value, grad }
    }

    /// Creates an all-zero parameter of length `len`.
    pub fn zeros(len: usize) -> Self {
        Param::new(vec![0.0; len])
    }

    /// Number of scalars.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Returns `true` when the parameter holds no scalars.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// L2 norm of the gradient (diagnostics). Squares are accumulated
    /// in `f64` so long flat gradients neither lose precision nor
    /// overflow before the final `sqrt`.
    pub fn grad_norm(&self) -> f32 {
        self.grad.iter().map(|&g| g as f64 * g as f64).sum::<f64>().sqrt() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(vec![1.0, 2.0]);
        assert_eq!(p.grad, vec![0.0, 0.0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(vec![1.0]);
        p.grad[0] = 5.0;
        assert_eq!(p.grad_norm(), 5.0);
        p.zero_grad();
        assert_eq!(p.grad_norm(), 0.0);
    }

    #[test]
    fn grad_norm_survives_f32_overflow() {
        let mut p = Param::zeros(2);
        // Each square overflows f32; the f64 accumulator must not.
        p.grad = vec![1e20, 1e20];
        let norm = p.grad_norm();
        assert!(norm.is_finite());
        assert!((norm - (2.0f32).sqrt() * 1e20).abs() / norm < 1e-5);
    }
}
