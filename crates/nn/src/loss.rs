//! Loss functions. Each returns `(loss_value, gradient_w.r.t._prediction)`.

use crate::tensor::Tensor;

/// Mean absolute error — the paper's reconstruction loss `L_L1` (§3.2.2).
///
/// The gradient at exact ties (`pred == target`) is zero.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn l1(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "shape mismatch");
    let n = pred.len() as f32;
    let mut loss = 0.0;
    let grad: Vec<f32> = pred
        .data()
        .iter()
        .zip(target.data())
        .map(|(&p, &t)| {
            let d = p - t;
            loss += d.abs();
            if d > 0.0 {
                1.0 / n
            } else if d < 0.0 {
                -1.0 / n
            } else {
                0.0
            }
        })
        .collect();
    (loss / n, Tensor::from_vec(pred.shape(), grad))
}

/// Mean squared error.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "shape mismatch");
    let n = pred.len() as f32;
    let mut loss = 0.0;
    let grad: Vec<f32> = pred
        .data()
        .iter()
        .zip(target.data())
        .map(|(&p, &t)| {
            let d = p - t;
            loss += d * d;
            2.0 * d / n
        })
        .collect();
    (loss / n, Tensor::from_vec(pred.shape(), grad))
}

/// Numerically stable binary cross-entropy on *logits* — the adversarial
/// loss of §3.2.2. `target` is typically all-ones (real) or all-zeros
/// (fake).
///
/// Uses `max(x,0) - x·t + ln(1 + e^{-|x|})`; the gradient is
/// `(σ(x) - t) / n`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn bce_with_logits(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "shape mismatch");
    let n = pred.len() as f32;
    let mut loss = 0.0;
    let grad: Vec<f32> = pred
        .data()
        .iter()
        .zip(target.data())
        .map(|(&x, &t)| {
            loss += x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
            let sigma = 1.0 / (1.0 + (-x).exp());
            (sigma - t) / n
        })
        .collect();
    (loss / n, Tensor::from_vec(pred.shape(), grad))
}

/// Sharded L1: like [`l1`] but for one shard of a global batch of
/// `total_elems` elements. Returns per-sample loss subtotals (each
/// accumulated linearly within the sample, so they are independent of
/// sharding) and the gradient for this shard's elements, scaled by
/// `1/total_elems`. The caller combines the subtotals over the global
/// batch with the canonical tree ([`crate::reduce::tree_sum`]) and
/// divides by `total_elems`.
///
/// # Panics
///
/// Panics on shape mismatch or `total_elems == 0`.
pub fn l1_sharded(pred: &Tensor, target: &Tensor, total_elems: usize) -> (Vec<f32>, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "shape mismatch");
    assert!(total_elems > 0, "global element count must be non-zero");
    let n = total_elems as f32;
    let mut grad = Tensor::zeros(pred.shape());
    let mut sums = Vec::with_capacity(pred.n());
    for ni in 0..pred.n() {
        let mut loss = 0.0f32;
        for ((gd, &p), &t) in
            grad.sample_mut(ni).iter_mut().zip(pred.sample(ni)).zip(target.sample(ni))
        {
            let d = p - t;
            loss += d.abs();
            *gd = if d > 0.0 {
                1.0 / n
            } else if d < 0.0 {
                -1.0 / n
            } else {
                0.0
            };
        }
        sums.push(loss);
    }
    (sums, grad)
}

/// Sharded binary cross-entropy on logits against a constant label
/// (`1.0` for real, `0.0` for fake): the sharded counterpart of
/// [`bce_with_logits`], with the same per-sample subtotal contract as
/// [`l1_sharded`].
///
/// # Panics
///
/// Panics if `total_elems == 0`.
pub fn bce_with_logits_sharded(
    pred: &Tensor,
    label: f32,
    total_elems: usize,
) -> (Vec<f32>, Tensor) {
    assert!(total_elems > 0, "global element count must be non-zero");
    let n = total_elems as f32;
    let mut grad = Tensor::zeros(pred.shape());
    let mut sums = Vec::with_capacity(pred.n());
    for ni in 0..pred.n() {
        let mut loss = 0.0f32;
        for (gd, &x) in grad.sample_mut(ni).iter_mut().zip(pred.sample(ni)) {
            loss += x.max(0.0) - x * label + (1.0 + (-x.abs()).exp()).ln();
            let sigma = 1.0 / (1.0 + (-x).exp());
            *gd = (sigma - label) / n;
        }
        sums.push(loss);
    }
    (sums, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec([1, 1, 1, n], v)
    }

    #[test]
    fn l1_values_and_grad() {
        let (loss, grad) = l1(&t(vec![1.0, -1.0, 0.0]), &t(vec![0.0, 0.0, 0.0]));
        assert!((loss - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0 / 3.0, -1.0 / 3.0, 0.0]);
    }

    #[test]
    fn mse_values_and_grad() {
        let (loss, grad) = mse(&t(vec![2.0, 0.0]), &t(vec![0.0, 0.0]));
        assert!((loss - 2.0).abs() < 1e-6);
        assert_eq!(grad.data(), &[2.0, 0.0]);
    }

    #[test]
    fn bce_at_zero_logit() {
        // σ(0)=0.5: loss = ln2 for either label; grad = ±0.5/n.
        let (loss_real, grad_real) = bce_with_logits(&t(vec![0.0]), &t(vec![1.0]));
        assert!((loss_real - std::f32::consts::LN_2).abs() < 1e-6);
        assert!((grad_real.data()[0] + 0.5).abs() < 1e-6);
        let (loss_fake, grad_fake) = bce_with_logits(&t(vec![0.0]), &t(vec![0.0]));
        assert!((loss_fake - std::f32::consts::LN_2).abs() < 1e-6);
        assert!((grad_fake.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn bce_is_stable_for_extreme_logits() {
        let (loss, grad) = bce_with_logits(&t(vec![80.0, -80.0]), &t(vec![1.0, 0.0]));
        assert!(loss.is_finite() && loss < 1e-6);
        assert!(grad.data().iter().all(|g| g.is_finite()));
        let (loss_bad, _) = bce_with_logits(&t(vec![-80.0, 80.0]), &t(vec![1.0, 0.0]));
        assert!(loss_bad.is_finite() && loss_bad > 50.0);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let pred = t(vec![0.3, -0.7, 1.5]);
        let target = t(vec![1.0, 0.0, 1.0]);
        for loss_fn in [l1, mse, bce_with_logits] {
            let (_, grad) = loss_fn(&pred, &target);
            for i in 0..3 {
                let eps = 1e-3;
                let mut plus = pred.clone();
                plus.data_mut()[i] += eps;
                let mut minus = pred.clone();
                minus.data_mut()[i] -= eps;
                let numeric =
                    (loss_fn(&plus, &target).0 - loss_fn(&minus, &target).0) / (2.0 * eps);
                assert!(
                    (numeric - grad.data()[i]).abs() < 1e-2,
                    "i={i}: numeric {numeric} vs {}",
                    grad.data()[i]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn validates_shapes() {
        l1(&t(vec![0.0]), &t(vec![0.0, 1.0]));
    }

    #[test]
    fn sharded_l1_grad_scales_by_global_count() {
        let pred = Tensor::from_vec([2, 1, 1, 2], vec![1.0, -1.0, 2.0, 0.0]);
        let target = Tensor::zeros([2, 1, 1, 2]);
        // Pretend this is half of a global batch of 4 samples (8 elems).
        let (sums, grad) = l1_sharded(&pred, &target, 8);
        assert_eq!(sums.len(), 2);
        assert!((sums[0] - 2.0).abs() < 1e-6);
        assert!((sums[1] - 2.0).abs() < 1e-6);
        assert_eq!(grad.data()[0], 1.0 / 8.0);
        assert_eq!(grad.data()[1], -1.0 / 8.0);
    }

    #[test]
    fn sharded_bce_matches_full_when_unsharded() {
        let pred = t(vec![0.3, -0.7, 1.5]);
        let label = Tensor::full(pred.shape(), 1.0);
        let (full_loss, full_grad) = bce_with_logits(&pred, &label);
        let (sums, grad) = bce_with_logits_sharded(&pred, 1.0, pred.len());
        let loss: f32 = sums.iter().sum::<f32>() / pred.len() as f32;
        assert!((loss - full_loss).abs() < 1e-6);
        for (a, b) in grad.data().iter().zip(full_grad.data()) {
            assert!((a - b).abs() < 1e-7);
        }
    }
}
