//! Thread-local `f32` buffer recycling: the allocation-free backbone of
//! the training hot path.
//!
//! Every transient buffer the layers and kernels need — im2col patch
//! matrices, GEMM pack panels, per-sample gradient accumulators, and
//! (through [`Tensor`](crate::Tensor)'s `Drop`/`Clone`/`zeros`
//! integration) whole activation tensors — is drawn from a per-thread
//! free list and returned to it when dropped. Training steps repeat the
//! same shapes every iteration, so after one warm-up pass the pool
//! contains a buffer of every required capacity and steady-state
//! forward/backward performs **zero transient heap allocations** in the
//! conv/deconv/linear paths (proven by the allocator-counting test in
//! `crates/nn/tests/no_alloc.rs`).
//!
//! The pool is intentionally simple: a bounded per-thread `Vec` of free
//! buffers, best-fit matched by capacity. Buffers above
//! [`MAX_POOLED_BYTES`] or beyond [`MAX_POOLED_BUFFERS`] entries are
//! handed back to the global allocator, so the pool cannot grow without
//! bound. Scoped worker threads get their own (short-lived) pools;
//! recycling only pays off on long-lived threads, which is exactly where
//! the training loop runs.
//!
//! Telemetry: `nn.scratch.reuse` counts pool hits, `nn.scratch.alloc`
//! counts fresh allocations (both only when telemetry is enabled).

use cachebox_telemetry as telemetry;
use std::cell::RefCell;

/// Maximum buffers kept per thread; excess buffers are freed on recycle.
pub const MAX_POOLED_BUFFERS: usize = 64;

/// Buffers larger than this many bytes are never pooled (64 MiB).
pub const MAX_POOLED_BYTES: usize = 1 << 26;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Pops the smallest pooled buffer with `capacity >= len`, or allocates.
/// The returned vector is empty (`len() == 0`) with sufficient capacity.
fn pop_fit(len: usize) -> Vec<f32> {
    let reused = POOL
        .try_with(|pool| {
            let mut pool = pool.borrow_mut();
            let mut best: Option<usize> = None;
            for (i, buf) in pool.iter().enumerate() {
                if buf.capacity() >= len && best.is_none_or(|b| buf.capacity() < pool[b].capacity())
                {
                    best = Some(i);
                }
            }
            best.map(|i| pool.swap_remove(i))
        })
        .ok()
        .flatten();
    match reused {
        Some(mut buf) => {
            buf.clear();
            telemetry::counter("nn.scratch.reuse", 1);
            buf
        }
        None => {
            telemetry::counter("nn.scratch.alloc", 1);
            Vec::with_capacity(len)
        }
    }
}

/// A zero-filled length-`len` vector, reusing a pooled buffer when one
/// fits. Callers should hand the vector back via [`recycle`] (or let a
/// [`Tensor`](crate::Tensor) or [`Scratch`] do so on drop).
pub fn take_vec(len: usize) -> Vec<f32> {
    let mut buf = pop_fit(len);
    buf.resize(len, 0.0);
    buf
}

/// A pooled copy of `src` (same length and contents).
pub fn take_vec_copy(src: &[f32]) -> Vec<f32> {
    let mut buf = pop_fit(src.len());
    buf.extend_from_slice(src);
    buf
}

/// Returns a buffer to the current thread's pool. Oversized buffers and
/// buffers beyond the pool bound are freed instead; empty buffers are
/// ignored.
pub fn recycle(buf: Vec<f32>) {
    if buf.capacity() == 0 || buf.capacity() * std::mem::size_of::<f32>() > MAX_POOLED_BYTES {
        return;
    }
    // Ignore failures during thread teardown (TLS already destroyed):
    // the buffer simply drops.
    let _ = POOL.try_with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < MAX_POOLED_BUFFERS {
            pool.push(buf);
        }
    });
}

/// An RAII scratch buffer: zero-filled on take, recycled on drop.
///
/// # Example
///
/// ```
/// use cachebox_nn::scratch;
///
/// let mut s = scratch::scratch(128);
/// s[0] = 1.0;
/// assert_eq!(s.len(), 128);
/// drop(s); // buffer returns to the thread-local pool
/// assert!(scratch::pooled_buffers() >= 1);
/// ```
#[derive(Debug)]
pub struct Scratch {
    buf: Vec<f32>,
}

impl Scratch {
    /// The underlying slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.buf
    }

    /// The underlying mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl std::ops::Deref for Scratch {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl std::ops::DerefMut for Scratch {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        recycle(std::mem::take(&mut self.buf));
    }
}

/// A zero-filled scratch buffer of `len` floats from the pool.
pub fn scratch(len: usize) -> Scratch {
    Scratch { buf: take_vec(len) }
}

/// Number of buffers currently pooled on this thread (introspection for
/// tests and diagnostics).
pub fn pooled_buffers() -> usize {
    POOL.try_with(|pool| pool.borrow().len()).unwrap_or(0)
}

/// Frees every pooled buffer on this thread.
pub fn clear() {
    let _ = POOL.try_with(|pool| pool.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_roundtrip_reuses_capacity() {
        clear();
        let v = take_vec(100);
        let cap = v.capacity();
        let ptr = v.as_ptr();
        recycle(v);
        assert_eq!(pooled_buffers(), 1);
        let v2 = take_vec(80);
        assert_eq!(v2.capacity(), cap, "pooled buffer should be reused");
        assert_eq!(v2.as_ptr(), ptr, "same allocation should come back");
        assert_eq!(pooled_buffers(), 0);
        assert!(v2.iter().all(|&x| x == 0.0));
        clear();
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        clear();
        recycle(Vec::with_capacity(1000));
        recycle(Vec::with_capacity(100));
        let v = take_vec(50);
        assert_eq!(v.capacity(), 100, "best fit should pick the smaller buffer");
        clear();
    }

    #[test]
    fn take_vec_copy_matches_source() {
        clear();
        let src = [1.0f32, -2.0, 3.5];
        let v = take_vec_copy(&src);
        assert_eq!(v.as_slice(), &src);
        clear();
    }

    #[test]
    fn oversized_and_empty_buffers_are_not_pooled() {
        clear();
        recycle(Vec::new());
        assert_eq!(pooled_buffers(), 0);
        clear();
    }

    #[test]
    fn pool_is_bounded() {
        clear();
        for _ in 0..(MAX_POOLED_BUFFERS + 10) {
            recycle(Vec::with_capacity(8));
        }
        assert_eq!(pooled_buffers(), MAX_POOLED_BUFFERS);
        clear();
    }

    #[test]
    fn scratch_guard_zeroes_and_recycles() {
        clear();
        {
            let mut s = scratch(16);
            s[3] = 9.0;
        }
        assert_eq!(pooled_buffers(), 1);
        let s2 = scratch(16);
        assert!(s2.iter().all(|&x| x == 0.0), "scratch must be re-zeroed");
        drop(s2);
        clear();
    }
}
