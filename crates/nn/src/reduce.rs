//! Canonical binary-tree reductions over the sample dimension.
//!
//! `f32` addition is not associative, so a sum that is accumulated
//! linearly over samples changes value when the batch is split across
//! worker shards. Every cross-sample reduction in this crate (conv /
//! deconv / linear weight and bias gradients, batch-norm statistics,
//! loss totals) therefore uses one **canonical recursive-halving tree**
//! instead: the value of range `[lo, hi)` is
//!
//! ```text
//! value(lo, hi) = value(lo, mid) + value(mid, hi),   mid = lo + (hi - lo) / 2
//! ```
//!
//! with single samples as leaves. The tree over `[lo, hi)` is
//! self-similar: if a batch of `n` samples is split into contiguous
//! shards along tree-node boundaries ([`tree_splits`]), each shard's
//! local reduction *is* a subtree value, and combining the shard
//! partials pairwise in the same order ([`tree_reduce_rows`])
//! reproduces the unsharded reduction **bitwise**. This is the
//! foundation of the replica-count invariance contract documented in
//! `docs/PARALLEL_TRAINING.md`.
//!
//! ## Ragged shard counts
//!
//! The shard count does **not** have to be a power of two. Conceptually
//! the partial-combining tree over `R` shards is padded with identity
//! leaves up to the next power of two `P`; combining with an identity
//! leaf is a no-op, so every real partial still meets its neighbours in
//! the canonical order. Concretely this collapses to the same recursion
//! the sample tree uses: the left half of a range receives
//! `floor(R/2)` shards and the right half `ceil(R/2)`, which is exactly
//! how [`tree_reduce_rows`]' midpoint recursion groups `R` rows. Both
//! sides agreeing on that shape is what makes the sharded reduction
//! bitwise-equal to the unsharded one for **every** `1 ≤ R ≤ n`.

/// Splits `[0, n)` into `parts` contiguous non-empty ranges along
/// canonical-tree node boundaries.
///
/// Any `1 <= parts <= n` is supported. The ranges are a size-`parts`
/// frontier of the halving tree, chosen so that reducing each shard
/// locally ([`fold_samples`]) and combining the partials with
/// [`tree_reduce_rows`] reproduces the unsharded reduction bitwise (the
/// padded-tree construction described in the module docs). For
/// power-of-two `parts` this is the uniform depth-`log2(parts)`
/// frontier.
pub fn tree_splits(n: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts >= 1, "shard count must be non-zero");
    assert!(parts <= n.max(1), "cannot split {n} samples into {parts} shards");
    fn rec(lo: usize, hi: usize, parts: usize, out: &mut Vec<(usize, usize)>) {
        if parts <= 1 {
            out.push((lo, hi));
            return;
        }
        // Mirror tree_reduce_rows' row recursion: mid = lo + (hi-lo)/2
        // puts floor(parts/2) rows left of the split, the rest right.
        let mid = lo + (hi - lo) / 2;
        let left_parts = parts / 2;
        rec(lo, mid, left_parts, out);
        rec(mid, hi, parts - left_parts, out);
    }
    let mut out = Vec::with_capacity(parts);
    rec(0, n, parts, &mut out);
    out
}

/// Merge schedule for combining a tree-node frontier's partials in
/// shard order.
///
/// `shards` must be contiguous ranges covering `[0, n)` where every
/// range is a node of the canonical halving tree — e.g. the output of
/// [`tree_splits`], or any refinement obtained by sub-splitting some of
/// those ranges with `tree_splits` again (sub-splitting a node with the
/// same midpoint rule yields sub-nodes of the full tree, so the union
/// is still a frontier). The returned vector has one entry per shard:
/// after pushing shard `i`'s partial onto a left-to-right merge stack,
/// perform `plan[i]` combines, each replacing the top two stack entries
/// `L, R` with `L + R` (elementwise, left operand accumulates). After
/// the final shard the stack holds exactly one buffer: the canonical
/// tree total of `[0, n)`, bitwise equal to the unsharded reduction.
///
/// Unlike [`tree_reduce_rows`] this consumes partials strictly in shard
/// order, one at a time, so a reducer can start combining as soon as
/// the first shards land instead of waiting for the full set — the
/// basis of the streamed micro-batch reduction in `replica`.
pub fn frontier_merge_plan(n: usize, shards: &[(usize, usize)]) -> Vec<usize> {
    assert!(!shards.is_empty(), "cannot plan over zero shards");
    assert_eq!(shards[0].0, 0, "frontier must start at sample 0");
    assert_eq!(shards[shards.len() - 1].1, n, "frontier must end at sample {n}");
    fn rec(lo: usize, hi: usize, shards: &[(usize, usize)], idx: &mut usize, plan: &mut [usize]) {
        let (slo, shi) = shards[*idx];
        assert_eq!(slo, lo, "shard {idx} does not start on a tree-node boundary", idx = *idx);
        if shi == hi {
            *idx += 1;
            return;
        }
        assert!(shi < hi, "shard {idx} crosses a tree-node boundary", idx = *idx);
        let mid = lo + (hi - lo) / 2;
        rec(lo, mid, shards, idx, plan);
        rec(mid, hi, shards, idx, plan);
        // Both children are now on the stack (each already collapsed to
        // one entry); combine them right after the right child's last
        // shard arrives.
        plan[*idx - 1] += 1;
    }
    let mut plan = vec![0usize; shards.len()];
    let mut idx = 0usize;
    rec(0, n, shards, &mut idx, &mut plan);
    assert_eq!(idx, shards.len(), "frontier has trailing shards past sample {n}");
    plan
}

/// Tree-reduces `n` packed per-sample buffers of `len` floats in place.
///
/// `bufs` holds sample `i`'s contribution at `i*len..(i+1)*len`; after
/// the call the canonical tree total occupies `bufs[..len]`. The
/// remaining contents are unspecified.
pub fn fold_samples(bufs: &mut [f32], n: usize, len: usize) {
    assert!(bufs.len() >= n * len, "packed buffer too small");
    fn rec(bufs: &mut [f32], lo: usize, hi: usize, len: usize) {
        if hi - lo <= 1 {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        rec(bufs, lo, mid, len);
        rec(bufs, mid, hi, len);
        let (head, tail) = bufs.split_at_mut(mid * len);
        let dst = &mut head[lo * len..lo * len + len];
        let src = &tail[..len];
        for (d, s) in dst.iter_mut().zip(src) {
            *d += *s;
        }
    }
    if n > 0 {
        rec(bufs, 0, n, len);
    }
}

/// Canonical tree total of equal-length rows, without mutating them.
///
/// Performs the identical addition tree as [`fold_samples`] (left
/// operand is the accumulator at every node), so the two agree bitwise.
pub fn tree_reduce_rows(rows: &[&[f32]]) -> Vec<f32> {
    assert!(!rows.is_empty(), "cannot reduce zero rows");
    let len = rows[0].len();
    fn rec(rows: &[&[f32]], lo: usize, hi: usize, out: &mut Vec<f32>) {
        if hi - lo == 1 {
            out.clear();
            out.extend_from_slice(rows[lo]);
            return;
        }
        let mid = lo + (hi - lo) / 2;
        rec(rows, lo, mid, out);
        let mut right = Vec::new();
        rec(rows, mid, hi, &mut right);
        for (d, s) in out.iter_mut().zip(&right) {
            *d += *s;
        }
    }
    for row in rows {
        assert_eq!(row.len(), len, "tree rows must have equal length");
    }
    let mut out = Vec::with_capacity(len);
    rec(rows, 0, rows.len(), &mut out);
    out
}

/// [`tree_reduce_rows`] into a caller-owned buffer: packs the rows into
/// `buf` and folds them in place with [`fold_samples`] (the identical
/// addition tree), leaving the total in `buf[..len]` and truncating
/// `buf` to it. Reusing `buf` across calls makes a steady-state
/// reduction free of transient allocations once the buffer is warm.
pub fn tree_reduce_rows_into(rows: &[&[f32]], buf: &mut Vec<f32>) {
    assert!(!rows.is_empty(), "cannot reduce zero rows");
    let len = rows[0].len();
    buf.clear();
    for row in rows {
        assert_eq!(row.len(), len, "tree rows must have equal length");
        buf.extend_from_slice(row);
    }
    fold_samples(buf, rows.len(), len);
    buf.truncate(len);
}

/// Canonical tree total of per-sample scalars (the `len == 1` case).
pub fn tree_sum(vals: &[f32]) -> f32 {
    fn rec(vals: &[f32], lo: usize, hi: usize) -> f32 {
        if hi - lo == 1 {
            return vals[lo];
        }
        let mid = lo + (hi - lo) / 2;
        rec(vals, lo, mid) + rec(vals, mid, hi)
    }
    if vals.is_empty() {
        0.0
    } else {
        rec(vals, 0, vals.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn tree_splits_covers_contiguously() {
        for n in 1..16 {
            for k in 1..=n {
                let ranges = tree_splits(n, k);
                assert_eq!(ranges.len(), k);
                assert_eq!(ranges[0].0, 0);
                assert_eq!(ranges[k - 1].1, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
                }
                for (lo, hi) in ranges {
                    assert!(hi > lo, "every shard must be non-empty");
                }
            }
        }
    }

    /// The load-bearing property: reducing each shard locally and then
    /// combining the shard partials with the same (padded) tree is
    /// bitwise equal to the unsharded reduction, for **every** shard
    /// count `1 ≤ parts ≤ n`, ragged or not.
    #[test]
    fn sharded_fold_matches_full_fold_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in 1..=12usize {
            let len = 5;
            let samples: Vec<Vec<f32>> =
                (0..n).map(|_| (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()).collect();

            let mut full: Vec<f32> = samples.concat();
            fold_samples(&mut full, n, len);
            let reference = full[..len].to_vec();

            for parts in 1..=n {
                let partials: Vec<Vec<f32>> = tree_splits(n, parts)
                    .into_iter()
                    .map(|(lo, hi)| {
                        let mut buf: Vec<f32> = samples[lo..hi].concat();
                        fold_samples(&mut buf, hi - lo, len);
                        buf[..len].to_vec()
                    })
                    .collect();
                let rows: Vec<&[f32]> = partials.iter().map(|p| p.as_slice()).collect();
                let combined = tree_reduce_rows(&rows);
                assert_eq!(
                    combined.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "n={n} parts={parts}"
                );
                let mut into = Vec::new();
                reduce_rows_into_matches(&rows, &combined, &mut into);
            }
        }
    }

    /// Asserts `tree_reduce_rows_into` agrees bitwise with the
    /// allocation-per-call reference, reusing `buf` across calls.
    fn reduce_rows_into_matches(rows: &[&[f32]], expect: &[f32], buf: &mut Vec<f32>) {
        tree_reduce_rows_into(rows, buf);
        assert_eq!(
            buf.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    proptest::proptest! {
        /// Property form of the ragged contract the trainer depends on:
        /// for R ∈ 1..=9 replicas over arbitrary batches, the padded
        /// tree over per-shard partials equals the single-worker
        /// fixed-order reduction bitwise.
        #[test]
        fn padded_tree_reduction_is_replica_invariant(
            seed in 0u64..1000,
            n in 1usize..=24,
            len in 1usize..=7,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let samples: Vec<Vec<f32>> = (0..n)
                .map(|_| (0..len).map(|_| rng.gen_range(-3.0f32..3.0)).collect())
                .collect();
            let mut full: Vec<f32> = samples.concat();
            fold_samples(&mut full, n, len);
            let reference = &full[..len];

            let mut scratch = Vec::new();
            for parts in 1..=9usize.min(n) {
                let partials: Vec<Vec<f32>> = tree_splits(n, parts)
                    .into_iter()
                    .map(|(lo, hi)| {
                        let mut buf: Vec<f32> = samples[lo..hi].concat();
                        fold_samples(&mut buf, hi - lo, len);
                        buf.truncate(len);
                        buf
                    })
                    .collect();
                let rows: Vec<&[f32]> = partials.iter().map(|p| p.as_slice()).collect();
                tree_reduce_rows_into(&rows, &mut scratch);
                proptest::prop_assert_eq!(
                    scratch.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "n={} parts={}", n, parts
                );
            }
        }
    }

    /// Drives a merge stack with `frontier_merge_plan`, mirroring what
    /// the streamed reducer in `replica` does with arriving partials.
    fn drive_plan(partials: &[Vec<f32>], plan: &[usize]) -> Vec<f32> {
        let mut stack: Vec<Vec<f32>> = Vec::new();
        for (partial, &merges) in partials.iter().zip(plan) {
            stack.push(partial.clone());
            for _ in 0..merges {
                let right = stack.pop().unwrap();
                let left = stack.last_mut().unwrap();
                for (d, s) in left.iter_mut().zip(&right) {
                    *d += *s;
                }
            }
        }
        assert_eq!(stack.len(), 1, "plan must collapse the stack to the total");
        stack.pop().unwrap()
    }

    fn shard_partials(
        samples: &[Vec<f32>],
        shards: &[(usize, usize)],
        len: usize,
    ) -> Vec<Vec<f32>> {
        shards
            .iter()
            .map(|&(lo, hi)| {
                let mut buf: Vec<f32> = samples[lo..hi].concat();
                fold_samples(&mut buf, hi - lo, len);
                buf.truncate(len);
                buf
            })
            .collect()
    }

    /// The streamed in-order merge must agree bitwise with both the
    /// unsharded fold and `tree_reduce_rows` over the same frontier.
    #[test]
    fn frontier_merge_plan_matches_full_fold_bitwise() {
        let mut rng = StdRng::seed_from_u64(23);
        for n in 1..=12usize {
            let len = 4;
            let samples: Vec<Vec<f32>> =
                (0..n).map(|_| (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()).collect();
            let mut full: Vec<f32> = samples.concat();
            fold_samples(&mut full, n, len);
            let reference: Vec<u32> = full[..len].iter().map(|v| v.to_bits()).collect();

            for parts in 1..=n {
                let shards = tree_splits(n, parts);
                let partials = shard_partials(&samples, &shards, len);
                let plan = frontier_merge_plan(n, &shards);
                let streamed = drive_plan(&partials, &plan);
                assert_eq!(
                    streamed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    reference,
                    "n={n} parts={parts}"
                );
                let rows: Vec<&[f32]> = partials.iter().map(|p| p.as_slice()).collect();
                let batch = tree_reduce_rows(&rows);
                assert_eq!(
                    streamed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    batch.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "streamed merge must equal tree_reduce_rows, n={n} parts={parts}"
                );
            }
        }
    }

    /// Hierarchical refinement: split into M micro-ranges, then split
    /// each micro-range into up to R sub-shards. The union is still a
    /// tree-node frontier, so the in-order merge must reproduce the
    /// unsharded reduction — the joint R×M invariance the trainer
    /// relies on.
    #[test]
    fn frontier_merge_plan_composes_across_micro_batches() {
        let mut rng = StdRng::seed_from_u64(31);
        for n in 1..=11usize {
            let len = 3;
            let samples: Vec<Vec<f32>> =
                (0..n).map(|_| (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()).collect();
            let mut full: Vec<f32> = samples.concat();
            fold_samples(&mut full, n, len);
            let reference: Vec<u32> = full[..len].iter().map(|v| v.to_bits()).collect();

            for m in 1..=n {
                for r in 1..=4usize {
                    let mut shards = Vec::new();
                    for (mlo, mhi) in tree_splits(n, m) {
                        let span = mhi - mlo;
                        for (slo, shi) in tree_splits(span, r.min(span)) {
                            shards.push((mlo + slo, mlo + shi));
                        }
                    }
                    let partials = shard_partials(&samples, &shards, len);
                    let plan = frontier_merge_plan(n, &shards);
                    let streamed = drive_plan(&partials, &plan);
                    assert_eq!(
                        streamed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        reference,
                        "n={n} micro={m} replicas={r}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "tree-node boundary")]
    fn frontier_merge_plan_rejects_non_node_shards() {
        // [0,2) is not a node of the tree over [0,5): the root splits at 2
        // only for even n; for n=5 the midpoint is 2 — but [2,3)+[3,5)
        // forces [0,2)'s sibling structure, while [0,1),[1,2) are the
        // real children of [0,2). A shard straddling a midpoint must be
        // rejected loudly. Here [1,4) crosses the root midpoint 2.
        frontier_merge_plan(5, &[(0, 1), (1, 4), (4, 5)]);
    }

    #[test]
    fn tree_sum_matches_rows_of_length_one() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in 1..=9usize {
            let vals: Vec<f32> = (0..n).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
            let rows: Vec<Vec<f32>> = vals.iter().map(|&v| vec![v]).collect();
            let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
            assert_eq!(tree_sum(&vals).to_bits(), tree_reduce_rows(&refs)[0].to_bits());
        }
    }

    #[test]
    fn fold_handles_degenerate_sizes() {
        let mut one = vec![1.5f32, -2.0];
        fold_samples(&mut one, 1, 2);
        assert_eq!(one, vec![1.5, -2.0]);
        fold_samples(&mut [], 0, 3);
        assert_eq!(tree_sum(&[]), 0.0);
    }
}
