//! Layer composition.

use crate::layers::Layer;
use crate::param::Param;
use crate::tensor::Tensor;

/// A straight-line stack of layers, itself a [`Layer`].
///
/// CB-GAN's encoder/decoder *blocks* are `Sequential`s; the U-Net's skip
/// connections are wired explicitly above this level.
///
/// # Example
///
/// ```
/// use cachebox_nn::{Tensor, graph::Sequential, layers::{Conv2d, Layer, LeakyRelu}};
///
/// let mut block = Sequential::new()
///     .push(Conv2d::new(1, 4, 4, 2, 1, 0))
///     .push(LeakyRelu::new(0.2));
/// let out = block.forward(&Tensor::zeros([1, 1, 8, 8]), false);
/// assert_eq!(out.shape(), [1, 4, 4, 4]);
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequential::default()
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push_boxed(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Visits each layer in order with its index, for per-layer
    /// inspection (gradient-norm scans, telemetry labels, diagnostics).
    pub fn visit_layers(&mut self, visitor: &mut dyn FnMut(usize, &mut dyn Layer)) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            visitor(i, layer.as_mut());
        }
    }

    /// Returns `true` when the stack holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn kind(&self) -> &'static str {
        "sequential"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }

    fn visit_buffers(&mut self, visitor: &mut dyn FnMut(&mut Vec<f32>)) {
        for layer in &mut self.layers {
            layer.visit_buffers(visitor);
        }
    }

    fn visit_named_params(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Param)) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let child = format!("{prefix}{}{i}.", layer.kind());
            layer.visit_named_params(&child, visitor);
        }
    }

    fn visit_named_buffers(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Vec<f32>)) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let child = format!("{prefix}{}{i}.", layer.kind());
            layer.visit_named_buffers(&child, visitor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{gradcheck, BatchNorm2d, Conv2d, LeakyRelu, Linear, Relu, Tanh};
    use crate::loss;
    use crate::optim::Adam;

    #[test]
    fn forward_composes_shapes() {
        let mut s = Sequential::new()
            .push(Conv2d::new(1, 4, 4, 2, 1, 0))
            .push(BatchNorm2d::new(4))
            .push(LeakyRelu::new(0.2))
            .push(Conv2d::new(4, 8, 4, 2, 1, 1));
        let out = s.forward(&Tensor::zeros([2, 1, 16, 16]), false);
        assert_eq!(out.shape(), [2, 8, 4, 4]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn visit_layers_reports_kinds_in_order() {
        let mut s = Sequential::new()
            .push(Conv2d::new(1, 2, 3, 1, 1, 0))
            .push(BatchNorm2d::new(2))
            .push(LeakyRelu::new(0.2));
        let mut kinds = Vec::new();
        s.visit_layers(&mut |i, layer| kinds.push((i, layer.kind())));
        assert_eq!(kinds, vec![(0, "conv2d"), (1, "batch_norm2d"), (2, "leaky_relu")]);
        assert_eq!(s.kind(), "sequential");
    }

    #[test]
    fn gradients_flow_through_stack() {
        let mut s = Sequential::new()
            .push(Conv2d::new(1, 2, 3, 1, 1, 3))
            .push(Tanh::new())
            .push(Conv2d::new(2, 1, 3, 1, 1, 4));
        let x = Tensor::from_vec([1, 1, 4, 4], (0..16).map(|i| (i as f32 - 8.0) / 8.0).collect());
        gradcheck::check_input_gradient(&mut s, &x, 2e-2);
        gradcheck::check_param_gradients(&mut s, &x, 2e-2);
    }

    #[test]
    fn small_mlp_learns_xor() {
        let mut mlp = Sequential::new()
            .push(Linear::new(2, 8, 1))
            .push(Relu::new())
            .push(Linear::new(8, 1, 2))
            .push(Tanh::new());
        let x = Tensor::from_vec([4, 2, 1, 1], vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let target = Tensor::from_vec([4, 1, 1, 1], vec![-0.9, 0.9, 0.9, -0.9]);
        let mut adam = Adam::new(0.03);
        let mut final_loss = f32::INFINITY;
        for _ in 0..800 {
            let y = mlp.forward(&x, true);
            let (l, g) = loss::mse(&y, &target);
            final_loss = l;
            mlp.zero_grad();
            mlp.backward(&g);
            adam.step_layer(&mut mlp);
        }
        assert!(final_loss < 0.05, "xor loss {final_loss}");
    }

    #[test]
    fn param_count_sums_layers() {
        let mut s = Sequential::new().push(Linear::new(2, 3, 0)).push(Linear::new(3, 1, 1));
        assert_eq!(s.param_count(), (2 * 3 + 3) + (3 + 1));
    }
}
