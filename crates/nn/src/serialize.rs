//! Model parameter snapshots (checkpointing).

use crate::layers::Layer;
use serde::{Deserialize, Serialize};

/// A flat snapshot of a model's parameters, in visit order.
///
/// # Example
///
/// ```
/// use cachebox_nn::{layers::{Layer, Linear}, serialize::StateDict, Tensor};
///
/// let mut a = Linear::new(2, 2, 1);
/// let state = StateDict::from_layer(&mut a);
/// let mut b = Linear::new(2, 2, 999); // different init
/// state.load_into(&mut b).unwrap();
/// let x = Tensor::zeros([1, 2, 1, 1]);
/// assert_eq!(a.forward(&x, false), b.forward(&x, false));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StateDict {
    tensors: Vec<Vec<f32>>,
    /// Non-learnable state (batch-norm running statistics).
    #[serde(default)]
    buffers: Vec<Vec<f32>>,
}

/// Error returned when a snapshot does not fit a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadStateError {
    expected: usize,
    found: usize,
    detail: String,
}

impl std::fmt::Display for LoadStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "state dict mismatch: model has {} parameter tensors, snapshot has {} ({})",
            self.expected, self.found, self.detail
        )
    }
}

impl std::error::Error for LoadStateError {}

impl StateDict {
    /// Captures a snapshot of `layer`'s parameters and state buffers.
    pub fn from_layer(layer: &mut dyn Layer) -> Self {
        let mut tensors = Vec::new();
        layer.visit_params(&mut |p| tensors.push(p.value.clone()));
        let mut buffers = Vec::new();
        layer.visit_buffers(&mut |b| buffers.push(b.clone()));
        StateDict { tensors, buffers }
    }

    /// Restores a snapshot into `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`LoadStateError`] if the tensor count or any tensor length
    /// differs from the model's layout.
    pub fn load_into(&self, layer: &mut dyn Layer) -> Result<(), LoadStateError> {
        // Validate before mutating.
        let mut lengths = Vec::new();
        layer.visit_params(&mut |p| lengths.push(p.len()));
        if lengths.len() != self.tensors.len() {
            return Err(LoadStateError {
                expected: lengths.len(),
                found: self.tensors.len(),
                detail: "tensor count differs".to_string(),
            });
        }
        for (i, (len, t)) in lengths.iter().zip(&self.tensors).enumerate() {
            if *len != t.len() {
                return Err(LoadStateError {
                    expected: lengths.len(),
                    found: self.tensors.len(),
                    detail: format!("tensor {i} has length {} but model expects {len}", t.len()),
                });
            }
        }
        let mut buffer_lengths = Vec::new();
        layer.visit_buffers(&mut |b| buffer_lengths.push(b.len()));
        if buffer_lengths.len() != self.buffers.len() {
            return Err(LoadStateError {
                expected: buffer_lengths.len(),
                found: self.buffers.len(),
                detail: "buffer count differs".to_string(),
            });
        }
        for (i, (len, b)) in buffer_lengths.iter().zip(&self.buffers).enumerate() {
            if *len != b.len() {
                return Err(LoadStateError {
                    expected: buffer_lengths.len(),
                    found: self.buffers.len(),
                    detail: format!("buffer {i} has length {} but model expects {len}", b.len()),
                });
            }
        }
        let mut idx = 0;
        layer.visit_params(&mut |p| {
            p.value.copy_from_slice(&self.tensors[idx]);
            idx += 1;
        });
        let mut idx = 0;
        layer.visit_buffers(&mut |b| {
            b.copy_from_slice(&self.buffers[idx]);
            idx += 1;
        });
        Ok(())
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Returns `true` when the snapshot holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total scalar count.
    pub fn scalar_count(&self) -> usize {
        self.tensors.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Sequential;
    use crate::layers::{Conv2d, Linear};
    use crate::tensor::Tensor;

    #[test]
    fn roundtrip_through_clone() {
        let mut model = Sequential::new().push(Conv2d::new(1, 2, 3, 1, 1, 5)).push(Linear::new(
            2 * 4 * 4,
            3,
            6,
        ));
        let state = StateDict::from_layer(&mut model);
        let restored = state.clone();
        let mut model2 = Sequential::new().push(Conv2d::new(1, 2, 3, 1, 1, 50)).push(Linear::new(
            2 * 4 * 4,
            3,
            60,
        ));
        restored.load_into(&mut model2).unwrap();
        let x = Tensor::zeros([1, 1, 4, 4]);
        assert_eq!(model.forward(&x, false), model2.forward(&x, false));
    }

    #[test]
    fn rejects_wrong_model() {
        let mut a = Linear::new(2, 2, 0);
        let state = StateDict::from_layer(&mut a);
        let mut b = Linear::new(3, 3, 0);
        let err = state.load_into(&mut b).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
        // b is untouched on failure path (validated before mutation).
    }

    #[test]
    fn scalar_count() {
        let mut a = Linear::new(2, 3, 0);
        let state = StateDict::from_layer(&mut a);
        assert_eq!(state.scalar_count(), 2 * 3 + 3);
        assert_eq!(state.len(), 2);
        assert!(!state.is_empty());
    }
}
