//! Model parameter snapshots (checkpointing).
//!
//! The on-disk format has two generations:
//!
//! * **v2** (current) — named tensors: every parameter and buffer
//!   carries its [`ParamStore`](crate::store::ParamStore) segment name
//!   (e.g. `"net/conv2d0.weight"`), so snapshots are robust to loading
//!   order and self-describing for tooling.
//! * **v1** (legacy) — positional: bare `Vec<Vec<f32>>` in visit order.
//!   Old files still deserialize (serde picks the wire shape from the
//!   field names) and load bit-exactly through the positional path.

use crate::layers::Layer;
use serde::{Deserialize, Serialize};

/// A single named flat tensor in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedTensor {
    /// Store segment name (empty for migrated v1 snapshots).
    pub name: String,
    /// Flat values.
    pub data: Vec<f32>,
}

/// A snapshot of a model's parameters and state buffers.
///
/// # Example
///
/// ```
/// use cachebox_nn::{layers::{Layer, Linear}, serialize::StateDict, Tensor};
///
/// let mut a = Linear::new(2, 2, 1);
/// let state = StateDict::from_layer(&mut a);
/// let mut b = Linear::new(2, 2, 999); // different init
/// state.load_into(&mut b).unwrap();
/// let x = Tensor::zeros([1, 2, 1, 1]);
/// assert_eq!(a.forward(&x, false), b.forward(&x, false));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateDict {
    params: Vec<NamedTensor>,
    /// Non-learnable state (batch-norm running statistics).
    buffers: Vec<NamedTensor>,
    /// True for snapshots deserialized from the legacy v1 wire format,
    /// whose tensors have no names and load by position.
    positional: bool,
}

/// Wire representation: v2 is `{version, params, buffers}`, v1 is
/// `{tensors, buffers?}`. Untagged deserialization distinguishes them by
/// field names (the format is JSON, which is self-describing).
#[derive(Serialize, Deserialize)]
#[serde(untagged)]
enum WireStateDict {
    V2 {
        version: u32,
        params: Vec<NamedTensor>,
        #[serde(default)]
        buffers: Vec<NamedTensor>,
    },
    V1 {
        tensors: Vec<Vec<f32>>,
        #[serde(default)]
        buffers: Vec<Vec<f32>>,
    },
}

impl Serialize for StateDict {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // A positional dict re-serializes in its original v1 shape so a
        // migrated file round-trips unchanged; everything else is v2.
        let wire = if self.positional {
            WireStateDict::V1 {
                tensors: self.params.iter().map(|t| t.data.clone()).collect(),
                buffers: self.buffers.iter().map(|t| t.data.clone()).collect(),
            }
        } else {
            WireStateDict::V2 {
                version: 2,
                params: self.params.clone(),
                buffers: self.buffers.clone(),
            }
        };
        wire.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for StateDict {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(match WireStateDict::deserialize(deserializer)? {
            WireStateDict::V2 { params, buffers, .. } => {
                StateDict { params, buffers, positional: false }
            }
            WireStateDict::V1 { tensors, buffers } => StateDict {
                params: tensors
                    .into_iter()
                    .map(|data| NamedTensor { name: String::new(), data })
                    .collect(),
                buffers: buffers
                    .into_iter()
                    .map(|data| NamedTensor { name: String::new(), data })
                    .collect(),
                positional: true,
            },
        })
    }
}

/// Error returned when a snapshot does not fit a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadStateError {
    expected: usize,
    found: usize,
    detail: String,
}

impl std::fmt::Display for LoadStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "state dict mismatch: model has {} parameter tensors, snapshot has {} ({})",
            self.expected, self.found, self.detail
        )
    }
}

impl std::error::Error for LoadStateError {}

impl StateDict {
    /// Captures a named snapshot of `layer`'s parameters and state
    /// buffers (v2).
    pub fn from_layer(layer: &mut dyn Layer) -> Self {
        let mut params = Vec::new();
        layer.visit_named_params("", &mut |name, p| {
            params.push(NamedTensor { name: name.to_string(), data: p.value.clone() })
        });
        let mut buffers = Vec::new();
        layer.visit_named_buffers("", &mut |name, b| {
            buffers.push(NamedTensor { name: name.to_string(), data: b.clone() })
        });
        StateDict { params, buffers, positional: false }
    }

    /// Restores a snapshot into `layer`.
    ///
    /// Named (v2) snapshots load by segment name; legacy positional (v1)
    /// snapshots load in visit order, bit-exactly as they always did.
    /// Both paths validate the full layout before touching the model.
    ///
    /// # Errors
    ///
    /// Returns [`LoadStateError`] if the tensor count, any tensor length,
    /// or (for v2) any tensor name differs from the model's layout.
    pub fn load_into(&self, layer: &mut dyn Layer) -> Result<(), LoadStateError> {
        // The model's own layout, in visit order.
        let mut layout = Vec::new();
        layer.visit_named_params("", &mut |name, p| layout.push((name.to_string(), p.len())));
        let mut buffer_layout = Vec::new();
        layer.visit_named_buffers("", &mut |name, b| {
            buffer_layout.push((name.to_string(), b.len()))
        });

        // Validate before mutating.
        if layout.len() != self.params.len() {
            return Err(LoadStateError {
                expected: layout.len(),
                found: self.params.len(),
                detail: "tensor count differs".to_string(),
            });
        }
        for (i, ((name, len), t)) in layout.iter().zip(&self.params).enumerate() {
            if !self.positional && *name != t.name {
                return Err(LoadStateError {
                    expected: layout.len(),
                    found: self.params.len(),
                    detail: format!("tensor {i} is named `{}` but model expects `{name}`", t.name),
                });
            }
            if *len != t.data.len() {
                return Err(LoadStateError {
                    expected: layout.len(),
                    found: self.params.len(),
                    detail: format!(
                        "tensor {i} has length {} but model expects {len}",
                        t.data.len()
                    ),
                });
            }
        }
        if buffer_layout.len() != self.buffers.len() {
            return Err(LoadStateError {
                expected: buffer_layout.len(),
                found: self.buffers.len(),
                detail: "buffer count differs".to_string(),
            });
        }
        for (i, ((_, len), b)) in buffer_layout.iter().zip(&self.buffers).enumerate() {
            if *len != b.data.len() {
                return Err(LoadStateError {
                    expected: buffer_layout.len(),
                    found: self.buffers.len(),
                    detail: format!(
                        "buffer {i} has length {} but model expects {len}",
                        b.data.len()
                    ),
                });
            }
        }

        let mut idx = 0;
        layer.visit_named_params("", &mut |_, p| {
            p.value.copy_from_slice(&self.params[idx].data);
            idx += 1;
        });
        let mut idx = 0;
        layer.visit_named_buffers("", &mut |_, b| {
            b.copy_from_slice(&self.buffers[idx].data);
            idx += 1;
        });
        Ok(())
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Returns `true` when the snapshot holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count.
    pub fn scalar_count(&self) -> usize {
        self.params.iter().map(|t| t.data.len()).sum()
    }

    /// Returns `true` for snapshots loaded from the legacy positional
    /// (v1) wire format.
    pub fn is_positional(&self) -> bool {
        self.positional
    }

    /// Named parameter tensors, in snapshot order.
    pub fn params(&self) -> &[NamedTensor] {
        &self.params
    }

    /// Named buffer tensors (batch-norm running statistics), in
    /// snapshot order.
    pub fn buffers(&self) -> &[NamedTensor] {
        &self.buffers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Sequential;
    use crate::layers::{BatchNorm2d, Conv2d, Linear};
    use crate::tensor::Tensor;

    #[test]
    fn roundtrip_through_clone() {
        let mut model = Sequential::new().push(Conv2d::new(1, 2, 3, 1, 1, 5)).push(Linear::new(
            2 * 4 * 4,
            3,
            6,
        ));
        let state = StateDict::from_layer(&mut model);
        let restored = state.clone();
        let mut model2 = Sequential::new().push(Conv2d::new(1, 2, 3, 1, 1, 50)).push(Linear::new(
            2 * 4 * 4,
            3,
            60,
        ));
        restored.load_into(&mut model2).unwrap();
        let x = Tensor::zeros([1, 1, 4, 4]);
        assert_eq!(model.forward(&x, false), model2.forward(&x, false));
    }

    #[test]
    fn rejects_wrong_model() {
        let mut a = Linear::new(2, 2, 0);
        let state = StateDict::from_layer(&mut a);
        let mut b = Linear::new(3, 3, 0);
        let err = state.load_into(&mut b).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
        // b is untouched on failure path (validated before mutation).
    }

    #[test]
    fn scalar_count() {
        let mut a = Linear::new(2, 3, 0);
        let state = StateDict::from_layer(&mut a);
        assert_eq!(state.scalar_count(), 2 * 3 + 3);
        assert_eq!(state.len(), 2);
        assert!(!state.is_empty());
    }

    #[test]
    fn snapshots_carry_segment_names() {
        let mut model =
            Sequential::new().push(Conv2d::new(1, 2, 3, 1, 1, 5)).push(BatchNorm2d::new(2));
        let state = StateDict::from_layer(&mut model);
        let names: Vec<&str> = state.params().iter().map(|t| t.name.as_str()).collect();
        assert_eq!(
            names,
            ["conv2d0.weight", "conv2d0.bias", "batchnorm2d1.gamma", "batchnorm2d1.beta"]
        );
        assert!(!state.is_positional());
    }

    #[test]
    fn v1_wire_format_loads_positionally_bit_exact() {
        let mut model = Sequential::new().push(Linear::new(2, 3, 7)).push(Linear::new(3, 1, 8));
        // Hand-write a legacy v1 JSON snapshot (bare positional arrays)
        // holding distinctive values.
        let mut tensors: Vec<Vec<f32>> = Vec::new();
        model.visit_named_params("", &mut |_, p| {
            tensors.push(p.value.iter().map(|v| v + 0.125).collect::<Vec<f32>>())
        });
        let arrays: Vec<String> = tensors
            .iter()
            .map(|t| {
                let vals: Vec<String> = t.iter().map(|v| format!("{v}")).collect();
                format!("[{}]", vals.join(","))
            })
            .collect();
        let legacy = format!("{{\"tensors\":[{}],\"buffers\":[]}}", arrays.join(","));
        let state: StateDict = serde_json::from_str(&legacy).unwrap();
        assert!(state.is_positional());
        state.load_into(&mut model).unwrap();
        let mut loaded = Vec::new();
        model.visit_named_params("", &mut |_, p| loaded.push(p.value.clone()));
        for (want, got) in tensors.iter().zip(&loaded) {
            assert_eq!(want, got, "v1 migration must be bit-exact");
        }
        // Re-serializing a migrated dict preserves the v1 wire shape.
        let rewire = serde_json::to_string(&state).unwrap();
        assert!(rewire.contains("\"tensors\""));
        assert!(!rewire.contains("\"version\""));
    }

    #[test]
    fn v2_rejects_renamed_tensor() {
        let mut a = Linear::new(2, 2, 0);
        let mut state = StateDict::from_layer(&mut a);
        state.params[0].name = "somebody.else".to_string();
        let err = state.load_into(&mut a).unwrap_err();
        assert!(err.to_string().contains("named"), "unexpected error: {err}");
    }

    #[test]
    fn v2_wire_roundtrip_keeps_names() {
        let mut a = Linear::new(2, 2, 3);
        let state = StateDict::from_layer(&mut a);
        let json = serde_json::to_string(&state).unwrap();
        assert!(json.contains("\"version\":2"));
        let back: StateDict = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
    }
}
