//! Telemetry-driven tuning of the batch-parallel chunk size.
//!
//! The conv layers shard a batch into `threads` contiguous chunks by
//! default. That is optimal when every shard costs the same, but the
//! `nn.gemm.shard_ns` histogram often shows a skewed tail (uneven
//! sample cost, cache pressure, a loaded host). When enough shard
//! timings have been observed, [`autotune_conv_chunk`] derives a finer
//! chunk from the measured p90/p50 imbalance and installs it globally;
//! [`batch_plan`] then drives every conv forward/backward. With
//! telemetry disabled (or before enough samples exist) the plan falls
//! back to the untuned `Parallelism::chunk_count` split, so the
//! constant default is always available.
//!
//! Numerics are unaffected by any choice made here: batch sharding is
//! per-sample independent and gradient reduction uses the canonical
//! tree (`crate::reduce`), so outputs are bitwise identical for every
//! chunk size.

use crate::parallel::Parallelism;
use cachebox_telemetry::{self as telemetry, Histogram, Value};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Histogram the tuner reads: per-worker GEMM shard wall time.
pub const SHARD_HISTOGRAM: &str = "nn.gemm.shard_ns";

/// Minimum shard observations before the tuner trusts the histogram.
pub const MIN_SHARD_SAMPLES: u64 = 16;

/// Globally installed chunk size (`0` = untuned fallback).
static CONV_CHUNK: AtomicUsize = AtomicUsize::new(0);

/// Installs a batch-parallel chunk size for all subsequent conv
/// layers. `0` clears back to the untuned default.
pub fn install_conv_chunk(chunk: usize) {
    CONV_CHUNK.store(chunk, Ordering::Relaxed);
}

/// Removes any installed chunk size (fallback planning resumes).
pub fn clear_conv_chunk() {
    CONV_CHUNK.store(0, Ordering::Relaxed);
}

/// The currently installed chunk size, if any.
pub fn conv_chunk() -> Option<usize> {
    match CONV_CHUNK.load(Ordering::Relaxed) {
        0 => None,
        c => Some(c),
    }
}

/// `(shards, chunk)` for batch-sharding `n` samples under `par`:
/// the tuned chunk when one is installed and parallelism is on,
/// otherwise the even `chunk_count` split. `shards == 1` means the
/// caller should run its serial loop.
pub fn batch_plan(par: Parallelism, n: usize) -> (usize, usize) {
    let fallback = |n: usize| {
        let shards = par.chunk_count(n);
        (shards, n.div_ceil(shards.max(1)).max(1))
    };
    if par.threads() <= 1 || n <= 1 {
        return fallback(n);
    }
    match conv_chunk() {
        Some(c) => {
            let chunk = c.clamp(1, n);
            (n.div_ceil(chunk), chunk)
        }
        None => fallback(n),
    }
}

/// Derives a chunk size from observed shard-time imbalance, or `None`
/// when serial, the batch is empty, or the histogram is too thin
/// (fewer than [`MIN_SHARD_SAMPLES`] observations).
///
/// Balanced shards (`p90/p50 ≤ 1.25`) keep the even split; a moderate
/// tail halves the chunk so stragglers share their overflow; a heavy
/// tail (`> 2×`) quarters it.
pub fn derive_conv_chunk(threads: usize, batch: usize, hist: &Histogram) -> Option<usize> {
    if threads <= 1 || batch == 0 || hist.count() < MIN_SHARD_SAMPLES {
        return None;
    }
    let p50 = hist.percentile(50.0);
    let p90 = hist.percentile(90.0);
    if p50 <= 0.0 {
        return None;
    }
    let imbalance = p90 / p50;
    let base = batch.div_ceil(threads).max(1);
    let chunk = if imbalance <= 1.25 {
        base
    } else if imbalance <= 2.0 {
        (base / 2).max(1)
    } else {
        (base / 4).max(1)
    };
    Some(chunk)
}

/// Reads the live `nn.gemm.shard_ns` histogram, derives a chunk size
/// for `batch`-sample steps under `par`, installs it, and records the
/// decision in the run manifest (`conv_chunk`, `conv_chunk_source`)
/// plus a `nn.conv.chunk_tuned` gauge and event. No-op (returning
/// `None`, fallback retained) when telemetry is disabled or the
/// histogram is missing/too thin.
pub fn autotune_conv_chunk(par: Parallelism, batch: usize) -> Option<usize> {
    let hist = telemetry::histogram_snapshot(SHARD_HISTOGRAM)?;
    let chunk = derive_conv_chunk(par.threads(), batch, &hist)?;
    install_conv_chunk(chunk);
    telemetry::gauge("nn.conv.chunk_tuned", chunk as f64);
    telemetry::event(
        "nn.conv.chunk_tuned",
        &[
            ("chunk", Value::U64(chunk as u64)),
            ("shard_p50_ns", Value::F64(hist.percentile(50.0))),
            ("shard_p90_ns", Value::F64(hist.percentile(90.0))),
            ("samples", Value::U64(hist.count())),
        ],
    );
    telemetry::manifest_kv("conv_chunk", chunk as u64);
    telemetry::manifest_kv("conv_chunk_source", SHARD_HISTOGRAM);
    Some(chunk)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_with(values: &[(f64, usize)]) -> Histogram {
        let mut h = Histogram::new();
        for &(v, n) in values {
            for _ in 0..n {
                h.record(v);
            }
        }
        h
    }

    // One test covers every CONV_CHUNK interaction: the install is a
    // process-wide global, so interleaved #[test] fns would race.
    #[test]
    fn batch_plan_fallback_tuned_and_cleared() {
        clear_conv_chunk();
        let par = Parallelism::new(4);
        assert_eq!(batch_plan(par, 8), (4, 2), "untuned: even split");
        assert_eq!(batch_plan(par, 1), (1, 1), "single sample stays serial");

        install_conv_chunk(1);
        assert_eq!(batch_plan(par, 8), (8, 1), "tuned chunk drives shards");
        assert_eq!(batch_plan(Parallelism::serial(), 8).0, 1, "serial ignores tuning");

        install_conv_chunk(3);
        assert_eq!(batch_plan(par, 8), (3, 3));
        install_conv_chunk(64);
        assert_eq!(batch_plan(par, 8), (1, 8), "oversized chunk clamps to the batch");

        clear_conv_chunk();
        assert_eq!(batch_plan(par, 8), (4, 2), "clear restores the fallback");
        assert_eq!(conv_chunk(), None);
    }

    #[test]
    fn derivation_gates_and_imbalance_tiers() {
        let thin = hist_with(&[(1000.0, 8)]);
        assert_eq!(derive_conv_chunk(4, 8, &thin), None, "below MIN_SHARD_SAMPLES");

        let balanced = hist_with(&[(1000.0, 20)]);
        assert_eq!(derive_conv_chunk(1, 8, &balanced), None, "serial never tunes");
        assert_eq!(derive_conv_chunk(4, 0, &balanced), None, "empty batch");
        assert_eq!(derive_conv_chunk(4, 8, &balanced), Some(2), "balanced: even split");

        // p90 lands in the 1800ns bucket, p50 near 1000ns → ~1.8×.
        let moderate = hist_with(&[(1000.0, 13), (1800.0, 7)]);
        assert_eq!(derive_conv_chunk(4, 32, &moderate), Some(4), "moderate tail halves");

        // Heavy straggler tail → quartered chunk, floored at 1.
        let skewed = hist_with(&[(1000.0, 13), (16_000.0, 7)]);
        assert_eq!(derive_conv_chunk(4, 32, &skewed), Some(2), "heavy tail quarters");
        assert_eq!(derive_conv_chunk(4, 4, &skewed), Some(1), "chunk never drops below 1");
    }
}
