//! Telemetry-driven tuning: batch-parallel chunk size and GEMM blocking.
//!
//! The conv layers shard a batch into `threads` contiguous chunks by
//! default. That is optimal when every shard costs the same, but the
//! `nn.gemm.shard_ns` histogram often shows a skewed tail (uneven
//! sample cost, cache pressure, a loaded host). When enough shard
//! timings have been observed, [`autotune_conv_chunk`] derives a finer
//! chunk from the measured p90/p50 imbalance and installs it globally;
//! [`batch_plan`] then drives every conv forward/backward. With
//! telemetry disabled (or before enough samples exist) the plan falls
//! back to the untuned `Parallelism::chunk_count` split, so the
//! constant default is always available.
//!
//! The same histogram also refines the GEMM blocking:
//! [`autotune_gemm_blocking`] starts from the analytically derived
//! parameters ([`crate::geometry::analytic_blocking`]) and, when the
//! observed shard imbalance says workers are fighting over the shared
//! last-level cache, selects the candidate with a proportionally
//! smaller B panel (and A panel under heavy skew) before installing it
//! via [`crate::geometry::install_blocking`]. The trainer runs both
//! tuners after epoch 0; the benches run them after their warm-up legs.
//!
//! Finally, the shard histogram sizes the training pipeline itself:
//! [`autotune_micro_batches`] picks how many micro-batches a training
//! step splits into (deeper pipelines when stragglers leave more
//! reduction tail to hide), and [`autotune_pipeline_chunk`] picks how
//! many parameter scalars one streamed optimizer segment batch covers.
//! Both are pure scheduling choices — the trainer's gradient frontier
//! (`crate::reduce::frontier_merge_plan`) keeps results bitwise
//! invariant in the micro-batch count.
//!
//! Numerics are unaffected by any choice made here: batch sharding is
//! per-sample independent, gradient reduction uses the canonical tree
//! (`crate::reduce`), and every GEMM blocking is bitwise-equivalent by
//! the contract in [`crate::blocked`], so outputs are identical for
//! every decision this module can take.

use crate::geometry::{self, Blocking};
use crate::parallel::Parallelism;
use cachebox_telemetry::{self as telemetry, Histogram, Value};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Histogram the tuner reads: per-worker GEMM shard wall time.
pub const SHARD_HISTOGRAM: &str = "nn.gemm.shard_ns";

/// Minimum shard observations before the tuner trusts the histogram.
pub const MIN_SHARD_SAMPLES: u64 = 16;

/// Globally installed chunk size (`0` = untuned fallback).
static CONV_CHUNK: AtomicUsize = AtomicUsize::new(0);

/// Installs a batch-parallel chunk size for all subsequent conv
/// layers. `0` clears back to the untuned default.
pub fn install_conv_chunk(chunk: usize) {
    CONV_CHUNK.store(chunk, Ordering::Relaxed);
}

/// Removes any installed chunk size (fallback planning resumes).
pub fn clear_conv_chunk() {
    CONV_CHUNK.store(0, Ordering::Relaxed);
}

/// The currently installed chunk size, if any.
pub fn conv_chunk() -> Option<usize> {
    match CONV_CHUNK.load(Ordering::Relaxed) {
        0 => None,
        c => Some(c),
    }
}

/// `(shards, chunk)` for batch-sharding `n` samples under `par`:
/// the tuned chunk when one is installed and parallelism is on,
/// otherwise the even `chunk_count` split. `shards == 1` means the
/// caller should run its serial loop.
pub fn batch_plan(par: Parallelism, n: usize) -> (usize, usize) {
    let fallback = |n: usize| {
        let shards = par.chunk_count(n);
        (shards, n.div_ceil(shards.max(1)).max(1))
    };
    if par.threads() <= 1 || n <= 1 {
        return fallback(n);
    }
    match conv_chunk() {
        Some(c) => {
            let chunk = c.clamp(1, n);
            (n.div_ceil(chunk), chunk)
        }
        None => fallback(n),
    }
}

/// Derives a chunk size from observed shard-time imbalance, or `None`
/// when serial, the batch is empty, or the histogram is too thin
/// (fewer than [`MIN_SHARD_SAMPLES`] observations).
///
/// Balanced shards (`p90/p50 ≤ 1.25`) keep the even split; a moderate
/// tail halves the chunk so stragglers share their overflow; a heavy
/// tail (`> 2×`) quarters it.
pub fn derive_conv_chunk(threads: usize, batch: usize, hist: &Histogram) -> Option<usize> {
    if threads <= 1 || batch == 0 || hist.count() < MIN_SHARD_SAMPLES {
        return None;
    }
    let p50 = hist.percentile(50.0);
    let p90 = hist.percentile(90.0);
    if p50 <= 0.0 {
        return None;
    }
    let imbalance = p90 / p50;
    let base = batch.div_ceil(threads).max(1);
    let chunk = if imbalance <= 1.25 {
        base
    } else if imbalance <= 2.0 {
        (base / 2).max(1)
    } else {
        (base / 4).max(1)
    };
    Some(chunk)
}

/// Reads the live `nn.gemm.shard_ns` histogram, derives a chunk size
/// for `batch`-sample steps under `par`, installs it, and records the
/// decision in the run manifest (`conv_chunk`, `conv_chunk_source`)
/// plus a `nn.conv.chunk_tuned` gauge and event. No-op (returning
/// `None`, fallback retained) when telemetry is disabled or the
/// histogram is missing/too thin.
pub fn autotune_conv_chunk(par: Parallelism, batch: usize) -> Option<usize> {
    let hist = telemetry::histogram_snapshot(SHARD_HISTOGRAM)?;
    let chunk = derive_conv_chunk(par.threads(), batch, &hist)?;
    install_conv_chunk(chunk);
    telemetry::gauge("nn.conv.chunk_tuned", chunk as f64);
    telemetry::event(
        "nn.conv.chunk_tuned",
        &[
            ("chunk", Value::U64(chunk as u64)),
            ("shard_p50_ns", Value::F64(hist.percentile(50.0))),
            ("shard_p90_ns", Value::F64(hist.percentile(90.0))),
            ("samples", Value::U64(hist.count())),
        ],
    );
    telemetry::manifest_kv("conv_chunk", chunk as u64);
    telemetry::manifest_kv("conv_chunk_source", SHARD_HISTOGRAM);
    Some(chunk)
}

/// Label recorded as the blocking source when the telemetry tuner
/// installs a refinement.
pub const GEMM_BLOCKING_TUNED_SOURCE: &str = "telemetry:nn.gemm.shard_ns";

/// Selects a blocking from the imbalance-tiered candidate ladder, or
/// `None` when the histogram is too thin to trust (fewer than
/// [`MIN_SHARD_SAMPLES`] observations or a degenerate p50).
///
/// The candidates are `base` (the analytical derivation) and two
/// shrunken variants. Balanced shards (`p90/p50 ≤ 1.25`) mean the
/// cache-resident panels are not contended, so the analytical choice
/// stands. A moderate tail halves `NC` — the packed B panel is the one
/// operand shared across workers, so shrinking it relieves last-level
/// pressure first. A heavy tail (`> 2×`) additionally halves `MC`,
/// shrinking each worker's L2 footprint. The result is sanitized to
/// the microkernel tile multiples, and is bitwise-neutral by contract.
pub fn derive_gemm_blocking(base: Blocking, hist: &Histogram) -> Option<Blocking> {
    if hist.count() < MIN_SHARD_SAMPLES {
        return None;
    }
    let p50 = hist.percentile(50.0);
    let p90 = hist.percentile(90.0);
    if p50 <= 0.0 {
        return None;
    }
    let imbalance = p90 / p50;
    let candidate = if imbalance <= 1.25 {
        base
    } else if imbalance <= 2.0 {
        Blocking { mc: base.mc, kc: base.kc, nc: (base.nc / 2).max(1) }
    } else {
        Blocking { mc: (base.mc / 2).max(1), kc: base.kc, nc: (base.nc / 2).max(1) }
    };
    Some(candidate.sanitized(crate::blocked::MR, crate::blocked::dispatch_nr()))
}

/// Records the active GEMM blocking, its provenance, the detected cache
/// geometry, and the dispatched microkernel in the telemetry stream
/// (gauges + manifest), so recorded runs stay interpretable across
/// hosts. Called by the tuner and by the benches; a no-op when
/// telemetry is disabled.
pub fn record_gemm_blocking() {
    if !telemetry::enabled() {
        return;
    }
    let blk = geometry::blocking();
    let geo = geometry::detect();
    telemetry::gauge("nn.gemm.blocking.mc", blk.mc as f64);
    telemetry::gauge("nn.gemm.blocking.kc", blk.kc as f64);
    telemetry::gauge("nn.gemm.blocking.nc", blk.nc as f64);
    telemetry::manifest_kv("gemm_blocking", blk.label());
    telemetry::manifest_kv("gemm_blocking_source", geometry::blocking_source());
    telemetry::manifest_kv("cache_geometry", geo.spec());
    telemetry::manifest_kv("cache_geometry_source", geo.source.label());
    telemetry::manifest_kv("gemm_kernel", crate::blocked::kernel_label());
}

/// Reads the live `nn.gemm.shard_ns` histogram, refines the analytical
/// blocking by the imbalance-tiered candidate selection, installs the
/// winner process-wide, and records the decision (event + gauges +
/// `gemm_blocking`/`gemm_blocking_source` manifest fields). Returns
/// `None` — analytical blocking retained, but still recorded in the
/// manifest — when telemetry is off or the histogram is too thin.
pub fn autotune_gemm_blocking() -> Option<Blocking> {
    let result = (|| {
        let hist = telemetry::histogram_snapshot(SHARD_HISTOGRAM)?;
        let base = geometry::analytic_blocking();
        let tuned = derive_gemm_blocking(base, &hist)?;
        geometry::install_blocking(tuned, GEMM_BLOCKING_TUNED_SOURCE);
        telemetry::event(
            "nn.gemm.blocking_tuned",
            &[
                ("mc", Value::U64(tuned.mc as u64)),
                ("kc", Value::U64(tuned.kc as u64)),
                ("nc", Value::U64(tuned.nc as u64)),
                ("base_mc", Value::U64(base.mc as u64)),
                ("base_nc", Value::U64(base.nc as u64)),
                ("shard_p50_ns", Value::F64(hist.percentile(50.0))),
                ("shard_p90_ns", Value::F64(hist.percentile(90.0))),
                ("samples", Value::U64(hist.count())),
            ],
        );
        Some(tuned)
    })();
    record_gemm_blocking();
    result
}

/// Environment override for the trainer's micro-batch count. A
/// positive integer forces `M` for every trainer constructed in the
/// process; the CI matrix legs use it to sweep pipelining depth
/// without code changes.
pub const MICRO_BATCHES_ENV_VAR: &str = "CACHEBOX_MICRO_BATCHES";

/// Provenance label when the telemetry tuner picks the micro-batch
/// count or the pipeline chunk.
pub const MICRO_BATCHES_TUNED_SOURCE: &str = "telemetry:nn.gemm.shard_ns";

/// Default pipeline chunk: how many parameter-arena scalars one
/// optimizer segment batch covers when the step streams behind the
/// gradient reduction. ~128 KiB of f32 — big enough to amortize the
/// per-segment bookkeeping, small enough that the first chunks retire
/// while later gradient terms are still being reduced.
pub const DEFAULT_PIPELINE_CHUNK: usize = 32_768;

/// Globally installed micro-batch count (`0` = none installed).
static MICRO_BATCHES: AtomicUsize = AtomicUsize::new(0);

/// Globally installed pipeline chunk (`0` = [`DEFAULT_PIPELINE_CHUNK`]).
static PIPELINE_CHUNK: AtomicUsize = AtomicUsize::new(0);

/// Installs a micro-batch count for trainers that have not pinned one
/// explicitly. `0` clears back to "no tuned value".
pub fn install_micro_batches(micro_batches: usize) {
    MICRO_BATCHES.store(micro_batches, Ordering::Relaxed);
}

/// Removes any installed micro-batch count.
pub fn clear_micro_batches() {
    MICRO_BATCHES.store(0, Ordering::Relaxed);
}

/// The currently installed micro-batch count, if any.
pub fn micro_batches() -> Option<usize> {
    match MICRO_BATCHES.load(Ordering::Relaxed) {
        0 => None,
        m => Some(m),
    }
}

/// Parses [`MICRO_BATCHES_ENV_VAR`]; `None` when unset, empty, or not
/// a positive integer.
pub fn micro_batches_from_env() -> Option<usize> {
    std::env::var(MICRO_BATCHES_ENV_VAR).ok()?.trim().parse::<usize>().ok().filter(|&m| m > 0)
}

/// Installs a pipeline chunk (scalars per optimizer segment batch).
/// `0` clears back to [`DEFAULT_PIPELINE_CHUNK`].
pub fn install_pipeline_chunk(chunk: usize) {
    PIPELINE_CHUNK.store(chunk, Ordering::Relaxed);
}

/// Restores [`DEFAULT_PIPELINE_CHUNK`].
pub fn clear_pipeline_chunk() {
    PIPELINE_CHUNK.store(0, Ordering::Relaxed);
}

/// The active pipeline chunk in scalars (never zero).
pub fn pipeline_chunk() -> usize {
    match PIPELINE_CHUNK.load(Ordering::Relaxed) {
        0 => DEFAULT_PIPELINE_CHUNK,
        c => c,
    }
}

/// Derives a micro-batch count from observed shard-time imbalance, or
/// `None` when serial, the batch cannot be split, or the histogram is
/// too thin. Balanced shards still pipeline (`M = 2` overlaps the
/// reduction tail with the next forward at minimal sync cost); a
/// moderate tail quarters the batch so straggler time hides behind
/// three other micro-batches; a heavy tail (`> 2×`) goes to eight.
/// Always clamped to the batch so shards stay non-empty.
pub fn derive_micro_batches(threads: usize, batch: usize, hist: &Histogram) -> Option<usize> {
    if threads <= 1 || batch < 2 || hist.count() < MIN_SHARD_SAMPLES {
        return None;
    }
    let p50 = hist.percentile(50.0);
    let p90 = hist.percentile(90.0);
    if p50 <= 0.0 {
        return None;
    }
    let imbalance = p90 / p50;
    let m = if imbalance <= 1.25 {
        2
    } else if imbalance <= 2.0 {
        4
    } else {
        8
    };
    Some(m.min(batch))
}

/// Derives a pipeline chunk from the same imbalance signal: balanced
/// shards keep [`DEFAULT_PIPELINE_CHUNK`]; a skewed tail means the
/// optimizer has more idle reduction time to hide in, so finer chunks
/// (half, then a quarter) start retiring parameter segments earlier.
/// Floored at 1024 scalars so segment dispatch overhead stays noise.
pub fn derive_pipeline_chunk(hist: &Histogram) -> Option<usize> {
    if hist.count() < MIN_SHARD_SAMPLES {
        return None;
    }
    let p50 = hist.percentile(50.0);
    let p90 = hist.percentile(90.0);
    if p50 <= 0.0 {
        return None;
    }
    let imbalance = p90 / p50;
    let chunk = if imbalance <= 1.25 {
        DEFAULT_PIPELINE_CHUNK
    } else if imbalance <= 2.0 {
        DEFAULT_PIPELINE_CHUNK / 2
    } else {
        DEFAULT_PIPELINE_CHUNK / 4
    };
    Some(chunk.max(1024))
}

/// Records the micro-batch decision and its provenance in the
/// telemetry stream (`nn.pipeline.micro_batches` gauge plus the
/// `micro_batches`/`micro_batches_source` manifest fields). The
/// trainer calls this with whatever source won: `"explicit"`,
/// `"env:CACHEBOX_MICRO_BATCHES"`, [`MICRO_BATCHES_TUNED_SOURCE`], or
/// `"default"`. No-op when telemetry is disabled.
pub fn record_micro_batches(micro_batches: usize, source: &str) {
    if !telemetry::enabled() {
        return;
    }
    telemetry::gauge("nn.pipeline.micro_batches", micro_batches as f64);
    telemetry::manifest_kv("micro_batches", micro_batches as u64);
    telemetry::manifest_kv("micro_batches_source", source);
}

/// Reads the live `nn.gemm.shard_ns` histogram, derives a micro-batch
/// count for `batch`-sample steps under `par`, installs it for
/// trainers that defaulted, and records the decision (event + manifest
/// provenance). `None` — prior value retained — when telemetry is off
/// or the histogram is too thin.
pub fn autotune_micro_batches(par: Parallelism, batch: usize) -> Option<usize> {
    let hist = telemetry::histogram_snapshot(SHARD_HISTOGRAM)?;
    let m = derive_micro_batches(par.threads(), batch, &hist)?;
    install_micro_batches(m);
    telemetry::event(
        "nn.pipeline.micro_batches_tuned",
        &[
            ("micro_batches", Value::U64(m as u64)),
            ("shard_p50_ns", Value::F64(hist.percentile(50.0))),
            ("shard_p90_ns", Value::F64(hist.percentile(90.0))),
            ("samples", Value::U64(hist.count())),
        ],
    );
    record_micro_batches(m, MICRO_BATCHES_TUNED_SOURCE);
    Some(m)
}

/// Reads the live `nn.gemm.shard_ns` histogram, derives a pipeline
/// chunk, installs it process-wide, and records the decision
/// (`nn.pipeline.chunk_tuned` gauge/event + `pipeline_chunk` manifest
/// fields). `None` — [`DEFAULT_PIPELINE_CHUNK`] retained — when
/// telemetry is off or the histogram is too thin. This closes the old
/// "pipeline chunk sizes are constants" gap: the constant is now only
/// the cold-start fallback.
pub fn autotune_pipeline_chunk() -> Option<usize> {
    let hist = telemetry::histogram_snapshot(SHARD_HISTOGRAM)?;
    let chunk = derive_pipeline_chunk(&hist)?;
    install_pipeline_chunk(chunk);
    telemetry::gauge("nn.pipeline.chunk_tuned", chunk as f64);
    telemetry::event(
        "nn.pipeline.chunk_tuned",
        &[
            ("chunk", Value::U64(chunk as u64)),
            ("shard_p50_ns", Value::F64(hist.percentile(50.0))),
            ("shard_p90_ns", Value::F64(hist.percentile(90.0))),
            ("samples", Value::U64(hist.count())),
        ],
    );
    telemetry::manifest_kv("pipeline_chunk", chunk as u64);
    telemetry::manifest_kv("pipeline_chunk_source", MICRO_BATCHES_TUNED_SOURCE);
    Some(chunk)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_with(values: &[(f64, usize)]) -> Histogram {
        let mut h = Histogram::new();
        for &(v, n) in values {
            for _ in 0..n {
                h.record(v);
            }
        }
        h
    }

    // One test covers every CONV_CHUNK interaction: the install is a
    // process-wide global, so interleaved #[test] fns would race.
    #[test]
    fn batch_plan_fallback_tuned_and_cleared() {
        clear_conv_chunk();
        let par = Parallelism::new(4);
        assert_eq!(batch_plan(par, 8), (4, 2), "untuned: even split");
        assert_eq!(batch_plan(par, 1), (1, 1), "single sample stays serial");

        install_conv_chunk(1);
        assert_eq!(batch_plan(par, 8), (8, 1), "tuned chunk drives shards");
        assert_eq!(batch_plan(Parallelism::serial(), 8).0, 1, "serial ignores tuning");

        install_conv_chunk(3);
        assert_eq!(batch_plan(par, 8), (3, 3));
        install_conv_chunk(64);
        assert_eq!(batch_plan(par, 8), (1, 8), "oversized chunk clamps to the batch");

        clear_conv_chunk();
        assert_eq!(batch_plan(par, 8), (4, 2), "clear restores the fallback");
        assert_eq!(conv_chunk(), None);
    }

    #[test]
    fn derivation_gates_and_imbalance_tiers() {
        let thin = hist_with(&[(1000.0, 8)]);
        assert_eq!(derive_conv_chunk(4, 8, &thin), None, "below MIN_SHARD_SAMPLES");

        let balanced = hist_with(&[(1000.0, 20)]);
        assert_eq!(derive_conv_chunk(1, 8, &balanced), None, "serial never tunes");
        assert_eq!(derive_conv_chunk(4, 0, &balanced), None, "empty batch");
        assert_eq!(derive_conv_chunk(4, 8, &balanced), Some(2), "balanced: even split");

        // p90 lands in the 1800ns bucket, p50 near 1000ns → ~1.8×.
        let moderate = hist_with(&[(1000.0, 13), (1800.0, 7)]);
        assert_eq!(derive_conv_chunk(4, 32, &moderate), Some(4), "moderate tail halves");

        // Heavy straggler tail → quartered chunk, floored at 1.
        let skewed = hist_with(&[(1000.0, 13), (16_000.0, 7)]);
        assert_eq!(derive_conv_chunk(4, 32, &skewed), Some(2), "heavy tail quarters");
        assert_eq!(derive_conv_chunk(4, 4, &skewed), Some(1), "chunk never drops below 1");
    }

    #[test]
    fn gemm_blocking_tiers_shrink_panels_and_stay_sane() {
        let base = Blocking { mc: 128, kc: 512, nc: 1024 };
        let nr = crate::blocked::dispatch_nr();

        let thin = hist_with(&[(1000.0, 8)]);
        assert_eq!(derive_gemm_blocking(base, &thin), None, "below MIN_SHARD_SAMPLES");

        let balanced = hist_with(&[(1000.0, 20)]);
        assert_eq!(
            derive_gemm_blocking(base, &balanced),
            Some(base.sanitized(4, nr)),
            "balanced shards keep the analytical blocking"
        );

        let moderate = hist_with(&[(1000.0, 13), (1800.0, 7)]);
        let tuned = derive_gemm_blocking(base, &moderate).unwrap();
        assert_eq!(tuned.mc, base.mc, "moderate tail keeps mc");
        assert!(tuned.nc <= base.nc / 2, "moderate tail halves nc");
        assert_eq!(tuned.nc % nr, 0, "nc stays microkernel-aligned");

        let skewed = hist_with(&[(1000.0, 13), (16_000.0, 7)]);
        let tuned = derive_gemm_blocking(base, &skewed).unwrap();
        assert!(tuned.mc <= base.mc / 2, "heavy tail also halves mc");
        assert_eq!(tuned.mc % 4, 0, "mc stays MR-aligned");
        assert!(tuned.nc >= nr && tuned.mc >= 4, "floors hold even when shrinking");
    }

    #[test]
    fn micro_batch_and_pipeline_chunk_derivation_tiers() {
        let thin = hist_with(&[(1000.0, 8)]);
        assert_eq!(derive_micro_batches(4, 8, &thin), None, "below MIN_SHARD_SAMPLES");
        assert_eq!(derive_pipeline_chunk(&thin), None, "below MIN_SHARD_SAMPLES");

        let balanced = hist_with(&[(1000.0, 20)]);
        assert_eq!(derive_micro_batches(1, 8, &balanced), None, "serial never pipelines");
        assert_eq!(derive_micro_batches(4, 1, &balanced), None, "singleton batch cannot split");
        assert_eq!(derive_micro_batches(4, 8, &balanced), Some(2), "balanced: shallow pipeline");
        assert_eq!(derive_pipeline_chunk(&balanced), Some(DEFAULT_PIPELINE_CHUNK));

        let moderate = hist_with(&[(1000.0, 13), (1800.0, 7)]);
        assert_eq!(derive_micro_batches(4, 8, &moderate), Some(4), "moderate tail quarters");
        assert_eq!(derive_pipeline_chunk(&moderate), Some(DEFAULT_PIPELINE_CHUNK / 2));

        let skewed = hist_with(&[(1000.0, 13), (16_000.0, 7)]);
        assert_eq!(derive_micro_batches(4, 8, &skewed), Some(8), "heavy tail: deep pipeline");
        assert_eq!(derive_micro_batches(4, 3, &skewed), Some(3), "clamped to the batch");
        assert_eq!(derive_pipeline_chunk(&skewed), Some(DEFAULT_PIPELINE_CHUNK / 4));
    }

    // One test covers every MICRO_BATCHES interaction (process-wide
    // global + env var): interleaved #[test] fns would race.
    #[test]
    fn micro_batch_global_and_env_override() {
        clear_micro_batches();
        assert_eq!(micro_batches(), None);
        install_micro_batches(3);
        assert_eq!(micro_batches(), Some(3));
        clear_micro_batches();
        assert_eq!(micro_batches(), None, "clear restores the default");

        std::env::remove_var(MICRO_BATCHES_ENV_VAR);
        assert_eq!(micro_batches_from_env(), None, "unset env is no override");
        std::env::set_var(MICRO_BATCHES_ENV_VAR, " 5 ");
        assert_eq!(micro_batches_from_env(), Some(5), "whitespace tolerated");
        std::env::set_var(MICRO_BATCHES_ENV_VAR, "0");
        assert_eq!(micro_batches_from_env(), None, "zero is not a valid count");
        std::env::set_var(MICRO_BATCHES_ENV_VAR, "many");
        assert_eq!(micro_batches_from_env(), None, "garbage is ignored");
        std::env::remove_var(MICRO_BATCHES_ENV_VAR);
    }

    // Same single-test rule for the PIPELINE_CHUNK global.
    #[test]
    fn pipeline_chunk_global_defaults_installs_and_clears() {
        clear_pipeline_chunk();
        assert_eq!(pipeline_chunk(), DEFAULT_PIPELINE_CHUNK, "unset falls back to the default");
        install_pipeline_chunk(4096);
        assert_eq!(pipeline_chunk(), 4096);
        clear_pipeline_chunk();
        assert_eq!(pipeline_chunk(), DEFAULT_PIPELINE_CHUNK);
    }
}
