//! Dense NCHW tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense 4-D tensor in NCHW layout (batch, channels, height, width).
///
/// Vectors and matrices are represented with trailing singleton
/// dimensions (e.g. a batch of feature vectors is `[n, c, 1, 1]`).
///
/// Tensor buffers are recycled through the thread-local
/// [`scratch`](crate::scratch) pool: `zeros`, `full`, and `clone` draw
/// from the pool and `Drop` returns the buffer to it, so steady-state
/// training loops that create and drop the same shapes every step
/// allocate nothing after warm-up.
///
/// # Example
///
/// ```
/// use cachebox_nn::Tensor;
///
/// let t = Tensor::zeros([2, 3, 4, 4]);
/// assert_eq!(t.len(), 96);
/// assert_eq!(t.shape(), [2, 3, 4, 4]);
/// ```
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: [usize; 4],
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor { shape: self.shape, data: crate::scratch::take_vec_copy(&self.data) }
    }

    fn clone_from(&mut self, source: &Self) {
        self.shape = source.shape;
        self.data.clear();
        self.data.extend_from_slice(&source.data);
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        crate::scratch::recycle(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    /// Creates an all-zero tensor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(shape: [usize; 4]) -> Self {
        assert!(shape.iter().all(|&d| d > 0), "tensor dimensions must be non-zero");
        Tensor { shape, data: crate::scratch::take_vec(shape.iter().product()) }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: [usize; 4], value: f32) -> Self {
        let mut t = Tensor::zeros(shape);
        t.data.fill(value);
        t
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: [usize; 4], data: Vec<f32>) -> Self {
        assert!(shape.iter().all(|&d| d > 0), "tensor dimensions must be non-zero");
        assert_eq!(data.len(), shape.iter().product::<usize>(), "buffer length mismatch");
        Tensor { shape, data }
    }

    /// The NCHW shape.
    pub fn shape(&self) -> [usize; 4] {
        self.shape
    }

    /// Batch size.
    pub fn n(&self) -> usize {
        self.shape[0]
    }

    /// Channel count.
    pub fn c(&self) -> usize {
        self.shape[1]
    }

    /// Height.
    pub fn h(&self) -> usize {
        self.shape[2]
    }

    /// Width.
    pub fn w(&self) -> usize {
        self.shape[3]
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` only for the (unrepresentable) empty tensor; kept
    /// for API completeness.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The raw buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the buffer.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Linear index of `(n, c, h, w)`.
    #[inline]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(
            n < self.shape[0] && c < self.shape[1] && h < self.shape[2] && w < self.shape[3]
        );
        ((n * self.shape[1] + c) * self.shape[2] + h) * self.shape[3] + w
    }

    /// Element at `(n, c, h, w)`.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.index(n, c, h, w)]
    }

    /// Sets the element at `(n, c, h, w)`.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        let i = self.index(n, c, h, w);
        self.data[i] = value;
    }

    /// The contiguous slice holding sample `n` (all channels).
    pub fn sample(&self, n: usize) -> &[f32] {
        let stride = self.shape[1] * self.shape[2] * self.shape[3];
        &self.data[n * stride..(n + 1) * stride]
    }

    /// Mutable slice for sample `n`.
    pub fn sample_mut(&mut self, n: usize) -> &mut [f32] {
        let stride = self.shape[1] * self.shape[2] * self.shape[3];
        &mut self.data[n * stride..(n + 1) * stride]
    }

    /// A copy of samples `lo..hi` as a new tensor — how the trainer
    /// carves one batch into contiguous replica shards.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn slice_samples(&self, lo: usize, hi: usize) -> Tensor {
        assert!(lo < hi && hi <= self.shape[0], "invalid sample range {lo}..{hi}");
        let stride = self.shape[1] * self.shape[2] * self.shape[3];
        let mut out = Tensor::zeros([hi - lo, self.shape[1], self.shape[2], self.shape[3]]);
        out.data.copy_from_slice(&self.data[lo * stride..hi * stride]);
        out
    }

    /// Reinterprets the buffer under a new shape with the same element
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: [usize; 4]) -> Tensor {
        assert_eq!(
            self.data.len(),
            shape.iter().product::<usize>(),
            "reshape must preserve element count"
        );
        self.shape = shape;
        self
    }

    /// Concatenates along the channel axis (dim 1). All other dims must
    /// match.
    ///
    /// # Panics
    ///
    /// Panics on any non-channel shape mismatch.
    pub fn concat_channels(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape[0], other.shape[0], "batch mismatch");
        assert_eq!(self.shape[2], other.shape[2], "height mismatch");
        assert_eq!(self.shape[3], other.shape[3], "width mismatch");
        let [n, c1, h, w] = self.shape;
        let c2 = other.shape[1];
        let mut out = Tensor::zeros([n, c1 + c2, h, w]);
        let plane = h * w;
        for i in 0..n {
            let dst = out.sample_mut(i);
            dst[..c1 * plane].copy_from_slice(self.sample(i));
            dst[c1 * plane..].copy_from_slice(other.sample(i));
        }
        out
    }

    /// Splits a channel-concatenated tensor back into `(first c1, rest)`.
    ///
    /// # Panics
    ///
    /// Panics if `c1 >= self.c()`.
    pub fn split_channels(&self, c1: usize) -> (Tensor, Tensor) {
        assert!(c1 < self.shape[1], "split point must leave both halves non-empty");
        let [n, c, h, w] = self.shape;
        let c2 = c - c1;
        let plane = h * w;
        let mut a = Tensor::zeros([n, c1, h, w]);
        let mut b = Tensor::zeros([n, c2, h, w]);
        for i in 0..n {
            let src = self.sample(i);
            a.sample_mut(i).copy_from_slice(&src[..c1 * plane]);
            b.sample_mut(i).copy_from_slice(&src[c1 * plane..]);
        }
        (a, b)
    }

    /// Element-wise sum; shapes must match.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Tensor { shape: self.shape, data }
    }

    /// Element-wise scale by a constant.
    pub fn scale(&self, factor: f32) -> Tensor {
        Tensor { shape: self.shape, data: self.data.iter().map(|v| v * factor).collect() }
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Extracts samples `[from, to)` as a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn slice_batch(&self, from: usize, to: usize) -> Tensor {
        assert!(from < to && to <= self.shape[0], "invalid batch range");
        let stride = self.shape[1] * self.shape[2] * self.shape[3];
        Tensor {
            shape: [to - from, self.shape[1], self.shape[2], self.shape[3]],
            data: self.data[from * stride..to * stride].to_vec(),
        }
    }

    /// Stacks tensors along the batch axis.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or non-batch dims differ.
    pub fn stack_batch(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "cannot stack zero tensors");
        let [_, c, h, w] = parts[0].shape;
        let n: usize = parts.iter().map(|p| p.shape[0]).sum();
        let mut data = Vec::with_capacity(n * c * h * w);
        for p in parts {
            assert_eq!([p.shape[1], p.shape[2], p.shape[3]], [c, h, w], "shape mismatch");
            data.extend_from_slice(&p.data);
        }
        Tensor { shape: [n, c, h, w], data }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor[{}x{}x{}x{}] mean={:.4}",
            self.shape[0],
            self.shape[1],
            self.shape[2],
            self.shape[3],
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_row_major_nchw() {
        let mut t = Tensor::zeros([2, 3, 4, 5]);
        t.set(1, 2, 3, 4, 7.0);
        assert_eq!(t.at(1, 2, 3, 4), 7.0);
        assert_eq!(t.index(1, 2, 3, 4), ((3 + 2) * 4 + 3) * 5 + 4);
    }

    #[test]
    fn concat_split_roundtrip() {
        let a = Tensor::from_vec([2, 2, 1, 2], (0..8).map(|v| v as f32).collect());
        let b = Tensor::from_vec([2, 1, 1, 2], (8..12).map(|v| v as f32).collect());
        let cat = a.concat_channels(&b);
        assert_eq!(cat.shape(), [2, 3, 1, 2]);
        let (a2, b2) = cat.split_channels(2);
        assert_eq!(a2, a);
        assert_eq!(b2, b);
    }

    #[test]
    fn concat_interleaves_per_sample() {
        let a = Tensor::from_vec([2, 1, 1, 1], vec![1.0, 2.0]);
        let b = Tensor::from_vec([2, 1, 1, 1], vec![10.0, 20.0]);
        let cat = a.concat_channels(&b);
        assert_eq!(cat.data(), &[1.0, 10.0, 2.0, 20.0]);
    }

    #[test]
    fn slice_and_stack_batch() {
        let t = Tensor::from_vec([3, 1, 1, 2], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let s = t.slice_batch(1, 3);
        assert_eq!(s.shape(), [2, 1, 1, 2]);
        assert_eq!(s.data(), &[2.0, 3.0, 4.0, 5.0]);
        let restored = Tensor::stack_batch(&[t.slice_batch(0, 1), s]);
        assert_eq!(restored, t);
    }

    #[test]
    fn arithmetic() {
        let a = Tensor::from_vec([1, 1, 1, 2], vec![1.0, 2.0]);
        let b = Tensor::from_vec([1, 1, 1, 2], vec![3.0, 4.0]);
        assert_eq!(a.add(&b).data(), &[4.0, 6.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.mean(), 1.5);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([1, 4, 1, 1], vec![1.0, 2.0, 3.0, 4.0]);
        let r = t.clone().reshape([1, 1, 2, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), [1, 1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_validates() {
        Tensor::from_vec([1, 1, 1, 2], vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "element count")]
    fn reshape_validates() {
        Tensor::zeros([1, 1, 1, 2]).reshape([1, 1, 1, 3]);
    }
}
