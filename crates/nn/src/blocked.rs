//! Cache-blocked, packed GEMM with runtime-dispatched microkernels.
//!
//! The naive [`crate::gemm`] kernels stream the whole `k×n` B panel (and
//! re-load/re-store every output row once per depth step), which thrashes
//! L2 as soon as a panel outgrows the cache. This module implements the
//! standard three-level blocking scheme (BLIS/GotoBLAS style): the
//! operands are cut into `MC×KC` and `KC×NC` blocks that are **packed**
//! into contiguous, microkernel-ordered tiles, and an `MR×NR` register
//! microkernel accumulates each output tile with one memory round-trip
//! per `KC` depth block instead of one per multiply.
//!
//! The block sizes `MC/KC/NC` are **not constants**: they are derived
//! from the host's detected cache hierarchy by [`crate::geometry`]
//! (env-overridable via `CACHEBOX_CACHE_GEOMETRY`, refinable by the
//! telemetry autotuner in [`crate::tuning`]) and read once per GEMM
//! call. The pre-geometry constants live on as
//! [`crate::geometry::FIXED_BLOCKING`] for comparison benchmarks.
//!
//! # Determinism contract
//!
//! Every function here is **bitwise identical** to its naive oracle in
//! [`crate::gemm`], under *any* blocking and *any* microkernel. That is
//! possible because:
//!
//! * each output element still accumulates its products in strictly
//!   increasing depth (`p`) order — blocking only changes *which other*
//!   elements are updated in between, never the per-element sequence;
//! * multiplies and adds stay separate instructions (no FMA anywhere,
//!   scalar or SIMD: IEEE-754 lane ops equal scalar ops exactly);
//! * intermediate accumulators round-trip through `f32` registers or
//!   memory, both of which are exact;
//! * the naive kernels' `a == 0.0` skip branch is preserved identically
//!   (`gemm_acc`/`gemm_at_b_acc` skip, `gemm_a_bt_acc` does not), so even
//!   signed-zero and NaN propagation match.
//!
//! The property test `blocked_gemm_bitwise_equals_naive` in
//! `crates/nn/tests/properties.rs` asserts this across random shapes
//! (including zero-dense inputs that exercise the skip branch) and
//! under synthetic geometry overrides.
//!
//! # SIMD
//!
//! The portable default microkernel is a scalar `MR×NR` register tile
//! whose 8-wide inner lane loop auto-vectorizes. With the `simd` cargo
//! feature, explicit kernels are dispatched by runtime CPU detection:
//!
//! * **x86_64 AVX** — `f32x8` tile (`_mm256_mul_ps`/`_mm256_add_ps`);
//! * **x86_64 AVX-512F** — `f32x16` tile (`_mm512_*`), which widens the
//!   packed B strips to 16 lanes so each depth step feeds one `zmm`;
//! * **aarch64 NEON** — `2×f32x4` tile covering the same 8-wide strip.
//!
//! On targets without the detected feature the next-narrower kernel is
//! used transparently, so the feature is always safe to enable; all
//! variants remain bitwise interchangeable. See `docs/KERNELS.md`.

use crate::scratch;
use cachebox_telemetry as telemetry;

/// Microkernel rows: independent register accumulator rows per tile.
pub const MR: usize = 4;

/// Base microkernel columns: the 8-wide `f32` lane width shared by the
/// scalar, AVX, and NEON kernels (one AVX register / two NEON registers).
pub const NR: usize = 8;

/// Wide microkernel columns: the 16-wide lane width of the AVX-512
/// kernel (one `zmm` register). Packed B strips use this width whenever
/// the wide kernel is active.
pub const NR_WIDE: usize = 16;

/// Minimum `m·k·n` MAC count for the blocked path. Below this the
/// packing overhead outweighs the cache savings and the auto dispatch
/// runs the naive kernel instead — results are bitwise identical either
/// way, so the cutoff is purely a performance choice (measured with
/// `perf_kernels`, see `BENCH_kernels.json`).
pub const BLOCKED_MIN_MACS: usize = 4096;

/// The microkernel width tiers the runtime dispatch chooses between.
/// Higher tiers are preferred when compiled in and detected; the cap
/// set by [`set_simd_cap`] can force a lower tier for measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar tile, 8-wide auto-vectorized lane loop.
    Scalar = 0,
    /// Explicit 8-lane kernel: AVX on x86_64, NEON (2×`f32x4`) on
    /// aarch64.
    Lanes8 = 1,
    /// Explicit 16-lane kernel: AVX-512F on x86_64.
    Lanes16 = 2,
}

impl SimdLevel {
    /// The packed B-strip width this level's microkernel consumes.
    pub fn nr(self) -> usize {
        if self == SimdLevel::Lanes16 {
            NR_WIDE
        } else {
            NR
        }
    }
}

/// Process-wide microkernel cap (benchmarks use it to measure each tier
/// in one binary). `u8::MAX` = uncapped.
static SIMD_CAP: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(u8::MAX);

/// Caps the microkernel dispatch at `level`. A no-op beyond what the
/// build and the CPU support; results are bitwise identical at every
/// level, so this is purely a measurement aid.
pub fn set_simd_cap(level: SimdLevel) {
    SIMD_CAP.store(level as u8, std::sync::atomic::Ordering::Relaxed);
}

/// Legacy on/off switch: `false` caps dispatch at [`SimdLevel::Scalar`],
/// `true` removes the cap.
pub fn set_simd_enabled(enabled: bool) {
    SIMD_CAP.store(
        if enabled { u8::MAX } else { SimdLevel::Scalar as u8 },
        std::sync::atomic::Ordering::Relaxed,
    );
}

/// The microkernel tier that will actually run: the highest level that
/// is compiled in (`simd` feature), supported by this CPU, and not
/// excluded by [`set_simd_cap`].
pub fn active_simd_level() -> SimdLevel {
    let cap = SIMD_CAP.load(std::sync::atomic::Ordering::Relaxed);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if cap >= SimdLevel::Lanes16 as u8 && std::arch::is_x86_feature_detected!("avx512f") {
            return SimdLevel::Lanes16;
        }
        if cap >= SimdLevel::Lanes8 as u8 && std::arch::is_x86_feature_detected!("avx") {
            return SimdLevel::Lanes8;
        }
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    {
        // NEON is baseline on aarch64; no runtime probe needed.
        if cap >= SimdLevel::Lanes8 as u8 {
            return SimdLevel::Lanes8;
        }
    }
    let _ = cap;
    SimdLevel::Scalar
}

/// Whether an explicit SIMD microkernel is active (any tier above
/// scalar).
pub fn simd_active() -> bool {
    active_simd_level() != SimdLevel::Scalar
}

/// The packed B-strip width the current dispatch will use. The
/// geometry-derived blocking rounds `NC` to a multiple of this.
pub fn dispatch_nr() -> usize {
    active_simd_level().nr()
}

/// Human-readable microkernel identifier for benchmark reports and the
/// telemetry manifest.
pub fn kernel_label() -> &'static str {
    match active_simd_level() {
        SimdLevel::Lanes16 => "avx512-f32x16-4x16",
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Lanes8 => "neon-f32x4x2-4x8",
        #[cfg(not(target_arch = "aarch64"))]
        SimdLevel::Lanes8 => "avx-f32x8-4x8",
        SimdLevel::Scalar => "scalar-f32x8-4x8",
    }
}

/// A packing source: how to read element `(r, c)` of a logical matrix.
#[derive(Clone, Copy)]
enum Mat<'a> {
    /// `element(r, c) = data[r * ld + c]` — an ordinary row-major matrix.
    Rows { data: &'a [f32], ld: usize },
    /// `element(r, c) = data[c * ld + off + r]` — a column-major view,
    /// i.e. the transpose of a row-major buffer, with `off` selecting a
    /// starting row of the transposed matrix.
    Cols { data: &'a [f32], ld: usize, off: usize },
}

impl Mat<'_> {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f32 {
        match *self {
            Mat::Rows { data, ld } => data[r * ld + c],
            Mat::Cols { data, ld, off } => data[c * ld + off + r],
        }
    }
}

/// Packs the `mc×kc` block of `a` starting at `(row0, col0)` into
/// MR-interleaved strips: strip `s` holds rows `s*MR..s*MR+MR` in
/// depth-major order (`apack[s*kc*MR + p*MR + r]`), zero-padded past
/// `mc`. Padded lanes are never read back (edge tiles use the partial
/// kernel), they only keep the stride uniform.
fn pack_a(a: Mat<'_>, row0: usize, col0: usize, mc: usize, kc: usize, apack: &mut [f32]) {
    for s in 0..mc.div_ceil(MR) {
        let strip = &mut apack[s * kc * MR..(s + 1) * kc * MR];
        let rows = MR.min(mc - s * MR);
        for (p, lane) in strip.chunks_exact_mut(MR).enumerate() {
            for (r, slot) in lane.iter_mut().enumerate() {
                *slot = if r < rows { a.at(row0 + s * MR + r, col0 + p) } else { 0.0 };
            }
        }
    }
}

/// Packs the `kc×nc` block of `b` starting at `(row0, col0)` into
/// `nrw`-interleaved strips (`bpack[s*kc*nrw + p*nrw + j]`), zero-padded
/// past `nc`. The strip width follows the dispatched microkernel (8
/// lanes, or 16 when the AVX-512 kernel is active).
fn pack_b(
    b: Mat<'_>,
    row0: usize,
    col0: usize,
    kc: usize,
    nc: usize,
    nrw: usize,
    bpack: &mut [f32],
) {
    for s in 0..nc.div_ceil(nrw) {
        let strip = &mut bpack[s * kc * nrw..(s + 1) * kc * nrw];
        let cols = nrw.min(nc - s * nrw);
        for (p, lane) in strip.chunks_exact_mut(nrw).enumerate() {
            for (j, slot) in lane.iter_mut().enumerate() {
                *slot = if j < cols { b.at(row0 + p, col0 + s * nrw + j) } else { 0.0 };
            }
        }
    }
}

/// Full `MR×NR` register-tile microkernel, portable form (8-wide
/// strips). The output tile lives in `acc` for the whole `kc` depth
/// block, so each element pays one load and one store per block instead
/// of one per multiply. The inner `NR` loop is branch-free and
/// auto-vectorizes to 8-wide lanes.
fn kernel_full_scalar<const SKIP: bool>(
    kc: usize,
    astrip: &[f32],
    bstrip: &[f32],
    out: &mut [f32],
    off: usize,
    ldc: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&out[off + r * ldc..off + r * ldc + NR]);
    }
    for (avals, bvec) in astrip.chunks_exact(MR).zip(bstrip.chunks_exact(NR)).take(kc) {
        for (r, row) in acc.iter_mut().enumerate() {
            let a_v = avals[r];
            if SKIP && a_v == 0.0 {
                continue;
            }
            for (o, &b_v) in row.iter_mut().zip(bvec) {
                *o += a_v * b_v;
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        out[off + r * ldc..off + r * ldc + NR].copy_from_slice(row);
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx {
    //! Explicit AVX form of the full-tile microkernel. `_mm256_mul_ps` +
    //! `_mm256_add_ps` are IEEE-754 per-lane operations identical to the
    //! scalar multiply/add (deliberately *not* `_mm256_fmadd_ps`, which
    //! would change rounding), so this kernel is bitwise-equal to
    //! [`super::kernel_full_scalar`].

    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// # Safety
    ///
    /// Caller must ensure AVX is available, `astrip`/`bstrip` hold at
    /// least `kc` packed lanes, and `out[off..]` covers an `MR×NR` tile
    /// with row stride `ldc`.
    #[target_feature(enable = "avx")]
    pub unsafe fn kernel_full<const SKIP: bool>(
        kc: usize,
        astrip: &[f32],
        bstrip: &[f32],
        out: &mut [f32],
        off: usize,
        ldc: usize,
    ) {
        debug_assert!(astrip.len() >= kc * MR && bstrip.len() >= kc * NR);
        debug_assert!(out.len() >= off + (MR - 1) * ldc + NR);
        unsafe {
            let ap = astrip.as_ptr();
            let bp = bstrip.as_ptr();
            let op = out.as_mut_ptr().add(off);
            let mut acc = [_mm256_setzero_ps(); MR];
            for (r, reg) in acc.iter_mut().enumerate() {
                *reg = _mm256_loadu_ps(op.add(r * ldc));
            }
            for p in 0..kc {
                let bvec = _mm256_loadu_ps(bp.add(p * NR));
                for (r, reg) in acc.iter_mut().enumerate() {
                    let a_v = *ap.add(p * MR + r);
                    if SKIP && a_v == 0.0 {
                        continue;
                    }
                    *reg = _mm256_add_ps(*reg, _mm256_mul_ps(_mm256_set1_ps(a_v), bvec));
                }
            }
            for (r, reg) in acc.iter().enumerate() {
                _mm256_storeu_ps(op.add(r * ldc), *reg);
            }
        }
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx512 {
    //! AVX-512F form of the full-tile microkernel on 16-wide strips.
    //! `_mm512_mul_ps` + `_mm512_add_ps` are IEEE-754 per-lane
    //! operations (again deliberately not `_mm512_fmadd_ps`), so each
    //! of the 16 lanes performs exactly the scalar operation sequence —
    //! the kernel is bitwise-equal to two adjacent 8-wide tiles.

    use super::{MR, NR_WIDE};
    use std::arch::x86_64::*;

    /// # Safety
    ///
    /// Caller must ensure AVX-512F is available, `astrip`/`bstrip` hold
    /// at least `kc` packed lanes (16-wide B strips), and `out[off..]`
    /// covers an `MR×NR_WIDE` tile with row stride `ldc`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn kernel_full<const SKIP: bool>(
        kc: usize,
        astrip: &[f32],
        bstrip: &[f32],
        out: &mut [f32],
        off: usize,
        ldc: usize,
    ) {
        debug_assert!(astrip.len() >= kc * MR && bstrip.len() >= kc * NR_WIDE);
        debug_assert!(out.len() >= off + (MR - 1) * ldc + NR_WIDE);
        unsafe {
            let ap = astrip.as_ptr();
            let bp = bstrip.as_ptr();
            let op = out.as_mut_ptr().add(off);
            let mut acc = [_mm512_setzero_ps(); MR];
            for (r, reg) in acc.iter_mut().enumerate() {
                *reg = _mm512_loadu_ps(op.add(r * ldc));
            }
            for p in 0..kc {
                let bvec = _mm512_loadu_ps(bp.add(p * NR_WIDE));
                for (r, reg) in acc.iter_mut().enumerate() {
                    let a_v = *ap.add(p * MR + r);
                    if SKIP && a_v == 0.0 {
                        continue;
                    }
                    *reg = _mm512_add_ps(*reg, _mm512_mul_ps(_mm512_set1_ps(a_v), bvec));
                }
            }
            for (r, reg) in acc.iter().enumerate() {
                _mm512_storeu_ps(op.add(r * ldc), *reg);
            }
        }
    }
}

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
mod neon {
    //! NEON form of the full-tile microkernel: two `f32x4` registers
    //! cover the same 8-wide strip as the scalar kernel. `vmulq_f32` +
    //! `vaddq_f32` are IEEE-754 per-lane operations (not `vfmaq_f32`),
    //! so this kernel is bitwise-equal to
    //! [`super::kernel_full_scalar`]. NEON is baseline on aarch64, so
    //! no runtime probe guards the call.

    use super::{MR, NR};
    use std::arch::aarch64::*;

    /// # Safety
    ///
    /// Caller must ensure `astrip`/`bstrip` hold at least `kc` packed
    /// lanes and `out[off..]` covers an `MR×NR` tile with row stride
    /// `ldc`.
    #[target_feature(enable = "neon")]
    pub unsafe fn kernel_full<const SKIP: bool>(
        kc: usize,
        astrip: &[f32],
        bstrip: &[f32],
        out: &mut [f32],
        off: usize,
        ldc: usize,
    ) {
        debug_assert!(astrip.len() >= kc * MR && bstrip.len() >= kc * NR);
        debug_assert!(out.len() >= off + (MR - 1) * ldc + NR);
        unsafe {
            let ap = astrip.as_ptr();
            let bp = bstrip.as_ptr();
            let op = out.as_mut_ptr().add(off);
            let mut lo = [vdupq_n_f32(0.0); MR];
            let mut hi = [vdupq_n_f32(0.0); MR];
            for r in 0..MR {
                lo[r] = vld1q_f32(op.add(r * ldc));
                hi[r] = vld1q_f32(op.add(r * ldc + 4));
            }
            for p in 0..kc {
                let b_lo = vld1q_f32(bp.add(p * NR));
                let b_hi = vld1q_f32(bp.add(p * NR + 4));
                for r in 0..MR {
                    let a_v = *ap.add(p * MR + r);
                    if SKIP && a_v == 0.0 {
                        continue;
                    }
                    let av = vdupq_n_f32(a_v);
                    lo[r] = vaddq_f32(lo[r], vmulq_f32(av, b_lo));
                    hi[r] = vaddq_f32(hi[r], vmulq_f32(av, b_hi));
                }
            }
            for r in 0..MR {
                vst1q_f32(op.add(r * ldc), lo[r]);
                vst1q_f32(op.add(r * ldc + 4), hi[r]);
            }
        }
    }
}

/// Full-tile microkernel dispatch for the level chosen at the top of
/// the GEMM call (so packing width and kernel always agree).
#[inline]
fn kernel_full<const SKIP: bool>(
    level: SimdLevel,
    kc: usize,
    astrip: &[f32],
    bstrip: &[f32],
    out: &mut [f32],
    off: usize,
    ldc: usize,
) {
    match level {
        SimdLevel::Lanes16 => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            // SAFETY: Lanes16 is only returned by `active_simd_level`
            // when AVX-512F was detected; strip and tile bounds are
            // guaranteed by the macro-kernel loop (debug-asserted
            // inside).
            unsafe {
                avx512::kernel_full::<SKIP>(kc, astrip, bstrip, out, off, ldc)
            }
            #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
            unreachable!("Lanes16 dispatch without the AVX-512 kernel compiled in")
        }
        SimdLevel::Lanes8 => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            // SAFETY: Lanes8 is only returned when AVX was detected.
            unsafe {
                avx::kernel_full::<SKIP>(kc, astrip, bstrip, out, off, ldc)
            }
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            // SAFETY: NEON is baseline on aarch64.
            unsafe {
                neon::kernel_full::<SKIP>(kc, astrip, bstrip, out, off, ldc)
            }
            #[cfg(not(all(
                feature = "simd",
                any(target_arch = "x86_64", target_arch = "aarch64")
            )))]
            kernel_full_scalar::<SKIP>(kc, astrip, bstrip, out, off, ldc)
        }
        SimdLevel::Scalar => kernel_full_scalar::<SKIP>(kc, astrip, bstrip, out, off, ldc),
    }
}

/// Partial-tile kernel for the `m % MR` / `n % nrw` edges: same
/// per-element operation sequence as the full kernel, restricted to the
/// `mr×nr` live sub-tile of an `nrw`-wide strip (packed padding lanes
/// are never read).
#[allow(clippy::too_many_arguments)]
fn kernel_edge<const SKIP: bool>(
    kc: usize,
    mr: usize,
    nr: usize,
    nrw: usize,
    astrip: &[f32],
    bstrip: &[f32],
    out: &mut [f32],
    off: usize,
    ldc: usize,
) {
    let mut acc = [[0.0f32; NR_WIDE]; MR];
    for (r, row) in acc.iter_mut().take(mr).enumerate() {
        row[..nr].copy_from_slice(&out[off + r * ldc..off + r * ldc + nr]);
    }
    for (avals, bvec) in astrip.chunks_exact(MR).zip(bstrip.chunks_exact(nrw)).take(kc) {
        for (r, row) in acc.iter_mut().take(mr).enumerate() {
            let a_v = avals[r];
            if SKIP && a_v == 0.0 {
                continue;
            }
            for (o, &b_v) in row.iter_mut().zip(bvec).take(nr) {
                *o += a_v * b_v;
            }
        }
    }
    for (r, row) in acc.iter().take(mr).enumerate() {
        out[off + r * ldc..off + r * ldc + nr].copy_from_slice(&row[..nr]);
    }
}

/// The blocked macro-kernel: `out[m×n] += A[m×k] × B[k×n]` where `A` and
/// `B` are packing sources. Depth blocks (`pc`) iterate outermost-but-one
/// so every output element sees its products in globally increasing `p`
/// order — the heart of the bitwise contract. The blocking parameters
/// and microkernel tier are read once at entry, so one call is always
/// internally consistent even if a tuner installs a new blocking
/// mid-flight.
fn gemm_core<const SKIP: bool>(
    a: Mat<'_>,
    b: Mat<'_>,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    let blk = crate::geometry::blocking();
    let level = active_simd_level();
    let nrw = level.nr();
    let kc_max = blk.kc.min(k);
    let apack_len = blk.mc.min(m).div_ceil(MR) * kc_max * MR;
    let bpack_len = blk.nc.min(n).div_ceil(nrw) * kc_max * nrw;
    let mut apack = scratch::scratch(apack_len);
    let mut bpack = scratch::scratch(bpack_len);
    if telemetry::enabled() {
        telemetry::counter("nn.gemm.blocked.calls", 1);
        telemetry::counter(
            "nn.gemm.pack_bytes",
            ((apack_len + bpack_len) * std::mem::size_of::<f32>()) as u64,
        );
    }
    let mut jc = 0;
    while jc < n {
        let nc = blk.nc.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = blk.kc.min(k - pc);
            pack_b(b, pc, jc, kc, nc, nrw, &mut bpack);
            let mut ic = 0;
            while ic < m {
                let mc = blk.mc.min(m - ic);
                pack_a(a, ic, pc, mc, kc, &mut apack);
                let mut jr = 0;
                while jr < nc {
                    let nr = nrw.min(nc - jr);
                    let bstrip = &bpack[(jr / nrw) * kc * nrw..(jr / nrw + 1) * kc * nrw];
                    let mut ir = 0;
                    while ir < mc {
                        let mr = MR.min(mc - ir);
                        let astrip = &apack[(ir / MR) * kc * MR..(ir / MR + 1) * kc * MR];
                        let off = (ic + ir) * n + jc + jr;
                        if mr == MR && nr == nrw {
                            kernel_full::<SKIP>(level, kc, astrip, bstrip, out, off, n);
                        } else {
                            kernel_edge::<SKIP>(kc, mr, nr, nrw, astrip, bstrip, out, off, n);
                        }
                        ir += MR;
                    }
                    jr += nrw;
                }
                ic += blk.mc;
            }
            pc += blk.kc;
        }
        jc += blk.nc;
    }
}

/// Blocked `out += a × b` for row-major `a: m×k`, `b: k×n`, `out: m×n`.
/// Bitwise identical to [`crate::gemm::gemm_acc`] (zero-skip preserved).
///
/// # Panics
///
/// Panics if slice lengths do not match the dimensions.
pub fn gemm_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs size mismatch");
    assert_eq!(b.len(), k * n, "rhs size mismatch");
    assert_eq!(out.len(), m * n, "out size mismatch");
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    gemm_core::<true>(Mat::Rows { data: a, ld: k }, Mat::Rows { data: b, ld: n }, m, k, n, out);
}

/// Blocked row slice `i0..i1` of `out += aᵀ × b` for row-major `a: k×m`,
/// `b: k×n`. Bitwise identical to [`crate::gemm::gemm_at_b_acc_rows`]
/// (zero-skip preserved).
///
/// # Panics
///
/// Panics if the row range or slice lengths do not match the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_at_b_acc_rows(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    i0: usize,
    i1: usize,
    out_rows: &mut [f32],
) {
    assert!(i0 <= i1 && i1 <= m, "row range out of bounds");
    assert_eq!(a.len(), k * m, "lhs size mismatch");
    assert_eq!(b.len(), k * n, "rhs size mismatch");
    assert_eq!(out_rows.len(), (i1 - i0) * n, "out size mismatch");
    if i0 == i1 || k == 0 || n == 0 {
        return;
    }
    gemm_core::<true>(
        Mat::Cols { data: a, ld: m, off: i0 },
        Mat::Rows { data: b, ld: n },
        i1 - i0,
        k,
        n,
        out_rows,
    );
}

/// Blocked `out += aᵀ × b` (full row range).
pub fn gemm_at_b_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    gemm_at_b_acc_rows(a, b, m, k, n, 0, m, out);
}

/// Blocked `out += a × bᵀ` for row-major `a: m×k`, `b: n×k`, `out: m×n`.
/// Bitwise identical to [`crate::gemm::gemm_a_bt_acc`]: the naive kernel
/// accumulates each dot product from zero and adds it to `out` once, so
/// the blocked form runs through a zeroed scratch accumulator (exact
/// `f32` round-trips) and applies the same single add per element. The
/// naive kernel has no zero-skip here, and neither does this path.
///
/// # Panics
///
/// Panics if slice lengths do not match the dimensions.
pub fn gemm_a_bt_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs size mismatch");
    assert_eq!(b.len(), n * k, "rhs size mismatch");
    assert_eq!(out.len(), m * n, "out size mismatch");
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let mut tmp = scratch::scratch(m * n);
    gemm_core::<false>(
        Mat::Rows { data: a, ld: k },
        Mat::Cols { data: b, ld: k, off: 0 },
        m,
        k,
        n,
        &mut tmp,
    );
    for (o, &t) in out.iter_mut().zip(tmp.iter()) {
        *o += t;
    }
}

fn record_kernel_choice(blocked: bool) {
    if telemetry::enabled() {
        if blocked {
            telemetry::counter("nn.gemm.dispatch.blocked", 1);
        } else {
            telemetry::counter("nn.gemm.dispatch.naive", 1);
        }
    }
}

/// `out += a × b`, blocked above [`BLOCKED_MIN_MACS`] MACs, naive below.
/// Both paths produce bitwise-identical results; the cutoff only avoids
/// packing overhead on tiny products.
pub fn gemm_acc_auto(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    let blocked = m.saturating_mul(k).saturating_mul(n) >= BLOCKED_MIN_MACS;
    record_kernel_choice(blocked);
    if blocked {
        gemm_acc(a, b, m, k, n, out);
    } else {
        crate::gemm::gemm_acc(a, b, m, k, n, out);
    }
}

/// Row-sliced `out += (aᵀ × b)[i0..i1]`, blocked above the cutoff.
#[allow(clippy::too_many_arguments)]
pub fn gemm_at_b_acc_rows_auto(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    i0: usize,
    i1: usize,
    out_rows: &mut [f32],
) {
    let blocked = (i1 - i0).saturating_mul(k).saturating_mul(n) >= BLOCKED_MIN_MACS;
    record_kernel_choice(blocked);
    if blocked {
        gemm_at_b_acc_rows(a, b, m, k, n, i0, i1, out_rows);
    } else {
        crate::gemm::gemm_at_b_acc_rows(a, b, m, k, n, i0, i1, out_rows);
    }
}

/// `out += a × bᵀ`, blocked above the cutoff.
pub fn gemm_a_bt_acc_auto(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    let blocked = m.saturating_mul(k).saturating_mul(n) >= BLOCKED_MIN_MACS;
    record_kernel_choice(blocked);
    if blocked {
        gemm_a_bt_acc(a, b, m, k, n, out);
    } else {
        crate::gemm::gemm_a_bt_acc(a, b, m, k, n, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(len: usize, phase: usize) -> Vec<f32> {
        (0..len).map(|i| (((i * 7 + phase) % 13) as f32 - 6.0) / 6.0).collect()
    }

    /// ~half the entries exactly zero, exercising the skip branch.
    fn zero_dense(len: usize, phase: usize) -> Vec<f32> {
        (0..len)
            .map(|i| {
                if (i * 11 + phase).is_multiple_of(2) {
                    0.0
                } else {
                    ((i % 9) as f32 - 4.0) / 4.0
                }
            })
            .collect()
    }

    /// Shapes spanning multiple MC/KC/NC blocks with ragged edges.
    const SHAPES: [(usize, usize, usize); 6] =
        [(1, 1, 1), (3, 5, 2), (7, 300, 13), (70, 33, 70), (65, 257, 9), (130, 280, 67)];

    #[test]
    fn blocked_gemm_acc_matches_naive_bitwise() {
        for (m, k, n) in SHAPES {
            for a in [filled(m * k, 1), zero_dense(m * k, 2)] {
                let b = filled(k * n, 3);
                let mut expected = filled(m * n, 4);
                let mut got = expected.clone();
                crate::gemm::gemm_acc(&a, &b, m, k, n, &mut expected);
                gemm_acc(&a, &b, m, k, n, &mut got);
                assert_eq!(expected, got, "{m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn blocked_at_b_rows_matches_naive_bitwise() {
        for (m, k, n) in SHAPES {
            for a in [filled(k * m, 5), zero_dense(k * m, 6)] {
                let b = filled(k * n, 7);
                let (i0, i1) = (m / 3, m - m / 4);
                if i0 >= i1 {
                    continue;
                }
                let mut expected = filled((i1 - i0) * n, 8);
                let mut got = expected.clone();
                crate::gemm::gemm_at_b_acc_rows(&a, &b, m, k, n, i0, i1, &mut expected);
                gemm_at_b_acc_rows(&a, &b, m, k, n, i0, i1, &mut got);
                assert_eq!(expected, got, "{m}x{k}x{n} rows {i0}..{i1}");
            }
        }
    }

    #[test]
    fn blocked_a_bt_matches_naive_bitwise() {
        for (m, k, n) in SHAPES {
            for a in [filled(m * k, 9), zero_dense(m * k, 10)] {
                let b = zero_dense(n * k, 11);
                let mut expected = filled(m * n, 12);
                let mut got = expected.clone();
                crate::gemm::gemm_a_bt_acc(&a, &b, m, k, n, &mut expected);
                gemm_a_bt_acc(&a, &b, m, k, n, &mut got);
                assert_eq!(expected, got, "{m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn auto_dispatch_matches_naive_bitwise_around_cutoff() {
        for (m, k, n) in [(8, 8, 8), (16, 16, 16), (17, 16, 17)] {
            let a = filled(m * k, 13);
            let b = filled(k * n, 14);
            let mut expected = vec![0.25; m * n];
            let mut got = expected.clone();
            crate::gemm::gemm_acc(&a, &b, m, k, n, &mut expected);
            gemm_acc_auto(&a, &b, m, k, n, &mut got);
            assert_eq!(expected, got, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn kernel_label_names_a_lane_width() {
        assert!(kernel_label().contains("f32x"));
        assert!(kernel_label().contains("4x"));
    }

    #[test]
    fn simd_cap_is_monotone_and_restores() {
        // Capping can only lower the level, and uncapping restores it.
        let uncapped = active_simd_level();
        set_simd_cap(SimdLevel::Scalar);
        assert_eq!(active_simd_level(), SimdLevel::Scalar);
        assert!(!simd_active());
        set_simd_cap(SimdLevel::Lanes8);
        assert!(active_simd_level() <= SimdLevel::Lanes8);
        set_simd_enabled(true);
        assert_eq!(active_simd_level(), uncapped);
    }

    /// Every dispatchable microkernel tier produces the same bits on a
    /// shape with full tiles, edge tiles, and multiple depth blocks.
    #[test]
    fn all_simd_levels_bitwise_identical() {
        let (m, k, n) = (37, 300, 51);
        let a = zero_dense(m * k, 3);
        let b = filled(k * n, 4);
        let bias = filled(m * n, 5);
        set_simd_cap(SimdLevel::Scalar);
        let mut reference = bias.clone();
        gemm_acc(&a, &b, m, k, n, &mut reference);
        for cap in [SimdLevel::Lanes8, SimdLevel::Lanes16] {
            set_simd_cap(cap);
            let mut got = bias.clone();
            gemm_acc(&a, &b, m, k, n, &mut got);
            assert_eq!(reference, got, "level {:?} (ran {:?})", cap, active_simd_level());
        }
        set_simd_enabled(true);
    }
}
