//! Neural-network layers with explicit forward/backward passes.
//!
//! Every layer caches what its backward pass needs during `forward`, so
//! the usage contract is: `forward(…, train=true)` → compute loss grad →
//! `zero_grad` (once per step) → `backward` → optimizer step.

mod activation;
mod conv;
mod convtranspose;
mod dropout;
mod linear;
mod norm;

pub use activation::{LeakyRelu, Relu, Sigmoid, Tanh};
pub use conv::Conv2d;
pub use convtranspose::ConvTranspose2d;
pub use dropout::Dropout;
pub use linear::Linear;
pub use norm::{BatchNorm2d, InstanceNorm2d};

use crate::param::Param;
use crate::store::ParamStore;
use crate::tensor::Tensor;

/// A differentiable layer.
///
/// `forward` must be called (with `train = true`) before `backward`;
/// layers cache intermediate state between the two calls. `backward`
/// *accumulates* into parameter gradients and returns the gradient with
/// respect to the layer input.
pub trait Layer: std::fmt::Debug + Send {
    /// Computes the layer output. `train` selects training behaviour
    /// (batch statistics, active dropout) and enables caching for
    /// `backward`.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Back-propagates `grad_out` (gradient w.r.t. the last `forward`
    /// output), accumulating parameter gradients and returning the
    /// gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before a training-mode
    /// `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// A short static name of the layer type (`"conv2d"`,
    /// `"batch_norm2d"`, …), used for telemetry labels and for naming
    /// the offending layer in training diagnostics.
    fn kind(&self) -> &'static str {
        "layer"
    }

    /// Visits every learnable parameter in a stable order.
    ///
    /// This is the layer-internal wiring that the named/flat bridge
    /// methods below are built on. External subsystems (optimizers,
    /// serialization, the trainer) go through [`ParamStore`]s and the
    /// bridge methods instead of calling this directly.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        let _ = visitor;
    }

    /// Visits every non-learnable state buffer (e.g. batch-norm running
    /// statistics) in a stable order. Buffers are part of a model's
    /// serialized state but receive no gradients. Like `visit_params`,
    /// this is internal wiring for the bridge methods below.
    fn visit_buffers(&mut self, visitor: &mut dyn FnMut(&mut Vec<f32>)) {
        let _ = visitor;
    }

    /// Stable names of this layer's own parameters, matching the
    /// `visit_params` order (`["weight", "bias"]`, `["gamma", "beta"]`,
    /// …). Composite layers leave this empty and override
    /// [`Layer::visit_named_params`] instead.
    fn param_names(&self) -> &'static [&'static str] {
        &[]
    }

    /// Stable names of this layer's state buffers, matching the
    /// `visit_buffers` order.
    fn buffer_names(&self) -> &'static [&'static str] {
        &[]
    }

    /// Visits every parameter together with its stable path name
    /// (`prefix` + the entry from [`Layer::param_names`]). Composite
    /// layers override this to compose child prefixes
    /// (`"{kind}{index}."`), producing the segment names used by
    /// [`ParamStore`]s, optimizer moments, and checkpoints.
    fn visit_named_params(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Param)) {
        let names = self.param_names();
        let mut i = 0;
        self.visit_params(&mut |p| {
            let name = names.get(i).copied().unwrap_or("param");
            visitor(&format!("{prefix}{name}"), p);
            i += 1;
        });
    }

    /// Visits every state buffer together with its stable path name.
    fn visit_named_buffers(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Vec<f32>)) {
        let names = self.buffer_names();
        let mut i = 0;
        self.visit_buffers(&mut |b| {
            let name = names.get(i).copied().unwrap_or("buffer");
            visitor(&format!("{prefix}{name}"), b);
            i += 1;
        });
    }

    /// Appends every parameter (values and gradients) to `store` as
    /// named segments under `prefix`.
    fn export_params(&mut self, prefix: &str, store: &mut ParamStore) {
        self.visit_named_params(prefix, &mut |name, p| {
            store.push_segment(name, &p.value, &p.grad);
        });
    }

    /// Captures all parameters into a fresh flat store.
    fn export_store(&mut self) -> ParamStore {
        let mut store = ParamStore::new();
        self.export_params("", &mut store);
        store
    }

    /// Copies parameter values from `store` back into the layer,
    /// matching segments by name. Panics if a segment is missing or has
    /// a different length — the store must come from the same
    /// architecture.
    fn import_values(&mut self, prefix: &str, store: &ParamStore) {
        self.visit_named_params(prefix, &mut |name, p| {
            let seg =
                store.segment(name).unwrap_or_else(|| panic!("missing parameter segment `{name}`"));
            assert_eq!(seg.len, p.value.len(), "parameter `{name}` changed length");
            p.value.copy_from_slice(store.segment_values(seg));
        });
    }

    /// Copies the layer's current gradients into `store`'s gradient
    /// arena, matching segments by name.
    fn export_grads(&mut self, prefix: &str, store: &mut ParamStore) {
        self.visit_named_params(prefix, &mut |name, p| {
            let (offset, len) = {
                let seg = store
                    .segment(name)
                    .unwrap_or_else(|| panic!("missing parameter segment `{name}`"));
                (seg.offset, seg.len)
            };
            assert_eq!(len, p.grad.len(), "parameter `{name}` changed length");
            store.grads_mut()[offset..offset + len].copy_from_slice(&p.grad);
        });
    }

    /// Packs parameter values into `out` in visiting order. `out` must
    /// have exactly `param_count` scalars.
    fn read_values_flat(&mut self, out: &mut [f32]) {
        let mut at = 0;
        self.visit_params(&mut |p| {
            out[at..at + p.len()].copy_from_slice(&p.value);
            at += p.len();
        });
        assert_eq!(at, out.len(), "flat value buffer length mismatch");
    }

    /// Overwrites parameter values from a flat arena in visiting order —
    /// the replica weight broadcast.
    fn write_values_flat(&mut self, src: &[f32]) {
        let mut at = 0;
        self.visit_params(&mut |p| {
            let len = p.len();
            p.value.copy_from_slice(&src[at..at + len]);
            at += len;
        });
        assert_eq!(at, src.len(), "flat value buffer length mismatch");
    }

    /// Packs parameter gradients into `out` in visiting order — one
    /// replica's contribution, ready for the fixed-order tree reduction.
    fn read_grads_flat(&mut self, out: &mut [f32]) {
        let mut at = 0;
        self.visit_params(&mut |p| {
            out[at..at + p.grad.len()].copy_from_slice(&p.grad);
            at += p.grad.len();
        });
        assert_eq!(at, out.len(), "flat gradient buffer length mismatch");
    }

    /// Total scalar count across state buffers.
    fn buffer_scalar_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_buffers(&mut |b| count += b.len());
        count
    }

    /// Packs state buffers into `out` in visiting order.
    fn read_buffers_flat(&mut self, out: &mut [f32]) {
        let mut at = 0;
        self.visit_buffers(&mut |b| {
            out[at..at + b.len()].copy_from_slice(b);
            at += b.len();
        });
        assert_eq!(at, out.len(), "flat buffer arena length mismatch");
    }

    /// Overwrites state buffers from a flat arena in visiting order.
    fn write_buffers_flat(&mut self, src: &[f32]) {
        let mut at = 0;
        self.visit_buffers(&mut |b| {
            let len = b.len();
            b.copy_from_slice(&src[at..at + len]);
            at += len;
        });
        assert_eq!(at, src.len(), "flat buffer arena length mismatch");
    }

    /// Clears all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total learnable scalar count.
    fn param_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p| count += p.len());
        count
    }
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by layer tests.

    use super::Layer;
    use crate::tensor::Tensor;

    /// Checks `d loss / d input` where `loss = Σ out·coeff` for a fixed
    /// random coefficient tensor, comparing analytic backward against
    /// central finite differences.
    pub fn check_input_gradient(layer: &mut dyn Layer, input: &Tensor, tolerance: f32) {
        let out = layer.forward(input, true);
        // loss = sum(out * coeff) with coeff = 1 + 0.1*i (deterministic).
        let coeff: Vec<f32> = (0..out.len()).map(|i| 1.0 + 0.1 * (i % 7) as f32).collect();
        let grad_out = Tensor::from_vec(out.shape(), coeff.clone());
        layer.zero_grad();
        let grad_in = layer.backward(&grad_out);

        let eps = 1e-2f32;
        for i in (0..input.len()).step_by(input.len().div_ceil(24).max(1)) {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let f = |t: &Tensor, layer: &mut dyn Layer| -> f32 {
                let o = layer.forward(t, true);
                o.data().iter().zip(&coeff).map(|(a, b)| a * b).sum()
            };
            let numeric = (f(&plus, layer) - f(&minus, layer)) / (2.0 * eps);
            let analytic = grad_in.data()[i];
            assert!(
                (numeric - analytic).abs() <= tolerance * (1.0 + numeric.abs().max(analytic.abs())),
                "input grad mismatch at {i}: numeric {numeric}, analytic {analytic}"
            );
        }
    }

    /// Checks `d loss / d params` similarly.
    pub fn check_param_gradients(layer: &mut dyn Layer, input: &Tensor, tolerance: f32) {
        let out = layer.forward(input, true);
        let coeff: Vec<f32> = (0..out.len()).map(|i| 1.0 + 0.1 * (i % 7) as f32).collect();
        let grad_out = Tensor::from_vec(out.shape(), coeff.clone());
        layer.zero_grad();
        layer.backward(&grad_out);

        // Snapshot analytic gradients.
        let mut analytic: Vec<Vec<f32>> = Vec::new();
        layer.visit_params(&mut |p| analytic.push(p.grad.clone()));

        let eps = 1e-2f32;
        #[allow(clippy::needless_range_loop)] // pi pairs visit_params order with analytic
        for pi in 0..analytic.len() {
            let len = analytic[pi].len();
            for i in (0..len).step_by(len.div_ceil(12).max(1)) {
                let mut idx = 0;
                layer.visit_params(&mut |p| {
                    if idx == pi {
                        p.value[i] += eps;
                    }
                    idx += 1;
                });
                let f_plus: f32 = {
                    let o = layer.forward(input, true);
                    o.data().iter().zip(&coeff).map(|(a, b)| a * b).sum()
                };
                let mut idx = 0;
                layer.visit_params(&mut |p| {
                    if idx == pi {
                        p.value[i] -= 2.0 * eps;
                    }
                    idx += 1;
                });
                let f_minus: f32 = {
                    let o = layer.forward(input, true);
                    o.data().iter().zip(&coeff).map(|(a, b)| a * b).sum()
                };
                let mut idx = 0;
                layer.visit_params(&mut |p| {
                    if idx == pi {
                        p.value[i] += eps;
                    }
                    idx += 1;
                });
                let numeric = (f_plus - f_minus) / (2.0 * eps);
                let a = analytic[pi][i];
                assert!(
                    (numeric - a).abs() <= tolerance * (1.0 + numeric.abs().max(a.abs())),
                    "param {pi} grad mismatch at {i}: numeric {numeric}, analytic {a}"
                );
            }
        }
    }
}
