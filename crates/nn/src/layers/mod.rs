//! Neural-network layers with explicit forward/backward passes.
//!
//! Every layer caches what its backward pass needs during `forward`, so
//! the usage contract is: `forward(…, train=true)` → compute loss grad →
//! `zero_grad` (once per step) → `backward` → optimizer step.

mod activation;
mod conv;
mod convtranspose;
mod dropout;
mod linear;
mod norm;

pub use activation::{LeakyRelu, Relu, Sigmoid, Tanh};
pub use conv::Conv2d;
pub use convtranspose::ConvTranspose2d;
pub use dropout::Dropout;
pub use linear::Linear;
pub use norm::{BatchNorm2d, InstanceNorm2d};

use crate::param::Param;
use crate::tensor::Tensor;

/// A differentiable layer.
///
/// `forward` must be called (with `train = true`) before `backward`;
/// layers cache intermediate state between the two calls. `backward`
/// *accumulates* into parameter gradients and returns the gradient with
/// respect to the layer input.
pub trait Layer: std::fmt::Debug + Send {
    /// Computes the layer output. `train` selects training behaviour
    /// (batch statistics, active dropout) and enables caching for
    /// `backward`.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Back-propagates `grad_out` (gradient w.r.t. the last `forward`
    /// output), accumulating parameter gradients and returning the
    /// gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before a training-mode
    /// `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// A short static name of the layer type (`"conv2d"`,
    /// `"batch_norm2d"`, …), used for telemetry labels and for naming
    /// the offending layer in training diagnostics.
    fn kind(&self) -> &'static str {
        "layer"
    }

    /// Visits every learnable parameter in a stable order.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        let _ = visitor;
    }

    /// Visits every non-learnable state buffer (e.g. batch-norm running
    /// statistics) in a stable order. Buffers are part of a model's
    /// serialized state but receive no gradients.
    fn visit_buffers(&mut self, visitor: &mut dyn FnMut(&mut Vec<f32>)) {
        let _ = visitor;
    }

    /// Clears all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total learnable scalar count.
    fn param_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p| count += p.len());
        count
    }
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by layer tests.

    use super::Layer;
    use crate::tensor::Tensor;

    /// Checks `d loss / d input` where `loss = Σ out·coeff` for a fixed
    /// random coefficient tensor, comparing analytic backward against
    /// central finite differences.
    pub fn check_input_gradient(layer: &mut dyn Layer, input: &Tensor, tolerance: f32) {
        let out = layer.forward(input, true);
        // loss = sum(out * coeff) with coeff = 1 + 0.1*i (deterministic).
        let coeff: Vec<f32> = (0..out.len()).map(|i| 1.0 + 0.1 * (i % 7) as f32).collect();
        let grad_out = Tensor::from_vec(out.shape(), coeff.clone());
        layer.zero_grad();
        let grad_in = layer.backward(&grad_out);

        let eps = 1e-2f32;
        for i in (0..input.len()).step_by(input.len().div_ceil(24).max(1)) {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let f = |t: &Tensor, layer: &mut dyn Layer| -> f32 {
                let o = layer.forward(t, true);
                o.data().iter().zip(&coeff).map(|(a, b)| a * b).sum()
            };
            let numeric = (f(&plus, layer) - f(&minus, layer)) / (2.0 * eps);
            let analytic = grad_in.data()[i];
            assert!(
                (numeric - analytic).abs() <= tolerance * (1.0 + numeric.abs().max(analytic.abs())),
                "input grad mismatch at {i}: numeric {numeric}, analytic {analytic}"
            );
        }
    }

    /// Checks `d loss / d params` similarly.
    pub fn check_param_gradients(layer: &mut dyn Layer, input: &Tensor, tolerance: f32) {
        let out = layer.forward(input, true);
        let coeff: Vec<f32> = (0..out.len()).map(|i| 1.0 + 0.1 * (i % 7) as f32).collect();
        let grad_out = Tensor::from_vec(out.shape(), coeff.clone());
        layer.zero_grad();
        layer.backward(&grad_out);

        // Snapshot analytic gradients.
        let mut analytic: Vec<Vec<f32>> = Vec::new();
        layer.visit_params(&mut |p| analytic.push(p.grad.clone()));

        let eps = 1e-2f32;
        #[allow(clippy::needless_range_loop)] // pi pairs visit_params order with analytic
        for pi in 0..analytic.len() {
            let len = analytic[pi].len();
            for i in (0..len).step_by(len.div_ceil(12).max(1)) {
                let mut idx = 0;
                layer.visit_params(&mut |p| {
                    if idx == pi {
                        p.value[i] += eps;
                    }
                    idx += 1;
                });
                let f_plus: f32 = {
                    let o = layer.forward(input, true);
                    o.data().iter().zip(&coeff).map(|(a, b)| a * b).sum()
                };
                let mut idx = 0;
                layer.visit_params(&mut |p| {
                    if idx == pi {
                        p.value[i] -= 2.0 * eps;
                    }
                    idx += 1;
                });
                let f_minus: f32 = {
                    let o = layer.forward(input, true);
                    o.data().iter().zip(&coeff).map(|(a, b)| a * b).sum()
                };
                let mut idx = 0;
                layer.visit_params(&mut |p| {
                    if idx == pi {
                        p.value[i] += eps;
                    }
                    idx += 1;
                });
                let numeric = (f_plus - f_minus) / (2.0 * eps);
                let a = analytic[pi][i];
                assert!(
                    (numeric - a).abs() <= tolerance * (1.0 + numeric.abs().max(a.abs())),
                    "param {pi} grad mismatch at {i}: numeric {numeric}, analytic {a}"
                );
            }
        }
    }
}
