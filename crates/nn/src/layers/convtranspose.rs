//! 2-D transposed convolution (up-sampling).

use crate::gemm::{self, PatchGrid};
use crate::init::Initializer;
use crate::layers::Layer;
use crate::parallel::{self, Parallelism};
use crate::param::Param;
use crate::tensor::Tensor;
use crate::{reduce, scratch};
use cachebox_telemetry as telemetry;

/// A 2-D transposed convolution, the adjoint of [`Conv2d`] with the same
/// kernel/stride/pad — the U-Net decoder's up-sampling block
/// (kernel 4, stride 2, pad 1 exactly doubles the spatial size).
///
/// Weights are laid out `[in_c, out_c, k, k]` (PyTorch's
/// `ConvTranspose2d` convention), initialized `N(0, 0.02²)`.
///
/// # Example
///
/// ```
/// use cachebox_nn::{Tensor, layers::{ConvTranspose2d, Layer}};
///
/// let mut up = ConvTranspose2d::new(8, 4, 4, 2, 1, 0);
/// let out = up.forward(&Tensor::zeros([1, 8, 8, 8]), false);
/// assert_eq!(out.shape(), [1, 4, 16, 16]);
/// ```
///
/// [`Conv2d`]: crate::layers::Conv2d
#[derive(Debug)]
pub struct ConvTranspose2d {
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl ConvTranspose2d {
    /// Creates a transposed convolution; `seed` drives initialization.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        assert!(in_c > 0 && out_c > 0 && kernel > 0 && stride > 0, "invalid convT dimensions");
        let mut init = Initializer::new(seed ^ 0x7c04);
        ConvTranspose2d {
            in_c,
            out_c,
            kernel,
            stride,
            pad,
            weight: Param::new(init.conv_weights(in_c * out_c * kernel * kernel)),
            bias: Param::zeros(out_c),
            cached_input: None,
        }
    }

    /// Output spatial size for an `h × w` input:
    /// `(h-1)*stride - 2*pad + kernel`.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h - 1) * self.stride + self.kernel - 2 * self.pad,
            (w - 1) * self.stride + self.kernel - 2 * self.pad,
        )
    }

    /// The equivalent forward-conv patch grid over the *output* image,
    /// whose patch positions are this layer's input pixels.
    fn grid(&self, in_h: usize, in_w: usize) -> PatchGrid {
        let (oh, ow) = self.output_size(in_h, in_w);
        let grid = PatchGrid {
            channels: self.out_c,
            height: oh,
            width: ow,
            kernel: self.kernel,
            stride: self.stride,
            pad: self.pad,
        };
        debug_assert_eq!(grid.out_h(), in_h);
        debug_assert_eq!(grid.out_w(), in_w);
        grid
    }
}

impl Layer for ConvTranspose2d {
    fn kind(&self) -> &'static str {
        "conv_transpose2d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let _span = telemetry::span("nn.conv_transpose2d.forward");
        assert_eq!(input.c(), self.in_c, "input channel mismatch");
        let grid = self.grid(input.h(), input.w());
        let positions = input.h() * input.w();
        let rows = grid.patch_rows(); // out_c * k * k
        let mut out = Tensor::zeros([input.n(), self.out_c, grid.height, grid.width]);
        let par = Parallelism::current();
        let (shards, chunk) = crate::tuning::batch_plan(par, input.n());
        let inner = parallel::inner_budget(par, shards, rows * self.in_c * positions);
        let plane = grid.height * grid.width;
        let sample_len = self.out_c * plane;
        let forward_sample = |sample: &[f32], cols: &mut [f32], out_sample: &mut [f32]| {
            // cols = Wᵀ × x  (W: [in_c, rows], x: [in_c, positions]).
            cols.fill(0.0);
            parallel::gemm_at_b_acc_with(
                inner,
                &self.weight.value,
                sample,
                rows,
                self.in_c,
                positions,
                cols,
            );
            gemm::col2im(cols, &grid, out_sample);
            for c in 0..self.out_c {
                let b = self.bias.value[c];
                for v in &mut out_sample[c * plane..(c + 1) * plane] {
                    *v += b;
                }
            }
        };
        if shards <= 1 {
            let mut cols = scratch::scratch(rows * positions);
            for n in 0..input.n() {
                forward_sample(input.sample(n), &mut cols, out.sample_mut(n));
            }
        } else {
            // Batch sharding: per-sample outputs are independent, so any
            // thread count yields bitwise-identical results.
            telemetry::counter("nn.conv.batch_shards", shards as u64);
            crossbeam::thread::scope(|scope| {
                for (ci, out_chunk) in out.data_mut().chunks_mut(chunk * sample_len).enumerate() {
                    let forward_sample = &forward_sample;
                    scope.spawn(move |_| {
                        let mut cols = scratch::scratch(rows * positions);
                        for (j, out_sample) in out_chunk.chunks_mut(sample_len).enumerate() {
                            forward_sample(input.sample(ci * chunk + j), &mut cols, out_sample);
                        }
                    });
                }
            })
            .expect("convT forward worker panicked");
        }
        self.cached_input = if train { Some(input.clone()) } else { None };
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let _span = telemetry::span("nn.conv_transpose2d.backward");
        let input = self.cached_input.as_ref().expect("backward before training forward");
        let grid = self.grid(input.h(), input.w());
        assert_eq!(
            grad_out.shape(),
            [input.n(), self.out_c, grid.height, grid.width],
            "grad shape mismatch"
        );
        let positions = input.h() * input.w();
        let rows = grid.patch_rows();
        // Per-sample weight/bias contribution buffers combined with the
        // canonical sample tree — the same determinism contract as
        // `Conv2d::backward` (bitwise invariant to thread count and to
        // power-of-two batch sharding across trainer replicas).
        let mut grad_in = Tensor::zeros(input.shape());
        let plane = grid.height * grid.width;
        let par = Parallelism::current();
        let n_samples = input.n();
        let (shards, chunk) = crate::tuning::batch_plan(par, n_samples);
        let inner = parallel::inner_budget(par, shards, self.in_c * rows * positions);
        let wlen = self.weight.grad.len();
        let in_len = self.in_c * input.h() * input.w();
        let (in_c, out_c) = (self.in_c, self.out_c);
        let mut wbuf = scratch::scratch(n_samples * wlen);
        let mut bbuf = scratch::scratch(n_samples * out_c);
        let weight = &self.weight.value;
        let backward_sample = |s: usize,
                               gcols: &mut [f32],
                               w_slot: &mut [f32],
                               b_slot: &mut [f32],
                               gin_sample: &mut [f32]| {
            let g = grad_out.sample(s);
            gemm::im2col(g, &grid, gcols);
            // Input gradient: gx = W × im2col(g).
            gin_sample.fill(0.0);
            parallel::gemm_acc_with(inner, weight, gcols, in_c, rows, positions, gin_sample);
            // Weight gradient: per-sample gW = x × im2col(g)ᵀ.
            parallel::gemm_a_bt_acc_with(
                inner,
                input.sample(s),
                gcols,
                in_c,
                positions,
                rows,
                w_slot,
            );
            // Bias gradient: per-output-channel sums.
            for c in 0..out_c {
                b_slot[c] = g[c * plane..(c + 1) * plane].iter().sum::<f32>();
            }
        };
        if shards <= 1 {
            let mut gcols = scratch::scratch(rows * positions);
            for s in 0..n_samples {
                backward_sample(
                    s,
                    &mut gcols,
                    &mut wbuf[s * wlen..(s + 1) * wlen],
                    &mut bbuf[s * out_c..(s + 1) * out_c],
                    grad_in.sample_mut(s),
                );
            }
        } else {
            telemetry::counter("nn.conv.batch_shards", shards as u64);
            crossbeam::thread::scope(|scope| {
                for (ci, ((gin_chunk, w_chunk), b_chunk)) in grad_in
                    .data_mut()
                    .chunks_mut(chunk * in_len)
                    .zip(wbuf.chunks_mut(chunk * wlen))
                    .zip(bbuf.chunks_mut(chunk * out_c))
                    .enumerate()
                {
                    let backward_sample = &backward_sample;
                    scope.spawn(move |_| {
                        let mut gcols = scratch::scratch(rows * positions);
                        for (j, gin_sample) in gin_chunk.chunks_mut(in_len).enumerate() {
                            backward_sample(
                                ci * chunk + j,
                                &mut gcols,
                                &mut w_chunk[j * wlen..(j + 1) * wlen],
                                &mut b_chunk[j * out_c..(j + 1) * out_c],
                                gin_sample,
                            );
                        }
                    });
                }
            })
            .expect("convT backward worker panicked");
        }
        if n_samples > 0 {
            reduce::fold_samples(&mut wbuf, n_samples, wlen);
            reduce::fold_samples(&mut bbuf, n_samples, out_c);
            for (d, &c) in self.weight.grad.iter_mut().zip(&wbuf[..wlen]) {
                *d += c;
            }
            for (d, &c) in self.bias.grad.iter_mut().zip(&bbuf[..out_c]) {
                *d += c;
            }
        }
        grad_in
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }

    fn param_names(&self) -> &'static [&'static str] {
        &["weight", "bias"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use crate::layers::Conv2d;

    fn filled_input(shape: [usize; 4]) -> Tensor {
        let len: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..len).map(|i| ((i * 5 % 11) as f32 - 5.0) / 5.0).collect())
    }

    #[test]
    fn doubles_spatial_size_with_4_2_1() {
        let mut up = ConvTranspose2d::new(4, 2, 4, 2, 1, 0);
        let out = up.forward(&Tensor::zeros([1, 4, 3, 5]), false);
        assert_eq!(out.shape(), [1, 2, 6, 10]);
    }

    #[test]
    fn is_adjoint_of_conv() {
        // <conv(x), y> == <x, convT(y)> when both share weights and zero
        // bias. Conv weight [out_c, in_c, k, k]; convT weight
        // [in_c=conv.out_c, out_c=conv.in_c, k, k] — same buffer works
        // because convT(in_c,out_c) flattens identically to
        // conv(out_c,in_c).
        let (cin, cout, k, s, p) = (2usize, 3usize, 3usize, 2usize, 1usize);
        let mut conv = Conv2d::new(cin, cout, k, s, p, 1);
        let mut convt = ConvTranspose2d::new(cout, cin, k, s, p, 2);
        // Share weights: copy conv's into convT.
        let mut w = Vec::new();
        conv.visit_params(&mut |pp| {
            if w.is_empty() {
                w = pp.value.clone();
            } else {
                pp.value.fill(0.0); // zero conv bias
            }
        });
        let mut first = true;
        convt.visit_params(&mut |pp| {
            if first {
                pp.value = w.clone();
                first = false;
            } else {
                pp.value.fill(0.0);
            }
        });
        let x = filled_input([1, cin, 5, 5]);
        let cx = conv.forward(&x, false);
        let y = filled_input(cx.shape());
        let cty = convt.forward(&y, false);
        assert_eq!(cty.shape(), x.shape());
        let lhs: f64 = cx.data().iter().zip(y.data()).map(|(a, b)| (a * b) as f64).sum();
        let rhs: f64 = x.data().iter().zip(cty.data()).map(|(a, b)| (a * b) as f64).sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch {lhs} vs {rhs}");
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut up = ConvTranspose2d::new(3, 2, 4, 2, 1, 11);
        let input = filled_input([2, 3, 3, 3]);
        gradcheck::check_input_gradient(&mut up, &input, 2e-2);
        gradcheck::check_param_gradients(&mut up, &input, 2e-2);
    }

    #[test]
    fn bias_applied_per_channel() {
        let mut up = ConvTranspose2d::new(1, 2, 2, 2, 0, 0);
        up.visit_params(&mut |p| {
            if p.len() == 2 {
                p.value = vec![3.0, -3.0];
            } else {
                p.value.fill(0.0);
            }
        });
        let out = up.forward(&Tensor::zeros([1, 1, 2, 2]), false);
        let plane = out.h() * out.w();
        assert!(out.data()[..plane].iter().all(|&v| v == 3.0));
        assert!(out.data()[plane..].iter().all(|&v| v == -3.0));
    }

    #[test]
    #[should_panic(expected = "backward before training forward")]
    fn backward_requires_forward() {
        let mut up = ConvTranspose2d::new(1, 1, 2, 2, 0, 0);
        up.backward(&Tensor::zeros([1, 1, 2, 2]));
    }
}
