//! Inverted dropout.

use crate::layers::Layer;
use crate::scratch;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: during training, each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; evaluation is
/// the identity. The U-Net's inner decoder blocks use `p = 0.5`.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a
    /// deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1)");
        Dropout { p, rng: StdRng::seed_from_u64(seed ^ 0xd409), mask: None }
    }
}

impl Layer for Dropout {
    fn kind(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        // Masks come from (and return to) the scratch pool, so repeated
        // training steps reuse the same buffer.
        if let Some(old) = self.mask.take() {
            scratch::recycle(old);
        }
        if !train || self.p == 0.0 {
            self.mask = train.then(|| {
                let mut mask = scratch::take_vec(input.len());
                mask.fill(1.0);
                mask
            });
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = scratch::take_vec(input.len());
        for m in &mut mask {
            *m = if self.rng.gen::<f32>() < keep { scale } else { 0.0 };
        }
        let mut out = Tensor::zeros(input.shape());
        for ((d, &x), &m) in out.data_mut().iter_mut().zip(input.data()).zip(&mask) {
            *d = x * m;
        }
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward before training forward");
        assert_eq!(grad_out.len(), mask.len(), "grad shape mismatch");
        let mut out = Tensor::zeros(grad_out.shape());
        for ((d, &g), &m) in out.data_mut().iter_mut().zip(grad_out.data()).zip(mask) {
            *d = g * m;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec([1, 1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn train_zeroes_roughly_p_fraction() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::full([1, 1, 100, 100], 1.0);
        let y = d.forward(&x, true);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!((3500..6500).contains(&zeros), "zeroed {zeros}/10000");
        // Survivors are scaled to preserve the expectation.
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::full([1, 1, 4, 4], 1.0);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::full([1, 1, 4, 4], 1.0));
        // Gradient is zero exactly where the output was zeroed.
        for (o, gi) in y.data().iter().zip(g.data()) {
            assert_eq!(*o == 0.0, *gi == 0.0);
        }
    }

    #[test]
    fn p_zero_passes_through_in_training() {
        let mut d = Dropout::new(0.0, 4);
        let x = Tensor::from_vec([1, 1, 1, 3], vec![1.0, -2.0, 3.0]);
        assert_eq!(d.forward(&x, true), x);
        let g = d.backward(&x);
        assert_eq!(g, x);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn rejects_p_one() {
        Dropout::new(1.0, 0);
    }
}
