//! Inverted dropout.

use crate::layers::Layer;
use crate::replica;
use crate::scratch;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: during training, each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; evaluation is
/// the identity. The U-Net's inner decoder blocks use `p = 0.5`.
///
/// Mask randomness has two modes. Standalone use draws from a seeded
/// `StdRng` stream. Inside a trainer replica context (see
/// [`crate::replica`]) masks are instead *keyed* by
/// `(seed, step nonce, global sample index, element index)` through a
/// splitmix64 hash, so each sample's mask is independent of how the
/// batch was sharded across replicas — a requirement of the
/// replica-count determinism contract.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    seed: u64,
    rng: StdRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a
    /// deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1)");
        Dropout { p, seed: seed ^ 0xd409, rng: StdRng::seed_from_u64(seed ^ 0xd409), mask: None }
    }
}

/// splitmix64: a cheap, statistically solid mixer for keyed masks.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from the top 24 bits of a keyed hash.
fn keyed_uniform(seed: u64, nonce: u64, sample: u64, elem: u64) -> f32 {
    let h = splitmix64(
        seed ^ nonce.wrapping_mul(0xa076_1d64_78bd_642f)
            ^ sample.wrapping_mul(0xe703_7ed1_a0b4_28db)
            ^ elem.wrapping_mul(0x8ebc_6af0_9c88_c6e3),
    );
    (h >> 40) as f32 / (1u64 << 24) as f32
}

impl Layer for Dropout {
    fn kind(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        // Masks come from (and return to) the scratch pool, so repeated
        // training steps reuse the same buffer.
        if let Some(old) = self.mask.take() {
            scratch::recycle(old);
        }
        if !train || self.p == 0.0 {
            self.mask = train.then(|| {
                let mut mask = scratch::take_vec(input.len());
                mask.fill(1.0);
                mask
            });
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = scratch::take_vec(input.len());
        match replica::step_nonce() {
            Some(nonce) => {
                // Sharding-invariant keyed masks: sample `j` of this
                // shard is global sample `base + j`, and its mask
                // depends only on (layer seed, step, global index).
                let sample_len = input.len() / input.n().max(1);
                for (i, m) in mask.iter_mut().enumerate() {
                    let local = i / sample_len.max(1);
                    let s = replica::global_sample(local) as u64;
                    let e = (i % sample_len.max(1)) as u64;
                    *m = if keyed_uniform(self.seed, nonce, s, e) < keep { scale } else { 0.0 };
                }
            }
            None => {
                for m in &mut mask {
                    *m = if self.rng.gen::<f32>() < keep { scale } else { 0.0 };
                }
            }
        }
        let mut out = Tensor::zeros(input.shape());
        for ((d, &x), &m) in out.data_mut().iter_mut().zip(input.data()).zip(&mask) {
            *d = x * m;
        }
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward before training forward");
        assert_eq!(grad_out.len(), mask.len(), "grad shape mismatch");
        let mut out = Tensor::zeros(grad_out.shape());
        for ((d, &g), &m) in out.data_mut().iter_mut().zip(grad_out.data()).zip(mask) {
            *d = g * m;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec([1, 1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn train_zeroes_roughly_p_fraction() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::full([1, 1, 100, 100], 1.0);
        let y = d.forward(&x, true);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!((3500..6500).contains(&zeros), "zeroed {zeros}/10000");
        // Survivors are scaled to preserve the expectation.
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::full([1, 1, 4, 4], 1.0);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::full([1, 1, 4, 4], 1.0));
        // Gradient is zero exactly where the output was zeroed.
        for (o, gi) in y.data().iter().zip(g.data()) {
            assert_eq!(*o == 0.0, *gi == 0.0);
        }
    }

    #[test]
    fn p_zero_passes_through_in_training() {
        let mut d = Dropout::new(0.0, 4);
        let x = Tensor::from_vec([1, 1, 1, 3], vec![1.0, -2.0, 3.0]);
        assert_eq!(d.forward(&x, true), x);
        let g = d.backward(&x);
        assert_eq!(g, x);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn rejects_p_one() {
        Dropout::new(1.0, 0);
    }

    #[test]
    fn keyed_masks_are_shard_invariant() {
        use std::sync::Arc;

        let full = {
            let group = Arc::new(replica::SyncGroup::new(1, 4));
            let _g = replica::install(replica::ReplicaCtx {
                group,
                replica: 0,
                sample_base: 0,
                step_nonce: 9,
            });
            let mut d = Dropout::new(0.5, 7);
            d.forward(&Tensor::full([4, 1, 4, 4], 1.0), true)
        };
        // Same step, but only the shard holding global samples 2..4.
        let shard = {
            let group = Arc::new(replica::SyncGroup::new(1, 2));
            let _g = replica::install(replica::ReplicaCtx {
                group,
                replica: 0,
                sample_base: 2,
                step_nonce: 9,
            });
            let mut d = Dropout::new(0.5, 7);
            d.forward(&Tensor::full([2, 1, 4, 4], 1.0), true)
        };
        assert_eq!(&full.data()[2 * 16..], shard.data(), "masks must not depend on sharding");
        // A different step nonce produces a different mask.
        let other = {
            let group = Arc::new(replica::SyncGroup::new(1, 4));
            let _g = replica::install(replica::ReplicaCtx {
                group,
                replica: 0,
                sample_base: 0,
                step_nonce: 10,
            });
            let mut d = Dropout::new(0.5, 7);
            d.forward(&Tensor::full([4, 1, 4, 4], 1.0), true)
        };
        assert_ne!(full.data(), other.data());
    }

    #[test]
    fn keyed_masks_zero_roughly_p_fraction() {
        use std::sync::Arc;

        let group = Arc::new(replica::SyncGroup::new(1, 1));
        let _g = replica::install(replica::ReplicaCtx {
            group,
            replica: 0,
            sample_base: 0,
            step_nonce: 3,
        });
        let mut d = Dropout::new(0.5, 2);
        let y = d.forward(&Tensor::full([1, 1, 100, 100], 1.0), true);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!((3500..6500).contains(&zeros), "zeroed {zeros}/10000");
    }
}
