//! Fully connected layer.

use crate::init::Initializer;
use crate::layers::Layer;
use crate::param::Param;
use crate::tensor::Tensor;
use crate::{parallel, reduce, scratch};
use cachebox_telemetry as telemetry;

/// A fully connected layer over `[n, in_features, 1, 1]` tensors.
///
/// CB-GAN uses three of these to embed the numeric cache parameters
/// (sets, ways) before concatenating them onto the U-Net bottleneck.
#[derive(Debug)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Param, // [out, in]
    bias: Param,   // [out]
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-normal weights.
    ///
    /// # Panics
    ///
    /// Panics if a feature count is zero.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        assert!(in_features > 0 && out_features > 0, "feature counts must be non-zero");
        let mut init = Initializer::new(seed ^ 0x11ea);
        Linear {
            in_features,
            out_features,
            weight: Param::new(init.linear_weights(in_features, out_features * in_features)),
            bias: Param::zeros(out_features),
            cached_input: None,
        }
    }
}

impl Layer for Linear {
    fn kind(&self) -> &'static str {
        "linear"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let _span = telemetry::span("nn.linear.forward");
        assert_eq!(input.c() * input.h() * input.w(), self.in_features, "input feature mismatch");
        let n = input.n();
        let mut out = Tensor::zeros([n, self.out_features, 1, 1]);
        // out[n, o] = Σ_i x[n, i] * W[o, i] + b[o]  ⇔  out = x × Wᵀ.
        parallel::gemm_a_bt_acc(
            input.data(),
            &self.weight.value,
            n,
            self.in_features,
            self.out_features,
            out.data_mut(),
        );
        for ni in 0..n {
            let row = &mut out.sample_mut(ni)[..];
            for (o, b) in row.iter_mut().zip(&self.bias.value) {
                *o += b;
            }
        }
        self.cached_input = if train { Some(input.clone()) } else { None };
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let _span = telemetry::span("nn.linear.backward");
        let input = self.cached_input.as_ref().expect("backward before training forward");
        let n = input.n();
        assert_eq!(grad_out.shape(), [n, self.out_features, 1, 1], "grad shape mismatch");
        // gW[o, i] += Σ_n g[n, o] x[n, i], reduced over samples with the
        // canonical tree so the result is invariant to batch sharding
        // (see crate::reduce). The per-sample term is an outer product;
        // this layer is tiny (the cache-parameter head), so an explicit
        // loop costs nothing next to the conv stacks.
        let wlen = self.out_features * self.in_features;
        let mut wbuf = scratch::scratch(n * wlen);
        let mut bbuf = scratch::scratch(n * self.out_features);
        for ni in 0..n {
            let g = grad_out.sample(ni);
            let x = input.sample(ni);
            let wrow = &mut wbuf[ni * wlen..(ni + 1) * wlen];
            for (o, &go) in g.iter().enumerate() {
                for (i, &xi) in x.iter().enumerate() {
                    wrow[o * self.in_features + i] = go * xi;
                }
            }
            bbuf[ni * self.out_features..(ni + 1) * self.out_features].copy_from_slice(g);
        }
        if n > 0 {
            reduce::fold_samples(&mut wbuf, n, wlen);
            reduce::fold_samples(&mut bbuf, n, self.out_features);
            for (gw, w) in self.weight.grad.iter_mut().zip(&wbuf[..wlen]) {
                *gw += w;
            }
            for (gb, b) in self.bias.grad.iter_mut().zip(&bbuf[..self.out_features]) {
                *gb += b;
            }
        }
        // gx = g × W.
        let mut grad_in = Tensor::zeros(input.shape());
        parallel::gemm_acc(
            grad_out.data(),
            &self.weight.value,
            n,
            self.out_features,
            self.in_features,
            grad_in.data_mut(),
        );
        grad_in
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }

    fn param_names(&self) -> &'static [&'static str] {
        &["weight", "bias"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn forward_known_values() {
        let mut l = Linear::new(2, 2, 0);
        l.visit_params(&mut |p| {
            if p.len() == 4 {
                p.value = vec![1.0, 2.0, 3.0, 4.0]; // W = [[1,2],[3,4]]
            } else {
                p.value = vec![10.0, 20.0];
            }
        });
        let x = Tensor::from_vec([1, 2, 1, 1], vec![1.0, 1.0]);
        let y = l.forward(&x, false);
        assert_eq!(y.data(), &[13.0, 27.0]);
    }

    #[test]
    fn accepts_flattened_spatial_input() {
        let mut l = Linear::new(8, 3, 1);
        let x = Tensor::zeros([2, 2, 2, 2]);
        let y = l.forward(&x, false);
        assert_eq!(y.shape(), [2, 3, 1, 1]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut l = Linear::new(3, 4, 5);
        let x = Tensor::from_vec([2, 3, 1, 1], vec![0.1, -0.4, 0.8, 1.2, -0.2, 0.3]);
        gradcheck::check_input_gradient(&mut l, &x, 1e-2);
        gradcheck::check_param_gradients(&mut l, &x, 1e-2);
    }

    #[test]
    fn param_count() {
        assert_eq!(Linear::new(3, 4, 0).param_count(), 16);
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn validates_input_features() {
        Linear::new(3, 2, 0).forward(&Tensor::zeros([1, 4, 1, 1]), false);
    }
}
