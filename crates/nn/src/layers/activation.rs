//! Element-wise activation layers.

use crate::layers::Layer;
use crate::tensor::Tensor;

/// Rectified linear unit: `max(0, x)`.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn kind(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out =
            Tensor::from_vec(input.shape(), input.data().iter().map(|&v| v.max(0.0)).collect());
        self.mask = train.then(|| input.data().iter().map(|&v| v > 0.0).collect());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward before training forward");
        assert_eq!(grad_out.len(), mask.len(), "grad shape mismatch");
        Tensor::from_vec(
            grad_out.shape(),
            grad_out.data().iter().zip(mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect(),
        )
    }
}

/// Leaky ReLU: `x` for positive inputs, `slope * x` otherwise.
/// CB-GAN's encoder and discriminator use slope 0.2.
#[derive(Debug)]
pub struct LeakyRelu {
    slope: f32,
    mask: Option<Vec<bool>>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative slope.
    pub fn new(slope: f32) -> Self {
        LeakyRelu { slope, mask: None }
    }
}

impl Default for LeakyRelu {
    fn default() -> Self {
        LeakyRelu::new(0.2)
    }
}

impl Layer for LeakyRelu {
    fn kind(&self) -> &'static str {
        "leaky_relu"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let slope = self.slope;
        let out = Tensor::from_vec(
            input.shape(),
            input.data().iter().map(|&v| if v > 0.0 { v } else { slope * v }).collect(),
        );
        self.mask = train.then(|| input.data().iter().map(|&v| v > 0.0).collect());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward before training forward");
        assert_eq!(grad_out.len(), mask.len(), "grad shape mismatch");
        let slope = self.slope;
        Tensor::from_vec(
            grad_out.shape(),
            grad_out
                .data()
                .iter()
                .zip(mask)
                .map(|(&g, &m)| if m { g } else { slope * g })
                .collect(),
        )
    }
}

/// Hyperbolic tangent; the generator's output activation.
#[derive(Debug, Default)]
pub struct Tanh {
    output: Option<Vec<f32>>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn kind(&self) -> &'static str {
        "tanh"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let data: Vec<f32> = input.data().iter().map(|&v| v.tanh()).collect();
        self.output = train.then(|| data.clone());
        Tensor::from_vec(input.shape(), data)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let out = self.output.as_ref().expect("backward before training forward");
        assert_eq!(grad_out.len(), out.len(), "grad shape mismatch");
        Tensor::from_vec(
            grad_out.shape(),
            grad_out.data().iter().zip(out).map(|(&g, &y)| g * (1.0 - y * y)).collect(),
        )
    }
}

/// Logistic sigmoid.
#[derive(Debug, Default)]
pub struct Sigmoid {
    output: Option<Vec<f32>>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid::default()
    }
}

impl Layer for Sigmoid {
    fn kind(&self) -> &'static str {
        "sigmoid"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let data: Vec<f32> = input.data().iter().map(|&v| 1.0 / (1.0 + (-v).exp())).collect();
        self.output = train.then(|| data.clone());
        Tensor::from_vec(input.shape(), data)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let out = self.output.as_ref().expect("backward before training forward");
        assert_eq!(grad_out.len(), out.len(), "grad shape mismatch");
        Tensor::from_vec(
            grad_out.shape(),
            grad_out.data().iter().zip(out).map(|(&g, &y)| g * y * (1.0 - y)).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    fn input() -> Tensor {
        Tensor::from_vec([1, 1, 2, 3], vec![-2.0, -0.5, 0.0, 0.5, 1.0, 2.0])
    }

    #[test]
    fn relu_values() {
        let out = Relu::new().forward(&input(), false);
        assert_eq!(out.data(), &[0.0, 0.0, 0.0, 0.5, 1.0, 2.0]);
    }

    #[test]
    fn leaky_relu_values() {
        let out = LeakyRelu::new(0.2).forward(&input(), false);
        assert_eq!(out.data(), &[-0.4, -0.1, 0.0, 0.5, 1.0, 2.0]);
    }

    #[test]
    fn tanh_and_sigmoid_ranges() {
        let t = Tanh::new().forward(&input(), false);
        assert!(t.data().iter().all(|v| (-1.0..=1.0).contains(v)));
        let s = Sigmoid::new().forward(&input(), false);
        assert!(s.data().iter().all(|v| (0.0..=1.0).contains(v)));
        assert!((s.data()[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Avoid the ReLU kink at 0 by offsetting inputs.
        let x = Tensor::from_vec([1, 1, 2, 3], vec![-2.0, -0.6, 0.1, 0.5, 1.0, 2.0]);
        gradcheck::check_input_gradient(&mut Relu::new(), &x, 1e-2);
        gradcheck::check_input_gradient(&mut LeakyRelu::new(0.2), &x, 1e-2);
        gradcheck::check_input_gradient(&mut Tanh::new(), &x, 1e-2);
        gradcheck::check_input_gradient(&mut Sigmoid::new(), &x, 1e-2);
    }

    #[test]
    fn activations_have_no_params() {
        assert_eq!(Relu::new().param_count(), 0);
        assert_eq!(Tanh::new().param_count(), 0);
    }
}
