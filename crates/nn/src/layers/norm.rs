//! Normalization layers.

use crate::layers::Layer;
use crate::param::Param;
use crate::replica;
use crate::tensor::Tensor;
use cachebox_telemetry as telemetry;

const EPS: f32 = 1e-5;

/// Batch normalization over `(N, H, W)` per channel, with affine
/// parameters and running statistics for evaluation mode.
///
/// # Example
///
/// ```
/// use cachebox_nn::{Tensor, layers::{BatchNorm2d, Layer}};
///
/// let mut bn = BatchNorm2d::new(2);
/// let x = Tensor::from_vec([2, 2, 1, 1], vec![1.0, 10.0, 3.0, 30.0]);
/// let y = bn.forward(&x, true);
/// // Each channel is normalized to zero mean.
/// assert!((y.at(0, 0, 0, 0) + y.at(1, 0, 0, 0)).abs() < 1e-5);
/// ```
#[derive(Debug)]
pub struct BatchNorm2d {
    channels: usize,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    normalized: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a batch norm over `channels` channels (γ=1, β=0).
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channels must be non-zero");
        BatchNorm2d {
            channels,
            gamma: Param::new(vec![1.0; channels]),
            beta: Param::zeros(channels),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            cache: None,
        }
    }

    /// The number of samples the statistics cover: the *global* batch
    /// when this thread is part of a replica group, the local batch
    /// otherwise.
    fn global_n(local_n: usize) -> usize {
        replica::current().map_or(local_n, |ctx| ctx.group.total_samples())
    }

    /// Batch statistics over the global batch. Per-sample per-channel
    /// subtotals are combined with the canonical sample tree — through
    /// the replica rendezvous when sharded — so training is batch-norm
    /// synchronous: every replica sees the same statistics the
    /// unsharded run computes, bitwise.
    fn channel_stats(&self, input: &Tensor) -> (Vec<f32>, Vec<f32>) {
        let [n, c, h, w] = input.shape();
        let m = (Self::global_n(n) * h * w) as f32;
        let plane = h * w;
        // Round 1: per-channel sums → global mean.
        let sum_rows: Vec<Vec<f32>> = (0..n)
            .map(|ni| {
                let s = input.sample(ni);
                (0..c).map(|ci| s[ci * plane..(ci + 1) * plane].iter().sum::<f32>()).collect()
            })
            .collect();
        let refs: Vec<&[f32]> = sum_rows.iter().map(|r| r.as_slice()).collect();
        let mut mean = replica::reduce_samples(&refs);
        for v in &mut mean {
            *v /= m;
        }
        // Round 2: per-channel squared deviations from the global mean.
        let dev_rows: Vec<Vec<f32>> = (0..n)
            .map(|ni| {
                let s = input.sample(ni);
                (0..c)
                    .map(|ci| {
                        let mu = mean[ci];
                        s[ci * plane..(ci + 1) * plane]
                            .iter()
                            .map(|&x| (x - mu) * (x - mu))
                            .sum::<f32>()
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[f32]> = dev_rows.iter().map(|r| r.as_slice()).collect();
        let mut var = replica::reduce_samples(&refs);
        for v in &mut var {
            *v /= m;
        }
        (mean, var)
    }
}

impl Layer for BatchNorm2d {
    fn kind(&self) -> &'static str {
        "batch_norm2d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let _span = telemetry::span("nn.batch_norm2d.forward");
        assert_eq!(input.c(), self.channels, "channel mismatch");
        let [n, c, h, w] = input.shape();
        let plane = h * w;
        let (mean, var) = if train {
            let (mean, var) = self.channel_stats(input);
            for ci in 0..c {
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean[ci];
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var[ci];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + EPS).sqrt()).collect();
        let mut normalized = Tensor::zeros(input.shape());
        let mut out = Tensor::zeros(input.shape());
        for ni in 0..n {
            let src = input.sample(ni);
            let dst_norm = normalized.sample_mut(ni);
            for ci in 0..c {
                let (mu, is) = (mean[ci], inv_std[ci]);
                for i in ci * plane..(ci + 1) * plane {
                    dst_norm[i] = (src[i] - mu) * is;
                }
            }
        }
        for ni in 0..n {
            let xn = normalized.sample(ni);
            let dst = out.sample_mut(ni);
            for ci in 0..c {
                let (g, b) = (self.gamma.value[ci], self.beta.value[ci]);
                for i in ci * plane..(ci + 1) * plane {
                    dst[i] = g * xn[i] + b;
                }
            }
        }
        self.cache = train.then_some(BnCache { normalized, inv_std });
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let _span = telemetry::span("nn.batch_norm2d.backward");
        let cache = self.cache.as_ref().expect("backward before training forward");
        let [n, c, h, w] = grad_out.shape();
        assert_eq!(cache.normalized.shape(), grad_out.shape(), "grad shape mismatch");
        let plane = h * w;
        let m = (Self::global_n(n) * h * w) as f32;
        // Per-channel reductions over the global batch: per-sample
        // `(Σg, Σg·x̂)` subtotals packed as one `2c` row, combined with
        // the canonical sample tree (through the replica rendezvous
        // when the batch is sharded).
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|ni| {
                let g = grad_out.sample(ni);
                let xn = cache.normalized.sample(ni);
                let mut row = vec![0.0f32; 2 * c];
                for ci in 0..c {
                    let (mut sg, mut sgx) = (0.0f32, 0.0f32);
                    for i in ci * plane..(ci + 1) * plane {
                        sg += g[i];
                        sgx += g[i] * xn[i];
                    }
                    row[ci] = sg;
                    row[c + ci] = sgx;
                }
                row
            })
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let global = replica::reduce_samples(&refs);
        let (sum_g, sum_gx) = global.split_at(c);
        // γ/β gradients are batch-global sums, identical on every
        // replica; only the lead replica applies them so the fixed-order
        // replica reduction counts them exactly once.
        if replica::is_lead_replica() {
            for ci in 0..c {
                self.beta.grad[ci] += sum_g[ci];
                self.gamma.grad[ci] += sum_gx[ci];
            }
        }
        let mut grad_in = Tensor::zeros(grad_out.shape());
        for ni in 0..n {
            let g = grad_out.sample(ni);
            let xn = cache.normalized.sample(ni);
            let dst = grad_in.sample_mut(ni);
            for ci in 0..c {
                let scale = self.gamma.value[ci] * cache.inv_std[ci];
                let mg = sum_g[ci] / m;
                let mgx = sum_gx[ci] / m;
                for i in ci * plane..(ci + 1) * plane {
                    dst[i] = scale * (g[i] - mg - xn[i] * mgx);
                }
            }
        }
        grad_in
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.gamma);
        visitor(&mut self.beta);
    }

    fn param_names(&self) -> &'static [&'static str] {
        &["gamma", "beta"]
    }

    fn visit_buffers(&mut self, visitor: &mut dyn FnMut(&mut Vec<f32>)) {
        visitor(&mut self.running_mean);
        visitor(&mut self.running_var);
    }

    fn buffer_names(&self) -> &'static [&'static str] {
        &["running_mean", "running_var"]
    }
}

/// Instance normalization: like batch norm but statistics are computed
/// per `(sample, channel)` over `(H, W)` only, with no running state.
#[derive(Debug)]
pub struct InstanceNorm2d {
    channels: usize,
    gamma: Param,
    beta: Param,
    cache: Option<InCache>,
}

#[derive(Debug)]
struct InCache {
    normalized: Tensor,
    inv_std: Vec<f32>, // per (n, c)
}

impl InstanceNorm2d {
    /// Creates an instance norm over `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channels must be non-zero");
        InstanceNorm2d {
            channels,
            gamma: Param::new(vec![1.0; channels]),
            beta: Param::zeros(channels),
            cache: None,
        }
    }
}

impl Layer for InstanceNorm2d {
    fn kind(&self) -> &'static str {
        "instance_norm2d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let _span = telemetry::span("nn.instance_norm2d.forward");
        assert_eq!(input.c(), self.channels, "channel mismatch");
        let [n, c, h, w] = input.shape();
        let plane = (h * w) as f32;
        let mut normalized = Tensor::zeros(input.shape());
        let mut inv_std = vec![0.0f32; n * c];
        for ni in 0..n {
            let src = input.sample(ni);
            let dst = normalized.sample_mut(ni);
            for ci in 0..c {
                let s = &src[ci * (h * w)..(ci + 1) * (h * w)];
                let mu = s.iter().sum::<f32>() / plane;
                let var = s.iter().map(|&x| (x - mu) * (x - mu)).sum::<f32>() / plane;
                let is = 1.0 / (var + EPS).sqrt();
                inv_std[ni * c + ci] = is;
                for (d, &x) in dst[ci * (h * w)..(ci + 1) * (h * w)].iter_mut().zip(s) {
                    *d = (x - mu) * is;
                }
            }
        }
        let mut out = Tensor::zeros(input.shape());
        for ni in 0..n {
            let xn = normalized.sample(ni);
            let dst = out.sample_mut(ni);
            for ci in 0..c {
                let (g, b) = (self.gamma.value[ci], self.beta.value[ci]);
                for i in ci * (h * w)..(ci + 1) * (h * w) {
                    dst[i] = g * xn[i] + b;
                }
            }
        }
        self.cache = train.then_some(InCache { normalized, inv_std });
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let _span = telemetry::span("nn.instance_norm2d.backward");
        let cache = self.cache.as_ref().expect("backward before training forward");
        let [n, c, h, w] = grad_out.shape();
        assert_eq!(cache.normalized.shape(), grad_out.shape(), "grad shape mismatch");
        let plane = h * w;
        let m = plane as f32;
        let mut grad_in = Tensor::zeros(grad_out.shape());
        // Statistics are per-sample, but γ/β gradients still sum over
        // the batch; collect per-sample subtotals and combine them with
        // the canonical sample tree so sharded training matches the
        // unsharded run bitwise.
        let mut rows: Vec<Vec<f32>> = Vec::with_capacity(n);
        for ni in 0..n {
            let g = grad_out.sample(ni);
            let xn = cache.normalized.sample(ni);
            let dst = grad_in.sample_mut(ni);
            let mut row = vec![0.0f32; 2 * c];
            for ci in 0..c {
                let range = ci * plane..(ci + 1) * plane;
                let mut sum_g = 0.0;
                let mut sum_gx = 0.0;
                for i in range.clone() {
                    sum_g += g[i];
                    sum_gx += g[i] * xn[i];
                }
                row[ci] = sum_g;
                row[c + ci] = sum_gx;
                let scale = self.gamma.value[ci] * cache.inv_std[ni * c + ci];
                let (mg, mgx) = (sum_g / m, sum_gx / m);
                for i in range {
                    dst[i] = scale * (g[i] - mg - xn[i] * mgx);
                }
            }
            rows.push(row);
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let global = replica::reduce_samples(&refs);
        if replica::is_lead_replica() {
            let (sum_g, sum_gx) = global.split_at(c);
            for ci in 0..c {
                self.beta.grad[ci] += sum_g[ci];
                self.gamma.grad[ci] += sum_gx[ci];
            }
        }
        grad_in
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.gamma);
        visitor(&mut self.beta);
    }

    fn param_names(&self) -> &'static [&'static str] {
        &["gamma", "beta"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    fn input() -> Tensor {
        let data: Vec<f32> = (0..24).map(|i| ((i * 11 % 17) as f32 - 8.0) / 4.0).collect();
        Tensor::from_vec([2, 3, 2, 2], data)
    }

    #[test]
    fn batchnorm_normalizes_each_channel() {
        let mut bn = BatchNorm2d::new(3);
        let y = bn.forward(&input(), true);
        let [n, c, h, w] = y.shape();
        for ci in 0..c {
            let mut vals = Vec::new();
            for ni in 0..n {
                for hi in 0..h {
                    for wi in 0..w {
                        vals.push(y.at(ni, ci, hi, wi));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-5, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "channel {ci} var {var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(3);
        // Train repeatedly on the same batch so running stats converge.
        for _ in 0..200 {
            bn.forward(&input(), true);
        }
        let train_out = bn.forward(&input(), true);
        let eval_out = bn.forward(&input(), false);
        for (a, b) in train_out.data().iter().zip(eval_out.data()) {
            assert!((a - b).abs() < 0.05, "train {a} vs eval {b}");
        }
    }

    #[test]
    fn batchnorm_gradients() {
        let mut bn = BatchNorm2d::new(3);
        gradcheck::check_input_gradient(&mut bn, &input(), 3e-2);
        gradcheck::check_param_gradients(&mut bn, &input(), 3e-2);
    }

    #[test]
    fn instancenorm_normalizes_per_sample() {
        let mut inorm = InstanceNorm2d::new(3);
        let y = inorm.forward(&input(), true);
        let [n, c, h, w] = y.shape();
        for ni in 0..n {
            for ci in 0..c {
                let mut vals = Vec::new();
                for hi in 0..h {
                    for wi in 0..w {
                        vals.push(y.at(ni, ci, hi, wi));
                    }
                }
                let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
                assert!(mean.abs() < 1e-5, "sample {ni} channel {ci} mean {mean}");
            }
        }
    }

    #[test]
    fn instancenorm_gradients() {
        let mut inorm = InstanceNorm2d::new(3);
        gradcheck::check_input_gradient(&mut inorm, &input(), 3e-2);
        gradcheck::check_param_gradients(&mut inorm, &input(), 3e-2);
    }

    #[test]
    fn param_counts() {
        assert_eq!(BatchNorm2d::new(4).param_count(), 8);
        assert_eq!(InstanceNorm2d::new(4).param_count(), 8);
    }
}
