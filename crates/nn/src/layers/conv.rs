//! 2-D convolution.

use crate::gemm::{self, PatchGrid};
use crate::init::Initializer;
use crate::layers::Layer;
use crate::parallel::{self, Parallelism};
use crate::param::Param;
use crate::tensor::Tensor;
use crate::{reduce, scratch};
use cachebox_telemetry as telemetry;

/// A 2-D convolution with square kernel, stride, and zero padding.
///
/// Weights are laid out `[out_c, in_c, k, k]` (flattened) and initialized
/// `N(0, 0.02²)` as in Pix2Pix. The forward pass lowers to GEMM over an
/// im2col patch matrix.
///
/// # Example
///
/// ```
/// use cachebox_nn::{Tensor, layers::{Conv2d, Layer}};
///
/// // CB-GAN's down-sampling block shape: kernel 4, stride 2, pad 1.
/// let mut conv = Conv2d::new(1, 8, 4, 2, 1, 0);
/// let out = conv.forward(&Tensor::zeros([2, 1, 16, 16]), false);
/// assert_eq!(out.shape(), [2, 8, 8, 8]);
/// ```
#[derive(Debug)]
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution; `seed` drives weight initialization.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        assert!(in_c > 0 && out_c > 0 && kernel > 0 && stride > 0, "invalid conv dimensions");
        let mut init = Initializer::new(seed ^ 0xc04f);
        Conv2d {
            in_c,
            out_c,
            kernel,
            stride,
            pad,
            weight: Param::new(init.conv_weights(out_c * in_c * kernel * kernel)),
            bias: Param::zeros(out_c),
            cached_input: None,
        }
    }

    fn grid(&self, h: usize, w: usize) -> PatchGrid {
        PatchGrid {
            channels: self.in_c,
            height: h,
            width: w,
            kernel: self.kernel,
            stride: self.stride,
            pad: self.pad,
        }
    }

    /// Output spatial size for an input of `h × w`.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        let g = self.grid(h, w);
        (g.out_h(), g.out_w())
    }
}

impl Layer for Conv2d {
    fn kind(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let _span = telemetry::span("nn.conv2d.forward");
        assert_eq!(input.c(), self.in_c, "input channel mismatch");
        let grid = self.grid(input.h(), input.w());
        let (oh, ow) = (grid.out_h(), grid.out_w());
        let positions = oh * ow;
        let rows = grid.patch_rows();
        telemetry::counter(
            "nn.im2col.bytes",
            (input.n() * rows * positions * std::mem::size_of::<f32>()) as u64,
        );
        let mut out = Tensor::zeros([input.n(), self.out_c, oh, ow]);
        let par = Parallelism::current();
        let (shards, chunk) = crate::tuning::batch_plan(par, input.n());
        let inner = parallel::inner_budget(par, shards, self.out_c * rows * positions);
        let sample_len = self.out_c * positions;
        let forward_sample = |sample: &[f32], cols: &mut [f32], out_sample: &mut [f32]| {
            gemm::im2col(sample, &grid, cols);
            parallel::gemm_with(
                inner,
                &self.weight.value,
                cols,
                self.out_c,
                rows,
                positions,
                out_sample,
            );
            for c in 0..self.out_c {
                let b = self.bias.value[c];
                for v in &mut out_sample[c * positions..(c + 1) * positions] {
                    *v += b;
                }
            }
        };
        if shards <= 1 {
            let mut cols = scratch::scratch(rows * positions);
            for n in 0..input.n() {
                forward_sample(input.sample(n), &mut cols, out.sample_mut(n));
            }
        } else {
            // Batch sharding: each worker owns a contiguous run of samples.
            // Every sample's output is produced by the exact same operations
            // as in the serial loop, so results are bitwise identical for
            // any thread count.
            telemetry::counter("nn.conv.batch_shards", shards as u64);
            crossbeam::thread::scope(|scope| {
                for (ci, out_chunk) in out.data_mut().chunks_mut(chunk * sample_len).enumerate() {
                    let forward_sample = &forward_sample;
                    scope.spawn(move |_| {
                        let mut cols = scratch::scratch(rows * positions);
                        for (j, out_sample) in out_chunk.chunks_mut(sample_len).enumerate() {
                            forward_sample(input.sample(ci * chunk + j), &mut cols, out_sample);
                        }
                    });
                }
            })
            .expect("conv forward worker panicked");
        }
        self.cached_input = if train { Some(input.clone()) } else { None };
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let _span = telemetry::span("nn.conv2d.backward");
        let input = self.cached_input.as_ref().expect("backward before training forward");
        let grid = self.grid(input.h(), input.w());
        let (oh, ow) = (grid.out_h(), grid.out_w());
        assert_eq!(grad_out.shape(), [input.n(), self.out_c, oh, ow], "grad shape mismatch");
        let positions = oh * ow;
        let rows = grid.patch_rows();
        telemetry::counter(
            "nn.im2col.bytes",
            (input.n() * rows * positions * std::mem::size_of::<f32>()) as u64,
        );
        // Input gradients are per-sample independent. Weight/bias
        // gradients are accumulated into per-SAMPLE zero-initialised
        // buffers and combined with the canonical recursive-halving
        // tree (`crate::reduce`): the result is bitwise identical for
        // any thread count AND for any power-of-two sharding of the
        // batch across trainer replicas, because each shard's partial
        // is a subtree value of the same tree.
        let mut grad_in = Tensor::zeros(input.shape());
        let par = Parallelism::current();
        let n_samples = input.n();
        let (shards, chunk) = crate::tuning::batch_plan(par, n_samples);
        let inner = parallel::inner_budget(par, shards, self.out_c * rows * positions);
        let wlen = self.weight.grad.len();
        let in_len = self.in_c * input.h() * input.w();
        let out_c = self.out_c;
        let mut wbuf = scratch::scratch(n_samples * wlen);
        let mut bbuf = scratch::scratch(n_samples * out_c);
        let weight = &self.weight.value;
        let backward_sample = |s: usize,
                               cols: &mut [f32],
                               gcols: &mut [f32],
                               w_slot: &mut [f32],
                               b_slot: &mut [f32],
                               gin_sample: &mut [f32]| {
            let g = grad_out.sample(s);
            // Weight gradient: per-sample gW = g × colsᵀ.
            gemm::im2col(input.sample(s), &grid, cols);
            parallel::gemm_a_bt_acc_with(inner, g, cols, out_c, positions, rows, w_slot);
            // Bias gradient: per-channel sums.
            for c in 0..out_c {
                b_slot[c] = g[c * positions..(c + 1) * positions].iter().sum::<f32>();
            }
            // Input gradient: col2im(Wᵀ × g).
            gcols.fill(0.0);
            parallel::gemm_at_b_acc_with(inner, weight, g, rows, out_c, positions, gcols);
            gemm::col2im(gcols, &grid, gin_sample);
        };
        if shards <= 1 {
            let mut cols = scratch::scratch(rows * positions);
            let mut gcols = scratch::scratch(rows * positions);
            for s in 0..n_samples {
                backward_sample(
                    s,
                    &mut cols,
                    &mut gcols,
                    &mut wbuf[s * wlen..(s + 1) * wlen],
                    &mut bbuf[s * out_c..(s + 1) * out_c],
                    grad_in.sample_mut(s),
                );
            }
        } else {
            telemetry::counter("nn.conv.batch_shards", shards as u64);
            crossbeam::thread::scope(|scope| {
                for (ci, ((gin_chunk, w_chunk), b_chunk)) in grad_in
                    .data_mut()
                    .chunks_mut(chunk * in_len)
                    .zip(wbuf.chunks_mut(chunk * wlen))
                    .zip(bbuf.chunks_mut(chunk * out_c))
                    .enumerate()
                {
                    let backward_sample = &backward_sample;
                    scope.spawn(move |_| {
                        let mut cols = scratch::scratch(rows * positions);
                        let mut gcols = scratch::scratch(rows * positions);
                        for (j, gin_sample) in gin_chunk.chunks_mut(in_len).enumerate() {
                            backward_sample(
                                ci * chunk + j,
                                &mut cols,
                                &mut gcols,
                                &mut w_chunk[j * wlen..(j + 1) * wlen],
                                &mut b_chunk[j * out_c..(j + 1) * out_c],
                                gin_sample,
                            );
                        }
                    });
                }
            })
            .expect("conv backward worker panicked");
        }
        if n_samples > 0 {
            reduce::fold_samples(&mut wbuf, n_samples, wlen);
            reduce::fold_samples(&mut bbuf, n_samples, out_c);
            for (d, &c) in self.weight.grad.iter_mut().zip(&wbuf[..wlen]) {
                *d += c;
            }
            for (d, &c) in self.bias.grad.iter_mut().zip(&bbuf[..out_c]) {
                *d += c;
            }
        }
        grad_in
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }

    fn param_names(&self) -> &'static [&'static str] {
        &["weight", "bias"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    fn filled_input(shape: [usize; 4]) -> Tensor {
        let len: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..len).map(|i| ((i * 7 % 13) as f32 - 6.0) / 6.0).collect())
    }

    #[test]
    fn output_shape_4_2_1() {
        let mut conv = Conv2d::new(3, 5, 4, 2, 1, 0);
        let out = conv.forward(&Tensor::zeros([2, 3, 8, 8]), false);
        assert_eq!(out.shape(), [2, 5, 4, 4]);
        assert_eq!(conv.output_size(8, 8), (4, 4));
    }

    #[test]
    fn known_convolution_value() {
        // 1 input channel, 1 output channel, 2x2 kernel of ones, stride 1,
        // no pad: each output = sum of the 2x2 patch.
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, 0);
        conv.visit_params(&mut |p| {
            if p.len() == 4 {
                p.value = vec![1.0; 4];
            } else {
                p.value = vec![0.5];
            }
        });
        let input = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let out = conv.forward(&input, false);
        assert_eq!(out.shape(), [1, 1, 1, 1]);
        assert!((out.data()[0] - 10.5).abs() < 1e-6);
    }

    #[test]
    fn bias_broadcasts_per_channel() {
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, 0);
        conv.visit_params(&mut |p| {
            if p.len() == 2 && p.value.iter().all(|&v| v == 0.0) {
                p.value = vec![1.0, -1.0]; // bias
            } else {
                p.value = vec![0.0, 0.0]; // weights zeroed
            }
        });
        let out = conv.forward(&Tensor::zeros([1, 1, 2, 2]), false);
        assert_eq!(&out.data()[..4], &[1.0; 4]);
        assert_eq!(&out.data()[4..], &[-1.0; 4]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, 42);
        let input = filled_input([2, 2, 5, 5]);
        gradcheck::check_input_gradient(&mut conv, &input, 2e-2);
        gradcheck::check_param_gradients(&mut conv, &input, 2e-2);
    }

    #[test]
    fn gradients_with_stride_one_no_pad() {
        let mut conv = Conv2d::new(1, 2, 2, 1, 0, 7);
        let input = filled_input([1, 1, 4, 4]);
        gradcheck::check_input_gradient(&mut conv, &input, 2e-2);
        gradcheck::check_param_gradients(&mut conv, &input, 2e-2);
    }

    #[test]
    #[should_panic(expected = "backward before training forward")]
    fn backward_requires_forward() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, 0);
        conv.backward(&Tensor::zeros([1, 1, 1, 1]));
    }

    #[test]
    fn param_count() {
        let mut conv = Conv2d::new(2, 3, 4, 2, 1, 0);
        assert_eq!(conv.param_count(), 3 * 2 * 16 + 3);
    }
}
