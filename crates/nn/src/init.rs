//! Weight initialization.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic Gaussian sampler (Box–Muller over a seeded PRNG).
#[derive(Debug, Clone)]
pub struct Initializer {
    rng: StdRng,
}

impl Initializer {
    /// Creates an initializer with the given seed.
    pub fn new(seed: u64) -> Self {
        Initializer { rng: StdRng::seed_from_u64(seed) }
    }

    /// Samples one normal value with the given mean and standard
    /// deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        // Box–Muller transform.
        let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        mean + std * z
    }

    /// Fills a buffer with `N(mean, std²)` samples.
    pub fn fill_normal(&mut self, buf: &mut [f32], mean: f32, std: f32) {
        for v in buf {
            *v = self.normal(mean, std);
        }
    }

    /// DCGAN/Pix2Pix convolution init: `N(0, 0.02²)`.
    pub fn conv_weights(&mut self, len: usize) -> Vec<f32> {
        let mut buf = vec![0.0; len];
        self.fill_normal(&mut buf, 0.0, 0.02);
        buf
    }

    /// Kaiming-style init for linear layers: `N(0, sqrt(2/fan_in)²)`.
    pub fn linear_weights(&mut self, fan_in: usize, len: usize) -> Vec<f32> {
        let std = (2.0 / fan_in as f32).sqrt();
        let mut buf = vec![0.0; len];
        self.fill_normal(&mut buf, 0.0, std);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Initializer::new(7);
        let mut b = Initializer::new(7);
        let va: Vec<f32> = (0..10).map(|_| a.normal(0.0, 1.0)).collect();
        let vb: Vec<f32> = (0..10).map(|_| b.normal(0.0, 1.0)).collect();
        assert_eq!(va, vb);
        let mut c = Initializer::new(8);
        let vc: Vec<f32> = (0..10).map(|_| c.normal(0.0, 1.0)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn moments_are_roughly_correct() {
        let mut init = Initializer::new(3);
        let mut buf = vec![0.0; 20_000];
        init.fill_normal(&mut buf, 1.0, 2.0);
        let mean: f32 = buf.iter().sum::<f32>() / buf.len() as f32;
        let var: f32 = buf.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / buf.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn conv_weights_are_small() {
        let mut init = Initializer::new(5);
        let w = init.conv_weights(5000);
        let max = w.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(max < 0.2, "0.02-std weights should stay small, max {max}");
    }
}
