//! Thread-count plumbing and row-partitioned parallel GEMM.
//!
//! Every conv/deconv/linear forward and backward pass lowers to one of
//! the GEMM kernels. This module wraps them in a row-partitioned
//! multithreaded dispatch: the `m` dimension (output rows) is split into
//! contiguous chunks, one crossbeam scoped thread per chunk, each
//! running the serial [`crate::blocked`] auto-dispatch on its slice
//! (which picks the cache-blocked packed kernel for sizable shapes and
//! the naive [`crate::gemm`] kernel for tiny ones). Because every output
//! element is still produced by the same floating-point operations in
//! the same order, the parallel results are bitwise identical to the
//! serial ones — parallelism and blocking change wall-clock time, never
//! numerics (see `docs/KERNELS.md` for the determinism contract).
//!
//! The thread count comes from a process-global [`Parallelism`]
//! (env-var override `CACHEBOX_THREADS`, default
//! `available_parallelism`), and problems below a MAC threshold
//! ([`par_flop_threshold`], override `CACHEBOX_GEMM_THRESHOLD`) run the
//! serial kernel directly so tiny test-scale shapes never pay thread
//! spawn overhead.

use cachebox_telemetry as telemetry;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Records one GEMM dispatch: call count and `2·m·k·n` FLOPs. The
/// multiplies only happen once telemetry is enabled.
fn record_gemm(m: usize, k: usize, n: usize) {
    if telemetry::enabled() {
        telemetry::counter("nn.gemm.calls", 1);
        telemetry::counter("nn.gemm.flops", 2 * (m as u64) * (k as u64) * (n as u64));
    }
}

/// Starts a shard timer on a GEMM worker thread (`None` when disabled).
fn shard_timer() -> Option<std::time::Instant> {
    telemetry::enabled().then(std::time::Instant::now)
}

/// Finishes a shard timer: the elapsed nanoseconds land in the
/// `nn.gemm.shard_ns` histogram. Workers are scoped threads, so their
/// buffers merge when the parallel region ends — the histogram is
/// thread-aware and exposes shard imbalance.
fn record_shard(t0: Option<std::time::Instant>) {
    if let Some(t0) = t0 {
        telemetry::observe("nn.gemm.shard_ns", t0.elapsed().as_nanos() as f64);
    }
}

/// Environment variable overriding the default thread count.
pub const THREADS_ENV_VAR: &str = "CACHEBOX_THREADS";

/// Environment variable overriding [`par_flop_threshold`].
pub const GEMM_THRESHOLD_ENV_VAR: &str = "CACHEBOX_GEMM_THRESHOLD";

/// Floor for the geometry-derived parallel crossover: below ~128 K MACs
/// even zero-cost workers would each get less work than one spawn
/// amortises (the reference host measured ~22 µs per worker pair at
/// ~1.3e10 MAC/s — see `perf_kernels` / `BENCH_kernels.json`).
pub const PAR_THRESHOLD_MIN: usize = 1 << 17;

/// Ceiling for the geometry-derived parallel crossover: past ~8 M MACs
/// the product no longer fits any realistic L2 and splitting always
/// pays, however large the cache claims to be.
pub const PAR_THRESHOLD_MAX: usize = 1 << 23;

/// Derives the serial/parallel crossover from the detected cache
/// geometry: a product whose MAC count is at or below the L2 capacity
/// (in bytes) touches operands that one core can keep cache-resident,
/// so a single thread streams it faster than worker spawns amortise.
/// Clamped to [`PAR_THRESHOLD_MIN`]..[`PAR_THRESHOLD_MAX`]; the
/// conservative 256 KiB-L2 default geometry reproduces the previously
/// hard-coded `1 << 19` crossover exactly (512 KiB L2 ⇒ `1 << 19`
/// measured on the reference host was the same policy at its geometry).
pub fn derive_par_flop_threshold(geo: &crate::geometry::CacheGeometry) -> usize {
    geo.l2.clamp(PAR_THRESHOLD_MIN, PAR_THRESHOLD_MAX)
}

/// The active serial/parallel crossover in MACs (`m·k·n`):
/// `CACHEBOX_GEMM_THRESHOLD` if set to a positive integer, otherwise
/// derived from the detected cache geometry by
/// [`derive_par_flop_threshold`]. Read once and cached for the process.
pub fn par_flop_threshold() -> usize {
    static THRESHOLD: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var(GEMM_THRESHOLD_ENV_VAR)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| derive_par_flop_threshold(crate::geometry::detect()))
    })
}

/// Process-global thread count; `0` means "not yet initialised".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// A worker-thread budget for the parallel kernels and sweeps.
///
/// # Example
///
/// ```
/// use cachebox_nn::parallel::Parallelism;
///
/// let p = Parallelism::new(4);
/// assert_eq!(p.threads(), 4);
/// assert_eq!(Parallelism::serial().threads(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// A budget of exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Parallelism { threads: threads.max(1) }
    }

    /// Single-threaded execution: every kernel runs serially.
    pub fn serial() -> Self {
        Parallelism::new(1)
    }

    /// Reads `CACHEBOX_THREADS` if set to a positive integer, otherwise
    /// falls back to [`std::thread::available_parallelism`].
    pub fn from_env() -> Self {
        if let Ok(v) = std::env::var(THREADS_ENV_VAR) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return Parallelism::new(n);
                }
            }
        }
        Parallelism::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }

    /// The worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Installs this budget as the process-wide default consulted by
    /// [`current`](Parallelism::current) (and therefore by every layer's
    /// GEMM dispatch).
    pub fn install(self) {
        GLOBAL_THREADS.store(self.threads, Ordering::Relaxed);
    }

    /// The installed process-wide budget, initialising it from
    /// [`from_env`](Parallelism::from_env) on first use.
    pub fn current() -> Self {
        let t = GLOBAL_THREADS.load(Ordering::Relaxed);
        if t == 0 {
            let p = Parallelism::from_env();
            p.install();
            p
        } else {
            Parallelism::new(t)
        }
    }

    /// Number of contiguous chunks to split `items` work items into:
    /// never more than the budget, never more than the items.
    pub fn chunk_count(&self, items: usize) -> usize {
        self.threads.min(items).max(1)
    }
}

/// The per-worker GEMM budget when a layer shards its batch across
/// `shards` workers: the leftover threads divided evenly, or fully
/// serial when each worker's product (`macs = m·k·n`) is below the
/// crossover — nested spawns would only add overhead there.
pub fn inner_budget(par: Parallelism, shards: usize, macs: usize) -> Parallelism {
    if macs < par_flop_threshold() {
        return Parallelism::serial();
    }
    Parallelism::new(par.threads() / shards.max(1))
}

/// Splits `len` work items into exactly `min(parts, max(len, 1))`
/// contiguous ranges whose sizes differ by at most one, longest shards
/// first. This is the canonical worker-count-honoring split for
/// *independent* work items (inference shards, sweep jobs, `par_map`
/// chunks) — unlike `reduce::tree_splits` it carries no combining-tree
/// contract, it just balances.
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn balanced_splits(len: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts > 0, "cannot split work across zero workers");
    let parts = parts.min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut splits = Vec::with_capacity(parts);
    let mut lo = 0;
    for i in 0..parts {
        let hi = lo + base + usize::from(i < extra);
        splits.push((lo, hi));
        lo = hi;
    }
    splits
}

/// Maps `f` over `items` on up to `par.threads()` scoped threads,
/// preserving input order in the output. Items are split into
/// contiguous [`balanced_splits`] ranges — exactly `chunk_count` of
/// them, sized within one of each other — so the requested worker
/// count is honored and results are assembled deterministically
/// regardless of scheduling.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let chunks = par.chunk_count(items.len());
    if chunks <= 1 {
        return items.iter().map(&f).collect();
    }
    crossbeam::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = balanced_splits(items.len(), chunks)
            .into_iter()
            .map(|(lo, hi)| {
                let chunk = &items[lo..hi];
                scope.spawn(move |_| chunk.iter().map(f).collect::<Vec<R>>())
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for handle in handles {
            out.extend(handle.join().expect("par_map worker panicked"));
        }
        out
    })
    .expect("par_map scope panicked")
}

/// Rows-per-thread plan for an `m×k×n` product under `par`; `1` means
/// "stay serial" (budget of one, degenerate shape, or below the FLOP
/// threshold when `apply_threshold`).
fn plan(par: Parallelism, m: usize, k: usize, n: usize, apply_threshold: bool) -> usize {
    if par.threads() <= 1 || m < 2 || k == 0 || n == 0 {
        return 1;
    }
    if apply_threshold && m.saturating_mul(k).saturating_mul(n) < par_flop_threshold() {
        return 1;
    }
    par.threads().min(m)
}

/// `out += a × b` with an explicit thread budget (no size threshold).
///
/// # Panics
///
/// Panics if slice lengths do not match the dimensions.
pub fn gemm_acc_with(
    par: Parallelism,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    gemm_acc_planned(par, false, a, b, m, k, n, out);
}

#[allow(clippy::too_many_arguments)]
fn gemm_acc_planned(
    par: Parallelism,
    apply_threshold: bool,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    record_gemm(m, k, n);
    let threads = plan(par, m, k, n, apply_threshold);
    if threads <= 1 {
        return crate::blocked::gemm_acc_auto(a, b, m, k, n, out);
    }
    assert_eq!(a.len(), m * k, "lhs size mismatch");
    assert_eq!(out.len(), m * n, "out size mismatch");
    let rows = m.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (a_chunk, out_chunk) in a.chunks(rows * k).zip(out.chunks_mut(rows * n)) {
            scope.spawn(move |_| {
                let t0 = shard_timer();
                let mi = out_chunk.len() / n;
                crate::blocked::gemm_acc_auto(a_chunk, b, mi, k, n, out_chunk);
                record_shard(t0);
            });
        }
    })
    .expect("gemm worker panicked");
}

/// `out = a × b` with an explicit thread budget (no size threshold).
pub fn gemm_with(
    par: Parallelism,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    out.fill(0.0);
    gemm_acc_with(par, a, b, m, k, n, out);
}

/// `out += aᵀ × b` with an explicit thread budget (no size threshold).
///
/// # Panics
///
/// Panics if slice lengths do not match the dimensions.
pub fn gemm_at_b_acc_with(
    par: Parallelism,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    gemm_at_b_acc_planned(par, false, a, b, m, k, n, out);
}

#[allow(clippy::too_many_arguments)]
fn gemm_at_b_acc_planned(
    par: Parallelism,
    apply_threshold: bool,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    record_gemm(m, k, n);
    let threads = plan(par, m, k, n, apply_threshold);
    if threads <= 1 {
        return crate::blocked::gemm_at_b_acc_rows_auto(a, b, m, k, n, 0, m, out);
    }
    assert_eq!(a.len(), k * m, "lhs size mismatch");
    assert_eq!(out.len(), m * n, "out size mismatch");
    let rows = m.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (ci, out_chunk) in out.chunks_mut(rows * n).enumerate() {
            let i0 = ci * rows;
            let i1 = i0 + out_chunk.len() / n;
            scope.spawn(move |_| {
                let t0 = shard_timer();
                crate::blocked::gemm_at_b_acc_rows_auto(a, b, m, k, n, i0, i1, out_chunk);
                record_shard(t0);
            });
        }
    })
    .expect("gemm worker panicked");
}

/// `out += a × bᵀ` with an explicit thread budget (no size threshold).
///
/// # Panics
///
/// Panics if slice lengths do not match the dimensions.
pub fn gemm_a_bt_acc_with(
    par: Parallelism,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    gemm_a_bt_acc_planned(par, false, a, b, m, k, n, out);
}

#[allow(clippy::too_many_arguments)]
fn gemm_a_bt_acc_planned(
    par: Parallelism,
    apply_threshold: bool,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    record_gemm(m, k, n);
    let threads = plan(par, m, k, n, apply_threshold);
    if threads <= 1 {
        return crate::blocked::gemm_a_bt_acc_auto(a, b, m, k, n, out);
    }
    assert_eq!(a.len(), m * k, "lhs size mismatch");
    assert_eq!(out.len(), m * n, "out size mismatch");
    let rows = m.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (a_chunk, out_chunk) in a.chunks(rows * k).zip(out.chunks_mut(rows * n)) {
            scope.spawn(move |_| {
                let t0 = shard_timer();
                let mi = out_chunk.len() / n;
                crate::blocked::gemm_a_bt_acc_auto(a_chunk, b, mi, k, n, out_chunk);
                record_shard(t0);
            });
        }
    })
    .expect("gemm worker panicked");
}

/// `out += a × b` under the installed global budget, serial below the
/// FLOP threshold. This is what the layer crates call.
pub fn gemm_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    gemm_acc_planned(Parallelism::current(), true, a, b, m, k, n, out);
}

/// `out = a × b` under the installed global budget.
pub fn gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    out.fill(0.0);
    gemm_acc(a, b, m, k, n, out);
}

/// `out += aᵀ × b` under the installed global budget.
pub fn gemm_at_b_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    gemm_at_b_acc_planned(Parallelism::current(), true, a, b, m, k, n, out);
}

/// `out += a × bᵀ` under the installed global budget.
pub fn gemm_a_bt_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    gemm_a_bt_acc_planned(Parallelism::current(), true, a, b, m, k, n, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(len: usize, phase: usize) -> Vec<f32> {
        (0..len).map(|i| (((i * 7 + phase) % 13) as f32 - 6.0) / 6.0).collect()
    }

    #[test]
    fn parallel_gemm_matches_serial_bitwise() {
        let (m, k, n) = (13, 7, 9);
        let a = filled(m * k, 1);
        let b = filled(k * n, 2);
        let mut reference = vec![0.0; m * n];
        crate::gemm::gemm(&a, &b, m, k, n, &mut reference);
        for threads in [2, 3, 4, 8] {
            let mut out = vec![0.0; m * n];
            gemm_with(Parallelism::new(threads), &a, &b, m, k, n, &mut out);
            assert_eq!(reference, out, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_transpose_variants_match_serial_bitwise() {
        let (m, k, n) = (11, 5, 6);
        let at = filled(k * m, 3);
        let bt = filled(n * k, 4);
        let a = filled(m * k, 5);
        let b = filled(k * n, 6);

        let mut ref_atb = vec![0.1; m * n];
        crate::gemm::gemm_at_b_acc(&at, &b, m, k, n, &mut ref_atb);
        let mut ref_abt = vec![0.2; m * n];
        crate::gemm::gemm_a_bt_acc(&a, &bt, m, k, n, &mut ref_abt);

        for threads in [2, 4, 7] {
            let mut out = vec![0.1; m * n];
            gemm_at_b_acc_with(Parallelism::new(threads), &at, &b, m, k, n, &mut out);
            assert_eq!(ref_atb, out, "atb threads = {threads}");
            let mut out = vec![0.2; m * n];
            gemm_a_bt_acc_with(Parallelism::new(threads), &a, &bt, m, k, n, &mut out);
            assert_eq!(ref_abt, out, "abt threads = {threads}");
        }
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let (m, k, n) = (3, 4, 5);
        let a = filled(m * k, 7);
        let b = filled(k * n, 8);
        let mut reference = vec![0.0; m * n];
        crate::gemm::gemm(&a, &b, m, k, n, &mut reference);
        let mut out = vec![0.0; m * n];
        gemm_with(Parallelism::new(16), &a, &b, m, k, n, &mut out);
        assert_eq!(reference, out);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(Parallelism::new(4), &items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_honors_ragged_worker_counts() {
        // 9 items over 4 workers used to round up to 3-item chunks and
        // spawn only 3 workers; balanced_splits yields 3/2/2/2.
        for (items_n, workers) in [(9usize, 4usize), (10, 3), (5, 8), (7, 7)] {
            let items: Vec<usize> = (0..items_n).collect();
            let out = par_map(Parallelism::new(workers), &items, |&x| x + 1);
            assert_eq!(out, (0..items_n).map(|x| x + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn balanced_splits_honor_worker_count_within_one() {
        for len in 0..=20usize {
            for parts in 1..=8usize {
                let splits = balanced_splits(len, parts);
                assert_eq!(splits.len(), parts.min(len.max(1)));
                assert_eq!(splits[0].0, 0);
                assert_eq!(splits.last().unwrap().1, len);
                for w in splits.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "splits must be contiguous");
                }
                let sizes: Vec<usize> = splits.iter().map(|(lo, hi)| hi - lo).collect();
                let max = sizes.iter().max().unwrap();
                let min = sizes.iter().min().unwrap();
                assert!(max - min <= 1, "len={len} parts={parts} sizes={sizes:?}");
            }
        }
    }

    #[test]
    fn par_map_serial_budget() {
        let items = vec![1, 2, 3];
        assert_eq!(par_map(Parallelism::serial(), &items, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn threshold_is_positive_and_defaults_sanely() {
        let t = par_flop_threshold();
        assert!(t > 0);
        if std::env::var(GEMM_THRESHOLD_ENV_VAR).is_err() {
            assert_eq!(t, derive_par_flop_threshold(crate::geometry::detect()));
            assert!((PAR_THRESHOLD_MIN..=PAR_THRESHOLD_MAX).contains(&t));
        }
    }

    #[test]
    fn derived_threshold_tracks_l2_within_clamps() {
        use crate::geometry::{CacheGeometry, DEFAULT_GEOMETRY};
        // The conservative default geometry reproduces the historical
        // 1<<19 constant-era behaviour order of magnitude.
        assert_eq!(derive_par_flop_threshold(&DEFAULT_GEOMETRY), 256 * 1024);
        let tiny = CacheGeometry::parse("L1d:4K,L2:16K").unwrap();
        assert_eq!(derive_par_flop_threshold(&tiny), PAR_THRESHOLD_MIN);
        let huge = CacheGeometry::parse("L1d:1M,L2:64M,L3:256M").unwrap();
        assert_eq!(derive_par_flop_threshold(&huge), PAR_THRESHOLD_MAX);
    }

    #[test]
    fn parallelism_clamps_to_one() {
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert_eq!(Parallelism::serial().chunk_count(10), 1);
        assert_eq!(Parallelism::new(8).chunk_count(3), 3);
    }
}
