//! Small dense matrix kernels: GEMM, im2col, col2im.
//!
//! Convolutions are lowered to matrix multiplication over patch matrices
//! (im2col), the standard CPU strategy. The GEMM uses an i-k-j loop order
//! over contiguous rows so the inner loop auto-vectorizes.

/// `out += a × b` for row-major `a: m×k`, `b: k×n`, `out: m×n`.
///
/// # Panics
///
/// Panics if slice lengths do not match the dimensions.
pub fn gemm_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs size mismatch");
    assert_eq!(b.len(), k * n, "rhs size mismatch");
    assert_eq!(out.len(), m * n, "out size mismatch");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// `out = a × b` (overwrites `out`).
pub fn gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    out.fill(0.0);
    gemm_acc(a, b, m, k, n, out);
}

/// `out += aᵀ × b` for row-major `a: k×m`, `b: k×n`, `out: m×n`.
///
/// # Panics
///
/// Panics if slice lengths do not match the dimensions.
pub fn gemm_at_b_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    gemm_at_b_acc_rows(a, b, m, k, n, 0, m, out);
}

/// The row slice `i0..i1` of the [`gemm_at_b_acc`] product:
/// `out_rows += (aᵀ × b)[i0..i1, :]` for `out_rows: (i1-i0)×n`.
///
/// The accumulation order per output element is identical to
/// [`gemm_at_b_acc`], so partitioned results are bitwise equal to a full
/// serial run — this is the unit the parallel dispatch hands each thread.
///
/// # Panics
///
/// Panics if the row range or slice lengths do not match the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_at_b_acc_rows(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    i0: usize,
    i1: usize,
    out_rows: &mut [f32],
) {
    assert!(i0 <= i1 && i1 <= m, "row range out of bounds");
    assert_eq!(a.len(), k * m, "lhs size mismatch");
    assert_eq!(b.len(), k * n, "rhs size mismatch");
    assert_eq!(out_rows.len(), (i1 - i0) * n, "out size mismatch");
    for p in 0..k {
        let a_row = &a[p * m + i0..p * m + i1];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let out_row = &mut out_rows[i * n..(i + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_pi * b_pj;
            }
        }
    }
}

/// `out += a × bᵀ` for row-major `a: m×k`, `b: n×k`, `out: m×n`.
///
/// # Panics
///
/// Panics if slice lengths do not match the dimensions.
pub fn gemm_a_bt_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs size mismatch");
    assert_eq!(b.len(), n * k, "rhs size mismatch");
    assert_eq!(out.len(), m * n, "out size mismatch");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out[i * n + j] += acc;
        }
    }
}

/// Geometry of a conv patch grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchGrid {
    /// Input channels of the patch source image.
    pub channels: usize,
    /// Source image height.
    pub height: usize,
    /// Source image width.
    pub width: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on every edge.
    pub pad: usize,
}

impl PatchGrid {
    /// Output (patch-grid) height: `(h + 2p - k)/s + 1`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded image.
    pub fn out_h(&self) -> usize {
        assert!(self.height + 2 * self.pad >= self.kernel, "kernel larger than padded input");
        (self.height + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output (patch-grid) width.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded image.
    pub fn out_w(&self) -> usize {
        assert!(self.width + 2 * self.pad >= self.kernel, "kernel larger than padded input");
        (self.width + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Rows of the patch matrix: `channels * kernel²`.
    pub fn patch_rows(&self) -> usize {
        self.channels * self.kernel * self.kernel
    }

    /// Columns of the patch matrix: number of patch positions.
    pub fn positions(&self) -> usize {
        self.out_h() * self.out_w()
    }
}

/// Unfolds one image `[C, H, W]` into a patch matrix
/// `[C*k*k, out_h*out_w]`; out-of-bounds (padding) elements are zero.
///
/// # Panics
///
/// Panics if buffer sizes do not match the grid.
pub fn im2col(image: &[f32], grid: &PatchGrid, cols: &mut [f32]) {
    let (oh, ow) = (grid.out_h(), grid.out_w());
    assert_eq!(image.len(), grid.channels * grid.height * grid.width, "image size mismatch");
    assert_eq!(cols.len(), grid.patch_rows() * oh * ow, "cols size mismatch");
    let positions = oh * ow;
    cols.fill(0.0);
    for c in 0..grid.channels {
        let img_plane = &image[c * grid.height * grid.width..(c + 1) * grid.height * grid.width];
        for kh in 0..grid.kernel {
            for kw in 0..grid.kernel {
                let row = (c * grid.kernel + kh) * grid.kernel + kw;
                let out_row = &mut cols[row * positions..(row + 1) * positions];
                for oy in 0..oh {
                    let iy = (oy * grid.stride + kh) as isize - grid.pad as isize;
                    if iy < 0 || iy >= grid.height as isize {
                        continue;
                    }
                    let src_row = &img_plane[iy as usize * grid.width..];
                    for ox in 0..ow {
                        let ix = (ox * grid.stride + kw) as isize - grid.pad as isize;
                        if ix < 0 || ix >= grid.width as isize {
                            continue;
                        }
                        out_row[oy * ow + ox] = src_row[ix as usize];
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatter-adds a patch matrix back into an image.
///
/// # Panics
///
/// Panics if buffer sizes do not match the grid.
pub fn col2im(cols: &[f32], grid: &PatchGrid, image: &mut [f32]) {
    let (oh, ow) = (grid.out_h(), grid.out_w());
    assert_eq!(image.len(), grid.channels * grid.height * grid.width, "image size mismatch");
    assert_eq!(cols.len(), grid.patch_rows() * oh * ow, "cols size mismatch");
    let positions = oh * ow;
    image.fill(0.0);
    for c in 0..grid.channels {
        let img_plane =
            &mut image[c * grid.height * grid.width..(c + 1) * grid.height * grid.width];
        for kh in 0..grid.kernel {
            for kw in 0..grid.kernel {
                let row = (c * grid.kernel + kh) * grid.kernel + kw;
                let col_row = &cols[row * positions..(row + 1) * positions];
                for oy in 0..oh {
                    let iy = (oy * grid.stride + kh) as isize - grid.pad as isize;
                    if iy < 0 || iy >= grid.height as isize {
                        continue;
                    }
                    let base = iy as usize * grid.width;
                    for ox in 0..ow {
                        let ix = (ox * grid.stride + kw) as isize - grid.pad as isize;
                        if ix < 0 || ix >= grid.width as isize {
                            continue;
                        }
                        img_plane[base + ix as usize] += col_row[oy * ow + ox];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_small_known_product() {
        // [1 2; 3 4] x [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [0.0; 4];
        gemm(&a, &b, 2, 2, 2, &mut out);
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_variants_agree() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (m, k, n) = (3, 4, 5);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut reference = vec![0.0; m * n];
        gemm(&a, &b, m, k, n, &mut reference);

        // aᵀ stored as k×m then multiplied with gemm_at_b must match.
        let mut a_t = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                a_t[p * m + i] = a[i * k + p];
            }
        }
        let mut out2 = vec![0.0; m * n];
        gemm_at_b_acc(&a_t, &b, m, k, n, &mut out2);
        for (x, y) in reference.iter().zip(&out2) {
            assert!((x - y).abs() < 1e-5);
        }

        // bᵀ stored as n×k with gemm_a_bt must match.
        let mut b_t = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                b_t[j * k + p] = b[p * n + j];
            }
        }
        let mut out3 = vec![0.0; m * n];
        gemm_a_bt_acc(&a, &b_t, m, k, n, &mut out3);
        for (x, y) in reference.iter().zip(&out3) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no padding: cols == image.
        let grid = PatchGrid { channels: 2, height: 2, width: 3, kernel: 1, stride: 1, pad: 0 };
        let image: Vec<f32> = (0..12).map(|v| v as f32).collect();
        let mut cols = vec![0.0; grid.patch_rows() * grid.positions()];
        im2col(&image, &grid, &mut cols);
        assert_eq!(cols, image);
    }

    #[test]
    fn im2col_padding_zeros() {
        let grid = PatchGrid { channels: 1, height: 2, width: 2, kernel: 3, stride: 1, pad: 1 };
        let image = vec![1.0, 2.0, 3.0, 4.0];
        let mut cols = vec![0.0; grid.patch_rows() * grid.positions()];
        im2col(&image, &grid, &mut cols);
        // Patch at position (0,0) has the image's (0,0)=1.0 at kernel
        // center (kh=1,kw=1) and zeros on the padded border (kh=0 row).
        let positions = grid.positions();
        assert_eq!(positions, 4);
        let center_row = 3 + 1;
        assert_eq!(cols[center_row * positions], 1.0);
        let top_left_row = 0;
        assert_eq!(cols[top_left_row * positions], 0.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let grid = PatchGrid { channels: 2, height: 5, width: 4, kernel: 3, stride: 2, pad: 1 };
        let img_len = grid.channels * grid.height * grid.width;
        let col_len = grid.patch_rows() * grid.positions();
        let x: Vec<f32> = (0..img_len).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f32> = (0..col_len).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut cols = vec![0.0; col_len];
        im2col(&x, &grid, &mut cols);
        let lhs: f64 = cols.iter().zip(&y).map(|(a, b)| (a * b) as f64).sum();
        let mut img = vec![0.0; img_len];
        col2im(&y, &grid, &mut img);
        let rhs: f64 = x.iter().zip(&img).map(|(a, b)| (a * b) as f64).sum();
        assert!((lhs - rhs).abs() < 1e-4, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn patch_grid_dims() {
        let g = PatchGrid { channels: 3, height: 8, width: 8, kernel: 4, stride: 2, pad: 1 };
        assert_eq!(g.out_h(), 4);
        assert_eq!(g.out_w(), 4);
        assert_eq!(g.patch_rows(), 48);
        assert_eq!(g.positions(), 16);
    }

    #[test]
    #[should_panic(expected = "kernel larger")]
    fn kernel_must_fit() {
        let g = PatchGrid { channels: 1, height: 2, width: 2, kernel: 5, stride: 1, pad: 0 };
        g.out_h();
    }
}
