//! Replica context for data-parallel training.
//!
//! A trainer that splits one batch across `R` model replicas installs a
//! [`ReplicaCtx`] on each worker thread. Layers whose math couples
//! samples across the batch (batch normalization) use the context to
//! rendezvous: every replica deposits its per-sample partial rows into
//! the shared [`SyncGroup`], waits at a barrier, and then *every*
//! replica reduces the complete global set of rows with the canonical
//! tree from [`crate::reduce`]. Because all replicas reduce identical
//! data in an identical order, they compute bitwise-identical global
//! statistics — and because the tree is the same one an unsharded run
//! uses, the result is bitwise invariant in the replica count.
//!
//! Layers with per-sample randomness (dropout) use the context's
//! `sample_base`/`step_nonce` to key their masks by *global* sample
//! index, so masks do not depend on how the batch was sharded.
//!
//! The rendezvous is deadlock-free because every replica runs an
//! identical model architecture and therefore an identical sequence of
//! [`reduce_samples`] calls. A group of one replica short-circuits to a
//! local reduction.

use crate::reduce;
use std::cell::RefCell;
use std::sync::{Arc, Barrier, Mutex};

/// Shared rendezvous state for one group of replicas working on one
/// global batch. Reused across as many reduction rounds as the model
/// performs; each replica only ever writes its own slot.
#[derive(Debug)]
pub struct SyncGroup {
    replicas: usize,
    total_samples: usize,
    barrier: Barrier,
    slots: Mutex<Vec<Option<Deposit>>>,
}

#[derive(Debug)]
struct Deposit {
    base: usize,
    rows: Vec<Vec<f32>>,
}

impl SyncGroup {
    /// A group of `replicas` workers jointly covering `total_samples`.
    pub fn new(replicas: usize, total_samples: usize) -> Self {
        assert!(replicas >= 1);
        Self {
            replicas,
            total_samples,
            barrier: Barrier::new(replicas),
            slots: Mutex::new((0..replicas).map(|_| None).collect()),
        }
    }

    /// Number of replicas in the group.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Number of samples in the global batch.
    pub fn total_samples(&self) -> usize {
        self.total_samples
    }

    /// One reduction round: deposits this replica's per-sample `rows`
    /// (the shard starting at global sample `base`), waits for every
    /// replica, and returns the canonical tree reduction over all
    /// `total_samples` global rows. All replicas receive bitwise-equal
    /// results.
    fn exchange(&self, replica: usize, base: usize, rows: &[&[f32]]) -> Vec<f32> {
        if self.replicas == 1 {
            return reduce::tree_reduce_rows(rows);
        }
        {
            let mut slots = self.slots.lock().unwrap();
            slots[replica] =
                Some(Deposit { base, rows: rows.iter().map(|r| r.to_vec()).collect() });
        }
        self.barrier.wait();
        let result = {
            let slots = self.slots.lock().unwrap();
            let mut global: Vec<Option<&[f32]>> = vec![None; self.total_samples];
            for deposit in slots.iter().map(|s| s.as_ref().expect("replica missed rendezvous")) {
                for (j, row) in deposit.rows.iter().enumerate() {
                    global[deposit.base + j] = Some(row.as_slice());
                }
            }
            let leaves: Vec<&[f32]> = global
                .into_iter()
                .map(|r| r.expect("rendezvous left a sample uncovered"))
                .collect();
            reduce::tree_reduce_rows(&leaves)
        };
        // Second barrier: nobody may start the next round (overwriting
        // its slot) while another replica is still reading this one.
        self.barrier.wait();
        result
    }
}

/// Per-worker view of a replica group, installed thread-locally for the
/// duration of one training step.
#[derive(Debug, Clone)]
pub struct ReplicaCtx {
    /// Shared rendezvous state.
    pub group: Arc<SyncGroup>,
    /// This worker's replica index (`0` is the lead replica).
    pub replica: usize,
    /// Global index of this shard's first sample.
    pub sample_base: usize,
    /// Trainer step counter, used to key per-sample randomness.
    pub step_nonce: u64,
}

thread_local! {
    static CTX: RefCell<Option<ReplicaCtx>> = const { RefCell::new(None) };
}

/// Clears the thread's replica context when dropped.
#[derive(Debug)]
pub struct CtxGuard(());

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.borrow_mut().take());
    }
}

/// Installs `ctx` as the current thread's replica context until the
/// returned guard drops.
pub fn install(ctx: ReplicaCtx) -> CtxGuard {
    CTX.with(|c| *c.borrow_mut() = Some(ctx));
    CtxGuard(())
}

/// The current thread's replica context, if one is installed.
pub fn current() -> Option<ReplicaCtx> {
    CTX.with(|c| c.borrow().clone())
}

/// Tree-reduces per-sample rows over the **global** batch: via the
/// replica rendezvous when a context is installed, locally otherwise.
/// `rows[j]` is the contribution of the `j`-th sample of this thread's
/// shard (or of the whole batch when no context is installed).
pub fn reduce_samples(rows: &[&[f32]]) -> Vec<f32> {
    match current() {
        Some(ctx) => ctx.group.exchange(ctx.replica, ctx.sample_base, rows),
        None => reduce::tree_reduce_rows(rows),
    }
}

/// True when this thread should apply batch-global parameter
/// gradients. Global sums (batch-norm `gamma`/`beta`) are identical on
/// every replica; only the lead replica writes them, so the fixed-order
/// replica reduction counts them exactly once.
pub fn is_lead_replica() -> bool {
    current().is_none_or(|c| c.replica == 0)
}

/// Global index of this thread's local sample `j` (shard base + `j`).
pub fn global_sample(local: usize) -> usize {
    current().map_or(local, |c| c.sample_base + local)
}

/// The trainer's step nonce, when a replica context is installed.
/// Layers with per-sample randomness switch to sharding-invariant
/// keyed masks when this is present.
pub fn step_nonce() -> Option<u64> {
    current().map(|c| c.step_nonce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_install_and_clear() {
        assert!(current().is_none());
        let group = Arc::new(SyncGroup::new(1, 4));
        {
            let _guard = install(ReplicaCtx { group, replica: 0, sample_base: 2, step_nonce: 7 });
            assert_eq!(current().unwrap().sample_base, 2);
            assert_eq!(global_sample(1), 3);
            assert_eq!(step_nonce(), Some(7));
            assert!(is_lead_replica());
        }
        assert!(current().is_none());
        assert_eq!(global_sample(1), 1);
    }

    #[test]
    fn group_of_one_reduces_locally() {
        let group = Arc::new(SyncGroup::new(1, 3));
        let _guard = install(ReplicaCtx { group, replica: 0, sample_base: 0, step_nonce: 0 });
        let rows: Vec<Vec<f32>> = vec![vec![1.0, 2.0], vec![0.5, -1.0], vec![0.25, 4.0]];
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let got = reduce_samples(&refs);
        assert_eq!(got, reduce::tree_reduce_rows(&refs));
    }

    /// Sharded rendezvous must reproduce the local reduction bitwise,
    /// across several rounds reusing one group.
    #[test]
    fn rendezvous_matches_unsharded_reduction() {
        let n = 6;
        let all: Vec<Vec<f32>> =
            (0..n).map(|i| vec![i as f32 * 0.3 - 1.0, (i * i) as f32 * 0.01]).collect();
        let all_refs: Vec<&[f32]> = all.iter().map(|r| r.as_slice()).collect();
        let expected = reduce::tree_reduce_rows(&all_refs);

        let group = Arc::new(SyncGroup::new(2, n));
        let splits = reduce::tree_splits(n, 2);
        // std::thread::scope: the rendezvous barrier needs the replicas
        // to genuinely run concurrently.
        let results: Vec<Vec<Vec<f32>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = splits
                .iter()
                .enumerate()
                .map(|(r, &(lo, hi))| {
                    let group = Arc::clone(&group);
                    let shard = &all[lo..hi];
                    scope.spawn(move || {
                        let _guard = install(ReplicaCtx {
                            group,
                            replica: r,
                            sample_base: lo,
                            step_nonce: 0,
                        });
                        let refs: Vec<&[f32]> = shard.iter().map(|r| r.as_slice()).collect();
                        // Three rounds through the same group.
                        (0..3).map(|_| reduce_samples(&refs)).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for per_replica in &results {
            for round in per_replica {
                assert_eq!(
                    round.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            }
        }
    }
}
