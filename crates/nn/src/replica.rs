//! Replica context for data-parallel training.
//!
//! A trainer that splits one batch across `R` model replicas installs a
//! [`ReplicaCtx`] on each worker thread. Layers whose math couples
//! samples across the batch (batch normalization) use the context to
//! rendezvous: every replica deposits its per-sample partial rows into
//! the shared [`SyncGroup`], waits at a barrier, and then *every*
//! replica reduces the complete global set of rows with the canonical
//! tree from [`crate::reduce`]. Because all replicas reduce identical
//! data in an identical order, they compute bitwise-identical global
//! statistics — and because the tree is the same one an unsharded run
//! uses, the result is bitwise invariant in the replica count.
//!
//! Layers with per-sample randomness (dropout) use the context's
//! `sample_base`/`step_nonce` to key their masks by *global* sample
//! index, so masks do not depend on how the batch was sharded.
//!
//! The rendezvous is deadlock-free because every replica runs an
//! identical model architecture and therefore an identical sequence of
//! [`reduce_samples`] calls. A group of one replica short-circuits to a
//! local reduction.

use crate::reduce;
use crossbeam::channel::{self, Receiver, Sender};
use std::cell::RefCell;
use std::sync::{Arc, Barrier, Mutex};

/// Shared rendezvous state for one group of replicas working on one
/// global batch. Reused across as many reduction rounds as the model
/// performs; each replica only ever writes its own slot.
#[derive(Debug)]
pub struct SyncGroup {
    replicas: usize,
    total_samples: usize,
    barrier: Barrier,
    slots: Mutex<Vec<Option<Deposit>>>,
}

#[derive(Debug)]
struct Deposit {
    base: usize,
    rows: Vec<Vec<f32>>,
}

impl SyncGroup {
    /// A group of `replicas` workers jointly covering `total_samples`.
    pub fn new(replicas: usize, total_samples: usize) -> Self {
        assert!(replicas >= 1);
        Self {
            replicas,
            total_samples,
            barrier: Barrier::new(replicas),
            slots: Mutex::new((0..replicas).map(|_| None).collect()),
        }
    }

    /// Number of replicas in the group.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Number of samples in the global batch.
    pub fn total_samples(&self) -> usize {
        self.total_samples
    }

    /// One reduction round: deposits this replica's per-sample `rows`
    /// (the shard starting at global sample `base`), waits for every
    /// replica, and returns the canonical tree reduction over all
    /// `total_samples` global rows. All replicas receive bitwise-equal
    /// results.
    fn exchange(&self, replica: usize, base: usize, rows: &[&[f32]]) -> Vec<f32> {
        if self.replicas == 1 {
            return reduce::tree_reduce_rows(rows);
        }
        {
            let mut slots = self.slots.lock().unwrap();
            slots[replica] =
                Some(Deposit { base, rows: rows.iter().map(|r| r.to_vec()).collect() });
        }
        self.barrier.wait();
        let result = {
            let slots = self.slots.lock().unwrap();
            let mut global: Vec<Option<&[f32]>> = vec![None; self.total_samples];
            for deposit in slots.iter().map(|s| s.as_ref().expect("replica missed rendezvous")) {
                for (j, row) in deposit.rows.iter().enumerate() {
                    global[deposit.base + j] = Some(row.as_slice());
                }
            }
            let leaves: Vec<&[f32]> = global
                .into_iter()
                .map(|r| r.expect("rendezvous left a sample uncovered"))
                .collect();
            reduce::tree_reduce_rows(&leaves)
        };
        // Second barrier: nobody may start the next round (overwriting
        // its slot) while another replica is still reading this one.
        self.barrier.wait();
        result
    }
}

/// One flat gradient partial in flight from a worker lane to the
/// main-thread reducer.
#[derive(Debug)]
struct GradDeposit {
    term: usize,
    replica: usize,
    buf: Vec<f32>,
}

/// Double-buffered gradient exchange for overlapped tree-reduction.
///
/// A training step produces several *loss terms* per worker (for the
/// GAN: discriminator real-pass, discriminator fake-pass, generator),
/// each a flat gradient arena. Instead of collecting every term after
/// the workers join, each worker [`GradLane::submit`]s term `k` the
/// moment its backward pass finishes and immediately starts term
/// `k + 1`; the main thread ([`GradExchange::recv_term`]) combines
/// term `k`'s partials in **fixed worker order** — merging a prefix the
/// moment it is contiguous, before later workers have even submitted —
/// and hands the total back while the workers run term `k + 1`'s
/// backward. Nothing about arrival order affects the combine order, so
/// the result is bitwise deterministic.
///
/// The combine order itself comes from a [`reduce::frontier_merge_plan`]
/// over the workers' sample ranges ([`GradExchange::for_shards`]):
/// workers may cover any tree-node frontier of the batch — the flat
/// `tree_splits(n, R)` sharding, or the hierarchical micro-batch ×
/// replica refinement — and the merged total is always the canonical
/// whole-batch tree, bitwise. [`GradExchange::new`] is the special case
/// of one worker per frontier leaf (plain replica sharding).
///
/// Each lane owns `depth` gradient arenas (`depth = 2` double-buffers a
/// threaded run; an inline single-worker run uses `depth = terms` so
/// it never blocks). A worker that has `depth` partials in flight
/// blocks in [`GradLane::acquire`] until the reducer consumes one of
/// its buffers and recycles an arena — bounded memory, no allocation in
/// steady state when the pool is warm. Merged-away buffers recycle
/// *during* the term, not after it, so stragglers never serialize the
/// whole lane cycle.
#[derive(Debug)]
pub struct GradExchange {
    replicas: usize,
    terms: usize,
    depth: usize,
    /// Merge schedule over worker indices (see
    /// [`reduce::frontier_merge_plan`]): after worker `w`'s partial is
    /// pushed, perform `plan[w]` left-accumulating combines.
    plan: Vec<usize>,
    /// Stashed deposits awaiting their turn, `pending[term][worker]`.
    pending: Vec<Vec<Option<Vec<f32>>>>,
    /// Next term [`GradExchange::recv_term`] will complete.
    next_term: usize,
    // Note: the exchange deliberately does NOT keep a deposit sender of
    // its own — when every lane is gone (including a worker unwinding),
    // the reducer's `recv` errors out instead of deadlocking.
    deposit_rx: Receiver<GradDeposit>,
    return_txs: Vec<Sender<Vec<f32>>>,
    lanes: Mutex<Vec<Option<GradLane>>>,
}

impl GradExchange {
    /// An exchange for `replicas` workers each producing `terms` flat
    /// gradient partials, with `depth` arenas buffered per lane, each
    /// worker one leaf of the combine tree (plain replica sharding).
    /// Lane arenas are drawn from `pool` when available
    /// (allocation-free once warm); every arena returns to `pool` once
    /// all terms are reduced and the totals are handed back.
    ///
    /// # Panics
    ///
    /// Panics if `replicas`, `terms`, or `depth` is zero, or if an
    /// inline run could deadlock (`replicas == 1` requires
    /// `depth >= terms`, since a lone worker has nobody to recycle its
    /// arenas while it runs).
    pub fn new(replicas: usize, terms: usize, depth: usize, pool: &mut Vec<Vec<f32>>) -> Self {
        assert!(replicas >= 1, "exchange needs at least one worker");
        // One unit leaf per worker: the frontier plan over unit ranges
        // is exactly tree_reduce_rows' row-midpoint recursion.
        let units: Vec<(usize, usize)> = (0..replicas).map(|w| (w, w + 1)).collect();
        Self::for_shards(&units, replicas, terms, depth, pool)
    }

    /// An exchange whose workers cover the sample ranges `shards` — any
    /// contiguous tree-node frontier of the batch `[0, n)`, e.g.
    /// `tree_splits(n, R)` or its micro-batch × replica refinement. The
    /// reducer combines partials with the frontier's merge plan, so the
    /// per-term totals equal the canonical whole-batch tree reduction
    /// bitwise for every factorization.
    ///
    /// # Panics
    ///
    /// Panics on a zero `terms`/`depth`, on a single-worker exchange
    /// with `depth < terms` (see [`GradExchange::new`]), or if `shards`
    /// is not a tree-node frontier of `[0, n)`.
    pub fn for_shards(
        shards: &[(usize, usize)],
        n: usize,
        terms: usize,
        depth: usize,
        pool: &mut Vec<Vec<f32>>,
    ) -> Self {
        let replicas = shards.len();
        assert!(replicas >= 1 && terms >= 1 && depth >= 1);
        assert!(
            replicas > 1 || depth >= terms,
            "an inline single-replica run must buffer every term"
        );
        let plan = reduce::frontier_merge_plan(n, shards);
        let (deposit_tx, deposit_rx) = channel::unbounded();
        let mut return_txs = Vec::with_capacity(replicas);
        let mut lanes = Vec::with_capacity(replicas);
        for replica in 0..replicas {
            let (tx, rx) = channel::unbounded();
            return_txs.push(tx);
            let free: Vec<Vec<f32>> = (0..depth).map(|_| pool.pop().unwrap_or_default()).collect();
            lanes.push(Some(GradLane { replica, next_term: 0, free, tx: deposit_tx.clone(), rx }));
        }
        drop(deposit_tx);
        let pending = (0..terms).map(|_| (0..replicas).map(|_| None).collect()).collect();
        GradExchange {
            replicas,
            terms,
            depth,
            plan,
            pending,
            next_term: 0,
            deposit_rx,
            return_txs,
            lanes: Mutex::new(lanes),
        }
    }

    /// Detaches the worker-side handle for `replica`. Each lane can be
    /// taken exactly once.
    pub fn take_lane(&self, replica: usize) -> GradLane {
        self.lanes.lock().unwrap()[replica].take().expect("lane already taken")
    }

    /// Number of terms not yet reduced.
    pub fn terms_remaining(&self) -> usize {
        self.terms - self.next_term
    }

    /// Blocks until the next term's total is fully combined and returns
    /// it, merging partials incrementally in worker order as they
    /// arrive. Must run concurrently with the workers — or after an
    /// inline single worker has already submitted everything.
    ///
    /// Consumed partial buffers recycle to waiting lanes mid-term (for
    /// terms whose arenas a lane will wait on) or retire to `pool`;
    /// the returned total is owed back to `pool` by the caller. Calling
    /// this `terms` times completes the exchange with every arena
    /// accounted for.
    ///
    /// # Panics
    ///
    /// Panics if all terms were already reduced, on duplicate or
    /// out-of-range deposits, or if a worker hangs up mid-term.
    pub fn recv_term(&mut self, pool: &mut Vec<Vec<f32>>) -> Vec<f32> {
        let term = self.next_term;
        assert!(term < self.terms, "all gradient terms already reduced");
        self.next_term += 1;
        // Terms early enough that some lane will block waiting for an
        // arena get their buffers recycled to lanes; later terms retire
        // buffers to the pool (the step is ending).
        let lanes_wait = term + self.depth < self.terms;
        let return_txs = &self.return_txs;
        let mut stack: Vec<Vec<f32>> = Vec::new();
        let mut next_worker = 0usize;
        let mut recycled = 0usize;
        let recycle = |buf: Vec<f32>, recycled: &mut usize, pool: &mut Vec<Vec<f32>>| {
            if lanes_wait {
                // Arenas are interchangeable (acquire clears and
                // resizes), so hand them back round-robin; exactly
                // `replicas` recycle per term, one per lane. A send only
                // fails if the lane dropped early (worker panic
                // unwinding); losing the arena with it is harmless.
                let _ = return_txs[*recycled].send(buf);
                *recycled += 1;
            } else {
                pool.push(buf);
            }
        };
        while next_worker < self.replicas {
            if let Some(buf) = self.pending[term][next_worker].take() {
                stack.push(buf);
                for _ in 0..self.plan[next_worker] {
                    let right = stack.pop().expect("merge plan underflow");
                    let left = stack.last_mut().expect("merge plan underflow");
                    assert_eq!(left.len(), right.len(), "gradient partial length mismatch");
                    for (d, s) in left.iter_mut().zip(&right) {
                        *d += *s;
                    }
                    recycle(right, &mut recycled, pool);
                }
                next_worker += 1;
                continue;
            }
            let d = self.deposit_rx.recv().expect("gradient worker hung up");
            assert!(d.term >= term && d.term < self.terms, "unexpected gradient term {}", d.term);
            let slot = &mut self.pending[d.term][d.replica];
            assert!(slot.is_none(), "duplicate gradient deposit");
            *slot = Some(d.buf);
        }
        let total = stack.pop().expect("merge plan left no total");
        assert!(stack.is_empty(), "merge plan left extra partials");
        if lanes_wait {
            // The total keeps its backing buffer (a lane arena — arenas
            // are interchangeable); the one lane still owed a recycle
            // this term gets a pool arena instead.
            let spare = pool.pop().unwrap_or_default();
            recycle(spare, &mut recycled, pool);
            debug_assert_eq!(recycled, self.replicas);
        }
        total
    }

    /// Reduces every remaining term ([`GradExchange::recv_term`]) and
    /// returns the totals in term order. The streamed equivalent of the
    /// collect-then-reduce loop: all arenas a lane no longer needs land
    /// in `pool`, and the returned totals are owed back to it.
    pub fn reduce_terms(&mut self, pool: &mut Vec<Vec<f32>>) -> Vec<Vec<f32>> {
        (0..self.terms_remaining()).map(|_| self.recv_term(pool)).collect()
    }
}

/// Worker-side handle of a [`GradExchange`]: a bounded cycle of
/// gradient arenas plus the deposit channel.
#[derive(Debug)]
pub struct GradLane {
    replica: usize,
    next_term: usize,
    free: Vec<Vec<f32>>,
    tx: Sender<GradDeposit>,
    rx: Receiver<Vec<f32>>,
}

impl GradLane {
    /// An arena of exactly `len` scalars to write the next term's
    /// gradients into. Blocks (back-pressure) while all of this lane's
    /// arenas are still being reduced.
    pub fn acquire(&mut self, len: usize) -> Vec<f32> {
        let mut buf = match self.free.pop() {
            Some(buf) => buf,
            None => self.rx.recv().expect("gradient reducer hung up"),
        };
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Hands the next term's filled arena to the reducer.
    pub fn submit(&mut self, buf: Vec<f32>) {
        let deposit = GradDeposit { term: self.next_term, replica: self.replica, buf };
        self.next_term += 1;
        self.tx.send(deposit).expect("gradient reducer hung up");
    }
}

/// Per-worker view of a replica group, installed thread-locally for the
/// duration of one training step.
#[derive(Debug, Clone)]
pub struct ReplicaCtx {
    /// Shared rendezvous state.
    pub group: Arc<SyncGroup>,
    /// This worker's replica index (`0` is the lead replica).
    pub replica: usize,
    /// Global index of this shard's first sample.
    pub sample_base: usize,
    /// Trainer step counter, used to key per-sample randomness.
    pub step_nonce: u64,
}

thread_local! {
    static CTX: RefCell<Option<ReplicaCtx>> = const { RefCell::new(None) };
}

/// Clears the thread's replica context when dropped.
#[derive(Debug)]
pub struct CtxGuard(());

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.borrow_mut().take());
    }
}

/// Installs `ctx` as the current thread's replica context until the
/// returned guard drops.
pub fn install(ctx: ReplicaCtx) -> CtxGuard {
    CTX.with(|c| *c.borrow_mut() = Some(ctx));
    CtxGuard(())
}

/// The current thread's replica context, if one is installed.
pub fn current() -> Option<ReplicaCtx> {
    CTX.with(|c| c.borrow().clone())
}

/// Tree-reduces per-sample rows over the **global** batch: via the
/// replica rendezvous when a context is installed, locally otherwise.
/// `rows[j]` is the contribution of the `j`-th sample of this thread's
/// shard (or of the whole batch when no context is installed).
pub fn reduce_samples(rows: &[&[f32]]) -> Vec<f32> {
    match current() {
        Some(ctx) => ctx.group.exchange(ctx.replica, ctx.sample_base, rows),
        None => reduce::tree_reduce_rows(rows),
    }
}

/// True when this thread should apply batch-global parameter
/// gradients. Global sums (batch-norm `gamma`/`beta`) are identical on
/// every replica; only the lead replica writes them, so the fixed-order
/// replica reduction counts them exactly once.
pub fn is_lead_replica() -> bool {
    current().is_none_or(|c| c.replica == 0)
}

/// Global index of this thread's local sample `j` (shard base + `j`).
pub fn global_sample(local: usize) -> usize {
    current().map_or(local, |c| c.sample_base + local)
}

/// The trainer's step nonce, when a replica context is installed.
/// Layers with per-sample randomness switch to sharding-invariant
/// keyed masks when this is present.
pub fn step_nonce() -> Option<u64> {
    current().map(|c| c.step_nonce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_install_and_clear() {
        assert!(current().is_none());
        let group = Arc::new(SyncGroup::new(1, 4));
        {
            let _guard = install(ReplicaCtx { group, replica: 0, sample_base: 2, step_nonce: 7 });
            assert_eq!(current().unwrap().sample_base, 2);
            assert_eq!(global_sample(1), 3);
            assert_eq!(step_nonce(), Some(7));
            assert!(is_lead_replica());
        }
        assert!(current().is_none());
        assert_eq!(global_sample(1), 1);
    }

    #[test]
    fn group_of_one_reduces_locally() {
        let group = Arc::new(SyncGroup::new(1, 3));
        let _guard = install(ReplicaCtx { group, replica: 0, sample_base: 0, step_nonce: 0 });
        let rows: Vec<Vec<f32>> = vec![vec![1.0, 2.0], vec![0.5, -1.0], vec![0.25, 4.0]];
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let got = reduce_samples(&refs);
        assert_eq!(got, reduce::tree_reduce_rows(&refs));
    }

    /// Overlapped exchange must reproduce `tree_reduce_rows` bitwise
    /// per term, for ragged replica counts, regardless of the order
    /// deposits arrive in.
    #[test]
    fn grad_exchange_matches_tree_reduce_bitwise() {
        for replicas in 1..=5usize {
            let terms = 3;
            let lens = [7usize, 7, 11];
            let partials: Vec<Vec<Vec<f32>>> = (0..replicas)
                .map(|r| {
                    (0..terms)
                        .map(|t| {
                            (0..lens[t])
                                .map(|i| ((r * 31 + t * 7 + i) as f32).sin())
                                .collect::<Vec<f32>>()
                        })
                        .collect()
                })
                .collect();
            let expected: Vec<Vec<f32>> = (0..terms)
                .map(|t| {
                    let rows: Vec<&[f32]> = partials.iter().map(|p| p[t].as_slice()).collect();
                    reduce::tree_reduce_rows(&rows)
                })
                .collect();

            let depth = if replicas == 1 { terms } else { 2 };
            // Warm pool: with `replicas * depth + terms` arenas banked,
            // no pop can ever miss, so conservation is exact below.
            let mut pool: Vec<Vec<f32>> =
                (0..replicas * depth + terms).map(|_| Vec::new()).collect();
            let seeded = pool.len();
            let mut exchange = GradExchange::new(replicas, terms, depth, &mut pool);
            let results = if replicas == 1 {
                // Inline: submit everything, then reduce.
                let mut lane = exchange.take_lane(0);
                for t in 0..terms {
                    let mut buf = lane.acquire(lens[t]);
                    buf.copy_from_slice(&partials[0][t]);
                    lane.submit(buf);
                }
                drop(lane);
                exchange.reduce_terms(&mut pool)
            } else {
                std::thread::scope(|scope| {
                    for (r, mine) in partials.iter().enumerate() {
                        let mut lane = exchange.take_lane(r);
                        scope.spawn(move || {
                            for (t, term) in mine.iter().enumerate() {
                                let mut buf = lane.acquire(lens[t]);
                                buf.copy_from_slice(term);
                                lane.submit(buf);
                            }
                        });
                    }
                    exchange.reduce_terms(&mut pool)
                })
            };
            for (t, (got, want)) in results.iter().zip(&expected).enumerate() {
                assert_eq!(
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "replicas={replicas} term={t}"
                );
            }
            // Once the reduced outputs are handed back (as the trainer
            // does after its optimizer steps), every arena is accounted
            // for: the pool returns to exactly its seeded size.
            pool.extend(results);
            assert_eq!(pool.len(), seeded);
        }
    }

    /// The double-buffer back-pressure recycles arenas instead of
    /// growing: a warm pool is drained and refilled with no net change.
    #[test]
    fn grad_exchange_reuses_a_warm_pool() {
        let replicas = 3;
        let terms = 3;
        let mut pool: Vec<Vec<f32>> = (0..replicas * 2 + terms).map(|_| vec![0.0; 16]).collect();
        let seeded = pool.len();
        for _round in 0..2 {
            let mut exchange = GradExchange::new(replicas, terms, 2, &mut pool);
            std::thread::scope(|scope| {
                for r in 0..replicas {
                    let mut lane = exchange.take_lane(r);
                    scope.spawn(move || {
                        for t in 0..terms {
                            let mut buf = lane.acquire(16);
                            buf.fill((r + t) as f32);
                            lane.submit(buf);
                        }
                    });
                }
                let results = exchange.reduce_terms(&mut pool);
                pool.extend(results);
            });
            assert_eq!(pool.len(), seeded, "pool must not grow or shrink across steps");
            assert!(pool.iter().all(|b| b.capacity() >= 16), "arenas must be reused, not replaced");
        }
    }

    #[test]
    #[should_panic(expected = "inline single-replica run")]
    fn grad_exchange_rejects_underbuffered_inline_run() {
        let mut pool = Vec::new();
        GradExchange::new(1, 3, 2, &mut pool);
    }

    /// A micro-batch × replica frontier exchange must reduce each
    /// term's per-shard sample partials to the canonical whole-batch
    /// tree total bitwise, and `recv_term` must hand terms out in order
    /// while later terms are still in flight — the streamed pipeline
    /// the trainer drives.
    #[test]
    fn grad_exchange_over_shard_frontiers_matches_whole_batch_reduction() {
        let terms = 3usize;
        let len = 6usize;
        for n in [5usize, 8, 11] {
            // Per-term per-sample rows and their unsharded tree totals.
            let samples: Vec<Vec<Vec<f32>>> = (0..terms)
                .map(|t| {
                    (0..n)
                        .map(|s| (0..len).map(|i| ((t * 61 + s * 13 + i) as f32).sin()).collect())
                        .collect()
                })
                .collect();
            let expected: Vec<Vec<u32>> = (0..terms)
                .map(|t| {
                    let rows: Vec<&[f32]> = samples[t].iter().map(|r| r.as_slice()).collect();
                    reduce::tree_reduce_rows(&rows).iter().map(|v| v.to_bits()).collect()
                })
                .collect();

            for micro in [1usize, 2, 5] {
                for replicas in [1usize, 3] {
                    let mut shards = Vec::new();
                    for (mlo, mhi) in reduce::tree_splits(n, micro.min(n)) {
                        let span = mhi - mlo;
                        for (slo, shi) in reduce::tree_splits(span, replicas.min(span)) {
                            shards.push((mlo + slo, mlo + shi));
                        }
                    }
                    let workers = shards.len();
                    let depth = if workers == 1 { terms } else { 2 };
                    let mut pool: Vec<Vec<f32>> =
                        (0..workers * depth + terms).map(|_| Vec::new()).collect();
                    let seeded = pool.len();
                    let mut exchange =
                        GradExchange::for_shards(&shards, n, terms, depth, &mut pool);
                    let results: Vec<Vec<f32>> = std::thread::scope(|scope| {
                        for (w, &(lo, hi)) in shards.iter().enumerate() {
                            let mut lane = exchange.take_lane(w);
                            let samples = &samples;
                            scope.spawn(move || {
                                for term in samples.iter().take(terms) {
                                    let rows: Vec<&[f32]> =
                                        term[lo..hi].iter().map(|r| r.as_slice()).collect();
                                    let partial = reduce::tree_reduce_rows(&rows);
                                    let mut buf = lane.acquire(len);
                                    buf.copy_from_slice(&partial);
                                    lane.submit(buf);
                                }
                            });
                        }
                        (0..terms).map(|_| exchange.recv_term(&mut pool)).collect()
                    });
                    assert_eq!(exchange.terms_remaining(), 0);
                    for (t, got) in results.iter().enumerate() {
                        assert_eq!(
                            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                            expected[t],
                            "n={n} micro={micro} replicas={replicas} term={t}"
                        );
                    }
                    pool.extend(results);
                    assert_eq!(pool.len(), seeded, "arena conservation, n={n} micro={micro}");
                }
            }
        }
    }

    /// Sharded rendezvous must reproduce the local reduction bitwise,
    /// across several rounds reusing one group.
    #[test]
    fn rendezvous_matches_unsharded_reduction() {
        let n = 6;
        let all: Vec<Vec<f32>> =
            (0..n).map(|i| vec![i as f32 * 0.3 - 1.0, (i * i) as f32 * 0.01]).collect();
        let all_refs: Vec<&[f32]> = all.iter().map(|r| r.as_slice()).collect();
        let expected = reduce::tree_reduce_rows(&all_refs);

        let group = Arc::new(SyncGroup::new(2, n));
        let splits = reduce::tree_splits(n, 2);
        // std::thread::scope: the rendezvous barrier needs the replicas
        // to genuinely run concurrently.
        let results: Vec<Vec<Vec<f32>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = splits
                .iter()
                .enumerate()
                .map(|(r, &(lo, hi))| {
                    let group = Arc::clone(&group);
                    let shard = &all[lo..hi];
                    scope.spawn(move || {
                        let _guard = install(ReplicaCtx {
                            group,
                            replica: r,
                            sample_base: lo,
                            step_nonce: 0,
                        });
                        let refs: Vec<&[f32]> = shard.iter().map(|r| r.as_slice()).collect();
                        // Three rounds through the same group.
                        (0..3).map(|_| reduce_samples(&refs)).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for per_replica in &results {
            for round in per_replica {
                assert_eq!(
                    round.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            }
        }
    }
}
