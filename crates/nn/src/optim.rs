//! Optimizers over flat [`ParamStore`]s.
//!
//! Moment state is keyed by segment *name* (e.g.
//! `"net/conv2d0.weight"`), not by visiting position, so optimizer
//! state survives the store round-trip the data-parallel trainer
//! performs every step and can be serialized into checkpoints
//! ([`AdamState`]). [`Adam::step_layer`] remains as a convenience that
//! routes a [`Layer`] through a store.

use crate::layers::Layer;
use crate::store::ParamStore;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Adam with Pix2Pix's defaults (`β₁ = 0.5`, `β₂ = 0.999`).
///
/// One `Adam` instance must be paired with one model: segment names
/// key the moments, and a segment whose length changes between steps
/// is rejected.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    moments: HashMap<String, (Vec<f32>, Vec<f32>)>,
}

/// Serializable Adam state: the step counter plus per-segment first and
/// second moments, sorted by segment name for a deterministic encoding.
/// Checkpoints carry this so training resumes with warm moments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamState {
    /// Learning rate at capture time.
    pub lr: f32,
    /// Number of steps taken.
    pub step: u64,
    /// `(segment name, first moment, second moment)` triples.
    pub moments: Vec<(String, Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Creates an Adam optimizer with the GAN-standard betas (0.5, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam { lr, beta1: 0.5, beta2: 0.999, eps: 1e-8, step: 0, moments: HashMap::new() }
    }

    /// Returns a copy with custom betas.
    ///
    /// # Panics
    ///
    /// Panics unless both betas are in `[0, 1)`.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2),
            "betas must be in [0,1)"
        );
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (e.g. for linear decay schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one Adam step to every segment of `store`, updating the
    /// value arena in place. Moments are looked up by segment name and
    /// created lazily.
    ///
    /// # Panics
    ///
    /// Panics if a named segment's length differs from its moment
    /// state (`"parameter layout changed between steps"`).
    pub fn step_store(&mut self, store: &mut ParamStore) {
        let _span = cachebox_telemetry::span("nn.adam.step");
        self.step += 1;
        let t = self.step;
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let bias1 = 1.0 - b1.powi(t as i32);
        let bias2 = 1.0 - b2.powi(t as i32);
        for si in 0..store.segments().len() {
            let seg = store.segments()[si].clone();
            let (pm, pv) = self
                .moments
                .entry(seg.name.clone())
                .or_insert_with(|| (vec![0.0; seg.len], vec![0.0; seg.len]));
            assert_eq!(pm.len(), seg.len, "parameter layout changed between steps");
            let range = seg.offset..seg.offset + seg.len;
            for i in 0..seg.len {
                let g = store.grads()[range.start + i];
                pm[i] = b1 * pm[i] + (1.0 - b1) * g;
                pv[i] = b2 * pv[i] + (1.0 - b2) * g * g;
                let m_hat = pm[i] / bias1;
                let v_hat = pv[i] / bias2;
                store.values_mut()[range.start + i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
    }

    /// Applies one Adam step to every parameter of `layer` by routing
    /// it through a flat store (capture → [`Adam::step_store`] → write
    /// back).
    pub fn step_layer(&mut self, layer: &mut dyn Layer) {
        let mut store = layer.export_store();
        self.step_store(&mut store);
        layer.import_values("", &store);
    }

    /// Exports the optimizer state for checkpointing, moments sorted by
    /// segment name.
    pub fn export_state(&self) -> AdamState {
        let mut moments: Vec<(String, Vec<f32>, Vec<f32>)> = self
            .moments
            .iter()
            .map(|(name, (m, v))| (name.clone(), m.clone(), v.clone()))
            .collect();
        moments.sort_by(|a, b| a.0.cmp(&b.0));
        AdamState { lr: self.lr, step: self.step, moments }
    }

    /// Restores optimizer state captured by [`Adam::export_state`].
    ///
    /// # Panics
    ///
    /// Panics if the state's learning rate is not positive.
    pub fn import_state(&mut self, state: &AdamState) {
        assert!(state.lr > 0.0, "learning rate must be positive");
        self.lr = state.lr;
        self.step = state.step;
        self.moments = state
            .moments
            .iter()
            .map(|(name, m, v)| (name.clone(), (m.clone(), v.clone())))
            .collect();
    }
}

/// Plain stochastic gradient descent with optional momentum. Velocity
/// state is keyed by segment name, like [`Adam`]'s moments.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<String, Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer without momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr, momentum: 0.0, velocity: HashMap::new() }
    }

    /// Returns a copy with momentum.
    ///
    /// # Panics
    ///
    /// Panics unless `momentum` is in `[0, 1)`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        self.momentum = momentum;
        self
    }

    /// Applies one SGD step to every segment of `store`.
    ///
    /// # Panics
    ///
    /// Panics if a named segment's length differs from its velocity
    /// state.
    pub fn step_store(&mut self, store: &mut ParamStore) {
        let (lr, mu) = (self.lr, self.momentum);
        for si in 0..store.segments().len() {
            let seg = store.segments()[si].clone();
            let vel = self.velocity.entry(seg.name.clone()).or_insert_with(|| vec![0.0; seg.len]);
            assert_eq!(vel.len(), seg.len, "parameter layout changed between steps");
            for (i, v) in vel.iter_mut().enumerate() {
                let g = store.grads()[seg.offset + i];
                *v = mu * *v + g;
                store.values_mut()[seg.offset + i] -= lr * *v;
            }
        }
    }

    /// Applies one SGD step to every parameter of `layer`.
    pub fn step_layer(&mut self, layer: &mut dyn Layer) {
        let mut store = layer.export_store();
        self.step_store(&mut store);
        layer.import_values("", &store);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Layer, Linear};
    use crate::loss;
    use crate::tensor::Tensor;

    fn train(optim_step: &mut dyn FnMut(&mut Linear), steps: usize) -> f32 {
        let mut layer = Linear::new(1, 1, 3);
        let x = Tensor::from_vec([4, 1, 1, 1], vec![-1.0, 0.0, 1.0, 2.0]);
        let target = Tensor::from_vec([4, 1, 1, 1], vec![-3.0, -1.0, 1.0, 3.0]); // y = 2x - 1
        let mut final_loss = f32::INFINITY;
        for _ in 0..steps {
            let y = layer.forward(&x, true);
            let (l, grad) = loss::mse(&y, &target);
            final_loss = l;
            layer.zero_grad();
            layer.backward(&grad);
            optim_step(&mut layer);
        }
        final_loss
    }

    #[test]
    fn adam_fits_linear_function() {
        let mut adam = Adam::new(0.05);
        let loss = train(&mut |l| adam.step_layer(l), 400);
        assert!(loss < 1e-3, "final loss {loss}");
    }

    #[test]
    fn sgd_fits_linear_function() {
        let mut sgd = Sgd::new(0.05).with_momentum(0.9);
        let loss = train(&mut |l| sgd.step_layer(l), 400);
        assert!(loss < 1e-3, "final loss {loss}");
    }

    #[test]
    fn adam_converges_faster_than_plain_sgd_here() {
        let mut adam = Adam::new(0.05);
        let adam_loss = train(&mut |l| adam.step_layer(l), 60);
        let mut sgd = Sgd::new(0.005);
        let sgd_loss = train(&mut |l| sgd.step_layer(l), 60);
        assert!(adam_loss < sgd_loss, "adam {adam_loss} vs sgd {sgd_loss}");
    }

    #[test]
    fn set_lr_changes_rate() {
        let mut adam = Adam::new(0.1);
        adam.set_lr(0.01);
        assert_eq!(adam.lr(), 0.01);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_zero_lr() {
        Adam::new(0.0);
    }

    #[test]
    #[should_panic(expected = "parameter layout changed")]
    fn detects_layout_change() {
        let mut adam = Adam::new(0.01);
        let mut a = Linear::new(2, 2, 0);
        let mut b = Linear::new(3, 3, 0);
        let xa = Tensor::zeros([1, 2, 1, 1]);
        let ya = a.forward(&xa, true);
        a.zero_grad();
        a.backward(&ya);
        adam.step_layer(&mut a);
        // Feeding a different model into the same optimizer must fail:
        // both bare layers name their segments "weight"/"bias", but the
        // lengths differ.
        let xb = Tensor::zeros([1, 3, 1, 1]);
        let yb = b.forward(&xb, true);
        b.zero_grad();
        b.backward(&yb);
        adam.step_layer(&mut b);
    }

    #[test]
    fn step_store_matches_step_layer() {
        // Two identical layers, one driven through step_layer, the
        // other through an explicit store round-trip: identical values.
        let mut a = Linear::new(2, 3, 9);
        let mut b = Linear::new(2, 3, 9);
        let x = Tensor::from_vec([2, 2, 1, 1], vec![0.5, -1.0, 2.0, 0.25]);
        let mut adam_a = Adam::new(0.01);
        let mut adam_b = Adam::new(0.01);
        for _ in 0..3 {
            for (layer, opt, by_store) in
                [(&mut a, &mut adam_a, false), (&mut b, &mut adam_b, true)]
            {
                let y = layer.forward(&x, true);
                layer.zero_grad();
                layer.backward(&y);
                if by_store {
                    let mut store = layer.export_store();
                    opt.step_store(&mut store);
                    layer.import_values("", &store);
                } else {
                    opt.step_layer(&mut *layer);
                }
            }
        }
        let sa = a.export_store();
        let sb = b.export_store();
        assert_eq!(sa.values(), sb.values());
    }

    #[test]
    fn adam_state_roundtrips() {
        let mut adam = Adam::new(0.05);
        let loss_before = train(&mut |l| adam.step_layer(l), 10);
        let state = adam.export_state();
        let mut restored = Adam::new(0.9);
        restored.import_state(&state);
        assert_eq!(restored.export_state(), state);
        assert_eq!(restored.lr(), 0.05);
        let _ = loss_before;
    }
}
