//! Optimizers over flat [`ParamStore`]s.
//!
//! Moment state is keyed by segment *name* (e.g.
//! `"net/conv2d0.weight"`), not by visiting position, so optimizer
//! state survives the store round-trip the data-parallel trainer
//! performs every step and can be serialized into checkpoints
//! ([`AdamState`]). [`Adam::step_layer`] remains as a convenience that
//! routes a [`Layer`] through a store.

use crate::layers::Layer;
use crate::store::ParamStore;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Adam with Pix2Pix's defaults (`β₁ = 0.5`, `β₂ = 0.999`).
///
/// One `Adam` instance must be paired with one model: segment names
/// key the moments, and a segment whose length changes between steps
/// is rejected.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    moments: HashMap<String, (Vec<f32>, Vec<f32>)>,
}

/// Serializable Adam state: the step counter plus per-segment first and
/// second moments, sorted by segment name for a deterministic encoding.
/// Checkpoints carry this so training resumes with warm moments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamState {
    /// Learning rate at capture time.
    pub lr: f32,
    /// Number of steps taken.
    pub step: u64,
    /// `(segment name, first moment, second moment)` triples.
    pub moments: Vec<(String, Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Creates an Adam optimizer with the GAN-standard betas (0.5, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam { lr, beta1: 0.5, beta2: 0.999, eps: 1e-8, step: 0, moments: HashMap::new() }
    }

    /// Returns a copy with custom betas.
    ///
    /// # Panics
    ///
    /// Panics unless both betas are in `[0, 1)`.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2),
            "betas must be in [0,1)"
        );
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (e.g. for linear decay schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Advances the shared step counter by one without touching any
    /// parameter. Call exactly once per logical optimizer step, then
    /// cover every segment (in any disjoint grouping and order) with
    /// [`Adam::step_segments`] — together the streamed equivalent of
    /// one [`Adam::step_store`] call, bitwise.
    ///
    /// Bias corrections derive from the counter, so a range stepped
    /// after a stray extra `begin_step` would disagree with the rest of
    /// the store; the trainer's pipeline calls this once per train step
    /// and then streams layer groups through `step_segments` as their
    /// reduced gradients land.
    pub fn begin_step(&mut self) {
        self.step += 1;
    }

    /// Applies the current step's Adam update to segments
    /// `seg_lo..seg_hi` of `store`, updating the value arena in place.
    /// Moments are looked up by segment name and created lazily.
    /// Per-segment updates are independent, so stepping disjoint ranges
    /// in any order composes bitwise to one whole-store step, provided
    /// [`Adam::begin_step`] ran exactly once beforehand.
    ///
    /// # Panics
    ///
    /// Panics if a named segment's length differs from its moment
    /// state (`"parameter layout changed between steps"`), or if called
    /// before the first [`Adam::begin_step`].
    pub fn step_segments(&mut self, store: &mut ParamStore, seg_lo: usize, seg_hi: usize) {
        assert!(self.step > 0, "step_segments before begin_step");
        let t = self.step;
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let bias1 = 1.0 - b1.powi(t as i32);
        let bias2 = 1.0 - b2.powi(t as i32);
        for si in seg_lo..seg_hi {
            let seg = store.segments()[si].clone();
            let (pm, pv) = self
                .moments
                .entry(seg.name.clone())
                .or_insert_with(|| (vec![0.0; seg.len], vec![0.0; seg.len]));
            assert_eq!(pm.len(), seg.len, "parameter layout changed between steps");
            let range = seg.offset..seg.offset + seg.len;
            for i in 0..seg.len {
                let g = store.grads()[range.start + i];
                pm[i] = b1 * pm[i] + (1.0 - b1) * g;
                pv[i] = b2 * pv[i] + (1.0 - b2) * g * g;
                let m_hat = pm[i] / bias1;
                let v_hat = pv[i] / bias2;
                store.values_mut()[range.start + i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
    }

    /// Applies one Adam step to every segment of `store`, updating the
    /// value arena in place: [`Adam::begin_step`] followed by one
    /// [`Adam::step_segments`] over the whole table.
    ///
    /// # Panics
    ///
    /// Panics if a named segment's length differs from its moment
    /// state (`"parameter layout changed between steps"`).
    pub fn step_store(&mut self, store: &mut ParamStore) {
        let _span = cachebox_telemetry::span("nn.adam.step");
        self.begin_step();
        self.step_segments(store, 0, store.segments().len());
    }

    /// Applies one Adam step to every parameter of `layer` by routing
    /// it through a flat store (capture → [`Adam::step_store`] → write
    /// back).
    pub fn step_layer(&mut self, layer: &mut dyn Layer) {
        let mut store = layer.export_store();
        self.step_store(&mut store);
        layer.import_values("", &store);
    }

    /// Exports the optimizer state for checkpointing, moments sorted by
    /// segment name.
    pub fn export_state(&self) -> AdamState {
        let mut moments: Vec<(String, Vec<f32>, Vec<f32>)> = self
            .moments
            .iter()
            .map(|(name, (m, v))| (name.clone(), m.clone(), v.clone()))
            .collect();
        moments.sort_by(|a, b| a.0.cmp(&b.0));
        AdamState { lr: self.lr, step: self.step, moments }
    }

    /// Restores optimizer state captured by [`Adam::export_state`].
    ///
    /// # Panics
    ///
    /// Panics if the state's learning rate is not positive.
    pub fn import_state(&mut self, state: &AdamState) {
        assert!(state.lr > 0.0, "learning rate must be positive");
        self.lr = state.lr;
        self.step = state.step;
        self.moments = state
            .moments
            .iter()
            .map(|(name, m, v)| (name.clone(), (m.clone(), v.clone())))
            .collect();
    }
}

/// Plain stochastic gradient descent with optional momentum. Velocity
/// state is keyed by segment name, like [`Adam`]'s moments.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<String, Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer without momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr, momentum: 0.0, velocity: HashMap::new() }
    }

    /// Returns a copy with momentum.
    ///
    /// # Panics
    ///
    /// Panics unless `momentum` is in `[0, 1)`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        self.momentum = momentum;
        self
    }

    /// Marks the start of one logical optimizer step. SGD keeps no
    /// step-indexed state, so this is a no-op — it exists so the
    /// trainer's segment-streaming pipeline can drive [`Adam`] and
    /// [`Sgd`] through the same `begin_step` / `step_segments`
    /// protocol.
    pub fn begin_step(&mut self) {}

    /// Applies one SGD update to segments `seg_lo..seg_hi` of `store`.
    /// Per-segment updates are independent: stepping disjoint ranges in
    /// any order composes bitwise to one whole-store step.
    ///
    /// # Panics
    ///
    /// Panics if a named segment's length differs from its velocity
    /// state.
    pub fn step_segments(&mut self, store: &mut ParamStore, seg_lo: usize, seg_hi: usize) {
        let (lr, mu) = (self.lr, self.momentum);
        for si in seg_lo..seg_hi {
            let seg = store.segments()[si].clone();
            let vel = self.velocity.entry(seg.name.clone()).or_insert_with(|| vec![0.0; seg.len]);
            assert_eq!(vel.len(), seg.len, "parameter layout changed between steps");
            for (i, v) in vel.iter_mut().enumerate() {
                let g = store.grads()[seg.offset + i];
                *v = mu * *v + g;
                store.values_mut()[seg.offset + i] -= lr * *v;
            }
        }
    }

    /// Applies one SGD step to every segment of `store`.
    ///
    /// # Panics
    ///
    /// Panics if a named segment's length differs from its velocity
    /// state.
    pub fn step_store(&mut self, store: &mut ParamStore) {
        self.begin_step();
        self.step_segments(store, 0, store.segments().len());
    }

    /// Applies one SGD step to every parameter of `layer`.
    pub fn step_layer(&mut self, layer: &mut dyn Layer) {
        let mut store = layer.export_store();
        self.step_store(&mut store);
        layer.import_values("", &store);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Layer, Linear};
    use crate::loss;
    use crate::tensor::Tensor;

    fn train(optim_step: &mut dyn FnMut(&mut Linear), steps: usize) -> f32 {
        let mut layer = Linear::new(1, 1, 3);
        let x = Tensor::from_vec([4, 1, 1, 1], vec![-1.0, 0.0, 1.0, 2.0]);
        let target = Tensor::from_vec([4, 1, 1, 1], vec![-3.0, -1.0, 1.0, 3.0]); // y = 2x - 1
        let mut final_loss = f32::INFINITY;
        for _ in 0..steps {
            let y = layer.forward(&x, true);
            let (l, grad) = loss::mse(&y, &target);
            final_loss = l;
            layer.zero_grad();
            layer.backward(&grad);
            optim_step(&mut layer);
        }
        final_loss
    }

    #[test]
    fn adam_fits_linear_function() {
        let mut adam = Adam::new(0.05);
        let loss = train(&mut |l| adam.step_layer(l), 400);
        assert!(loss < 1e-3, "final loss {loss}");
    }

    #[test]
    fn sgd_fits_linear_function() {
        let mut sgd = Sgd::new(0.05).with_momentum(0.9);
        let loss = train(&mut |l| sgd.step_layer(l), 400);
        assert!(loss < 1e-3, "final loss {loss}");
    }

    #[test]
    fn adam_converges_faster_than_plain_sgd_here() {
        let mut adam = Adam::new(0.05);
        let adam_loss = train(&mut |l| adam.step_layer(l), 60);
        let mut sgd = Sgd::new(0.005);
        let sgd_loss = train(&mut |l| sgd.step_layer(l), 60);
        assert!(adam_loss < sgd_loss, "adam {adam_loss} vs sgd {sgd_loss}");
    }

    #[test]
    fn set_lr_changes_rate() {
        let mut adam = Adam::new(0.1);
        adam.set_lr(0.01);
        assert_eq!(adam.lr(), 0.01);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_zero_lr() {
        Adam::new(0.0);
    }

    #[test]
    #[should_panic(expected = "parameter layout changed")]
    fn detects_layout_change() {
        let mut adam = Adam::new(0.01);
        let mut a = Linear::new(2, 2, 0);
        let mut b = Linear::new(3, 3, 0);
        let xa = Tensor::zeros([1, 2, 1, 1]);
        let ya = a.forward(&xa, true);
        a.zero_grad();
        a.backward(&ya);
        adam.step_layer(&mut a);
        // Feeding a different model into the same optimizer must fail:
        // both bare layers name their segments "weight"/"bias", but the
        // lengths differ.
        let xb = Tensor::zeros([1, 3, 1, 1]);
        let yb = b.forward(&xb, true);
        b.zero_grad();
        b.backward(&yb);
        adam.step_layer(&mut b);
    }

    #[test]
    fn step_store_matches_step_layer() {
        // Two identical layers, one driven through step_layer, the
        // other through an explicit store round-trip: identical values.
        let mut a = Linear::new(2, 3, 9);
        let mut b = Linear::new(2, 3, 9);
        let x = Tensor::from_vec([2, 2, 1, 1], vec![0.5, -1.0, 2.0, 0.25]);
        let mut adam_a = Adam::new(0.01);
        let mut adam_b = Adam::new(0.01);
        for _ in 0..3 {
            for (layer, opt, by_store) in
                [(&mut a, &mut adam_a, false), (&mut b, &mut adam_b, true)]
            {
                let y = layer.forward(&x, true);
                layer.zero_grad();
                layer.backward(&y);
                if by_store {
                    let mut store = layer.export_store();
                    opt.step_store(&mut store);
                    layer.import_values("", &store);
                } else {
                    opt.step_layer(&mut *layer);
                }
            }
        }
        let sa = a.export_store();
        let sb = b.export_store();
        assert_eq!(sa.values(), sb.values());
    }

    /// Builds a multi-layer store with deterministic pseudo-random
    /// values and gradients for the streaming-oracle tests.
    fn synthetic_store(seed: u64) -> ParamStore {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        for (name, len) in [
            ("net/conv2d0.weight", 24),
            ("net/conv2d0.bias", 4),
            ("net/batch_norm2d1.gamma", 4),
            ("net/batch_norm2d1.beta", 4),
            ("net/linear2.weight", 12),
            ("net/linear2.bias", 3),
        ] {
            let values: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let grads: Vec<f32> = (0..len).map(|_| rng.gen_range(-0.5f32..0.5)).collect();
            store.push_segment(name, &values, &grads);
        }
        store
    }

    /// The segment-granular path (`begin_step` + `step_segments` over
    /// any disjoint chunking) must reproduce the whole-arena
    /// `step_store` oracle bitwise — values *and* exported moments —
    /// across multiple steps. This is what lets the trainer stream
    /// layer groups into the optimizer as their reduced gradients land.
    #[test]
    fn segment_granular_adam_matches_whole_store_oracle_bitwise() {
        for chunk in [1usize, 2, 3, 4, 6] {
            let mut oracle_store = synthetic_store(41);
            let mut chunked_store = synthetic_store(41);
            let mut oracle = Adam::new(0.01);
            let mut chunked = Adam::new(0.01);
            for step in 0..3 {
                // Vary the gradients between steps so moments evolve.
                for (store, _) in [(&mut oracle_store, 0), (&mut chunked_store, 1)] {
                    for g in store.grads_mut() {
                        *g = (*g + 0.1 * step as f32) * 0.9;
                    }
                }
                oracle.step_store(&mut oracle_store);
                chunked.begin_step();
                let n = chunked_store.segments().len();
                let mut lo = 0;
                while lo < n {
                    let hi = (lo + chunk).min(n);
                    chunked.step_segments(&mut chunked_store, lo, hi);
                    lo = hi;
                }
                let a: Vec<u32> = oracle_store.values().iter().map(|v| v.to_bits()).collect();
                let b: Vec<u32> = chunked_store.values().iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, b, "chunk={chunk} step={step}");
            }
            assert_eq!(oracle.export_state(), chunked.export_state(), "chunk={chunk}");
        }
    }

    /// Same oracle check for SGD with momentum.
    #[test]
    fn segment_granular_sgd_matches_whole_store_oracle_bitwise() {
        let mut oracle_store = synthetic_store(43);
        let mut chunked_store = synthetic_store(43);
        let mut oracle = Sgd::new(0.05).with_momentum(0.9);
        let mut chunked = Sgd::new(0.05).with_momentum(0.9);
        for _ in 0..3 {
            oracle.step_store(&mut oracle_store);
            chunked.begin_step();
            let n = chunked_store.segments().len();
            for (lo, hi) in chunked_store.layer_groups() {
                chunked.step_segments(&mut chunked_store, lo, hi);
            }
            assert!(n > 0);
            let a: Vec<u32> = oracle_store.values().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = chunked_store.values().iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "before begin_step")]
    fn adam_step_segments_requires_begin_step() {
        let mut store = synthetic_store(47);
        let mut adam = Adam::new(0.01);
        adam.step_segments(&mut store, 0, 1);
    }

    #[test]
    fn adam_state_roundtrips() {
        let mut adam = Adam::new(0.05);
        let loss_before = train(&mut |l| adam.step_layer(l), 10);
        let state = adam.export_state();
        let mut restored = Adam::new(0.9);
        restored.import_state(&state);
        assert_eq!(restored.export_state(), state);
        assert_eq!(restored.lr(), 0.05);
        let _ = loss_before;
    }
}
