//! Optimizers.

use crate::layers::Layer;
use crate::param::Param;

/// Adam with Pix2Pix's defaults (`β₁ = 0.5`, `β₂ = 0.999`).
///
/// Moment state is keyed by parameter *visit order*, which is stable for
/// a given model, so one `Adam` instance must be paired with one model.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimizer with the GAN-standard betas (0.5, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam { lr, beta1: 0.5, beta2: 0.999, eps: 1e-8, step: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Returns a copy with custom betas.
    ///
    /// # Panics
    ///
    /// Panics unless both betas are in `[0, 1)`.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2),
            "betas must be in [0,1)"
        );
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (e.g. for linear decay schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one Adam step to every parameter of `layer`.
    pub fn step_layer(&mut self, layer: &mut dyn Layer) {
        let _span = cachebox_telemetry::span("nn.adam.step");
        self.step += 1;
        let t = self.step;
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let bias1 = 1.0 - b1.powi(t as i32);
        let bias2 = 1.0 - b2.powi(t as i32);
        let (m, v) = (&mut self.m, &mut self.v);
        let mut idx = 0;
        layer.visit_params(&mut |p: &mut Param| {
            if idx == m.len() {
                m.push(vec![0.0; p.len()]);
                v.push(vec![0.0; p.len()]);
            }
            assert_eq!(m[idx].len(), p.len(), "parameter layout changed between steps");
            let (pm, pv) = (&mut m[idx], &mut v[idx]);
            for i in 0..p.len() {
                let g = p.grad[i];
                pm[i] = b1 * pm[i] + (1.0 - b1) * g;
                pv[i] = b2 * pv[i] + (1.0 - b2) * g * g;
                let m_hat = pm[i] / bias1;
                let v_hat = pv[i] / bias2;
                p.value[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer without momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// Returns a copy with momentum.
    ///
    /// # Panics
    ///
    /// Panics unless `momentum` is in `[0, 1)`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        self.momentum = momentum;
        self
    }

    /// Applies one SGD step to every parameter of `layer`.
    pub fn step_layer(&mut self, layer: &mut dyn Layer) {
        let (lr, mu) = (self.lr, self.momentum);
        let velocity = &mut self.velocity;
        let mut idx = 0;
        layer.visit_params(&mut |p: &mut Param| {
            if idx == velocity.len() {
                velocity.push(vec![0.0; p.len()]);
            }
            let vel = &mut velocity[idx];
            for ((v, &g), value) in vel.iter_mut().zip(&p.grad).zip(&mut p.value) {
                *v = mu * *v + g;
                *value -= lr * *v;
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Layer, Linear};
    use crate::loss;
    use crate::tensor::Tensor;

    fn train(optim_step: &mut dyn FnMut(&mut Linear), steps: usize) -> f32 {
        let mut layer = Linear::new(1, 1, 3);
        let x = Tensor::from_vec([4, 1, 1, 1], vec![-1.0, 0.0, 1.0, 2.0]);
        let target = Tensor::from_vec([4, 1, 1, 1], vec![-3.0, -1.0, 1.0, 3.0]); // y = 2x - 1
        let mut final_loss = f32::INFINITY;
        for _ in 0..steps {
            let y = layer.forward(&x, true);
            let (l, grad) = loss::mse(&y, &target);
            final_loss = l;
            layer.zero_grad();
            layer.backward(&grad);
            optim_step(&mut layer);
        }
        final_loss
    }

    #[test]
    fn adam_fits_linear_function() {
        let mut adam = Adam::new(0.05);
        let loss = train(&mut |l| adam.step_layer(l), 400);
        assert!(loss < 1e-3, "final loss {loss}");
    }

    #[test]
    fn sgd_fits_linear_function() {
        let mut sgd = Sgd::new(0.05).with_momentum(0.9);
        let loss = train(&mut |l| sgd.step_layer(l), 400);
        assert!(loss < 1e-3, "final loss {loss}");
    }

    #[test]
    fn adam_converges_faster_than_plain_sgd_here() {
        let mut adam = Adam::new(0.05);
        let adam_loss = train(&mut |l| adam.step_layer(l), 60);
        let mut sgd = Sgd::new(0.005);
        let sgd_loss = train(&mut |l| sgd.step_layer(l), 60);
        assert!(adam_loss < sgd_loss, "adam {adam_loss} vs sgd {sgd_loss}");
    }

    #[test]
    fn set_lr_changes_rate() {
        let mut adam = Adam::new(0.1);
        adam.set_lr(0.01);
        assert_eq!(adam.lr(), 0.01);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_zero_lr() {
        Adam::new(0.0);
    }

    #[test]
    #[should_panic(expected = "parameter layout changed")]
    fn detects_layout_change() {
        let mut adam = Adam::new(0.01);
        let mut a = Linear::new(2, 2, 0);
        let mut b = Linear::new(3, 3, 0);
        let xa = Tensor::zeros([1, 2, 1, 1]);
        let ya = a.forward(&xa, true);
        a.zero_grad();
        a.backward(&ya);
        adam.step_layer(&mut a);
        // Feeding a different model into the same optimizer must fail.
        let xb = Tensor::zeros([1, 3, 1, 1]);
        let yb = b.forward(&xb, true);
        b.zero_grad();
        b.backward(&yb);
        adam.step_layer(&mut b);
    }
}
