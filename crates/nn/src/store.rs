//! Flat parameter storage: one contiguous value arena and one gradient
//! arena per model, with named, stably-ordered segments.
//!
//! A [`ParamStore`] is the external representation of a model's
//! learnable state. Layers keep owning their `Param`s for the
//! forward/backward hot path, but everything *around* the hot path —
//! the optimizer, serialization, gradient-norm guards, replica
//! broadcast and reduction — operates on the flat arenas:
//!
//! * **broadcast** — copying one model's weights into a replica is a
//!   single `copy_from_slice` of the value arena;
//! * **reduction** — per-replica gradient arenas are combined on the
//!   main thread with the canonical tree from [`crate::reduce`];
//! * **optimizer state** — Adam/SGD moments are keyed by segment
//!   *name* (e.g. `"net/conv2d0.weight"`), not by visiting position;
//! * **serialization** — checkpoints store named segments, so layouts
//!   can be validated by name instead of by position.
//!
//! Segment names follow `"{block}/{kind}{index}.{param}"`, composed by
//! `Sequential` and the model-level block visitors (see
//! `docs/PARALLEL_TRAINING.md`).

use std::collections::HashMap;

/// One named parameter tensor inside the flat arenas.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Stable path name, unique within the store.
    pub name: String,
    /// Offset of the first scalar in the arenas.
    pub offset: usize,
    /// Number of scalars.
    pub len: usize,
}

/// A model's parameters as two flat `f32` arenas (values + gradients)
/// plus the named segment table describing their layout.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamStore {
    values: Vec<f32>,
    grads: Vec<f32>,
    /// Second (back) gradient arena, sized lazily on first use: lets a
    /// consumer stage one reduced gradient term while another already
    /// occupies the front arena, then fold the two without a transient
    /// allocation ([`ParamStore::accumulate_back_grads`]).
    grads_back: Vec<f32>,
    segments: Vec<Segment>,
    index: HashMap<String, usize>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a named segment, copying `values` and `grads` into the
    /// arenas. Panics if the name is already taken or the slices
    /// disagree in length.
    pub fn push_segment(&mut self, name: &str, values: &[f32], grads: &[f32]) {
        assert_eq!(values.len(), grads.len(), "segment `{name}`: value/grad length mismatch");
        assert!(!self.index.contains_key(name), "duplicate parameter segment name `{name}`");
        let offset = self.values.len();
        self.values.extend_from_slice(values);
        self.grads.extend_from_slice(grads);
        self.index.insert(name.to_string(), self.segments.len());
        self.segments.push(Segment { name: name.to_string(), offset, len: values.len() });
    }

    /// The segment table, in stable declaration order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Looks a segment up by name.
    pub fn segment(&self, name: &str) -> Option<&Segment> {
        self.index.get(name).map(|&i| &self.segments[i])
    }

    /// Total number of scalars across all segments.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The flat value arena.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The flat value arena, mutably.
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// The flat gradient arena.
    pub fn grads(&self) -> &[f32] {
        &self.grads
    }

    /// The flat gradient arena, mutably.
    pub fn grads_mut(&mut self) -> &mut [f32] {
        &mut self.grads
    }

    /// The values of one segment.
    pub fn segment_values(&self, seg: &Segment) -> &[f32] {
        &self.values[seg.offset..seg.offset + seg.len]
    }

    /// The gradients of one segment.
    pub fn segment_grads(&self, seg: &Segment) -> &[f32] {
        &self.grads[seg.offset..seg.offset + seg.len]
    }

    /// Zeroes the gradient arena.
    pub fn zero_grads(&mut self) {
        self.grads.fill(0.0);
    }

    /// The back gradient arena, mutably, sized to match the front one.
    ///
    /// The trainer writes one loss term's reduced gradients here while
    /// the front arena holds another term's, then folds them with
    /// [`ParamStore::accumulate_back_grads`] — the double-buffer
    /// lifecycle described in `docs/PARALLEL_TRAINING.md`.
    pub fn back_grads_mut(&mut self) -> &mut [f32] {
        self.grads_back.resize(self.grads.len(), 0.0);
        &mut self.grads_back
    }

    /// Folds the back arena into the front one elementwise
    /// (`front[i] += back[i]`, front as the left/accumulator operand —
    /// the same orientation every tree node in [`crate::reduce`] uses).
    ///
    /// # Panics
    ///
    /// Panics if the back arena was never written
    /// ([`ParamStore::back_grads_mut`]).
    pub fn accumulate_back_grads(&mut self) {
        assert_eq!(self.grads_back.len(), self.grads.len(), "back gradient arena not staged");
        for (front, back) in self.grads.iter_mut().zip(&self.grads_back) {
            *front += *back;
        }
    }

    /// True when `other` has the same segment names, order, and sizes.
    pub fn layout_matches(&self, other: &ParamStore) -> bool {
        self.segments == other.segments
    }

    /// L2 norm of the gradient arena, accumulated in `f64` so large
    /// flat segments neither lose precision nor overflow in `f32`.
    pub fn grad_norm(&self) -> f64 {
        self.grads.iter().map(|&g| g as f64 * g as f64).sum::<f64>().sqrt()
    }

    /// Maximal runs of consecutive segments sharing a layer path
    /// (`weight` + `bias` of one conv, `gamma` + `beta` of one norm),
    /// as half-open segment-index ranges in declaration order.
    ///
    /// These are the atomic units of the streamed gradient pipeline:
    /// scanning, folding, and stepping whole layer groups in order
    /// reproduces the monolithic whole-arena pass bitwise, because no
    /// f64 norm accumulation run and no optimizer segment is ever split
    /// mid-layer.
    pub fn layer_groups(&self) -> Vec<(usize, usize)> {
        let mut groups = Vec::new();
        let mut i = 0;
        while i < self.segments.len() {
            let layer = layer_path(&self.segments[i].name);
            let mut j = i + 1;
            while j < self.segments.len() && layer_path(&self.segments[j].name) == layer {
                j += 1;
            }
            groups.push((i, j));
            i = j;
        }
        groups
    }

    /// The scalar span `[offset of first, end of last)` covered by a
    /// segment-index range, e.g. one [`ParamStore::layer_groups`] entry.
    pub fn scalar_span(&self, seg_lo: usize, seg_hi: usize) -> (usize, usize) {
        assert!(seg_lo < seg_hi && seg_hi <= self.segments.len(), "bad segment range");
        let first = &self.segments[seg_lo];
        let last = &self.segments[seg_hi - 1];
        (first.offset, last.offset + last.len)
    }

    /// Scans one layer group's gradients: squared L2 (accumulated in
    /// `f64`, segment by segment in order) and whether every value is
    /// finite. Summing the returned squares over
    /// [`ParamStore::layer_groups`] in order and taking the root is
    /// bitwise-identical to [`ParamStore::grad_norm_scan`]'s total.
    pub fn scan_layer_group(&self, seg_lo: usize, seg_hi: usize) -> (f64, bool) {
        let mut sq = 0.0f64;
        let mut finite = true;
        for seg in &self.segments[seg_lo..seg_hi] {
            for &g in self.segment_grads(seg) {
                finite &= g.is_finite();
                sq += g as f64 * g as f64;
            }
        }
        (sq, finite)
    }

    /// Per-layer gradient diagnostics over the segment table: returns
    /// the global L2 norm and, if any gradient is non-finite, the path
    /// of the first offending layer (segment name with the trailing
    /// `.param` component stripped) with that layer's own norm.
    ///
    /// Consecutive segments sharing a layer path (`weight` + `bias`)
    /// are grouped ([`ParamStore::layer_groups`]), matching the
    /// per-layer scan the trainer's gradient guard performs.
    pub fn grad_norm_scan(&self) -> (f32, Option<(String, f32)>) {
        let mut total = 0.0f64;
        let mut bad: Option<(String, f32)> = None;
        for (lo, hi) in self.layer_groups() {
            let (sq, finite) = self.scan_layer_group(lo, hi);
            total += sq;
            if !finite && bad.is_none() {
                bad = Some((layer_path(&self.segments[lo].name).to_string(), sq.sqrt() as f32));
            }
        }
        (total.sqrt() as f32, bad)
    }

    /// Overwrites this store's values from another store with an
    /// identical layout — the replica weight broadcast.
    pub fn copy_values_from(&mut self, other: &ParamStore) {
        assert!(self.layout_matches(other), "parameter store layouts differ");
        self.values.copy_from_slice(&other.values);
    }
}

/// The layer path of a segment name: everything before the final `.`.
pub fn layer_path(name: &str) -> &str {
    name.rsplit_once('.').map_or(name, |(path, _)| path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut s = ParamStore::new();
        s.push_segment("net/conv2d0.weight", &[1.0, 2.0], &[0.5, -0.5]);
        s.push_segment("net/conv2d0.bias", &[3.0], &[1.0]);
        s.push_segment("net/batch_norm2d1.gamma", &[1.0, 1.0], &[0.0, 0.0]);
        s
    }

    #[test]
    fn segments_are_stably_ordered_and_indexed() {
        let s = sample_store();
        assert_eq!(s.len(), 5);
        assert_eq!(s.segments()[1].name, "net/conv2d0.bias");
        let seg = s.segment("net/conv2d0.weight").unwrap();
        assert_eq!((seg.offset, seg.len), (0, 2));
        assert_eq!(s.segment_values(seg), &[1.0, 2.0]);
        assert_eq!(s.segment_grads(seg), &[0.5, -0.5]);
        assert!(s.segment("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate parameter segment name")]
    fn duplicate_names_are_rejected() {
        let mut s = sample_store();
        s.push_segment("net/conv2d0.bias", &[0.0], &[0.0]);
    }

    #[test]
    fn grad_norm_accumulates_in_f64() {
        let mut s = ParamStore::new();
        // 1e20 squared overflows f32 (max ~3.4e38); f64 handles it.
        s.push_segment("w", &[0.0, 0.0], &[1e20, 1e20]);
        let norm = s.grad_norm();
        // Expect sqrt(2)·g where g is the f32 value actually stored
        // (1e20 is not exactly representable in f32).
        let expect = (2.0f64).sqrt() * f64::from(1e20f32);
        assert!((norm - expect).abs() / norm < 1e-12);
    }

    #[test]
    fn scan_groups_weight_and_bias_into_one_layer() {
        let mut s = sample_store();
        let (norm, bad) = s.grad_norm_scan();
        assert!(bad.is_none());
        let expect = (0.25f64 + 0.25 + 1.0).sqrt() as f32;
        assert!((norm - expect).abs() < 1e-6);

        let seg = s.segment("net/conv2d0.bias").unwrap().clone();
        s.grads_mut()[seg.offset] = f32::NAN;
        let (_, bad) = s.grad_norm_scan();
        let (layer, _) = bad.expect("NaN must be reported");
        assert_eq!(layer, "net/conv2d0");
    }

    #[test]
    fn layer_groups_cover_segments_in_order() {
        let s = sample_store();
        let groups = s.layer_groups();
        assert_eq!(groups, vec![(0, 2), (2, 3)]);
        assert_eq!(s.scalar_span(0, 2), (0, 3));
        assert_eq!(s.scalar_span(2, 3), (3, 5));

        // Group-wise scan composes to the whole-arena scan bitwise.
        let (total, bad) = s.grad_norm_scan();
        assert!(bad.is_none());
        let mut sq = 0.0f64;
        for (lo, hi) in groups {
            let (part, finite) = s.scan_layer_group(lo, hi);
            assert!(finite);
            sq += part;
        }
        assert_eq!((sq.sqrt() as f32).to_bits(), total.to_bits());
    }

    #[test]
    fn back_grad_arena_stages_and_accumulates() {
        let mut s = sample_store();
        // Front arena: [0.5, -0.5, 1.0, 0.0, 0.0]
        s.back_grads_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        s.accumulate_back_grads();
        assert_eq!(s.grads(), &[1.5, 1.5, 4.0, 4.0, 5.0]);
        // The back arena is reusable staging; the front arena owns the
        // accumulated result.
        s.back_grads_mut().fill(0.25);
        s.accumulate_back_grads();
        assert_eq!(s.grads(), &[1.75, 1.75, 4.25, 4.25, 5.25]);
    }

    #[test]
    #[should_panic(expected = "back gradient arena not staged")]
    fn accumulate_requires_staged_back_arena() {
        let mut s = sample_store();
        s.accumulate_back_grads();
    }

    #[test]
    fn broadcast_requires_matching_layout() {
        let mut a = sample_store();
        let mut b = sample_store();
        b.values_mut().fill(9.0);
        a.copy_values_from(&b);
        assert!(a.values().iter().all(|&v| v == 9.0));
    }

    #[test]
    #[should_panic(expected = "layouts differ")]
    fn broadcast_rejects_layout_mismatch() {
        let mut a = sample_store();
        let mut b = ParamStore::new();
        b.push_segment("other", &[1.0], &[0.0]);
        a.copy_values_from(&b);
    }

    #[test]
    fn layer_path_strips_trailing_component() {
        assert_eq!(layer_path("net/conv2d0.weight"), "net/conv2d0");
        assert_eq!(layer_path("bare"), "bare");
    }
}
