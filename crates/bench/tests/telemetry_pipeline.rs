//! End-to-end telemetry pipeline test across crates: a harness-parsed
//! `--telemetry` flag starts a run, an instrumented simulation records
//! spans and counters, and the emitted JSONL stream validates against
//! its manifest.
//!
//! The collector is process-global, so this binary holds exactly one
//! test (see `crates/telemetry/tests` for the same pattern).

use cachebox_bench::HarnessArgs;
use cachebox_sim::{Cache, CacheConfig};
use cachebox_telemetry::manifest::RunManifest;
use cachebox_telemetry::validate::validate_files;
use cachebox_telemetry::Value;
use cachebox_workloads::{Suite, SuiteId};

#[test]
fn harness_flag_drives_a_validatable_run() {
    let dir = std::env::temp_dir().join("cachebox-bench-telemetry-test");
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("run.jsonl");

    let flags = [
        "--scale",
        "tiny",
        "--telemetry",
        jsonl.to_str().unwrap(),
        "--threads",
        "2",
        "--seed",
        "9",
    ];
    let args = HarnessArgs::parse_from(flags.iter().map(|s| s.to_string()), "small").unwrap();
    let guard = args.init_telemetry("telemetry_pipeline_test").expect("flag given, run starts");
    assert!(cachebox_telemetry::enabled());

    // Instrumented work: simulate one tiny benchmark trace.
    let config = CacheConfig::new(16, 2);
    let suite = Suite::build(SuiteId::Polybench, 1, 9);
    let trace = suite.benchmarks()[0].generate(2_000);
    let mut cache = Cache::new(config);
    let result = cache.run(&trace);
    assert_eq!(result.hit_flags.len(), trace.len());

    let summary = guard.finish();
    assert!(!cachebox_telemetry::enabled());

    // The sim recorded its counters under the config's label.
    let label = config.name();
    let accesses = summary.counters.get(&format!("sim.{label}.accesses"));
    assert_eq!(accesses, Some(&(trace.len() as u64)));
    assert!(summary.spans.iter().any(|s| s.path.ends_with("sim.run")));

    // Stream + manifest round-trip through the validator.
    let manifest_path = RunManifest::manifest_path_for(&jsonl);
    let report = validate_files(&jsonl, &manifest_path).unwrap();
    assert!(report.spans >= 1);
    assert!(report.counters >= 5, "expected the five sim counters, got {}", report.counters);

    // The manifest captured the harness configuration.
    let manifest = RunManifest::load(&manifest_path).unwrap();
    assert_eq!(manifest.run, "telemetry_pipeline_test");
    assert_eq!(manifest.threads, 2);
    assert_eq!(manifest.seed, Some(9));
    assert_eq!(manifest.config.get("epochs"), Some(&Value::U64(2)));
}
