//! Criterion benchmarks for heatmap construction (§4.2: heatmap
//! generation is the trace-side cost of the pipeline).

use cachebox_heatmap::{HeatmapBuilder, HeatmapGeometry};
use cachebox_trace::{Address, MemoryAccess, Trace};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};

fn trace(len: usize) -> Trace {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    (0..len as u64)
        .map(|i| MemoryAccess::load(i, Address::new(rng.gen_range(0..1u64 << 24))))
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let t = trace(200_000);
    let mut group = c.benchmark_group("heatmap/build");
    group.throughput(Throughput::Elements(t.len() as u64));
    for (name, geometry) in [
        ("64x64w32", HeatmapGeometry::new(64, 64, 32)),
        ("128x128w64", HeatmapGeometry::new(128, 128, 64)),
        ("512x512w100", HeatmapGeometry::paper()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &geometry, |b, &g| {
            let builder = HeatmapBuilder::new(g);
            b.iter(|| builder.build(&t));
        });
    }
    group.finish();
}

fn bench_build_pairs(c: &mut Criterion) {
    let t = trace(200_000);
    let flags: Vec<bool> = (0..t.len()).map(|i| i % 5 != 0).collect();
    let mut group = c.benchmark_group("heatmap/build_pairs");
    group.throughput(Throughput::Elements(t.len() as u64));
    group.bench_function("64x64w32", |b| {
        let builder = HeatmapBuilder::new(HeatmapGeometry::new(64, 64, 32));
        b.iter(|| builder.build_pairs(&t, &flags));
    });
    group.finish();
}

fn bench_overlap_cost(c: &mut Criterion) {
    let t = trace(100_000);
    let mut group = c.benchmark_group("heatmap/overlap");
    for overlap in [0.0, 0.3, 0.6] {
        let g = HeatmapGeometry::new(64, 64, 32).with_overlap(overlap);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{overlap:.1}")),
            &g,
            |b, &g| {
                let builder = HeatmapBuilder::new(g);
                b.iter(|| builder.build(&t));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build, bench_build_pairs, bench_overlap_cost
}
criterion_main!(benches);
