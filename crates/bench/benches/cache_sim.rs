//! Criterion benchmarks for the cache simulator substrate: replay
//! throughput across configurations, policies, and the hierarchy, plus
//! the MultiCacheSim baseline (supporting Fig. 11's comparison).

use cachebox_sim::multicache::MultiCacheSim;
use cachebox_sim::{Cache, CacheConfig, CacheHierarchy, HierarchyConfig, ReplacementPolicyKind};
use cachebox_trace::{Address, MemoryAccess, Trace};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};

fn mixed_trace(len: usize, seed: u64) -> Trace {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len as u64)
        .map(|i| {
            let block: u64 =
                if rng.gen_bool(0.8) { rng.gen_range(0..512) } else { rng.gen_range(0..65_536) };
            MemoryAccess::new(
                i,
                Address::new(block * 64),
                if rng.gen_bool(0.3) {
                    cachebox_trace::AccessKind::Store
                } else {
                    cachebox_trace::AccessKind::Load
                },
            )
        })
        .collect()
}

fn bench_single_level(c: &mut Criterion) {
    let trace = mixed_trace(100_000, 1);
    let mut group = c.benchmark_group("cache/replay");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for config in [CacheConfig::new(64, 12), CacheConfig::new(1024, 8), CacheConfig::new(2048, 16)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(config.name()), &config, |b, &cfg| {
            let mut cache = Cache::new(cfg);
            b.iter(|| cache.run(&trace));
        });
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let trace = mixed_trace(50_000, 2);
    let mut group = c.benchmark_group("cache/policy");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for policy in [
        ReplacementPolicyKind::Lru,
        ReplacementPolicyKind::Fifo,
        ReplacementPolicyKind::Random,
        ReplacementPolicyKind::TreePlru,
        ReplacementPolicyKind::Srrip,
    ] {
        let config = CacheConfig::new(64, 12).with_policy(policy);
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.to_string()),
            &config,
            |b, &cfg| {
                let mut cache = Cache::new(cfg);
                b.iter(|| cache.run(&trace));
            },
        );
    }
    group.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let trace = mixed_trace(50_000, 3);
    let mut group = c.benchmark_group("cache/hierarchy");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("l1_l2_l3", |b| {
        let mut h = CacheHierarchy::new(HierarchyConfig::paper_default());
        b.iter(|| h.run(&trace));
    });
    group.finish();
}

fn bench_multicache(c: &mut Criterion) {
    let trace = mixed_trace(20_000, 4);
    let mut group = c.benchmark_group("cache/multicachesim");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("64set-12way", |b| {
        let mut sim = MultiCacheSim::new(vec![CacheConfig::new(64, 12)]);
        b.iter(|| sim.run(&trace));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_single_level, bench_policies, bench_hierarchy, bench_multicache
}
criterion_main!(benches);
