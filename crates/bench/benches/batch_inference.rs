//! Criterion benchmark behind Fig. 11: generator inference time per
//! image as a function of batch size.

use cachebox_gan::data::Normalizer;
use cachebox_gan::infer::{infer_batched, infer_parallel};
use cachebox_gan::{CacheParams, UNetConfig, UNetGenerator};
use cachebox_heatmap::Heatmap;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn access_maps(n: usize, size: usize) -> Vec<Heatmap> {
    (0..n)
        .map(|k| {
            let mut h = Heatmap::zeros(size, size);
            for i in 0..size {
                h.set((i + k) % size, i, ((k + i) % 5) as f32);
            }
            h
        })
        .collect()
}

fn bench_batch_sizes(c: &mut Criterion) {
    let size = 32;
    let maps = access_maps(32, size);
    let norm = Normalizer::new(16);
    let params = CacheParams::new(64, 12);
    let mut group = c.benchmark_group("infer/batch_size");
    group.throughput(Throughput::Elements(maps.len() as u64));
    for batch in [1usize, 2, 4, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let config = UNetConfig::for_image_size(size, 8).with_param_features(2);
            let mut generator = UNetGenerator::new(config, 1);
            b.iter(|| infer_batched(&mut generator, &maps, Some(params), &norm, batch));
        });
    }
    group.finish();
}

fn bench_model_widths(c: &mut Criterion) {
    let size = 32;
    let maps = access_maps(8, size);
    let norm = Normalizer::new(16);
    let mut group = c.benchmark_group("infer/ngf");
    group.throughput(Throughput::Elements(maps.len() as u64));
    for ngf in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(ngf), &ngf, |b, &ngf| {
            let mut generator = UNetGenerator::new(UNetConfig::for_image_size(size, ngf), 1);
            b.iter(|| infer_batched(&mut generator, &maps, None, &norm, 8));
        });
    }
    group.finish();
}

/// Serial `infer_batched` vs multi-worker `infer_parallel` on the same
/// workload, so the recorded figures show the end-to-end inference
/// speedup per worker count.
fn bench_parallel_workers(c: &mut Criterion) {
    let size = 32;
    let maps = access_maps(32, size);
    let norm = Normalizer::new(16);
    let params = CacheParams::new(64, 12);
    let mut group = c.benchmark_group("infer/workers");
    group.throughput(Throughput::Elements(maps.len() as u64));
    group.bench_with_input(BenchmarkId::from_parameter("serial"), &(), |b, _| {
        let config = UNetConfig::for_image_size(size, 8).with_param_features(2);
        let mut generator = UNetGenerator::new(config, 1);
        b.iter(|| infer_batched(&mut generator, &maps, Some(params), &norm, 8));
    });
    for workers in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{workers}w")),
            &workers,
            |b, &workers| {
                let config = UNetConfig::for_image_size(size, 8).with_param_features(2);
                let mut generator = UNetGenerator::new(config, 1);
                b.iter(|| {
                    infer_parallel(&mut generator, &maps, Some(params), &norm, 8, workers)
                        .expect("parallel inference")
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch_sizes, bench_model_widths, bench_parallel_workers
}
criterion_main!(benches);
