//! Criterion benchmarks for the reuse-distance engine and the HRD/STM
//! baselines (the "traditional" column of Table 1).

use cachebox_baselines::{Hrd, MissRatePredictor, Stm, TabSynth, TabVariant};
use cachebox_sim::CacheConfig;
use cachebox_trace::{reuse::reuse_distances, Address, MemoryAccess, Trace};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};

fn trace(len: usize, blocks: u64) -> Trace {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    (0..len as u64)
        .map(|i| MemoryAccess::load(i, Address::new(rng.gen_range(0..blocks) * 64)))
        .collect()
}

fn bench_reuse_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("reuse/engine");
    for len in [10_000usize, 100_000] {
        let t = trace(len, 4096);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &t, |b, t| {
            b.iter(|| reuse_distances(t, 6));
        });
    }
    group.finish();
}

fn bench_baseline_predictors(c: &mut Criterion) {
    let t = trace(30_000, 8192);
    let config = CacheConfig::new(64, 12);
    let mut group = c.benchmark_group("baselines/predict");
    group.bench_function("hrd", |b| {
        let hrd = Hrd::new();
        b.iter(|| hrd.predict_miss_rate(&t, &config));
    });
    group.bench_function("stm", |b| {
        let stm = Stm::new(1);
        b.iter(|| stm.predict_miss_rate(&t, &config));
    });
    group.bench_function("tab_ic", |b| {
        let tab = TabSynth::new(TabVariant::InContext, 1);
        b.iter(|| tab.predict_miss_rate(&t, &config));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_reuse_engine, bench_baseline_predictors
}
criterion_main!(benches);
