//! Criterion microbenchmarks for the neural-network substrate: GEMM,
//! im2col, and the convolution layers that dominate CB-GAN's runtime.

use cachebox_nn::gemm::{gemm, im2col, PatchGrid};
use cachebox_nn::layers::{Conv2d, ConvTranspose2d, Layer};
use cachebox_nn::parallel::{gemm_with, Parallelism};
use cachebox_nn::Tensor;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn/gemm");
    for n in [64usize, 128, 256] {
        let a = vec![1.0f32; n * n];
        let b = vec![0.5f32; n * n];
        let mut out = vec![0.0f32; n * n];
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| gemm(&a, &b, n, n, n, &mut out));
        });
    }
    group.finish();
}

/// Serial vs row-partitioned GEMM at the paper-relevant 256³ shape, so
/// `cargo bench` records the speedup per thread count next to the
/// serial baseline.
fn bench_gemm_parallel(c: &mut Criterion) {
    let n = 256usize;
    let a = vec![1.0f32; n * n];
    let b = vec![0.5f32; n * n];
    let mut out = vec![0.0f32; n * n];
    let mut group = c.benchmark_group("nn/gemm_parallel/256");
    group.throughput(Throughput::Elements((n * n * n) as u64));
    group.bench_with_input(BenchmarkId::from_parameter("serial"), &(), |bench, _| {
        bench.iter(|| gemm(&a, &b, n, n, n, &mut out));
    });
    for threads in [2usize, 4, 8] {
        let par = Parallelism::new(threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}t")),
            &(),
            |bench, _| {
                bench.iter(|| gemm_with(par, &a, &b, n, n, n, &mut out));
            },
        );
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let grid = PatchGrid { channels: 16, height: 64, width: 64, kernel: 4, stride: 2, pad: 1 };
    let image = vec![1.0f32; grid.channels * grid.height * grid.width];
    let mut cols = vec![0.0f32; grid.patch_rows() * grid.positions()];
    c.bench_function("nn/im2col/16x64x64_k4s2", |b| {
        b.iter(|| im2col(&image, &grid, &mut cols));
    });
}

fn bench_conv_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn/conv_forward");
    for (cin, cout, size) in [(1usize, 16usize, 64usize), (16, 32, 32), (32, 64, 16)] {
        let label = format!("{cin}->{cout}@{size}");
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            let mut conv = Conv2d::new(cin, cout, 4, 2, 1, 0);
            let x = Tensor::zeros([4, cin, size, size]);
            b.iter(|| conv.forward(&x, false));
        });
    }
    group.finish();
}

fn bench_conv_backward(c: &mut Criterion) {
    c.bench_function("nn/conv_backward/16->32@32", |b| {
        let mut conv = Conv2d::new(16, 32, 4, 2, 1, 0);
        let x = Tensor::zeros([4, 16, 32, 32]);
        let y = conv.forward(&x, true);
        let g = Tensor::full(y.shape(), 1.0);
        b.iter(|| {
            conv.zero_grad();
            conv.backward(&g)
        });
    });
}

fn bench_convtranspose_forward(c: &mut Criterion) {
    c.bench_function("nn/convT_forward/32->16@16", |b| {
        let mut up = ConvTranspose2d::new(32, 16, 4, 2, 1, 0);
        let x = Tensor::zeros([4, 32, 16, 16]);
        b.iter(|| up.forward(&x, false));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm, bench_gemm_parallel, bench_im2col, bench_conv_forward,
              bench_conv_backward, bench_convtranspose_forward
}
criterion_main!(benches);
