//! Criterion benchmarks for synthetic trace generation — the
//! reproduction's substitute for Pin trace collection (§4.2 notes
//! heatmap generation from traces is the data-side cost).

use cachebox_workloads::{Suite, SuiteId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_suite_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads/generate");
    let accesses = 20_000usize;
    group.throughput(Throughput::Elements(accesses as u64));
    for suite_id in SuiteId::ALL {
        let suite = Suite::build(suite_id, 4, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(suite_id.to_string()),
            &suite,
            |b, suite| {
                let mut i = 0usize;
                b.iter(|| {
                    let bench = &suite.benchmarks()[i % suite.benchmarks().len()];
                    i += 1;
                    bench.generate(accesses)
                });
            },
        );
    }
    group.finish();
}

fn bench_suite_build(c: &mut Criterion) {
    c.bench_function("workloads/suite_build/spec_100", |b| {
        b.iter(|| Suite::build(SuiteId::Spec, 100, 3));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_suite_generation, bench_suite_build
}
criterion_main!(benches);
