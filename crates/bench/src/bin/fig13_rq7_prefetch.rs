//! Regenerates Fig. 13: next-line prefetcher modelling (MSE + SSIM).

use cachebox::experiments::rq7;
use cachebox_bench::{banner, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse("small");
    let _telemetry = args.init_telemetry("fig13_rq7_prefetch");
    banner(
        "Figure 13 (RQ7: learning prefetcher behaviour)",
        "consistently low MSE and high SSIM for next-line prefetch heatmaps",
        &args.scale,
    );
    let result = rq7::run(&args.scale);
    println!("{:<28} {:>10} {:>8}", "benchmark", "MSE", "SSIM");
    for r in &result.records {
        println!("{:<28} {:>10.4} {:>8.3}", r.name, r.mse, r.ssim);
    }
    println!();
    println!("means: MSE {:.4}, SSIM {:.3}", result.mean_mse, result.mean_ssim);
    args.maybe_save(&result);
}
