//! Extension beyond the paper (§6.3): how well does a CB-GAN trained on
//! LRU miss behaviour predict other replacement policies?

use cachebox::experiments::extension;
use cachebox::report;
use cachebox_bench::{banner, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse("small");
    let _telemetry = args.init_telemetry("ext_policy_transfer");
    banner(
        "Extension: replacement-policy transfer (paper §6.3 future work)",
        "paper trains and evaluates on LRU only; this measures zero-shot policy transfer",
        &args.scale,
    );
    let result = extension::policy_transfer(&args.scale);
    for p in &result.per_policy {
        let tag = if p.policy == "lru" { " (training policy)" } else { " (transfer)" };
        println!("--- {}{} ---", p.policy, tag);
        println!("{}", report::accuracy_table(&p.records));
        println!("summary: {}\n", report::summary_line(&p.summary));
    }
    args.maybe_save(&result);
}
