//! Developer utility: diagnose training quality — sweep epochs/ngf and
//! report accuracy on both the TRAINING and TEST benchmarks.

use cachebox::dataset::Pipeline;
use cachebox::experiments::{filter_with_fallback, LEVEL_THRESHOLDS};
use cachebox::Scale;
use cachebox_sim::CacheConfig;
use cachebox_workloads::Dataset;

fn main() {
    let _telemetry = cachebox_telemetry::init_from_env("tune_contrast");
    let args: Vec<String> = std::env::args().skip(1).collect();
    // args: epochs ngf [lambda-unused]
    let epochs: usize = args.first().map(|a| a.parse().unwrap()).unwrap_or(30);
    let ngf: usize = args.get(1).map(|a| a.parse().unwrap()).unwrap_or(8);
    let norm_scale: f32 = args.get(2).map(|a| a.parse().unwrap()).unwrap_or(4.0);
    let lambda: f32 = args.get(3).map(|a| a.parse().unwrap()).unwrap_or(150.0);
    let mut scale = Scale::small();
    scale.epochs = epochs;
    scale.ngf = ngf;
    scale.ndf = ngf;
    scale.norm_scale = norm_scale;
    let pipeline = Pipeline::new(&scale);
    let config = CacheConfig::new(64, 12);
    let dataset = Dataset::build(
        scale.spec_benchmarks,
        scale.ligra_benchmarks,
        scale.polybench_benchmarks,
        scale.seed,
    );
    let train = filter_with_fallback(&pipeline, &dataset.split.train, &config, LEVEL_THRESHOLDS[0]);
    let test = filter_with_fallback(&pipeline, &dataset.split.test, &config, LEVEL_THRESHOLDS[0]);
    let samples = pipeline.training_samples(&train, &[config]);
    eprintln!("epochs={epochs} ngf={ngf} norm_scale={norm_scale} lambda={lambda} train_benches={} samples={}", train.len(), samples.len());
    let (mut generator, history) =
        cachebox::experiments::train_cbgan_with(&scale, &samples, true, lambda);
    for (i, h) in history.iter().enumerate() {
        if i % 10 == 0 || i + 1 == history.len() {
            eprintln!("  epoch {i}: D={:.3} G_adv={:.3} G_L1={:.4}", h.d_loss, h.g_adv, h.g_l1);
        }
    }
    for (label, set) in [("TRAIN", &train), ("TEST", &test)] {
        println!("--- {label} ---");
        for b in set.iter().take(6) {
            let r = pipeline.evaluate(&mut generator, b, &config, true, scale.batch_size);
            println!(
                "   {:<28} true {:>6.2} pred {:>6.2}",
                r.name,
                r.true_rate * 100.0,
                r.predicted_rate * 100.0
            );
        }
    }
}
