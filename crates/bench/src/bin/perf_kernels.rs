//! Measures the blocked/packed GEMM against the naive oracle (under
//! both the fixed legacy blocking and the geometry-derived one), the
//! batch-parallel conv layers against the serial loop, and derives the
//! serial/parallel crossover threshold — asserting bitwise identity
//! everywhere — then writes the results as JSON (see
//! `BENCH_kernels.json` at the repo root for a recorded run). The
//! detected cache geometry, active blocking, and dispatched microkernel
//! are recorded so the numbers stay interpretable across hosts.
//!
//! ```text
//! cargo run --release -p cachebox-bench --bin perf_kernels -- \
//!     [--smoke] [--threads N[,N...]] [--out PATH] [--telemetry PATH]
//! ```
//!
//! Build with `--features simd` to measure the SIMD microkernels (the
//! `kernel` field in the report names which microkernel ran; AVX-512
//! is used automatically where detected).

use cachebox_nn::geometry::{self, FIXED_BLOCKING};
use cachebox_nn::layers::{Conv2d, ConvTranspose2d, Layer};
use cachebox_nn::parallel::{self, Parallelism};
use cachebox_nn::{blocked, gemm, tuning, Tensor};
use cachebox_telemetry::progress;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct GemmRecord {
    shape: [usize; 3],
    naive_seconds: f64,
    /// Scalar microkernel under the geometry-derived blocking.
    blocked_seconds: f64,
    speedup: f64,
    naive_gflops: f64,
    blocked_gflops: f64,
    /// Scalar microkernel under the legacy fixed 64/256/256 blocking,
    /// for the geometry-vs-fixed comparison.
    fixed_blocked_seconds: f64,
    /// `fixed_blocked_seconds / blocked_seconds`: > 1 means the
    /// geometry-derived blocking wins.
    geometry_speedup: f64,
    /// The widest available SIMD microkernel, measured separately
    /// (`None` unless built with `--features simd` on a capable CPU).
    simd_seconds: Option<f64>,
    simd_speedup: Option<f64>,
    simd_gflops: Option<f64>,
    bitwise_identical: bool,
}

#[derive(Serialize)]
struct ConvRecord {
    layer: &'static str,
    threads: usize,
    forward_seconds: f64,
    backward_seconds: f64,
    forward_speedup: f64,
    backward_speedup: f64,
    bitwise_identical: bool,
}

#[derive(Serialize)]
struct Threshold {
    spawn_overhead_seconds: f64,
    blocked_macs_per_second: f64,
    derived_crossover_macs: u64,
    current_default_macs: u64,
    env_var: &'static str,
    note: String,
}

#[derive(Serialize)]
struct GeometryInfo {
    spec: String,
    source: &'static str,
    l1d_bytes: u64,
    l2_bytes: u64,
    l3_bytes: Option<u64>,
    line_bytes: u64,
}

#[derive(Serialize)]
struct BlockingInfo {
    mc: usize,
    kc: usize,
    nc: usize,
    source: String,
}

#[derive(Serialize)]
struct Report {
    host_cpus: usize,
    kernel: &'static str,
    simd_active: bool,
    /// The cache hierarchy the blocking was derived from.
    geometry: GeometryInfo,
    /// The blocking active at the end of the run (analytical, or the
    /// telemetry refinement when the shard histogram was thick enough).
    blocking: BlockingInfo,
    gemm: Vec<GemmRecord>,
    conv: Vec<ConvRecord>,
    threshold: Threshold,
    note: String,
}

fn geometry_info() -> GeometryInfo {
    let geo = geometry::detect();
    GeometryInfo {
        spec: geo.spec(),
        source: geo.source.label(),
        l1d_bytes: geo.l1d as u64,
        l2_bytes: geo.l2 as u64,
        l3_bytes: geo.l3.map(|b| b as u64),
        line_bytes: geo.line as u64,
    }
}

fn blocking_info() -> BlockingInfo {
    let blk = geometry::blocking();
    BlockingInfo {
        mc: blk.mc,
        kc: blk.kc,
        nc: blk.nc,
        source: geometry::blocking_source().to_string(),
    }
}

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct Args {
    smoke: bool,
    threads: Vec<usize>,
    out: std::path::PathBuf,
    telemetry: Option<std::path::PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        threads: vec![2usize, 4],
        out: std::path::PathBuf::from("BENCH_kernels.json"),
        telemetry: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--threads" => {
                args.threads = value("--threads")
                    .split(',')
                    .map(|t| {
                        t.trim().parse().unwrap_or_else(|e| {
                            eprintln!("error: bad --threads entry {t:?}: {e}");
                            std::process::exit(2);
                        })
                    })
                    .filter(|&n| n > 1)
                    .collect();
            }
            "--out" => args.out = std::path::PathBuf::from(value("--out")),
            "--telemetry" => args.telemetry = Some(std::path::PathBuf::from(value("--telemetry"))),
            other => {
                eprintln!("error: unknown flag {other:?}");
                eprintln!(
                    "usage: perf_kernels [--smoke] [--threads N[,N...]] [--out PATH] [--telemetry PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Dense data with no exact zeros: the naive kernels' zero-skip branch
/// would otherwise skip whole rows of work and distort the comparison
/// (zero-dense inputs are covered by the bitwise property tests, not
/// timed here).
fn filled(len: usize, phase: usize) -> Vec<f32> {
    (0..len).map(|i| (((i * 7 + phase) % 13) as f32 - 6.5) / 6.5).collect()
}

fn filled_tensor(shape: [usize; 4], phase: usize) -> Tensor {
    Tensor::from_vec(shape, filled(shape.iter().product(), phase))
}

/// Naive vs blocked-scalar (fixed and geometry-derived blocking) vs
/// the widest blocked-SIMD kernel at one cube size, single-threaded,
/// bitwise-checked everywhere.
fn bench_gemm(size: usize, reps: usize) -> GemmRecord {
    let (m, k, n) = (size, size, size);
    let a = filled(m * k, 1);
    let b = filled(k * n, 2);
    let flops = 2.0 * (m * k * n) as f64;

    let mut reference = vec![0.0f32; m * n];
    let naive_seconds = best_of(reps, || {
        reference.fill(0.0);
        gemm::gemm_acc(&a, &b, m, k, n, &mut reference);
    });

    // Scalar microkernel (SIMD forced off so both kernels are measured
    // regardless of build features), geometry-derived blocking.
    geometry::clear_blocking();
    blocked::set_simd_enabled(false);
    let mut out = vec![0.0f32; m * n];
    let blocked_seconds = best_of(reps, || {
        out.fill(0.0);
        blocked::gemm_acc(&a, &b, m, k, n, &mut out);
    });
    let mut bitwise_identical = reference == out;
    assert!(bitwise_identical, "blocked scalar GEMM diverged from naive at {size}^3");

    // Same scalar kernel under the legacy fixed 64/256/256 blocking:
    // the geometry-vs-fixed comparison the derivation has to win.
    geometry::install_blocking(FIXED_BLOCKING, "fixed:64/256/256");
    let fixed_blocked_seconds = best_of(reps, || {
        out.fill(0.0);
        blocked::gemm_acc(&a, &b, m, k, n, &mut out);
    });
    bitwise_identical = reference == out;
    assert!(bitwise_identical, "fixed-blocking GEMM diverged from naive at {size}^3");
    geometry::clear_blocking();

    blocked::set_simd_enabled(true);
    let (mut simd_seconds, mut simd_speedup, mut simd_gflops) = (None, None, None);
    if blocked::simd_active() {
        let seconds = best_of(reps, || {
            out.fill(0.0);
            blocked::gemm_acc(&a, &b, m, k, n, &mut out);
        });
        bitwise_identical = reference == out;
        assert!(bitwise_identical, "blocked SIMD GEMM diverged from naive at {size}^3");
        simd_seconds = Some(seconds);
        simd_speedup = Some(naive_seconds / seconds);
        simd_gflops = Some(flops / seconds / 1e9);
    }

    let speedup = naive_seconds / blocked_seconds;
    let geometry_speedup = fixed_blocked_seconds / blocked_seconds;
    progress!(
        "gemm {size}^3: naive {naive_seconds:.5}s, blocked {blocked_seconds:.5}s \
         ({speedup:.2}x), fixed-blocking {fixed_blocked_seconds:.5}s \
         (geometry {geometry_speedup:.2}x){}",
        match simd_seconds {
            Some(s) => format!(", {} {s:.5}s ({:.2}x)", blocked::kernel_label(), naive_seconds / s),
            None => String::new(),
        }
    );
    GemmRecord {
        shape: [m, k, n],
        naive_seconds,
        blocked_seconds,
        speedup,
        naive_gflops: flops / naive_seconds / 1e9,
        blocked_gflops: flops / blocked_seconds / 1e9,
        fixed_blocked_seconds,
        geometry_speedup,
        simd_seconds,
        simd_speedup,
        simd_gflops,
        bitwise_identical,
    }
}

/// Forward + backward under an installed budget; returns outputs and
/// gradients for the bitwise check.
fn conv_step<L: Layer>(layer: &mut L, input: &Tensor) -> (Tensor, Tensor, Vec<Vec<f32>>) {
    let out = layer.forward(input, true);
    let grad_out = filled_tensor(out.shape(), 5);
    layer.zero_grad();
    let grad_in = layer.backward(&grad_out);
    let mut grads = Vec::new();
    layer.visit_params(&mut |p| grads.push(p.grad.clone()));
    (out, grad_in, grads)
}

fn bench_conv<L: Layer>(
    label: &'static str,
    mut make: impl FnMut() -> L,
    input: &Tensor,
    threads: &[usize],
    reps: usize,
    records: &mut Vec<ConvRecord>,
) {
    Parallelism::serial().install();
    let mut layer = make();
    let serial_result = conv_step(&mut layer, input);
    let fwd_serial = best_of(reps, || {
        layer.forward(input, true);
    });
    let grad_out = filled_tensor(serial_result.0.shape(), 5);
    let bwd_serial = best_of(reps, || {
        layer.zero_grad();
        layer.backward(&grad_out);
    });
    progress!("{label} serial: fwd {fwd_serial:.5}s, bwd {bwd_serial:.5}s");
    records.push(ConvRecord {
        layer: label,
        threads: 1,
        forward_seconds: fwd_serial,
        backward_seconds: bwd_serial,
        forward_speedup: 1.0,
        backward_speedup: 1.0,
        bitwise_identical: true,
    });

    for &t in threads {
        Parallelism::new(t).install();
        let mut layer = make();
        let result = conv_step(&mut layer, input);
        let bitwise_identical = result == serial_result;
        assert!(bitwise_identical, "{label} diverged from serial at {t} threads");
        let forward_seconds = best_of(reps, || {
            layer.forward(input, true);
        });
        let backward_seconds = best_of(reps, || {
            layer.zero_grad();
            layer.backward(&grad_out);
        });
        let forward_speedup = fwd_serial / forward_seconds;
        let backward_speedup = bwd_serial / backward_seconds;
        progress!(
            "{label} {t} threads: fwd {forward_seconds:.5}s ({forward_speedup:.2}x), \
             bwd {backward_seconds:.5}s ({backward_speedup:.2}x)"
        );
        records.push(ConvRecord {
            layer: label,
            threads: t,
            forward_seconds,
            backward_seconds,
            forward_speedup,
            backward_speedup,
            bitwise_identical,
        });
    }
    Parallelism::serial().install();
}

/// Derives the serial/parallel crossover: the MAC count whose serial
/// runtime equals roughly twice the cost of spawning a worker pair, so
/// splitting starts to pay. On single-core hosts no true crossover is
/// measurable; the derivation still yields a sane spawn-amortisation
/// bound (flagged in the note).
fn derive_threshold(blocked_macs_per_second: f64, host_cpus: usize) -> Threshold {
    // Probe real OS-thread spawn + join cost (what a scoped parallel
    // region pays per worker pair).
    let spawn_overhead_seconds = best_of(20, || {
        let handles: Vec<_> =
            (0..2).map(|_| std::thread::spawn(|| std::hint::black_box(0u64))).collect();
        for h in handles {
            h.join().expect("spawn probe panicked");
        }
    });
    let derived = (2.0 * spawn_overhead_seconds * blocked_macs_per_second) as u64;
    let note = if host_cpus <= 1 {
        "host has a single CPU: no parallel speedup is measurable, so the crossover is \
         derived from spawn overhead x MAC rate rather than observed"
            .to_string()
    } else {
        "crossover derived from measured spawn overhead x single-thread MAC rate".to_string()
    };
    progress!(
        "threshold: spawn {spawn_overhead_seconds:.2e}s, \
         {blocked_macs_per_second:.3e} MAC/s -> crossover ~{derived} MACs \
         (active {})",
        parallel::par_flop_threshold()
    );
    Threshold {
        spawn_overhead_seconds,
        blocked_macs_per_second,
        derived_crossover_macs: derived,
        current_default_macs: parallel::par_flop_threshold() as u64,
        env_var: parallel::GEMM_THRESHOLD_ENV_VAR,
        note,
    }
}

fn main() {
    let args = parse_args();
    let _telemetry = match args.telemetry {
        Some(path) => {
            let config = cachebox_telemetry::TelemetryConfig::new("perf_kernels")
                .with_jsonl(path)
                .with_threads(args.threads.iter().copied().max().unwrap_or(1));
            Some(cachebox_telemetry::init(config))
        }
        None => cachebox_telemetry::init_from_env("perf_kernels"),
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let geo = geometry::detect();
    progress!(
        "=== CacheBox kernel measurement (host cpus: {host_cpus}, kernel: {}) ===",
        blocked::kernel_label()
    );
    progress!(
        "cache geometry: {} (source: {}), analytic blocking: {}",
        geo.spec(),
        geo.source.label(),
        geometry::analytic_blocking().label()
    );
    if host_cpus <= 1 {
        eprintln!(
            "warning: single-CPU host; thread-count speedups will not exceed 1x \
             (bitwise checks still meaningful)"
        );
    }

    let (gemm_sizes, conv_shape, reps): (&[usize], [usize; 4], usize) =
        if args.smoke { (&[64, 96], [2, 3, 12, 12], 2) } else { (&[256, 512], [4, 8, 32, 32], 5) };

    let gemm_records: Vec<GemmRecord> = gemm_sizes.iter().map(|&s| bench_gemm(s, reps)).collect();

    let mut conv_records = Vec::new();
    let input = filled_tensor(conv_shape, 1);
    bench_conv(
        "conv2d",
        || Conv2d::new(conv_shape[1], 2 * conv_shape[1], 4, 2, 1, 42),
        &input,
        &args.threads,
        reps,
        &mut conv_records,
    );
    bench_conv(
        "conv_transpose2d",
        || ConvTranspose2d::new(conv_shape[1], conv_shape[1], 4, 2, 1, 42),
        &input,
        &args.threads,
        reps,
        &mut conv_records,
    );

    // The conv legs above ran the parallel GEMM wrappers, so when
    // telemetry is on the shard histogram now has warm-up samples:
    // refine the analytical blocking from it (no-op otherwise — the
    // analytical blocking stays, and either way the active choice plus
    // geometry and kernel land in the run manifest).
    match tuning::autotune_gemm_blocking() {
        Some(tuned) => progress!(
            "gemm blocking refined from {} to {} (from nn.gemm.shard_ns)",
            geometry::analytic_blocking().label(),
            tuned.label()
        ),
        None => progress!("gemm blocking stays analytical: {}", geometry::blocking().label()),
    }

    // MAC rate from the largest measured cube.
    let rate = gemm_records
        .last()
        .map(|r| {
            let [m, k, n] = r.shape;
            (m * k * n) as f64 / r.blocked_seconds
        })
        .unwrap_or(1e9);
    let threshold = derive_threshold(rate, host_cpus);

    let report = Report {
        host_cpus,
        kernel: blocked::kernel_label(),
        simd_active: blocked::simd_active(),
        geometry: geometry_info(),
        blocking: blocking_info(),
        gemm: gemm_records,
        conv: conv_records,
        threshold,
        note: format!(
            "best-of-{reps} wall-clock; all speedups bitwise-verified against the naive \
             oracle / serial loop{}",
            if args.smoke { " (smoke sizes)" } else { "" }
        ),
    };
    match cachebox::report::save_json(&args.out, &report) {
        Ok(()) => progress!("wrote {}", args.out.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", args.out.display());
            std::process::exit(1);
        }
    }
}
