//! Ablation of the reconstruction weight λ (paper §4.3: λ = 150).

use cachebox::experiments::ablation;
use cachebox_bench::{banner, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse("small");
    let _telemetry = args.init_telemetry("ablation_lambda");
    banner(
        "Ablation: L1 reconstruction weight lambda",
        "the paper balances adversarial and L1 losses with lambda = 150",
        &args.scale,
    );
    let result = ablation::lambda_sweep(&args.scale, &[5.0, 20.0, 50.0, 150.0]);
    println!("{:<16} {:>10} {:>10}", "setting", "avg %diff", "worst");
    for p in &result.points {
        println!("{:<16} {:>10.2} {:>10.2}", p.setting, p.summary.average, p.summary.worst);
    }
    args.maybe_save(&result);
}
