//! Regenerates Fig. 12: true-vs-predicted hit-rate scatter.

use cachebox::experiments::{rq2, rq6};
use cachebox_bench::{banner, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse("small");
    let _telemetry = args.init_telemetry("fig12_rq6_scatter");
    banner(
        "Figure 12 (RQ6: cache response characteristics)",
        "dense cluster above 90% true hit rate; positive bias in the 70-90% band",
        &args.scale,
    );
    let mut artifacts =
        rq2::train_or_load(&args.scale, &cachebox_bench::rq2_cache_path(&args.scale));
    let result = rq6::run_with(&mut artifacts);
    println!("{:<14} {:<24} {:>8} {:>8}", "config", "benchmark", "true%", "pred%");
    for p in &result.points {
        println!(
            "{:<14} {:<24} {:>8.2} {:>8.2}",
            p.config,
            p.record.name,
            p.record.true_rate * 100.0,
            p.record.predicted_rate * 100.0
        );
    }
    println!();
    println!(
        "mean signed bias (pred - true): high band [90,100]%: {:+.2} pp, mid band [70,90)%: {:+.2} pp",
        result.bias_high_band * 100.0,
        result.bias_mid_band * 100.0
    );
    args.maybe_save(&result);
}
