//! Reproduction robustness: reruns the RQ1 experiment across several
//! seeds (fresh dataset split, initialization, and batching per seed)
//! and reports the spread of the headline metric.

use cachebox::experiments::rq1;
use cachebox_bench::{banner, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse("small");
    let _telemetry = args.init_telemetry("ext_seed_sensitivity");
    banner(
        "Extension: seed sensitivity of the RQ1 headline metric",
        "the paper reports single-seed results; this measures run-to-run spread",
        &args.scale,
    );
    let seeds = [args.scale.seed, args.scale.seed + 1, args.scale.seed + 2];
    let mut averages = Vec::new();
    for seed in seeds {
        let scale = args.scale.with_seed(seed);
        let result = rq1::run(&scale);
        println!(
            "seed {seed}: avg {:.2}% worst {:.2}% over n={}",
            result.summary.average, result.summary.worst, result.summary.count
        );
        averages.push(result.summary.average);
    }
    let mean = averages.iter().sum::<f64>() / averages.len() as f64;
    let var = averages.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / averages.len() as f64;
    println!("\nheadline average across seeds: {:.2}% ± {:.2} (std)", mean, var.sqrt());
    args.maybe_save(&averages);
}
