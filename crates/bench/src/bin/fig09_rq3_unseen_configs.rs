//! Regenerates Fig. 9: zero-shot generalization to unseen cache
//! configurations.

use cachebox::experiments::{rq2, rq3};
use cachebox::report;
use cachebox_bench::{banner, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse("small");
    let _telemetry = args.init_telemetry("fig09_rq3_unseen_configs");
    banner(
        "Figure 9 (RQ3: configurations absent from training)",
        "averages 1.96/1.26/3.28% for 256s6w/256s12w/32s12w",
        &args.scale,
    );
    let mut artifacts =
        rq2::train_or_load(&args.scale, &cachebox_bench::rq2_cache_path(&args.scale));
    let result = rq3::evaluate(&mut artifacts);
    for config in &result.per_config {
        println!("--- {} (unseen) ---", config.config);
        println!("{}", report::accuracy_table(&config.records));
        println!("summary: {}\n", report::summary_line(&config.summary));
    }
    args.maybe_save(&result);
}
