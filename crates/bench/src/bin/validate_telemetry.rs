//! Validates a telemetry JSONL stream against its run manifest; the CI
//! smoke job runs this over the streams the figure binaries emit.
//!
//! ```text
//! cargo run --release -p cachebox-bench --bin validate_telemetry -- \
//!     <run.jsonl> [<run.manifest.json>]
//! ```
//!
//! The manifest path defaults to the stream's sibling
//! `<stem>.manifest.json`. Exits 0 and prints a one-line tally on
//! success; exits 1 with the first violation otherwise.

use cachebox_telemetry::manifest::RunManifest;
use cachebox_telemetry::validate::validate_files;
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(jsonl) = args.next().map(PathBuf::from) else {
        eprintln!("usage: validate_telemetry <run.jsonl> [<run.manifest.json>]");
        std::process::exit(2);
    };
    let manifest =
        args.next().map_or_else(|| RunManifest::manifest_path_for(&jsonl), PathBuf::from);
    match validate_files(&jsonl, &manifest) {
        Ok(report) => {
            println!(
                "ok: {} records ({} spans, {} counters, {} gauges, {} histograms, \
                 {} events, {} progress, {} heartbeats)",
                report.records,
                report.spans,
                report.counters,
                report.gauges,
                report.histograms,
                report.events,
                report.progress,
                report.heartbeats,
            );
        }
        Err(e) => {
            eprintln!("telemetry validation failed: {e}");
            std::process::exit(1);
        }
    }
}
