//! Regenerates Fig. 10: L1/L2/L3 — combined vs standalone models.

use cachebox::experiments::rq4;
use cachebox::report;
use cachebox_bench::{banner, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse("small");
    let _telemetry = args.init_telemetry("fig10_rq4_levels");
    banner(
        "Figure 10 (RQ4: cache hierarchy levels, combined vs standalone)",
        "combined 3.23/17.63/14.06%, standalone 3.70/11.40/15.89% for L1/L2/L3",
        &args.scale,
    );
    let result = rq4::run(&args.scale);
    for (label, levels) in
        [("combined (no cache params)", &result.combined), ("standalone", &result.standalone)]
    {
        println!("==== {label} ====");
        for level in levels {
            println!("--- {} ---", level.level);
            println!("{}", report::accuracy_table(&level.records));
            if !level.excluded.is_empty() {
                println!("excluded (low data regime): {}", level.excluded.join(", "));
            }
            if level.threshold_relaxed {
                println!("note: threshold relaxed — every benchmark was below the §6.1 cut at this level");
            }
            println!("summary: {}\n", report::summary_line(&level.summary));
        }
    }
    args.maybe_save(&result);
}
