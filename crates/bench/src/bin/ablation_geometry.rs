//! Ablation of the heatmap modulo height (paper §4.2: modulo 512 with
//! window 100 at full scale).

use cachebox::experiments::ablation;
use cachebox_bench::{banner, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse("small");
    let _telemetry = args.init_telemetry("ablation_geometry");
    banner(
        "Ablation: heatmap modulo height at fixed access budget",
        "the paper finds modulo 512 with 100-unit windows most accurate at 512x512",
        &args.scale,
    );
    let size = args.scale.image_size();
    let result = ablation::geometry_sweep(&args.scale, &[size / 2, size, size * 2]);
    println!("{:<16} {:>10} {:>10}", "setting", "avg %diff", "worst");
    for p in &result.points {
        println!("{:<16} {:>10.2} {:>10.2}", p.setting, p.summary.average, p.summary.worst);
    }
    args.maybe_save(&result);
}
