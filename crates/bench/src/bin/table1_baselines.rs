//! Regenerates Table 1: CBox vs HRD, STM, and tabular synthesis on L1
//! miss-rate prediction.

use cachebox::experiments::table1;
use cachebox_bench::{banner, HarnessArgs};

fn print_row(r: &table1::Table1Row) {
    println!(
        "{:<6} {:>9.2} {:>8.2} {:>8.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>8.2}",
        r.app,
        r.tabular[0],
        r.tabular[1],
        r.tabular[2],
        r.hrd,
        r.stm,
        r.cbox_best,
        r.cbox_worst,
        r.cbox_avg
    );
}

fn main() {
    let args = HarnessArgs::parse("small");
    let _telemetry = args.init_telemetry("table1_baselines");
    banner(
        "Table 1 (CBox vs REaLTabFormer variants, HRD, STM)",
        "CBox lowest average abs % diff: best 0.39, worst 6.15, average 3.68",
        &args.scale,
    );
    let result = table1::run(&args.scale);
    println!(
        "{:<6} {:>9} {:>8} {:>8} {:>7} {:>7} {:>7} {:>7} {:>8}",
        "app", "Tab-Base", "Tab-RD", "Tab-IC", "HRD", "STM", "best", "worst", "average"
    );
    for row in &result.rows {
        print_row(row);
    }
    print_row(&result.averages);
    args.maybe_save(&result);
}
