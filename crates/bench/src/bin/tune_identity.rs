//! Developer utility: probe UNet identity-learning across image sizes
//! and learning rates.

use cachebox::dataset::Pipeline;
use cachebox::Scale;
use cachebox_gan::data::Normalizer;
use cachebox_gan::unet::UNetAsLayer;
use cachebox_gan::{UNetConfig, UNetGenerator};
use cachebox_heatmap::HeatmapGeometry;
use cachebox_nn::loss;
use cachebox_nn::optim::Adam;
use cachebox_sim::CacheConfig;
use cachebox_workloads::{Suite, SuiteId};

fn main() {
    let _telemetry = cachebox_telemetry::init_from_env("tune_identity");
    let config = CacheConfig::new(64, 12);
    let suite = Suite::build(SuiteId::Spec, 2, 42);
    for size in [32usize] {
        let mut scale = Scale::small();
        scale.geometry = HeatmapGeometry::new(size, size, 16);
        let pipeline = Pipeline::new(&scale);
        let norm = Normalizer::new(16).with_scale(4.0);
        let mut tensors = Vec::new();
        for b in suite.benchmarks() {
            for p in pipeline.heatmap_pairs(b, &config).into_iter().take(8) {
                tensors.push(norm.heatmap_to_tensor(&p.access));
            }
        }
        for lr in [2e-3f32, 5e-3] {
            let cfg = UNetConfig::for_image_size(size, 8).with_dropout(false);
            let mut g = UNetGenerator::new(cfg, 1);
            let mut adam = Adam::new(lr);
            let mut final_l1 = 0.0;
            for step in 0..3000 {
                let x = &tensors[step % tensors.len()];
                let y = g.forward(x, None, true);
                let (l, grad) = loss::l1(&y, x);
                final_l1 = l;
                if step % 500 == 0 {
                    eprintln!("  step {step}: L1 {l:.4}");
                }
                g.zero_grad();
                g.backward(&grad.scale(150.0));
                adam.step_layer(&mut UNetAsLayer(&mut g));
            }
            println!("size={size} lr={lr}: identity L1 after 3000 steps = {final_l1:.4}");
        }
    }
}
