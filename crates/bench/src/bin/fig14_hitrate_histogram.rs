//! Regenerates Fig. 14: histogram of true hit rates across the dataset.

use cachebox::experiments::ecosystem;
use cachebox_bench::{banner, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse("small");
    let _telemetry = args.init_telemetry("fig14_hitrate_histogram");
    banner(
        "Figure 14 (data ecosystem: true hit-rate distribution)",
        ">95% of SPEC above 65% L1 hit rate; 70%/55% of SPEC above the L2/L3 thresholds",
        &args.scale,
    );
    let result = ecosystem::run(&args.scale);
    println!("SPEC true hit rates on 64set-12way L1:");
    println!("{}", result.spec_l1_histogram.render(40));
    println!(
        "SPEC benchmarks above 65% L1 hit rate: {:.1}% (paper: >95%)",
        result.spec_above_65 * 100.0
    );
    println!(
        "all benchmarks above 65% L1 hit rate:  {:.1}% (paper: >92%)",
        result.all_above_65 * 100.0
    );
    println!(
        "SPEC above 40% L2 hit rate:            {:.1}% (paper: 70%)",
        result.spec_l2_above_40 * 100.0
    );
    println!(
        "SPEC above 35% L3 hit rate:            {:.1}% (paper: 55%)",
        result.spec_l3_above_35 * 100.0
    );
    args.maybe_save(&result);
}
