//! Regenerates Fig. 8: one model over four L1 configurations.

use cachebox::experiments::rq2;
use cachebox::report;
use cachebox_bench::{banner, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse("small");
    let _telemetry = args.init_telemetry("fig08_rq2_configs");
    banner(
        "Figure 8 (RQ2: one CB-GAN, four L1 configurations)",
        "averages 2.79/2.06/2.59/2.46% for 64s12w/128s12w/128s6w/128s3w",
        &args.scale,
    );
    let mut artifacts =
        rq2::train_or_load(&args.scale, &cachebox_bench::rq2_cache_path(&args.scale));
    let configs = artifacts.train_configs.clone();
    let result = rq2::evaluate_configs(&mut artifacts, &configs);
    for config in &result.per_config {
        println!("--- {} ---", config.config);
        println!("{}", report::accuracy_table(&config.records));
        println!("summary: {}\n", report::summary_line(&config.summary));
    }
    args.maybe_save(&result);
}
