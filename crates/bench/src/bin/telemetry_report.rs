//! Renders a recorded telemetry JSONL stream for humans: the span-tree
//! profile with hot spots, a histogram percentile table, a heartbeat
//! digest — and optionally a per-step heartbeat CSV and collapsed-stack
//! lines for `flamegraph.pl`.
//!
//! ```text
//! cargo run -p cachebox-bench --bin telemetry_report -- \
//!     <stream.jsonl> [--top N] [--csv PATH] [--collapsed PATH]
//! ```
//!
//! The stream is read with the lenient JSON reader from
//! [`cachebox_telemetry::diff`] rather than the strict serde schema, so
//! a report can always be rendered from streams written by older
//! CacheBox versions. Exits `2` on usage or I/O errors, `1` when the
//! stream's span tree is structurally inconsistent (self times must sum
//! to the root total), `0` otherwise.

use cachebox_telemetry::diff::{parse_json, Json};
use cachebox_telemetry::{Profile, Record};
use std::fmt::Write as _;
use std::path::PathBuf;

struct Args {
    stream: PathBuf,
    top: usize,
    csv: Option<PathBuf>,
    collapsed: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!("usage: telemetry_report <stream.jsonl> [--top N] [--csv PATH] [--collapsed PATH]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut stream = None;
    let mut top = 15usize;
    let mut csv = None;
    let mut collapsed = None;
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                usage();
            })
        };
        match flag.as_str() {
            "--top" => {
                top = value("--top").parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --top: {e}");
                    usage();
                })
            }
            "--csv" => csv = Some(PathBuf::from(value("--csv"))),
            "--collapsed" => collapsed = Some(PathBuf::from(value("--collapsed"))),
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag {other:?}");
                usage();
            }
            path => {
                if stream.replace(PathBuf::from(path)).is_some() {
                    eprintln!("error: more than one stream path");
                    usage();
                }
            }
        }
    }
    let Some(stream) = stream else { usage() };
    Args { stream, top, csv, collapsed }
}

/// Reconstructs the typed span records the profiler consumes from the
/// leniently parsed lines; every other record kind stays as [`Json`].
fn span_records(lines: &[Json]) -> Vec<Record> {
    let mut spans = Vec::new();
    for line in lines {
        if line.get("type").and_then(Json::as_str) != Some("span") {
            continue;
        }
        let num = |key: &str| line.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        spans.push(Record::Span {
            path: line.get("path").and_then(Json::as_str).unwrap_or("").to_string(),
            thread: num("thread") as u32,
            count: num("count") as u64,
            total_ns: num("total_ns") as u64,
            min_ns: num("min_ns") as u64,
            max_ns: num("max_ns") as u64,
        });
    }
    spans
}

fn histogram_table(lines: &[Json]) -> String {
    let mut out = String::new();
    let mut rows = 0;
    for line in lines {
        if line.get("type").and_then(Json::as_str) != Some("histogram") {
            continue;
        }
        if rows == 0 {
            let _ = writeln!(
                out,
                "histograms\n{:<28} {:>9} {:>11} {:>11} {:>11} {:>11} {:>11}",
                "name", "count", "min", "p50", "p90", "p99", "max"
            );
        }
        rows += 1;
        let num = |key: &str| line.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "{:<28} {:>9} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>11.1}",
            line.get("name").and_then(Json::as_str).unwrap_or("?"),
            num("count") as u64,
            num("min"),
            num("p50"),
            num("p90"),
            num("p99"),
            num("max"),
        );
    }
    out
}

/// Heartbeat field order for the digest and the `--csv` time series.
const HEARTBEAT_COLUMNS: [&str; 12] = [
    "step",
    "epoch",
    "t_ms",
    "d_loss",
    "g_adv",
    "g_l1",
    "grad_norm_d",
    "grad_norm_g",
    "samples_per_sec",
    "shard_p50_ns",
    "shard_p90_ns",
    "rss_peak_kb",
];

fn heartbeats(lines: &[Json]) -> Vec<&Json> {
    lines
        .iter()
        .filter(|line| line.get("type").and_then(Json::as_str) == Some("heartbeat"))
        .collect()
}

fn heartbeat_digest(beats: &[&Json]) -> String {
    let mut out = String::new();
    if beats.is_empty() {
        return out;
    }
    let num = |line: &Json, key: &str| line.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    let mean = |key: &str| beats.iter().map(|b| num(b, key)).sum::<f64>() / beats.len() as f64;
    let last = beats[beats.len() - 1];
    let _ = writeln!(
        out,
        "heartbeats: {} records, mean {:.1} samples/s, final d_loss {:.4} g_adv {:.4} \
         g_l1 {:.4}, peak rss {} kB",
        beats.len(),
        mean("samples_per_sec"),
        num(last, "d_loss"),
        num(last, "g_adv"),
        num(last, "g_l1"),
        num(last, "rss_peak_kb") as u64,
    );
    out
}

fn heartbeat_csv(beats: &[&Json]) -> String {
    let mut out = HEARTBEAT_COLUMNS.join(",");
    out.push('\n');
    for beat in beats {
        let row: Vec<String> = HEARTBEAT_COLUMNS
            .iter()
            .map(|key| match beat.get(key) {
                Some(Json::Num(v)) => {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        format!("{}", *v as i64)
                    } else {
                        format!("{v}")
                    }
                }
                _ => String::new(),
            })
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

fn main() {
    let args = parse_args();
    let text = std::fs::read_to_string(&args.stream).unwrap_or_else(|e| {
        eprintln!("error: cannot read {}: {e}", args.stream.display());
        std::process::exit(2);
    });
    let mut lines = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_json(line) {
            Ok(v) => lines.push(v),
            Err(e) => {
                eprintln!("error: {}:{}: {e}", args.stream.display(), lineno + 1);
                std::process::exit(2);
            }
        }
    }

    let run = lines
        .iter()
        .find(|l| l.get("type").and_then(Json::as_str) == Some("meta"))
        .and_then(|l| l.get("run").and_then(Json::as_str))
        .unwrap_or("?");
    println!(
        "telemetry report — run {:?}, {} records, {}",
        run,
        lines.len(),
        args.stream.display()
    );

    let profile = match Profile::from_records(&span_records(&lines)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: inconsistent span stream: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", profile.render(args.top));
    // The profiler attributes every nanosecond of a parent either to a
    // child or to the parent's self time, so the two sums must agree;
    // a mismatch means the stream's span totals are corrupt.
    if profile.self_sum_ns() != profile.root_total_ns() {
        eprintln!(
            "error: self-time sum {} != root total {} — corrupt span totals",
            profile.self_sum_ns(),
            profile.root_total_ns()
        );
        std::process::exit(1);
    }
    println!("self-time check: Σ self == root total ({} ns)", profile.root_total_ns());

    print!("{}", histogram_table(&lines));
    let beats = heartbeats(&lines);
    print!("{}", heartbeat_digest(&beats));

    if let Some(path) = &args.csv {
        if let Err(e) = std::fs::write(path, heartbeat_csv(&beats)) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("wrote {} ({} heartbeat rows)", path.display(), beats.len());
    }
    if let Some(path) = &args.collapsed {
        if let Err(e) = std::fs::write(path, profile.collapsed()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("wrote {} (collapsed stacks)", path.display());
    }
}
