//! Ablation of the per-column window size (paper §4.2: 100-unit windows
//! balance compactness against lossiness at 512×512).

use cachebox::experiments::ablation;
use cachebox_bench::{banner, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse("small");
    let _telemetry = args.init_telemetry("ablation_window");
    banner(
        "Ablation: accesses per heatmap column (window size)",
        "the paper finds 100-unit windows a compact, lossy sweet spot",
        &args.scale,
    );
    let base = args.scale.geometry.window;
    let result = ablation::window_sweep(&args.scale, &[base / 2, base, base * 2]);
    println!("{:<16} {:>10} {:>10}", "setting", "avg %diff", "worst");
    for p in &result.points {
        println!("{:<16} {:>10.2} {:>10.2}", p.setting, p.summary.average, p.summary.worst);
    }
    args.maybe_save(&result);
}
