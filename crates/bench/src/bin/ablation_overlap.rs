//! Ablation of the inter-heatmap overlap fraction (paper §3.1.1: 30 %
//! overlap yields the best results).

use cachebox::experiments::ablation;
use cachebox_bench::{banner, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse("small");
    let _telemetry = args.init_telemetry("ablation_overlap");
    banner(
        "Ablation: heatmap overlap fraction",
        "a 30% overlap between consecutive heatmaps yields the best accuracy",
        &args.scale,
    );
    let result = ablation::overlap_sweep(&args.scale, &[0.0, 0.15, 0.30, 0.45]);
    println!("{:<16} {:>10} {:>10}", "setting", "avg %diff", "worst");
    for p in &result.points {
        println!("{:<16} {:>10.2} {:>10.2}", p.setting, p.summary.average, p.summary.worst);
    }
    args.maybe_save(&result);
}
