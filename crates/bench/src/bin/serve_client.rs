//! Smoke driver for the `cachebox_serve` evaluation service.
//!
//! Connects to a running service, runs a short eval sweep, and —
//! optionally — verifies the served answers bitwise against the
//! in-process `evaluate_sweep` path, exercises a checkpoint hot-reload
//! (writing a fresh checkpoint to disk first), and shuts the service
//! down. Exit status is the CI gate: any mismatch, typed error, or
//! protocol failure is fatal.
//!
//! ```text
//! serve_client --addr tcp:127.0.0.1:7410 [--scale tiny] [--suite polybench]
//!     [--count 2] [--bench-seed 3] [--sets 16] [--ways 2] [--batch 4]
//!     [--verify-seed N] [--write-reload PATH --reload-seed N] [--shutdown]
//! ```

use cachebox::{Pipeline, Scale};
use cachebox_gan::checkpoint::Checkpoint;
use cachebox_gan::{UNetConfig, UNetGenerator};
use cachebox_nn::Parallelism;
use cachebox_serve::{Client, EvalRequest, Response, WorkloadSpec};
use cachebox_workloads::{Suite, SuiteId};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    addr: String,
    scale: Scale,
    suite: String,
    count: usize,
    bench_seed: u64,
    sets: usize,
    ways: usize,
    batch: usize,
    verify_seed: Option<u64>,
    write_reload: Option<PathBuf>,
    reload_seed: u64,
    shutdown: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_client --addr tcp:HOST:PORT|unix:PATH [--scale tiny|small|experiment]\n\
         \x20      [--suite spec|ligra|polybench] [--count N] [--bench-seed N] [--sets N]\n\
         \x20      [--ways N] [--batch N] [--verify-seed N] [--write-reload PATH]\n\
         \x20      [--reload-seed N] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse_num(s: &str, flag: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects an unsigned integer, got {s:?}");
        usage()
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        scale: Scale::tiny(),
        suite: "polybench".into(),
        count: 2,
        bench_seed: 3,
        sets: 16,
        ways: 2,
        batch: 4,
        verify_seed: None,
        write_reload: None,
        reload_seed: 7,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--scale" => {
                args.scale = match value("--scale").as_str() {
                    "tiny" => Scale::tiny(),
                    "small" => Scale::small(),
                    "experiment" => Scale::experiment(),
                    other => {
                        eprintln!("unknown scale {other:?}");
                        usage()
                    }
                }
            }
            "--suite" => args.suite = value("--suite"),
            "--count" => args.count = parse_num(&value("--count"), "--count") as usize,
            "--bench-seed" => args.bench_seed = parse_num(&value("--bench-seed"), "--bench-seed"),
            "--sets" => args.sets = parse_num(&value("--sets"), "--sets") as usize,
            "--ways" => args.ways = parse_num(&value("--ways"), "--ways") as usize,
            "--batch" => args.batch = parse_num(&value("--batch"), "--batch") as usize,
            "--verify-seed" => {
                args.verify_seed = Some(parse_num(&value("--verify-seed"), "--verify-seed"))
            }
            "--write-reload" => args.write_reload = Some(PathBuf::from(value("--write-reload"))),
            "--reload-seed" => {
                args.reload_seed = parse_num(&value("--reload-seed"), "--reload-seed")
            }
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.addr.is_empty() {
        eprintln!("--addr is required");
        usage();
    }
    args
}

fn suite_id(name: &str) -> SuiteId {
    match name {
        "spec" => SuiteId::Spec,
        "ligra" => SuiteId::Ligra,
        "polybench" => SuiteId::Polybench,
        other => {
            eprintln!("unknown suite {other:?}");
            usage()
        }
    }
}

fn fail(why: &str) -> ExitCode {
    eprintln!("serve_client: FAIL: {why}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut client =
        match Client::connect_with_retry(&args.addr, std::time::Duration::from_secs(10)) {
            Ok(c) => c,
            Err(e) => return fail(&format!("cannot connect to {}: {e}", args.addr)),
        };

    let status = match client.status() {
        Ok(Response::Status(s)) => s,
        other => return fail(&format!("status: unexpected reply {other:?}")),
    };
    eprintln!(
        "serve_client: service up — epoch {} fingerprint {:016x}, {} workers, {} served",
        status.epoch, status.fingerprint, status.workers, status.served
    );

    let request = EvalRequest {
        benchmarks: (0..args.count.max(1))
            .map(|index| WorkloadSpec { suite: args.suite.clone(), index, seed: args.bench_seed })
            .collect(),
        sets: args.sets,
        ways: args.ways,
        batch_size: Some(args.batch),
        deadline_ms: None,
    };
    let (epoch0, fp0, results) = match client.eval(request.clone()) {
        Ok(Response::Eval { epoch, fingerprint, results }) => (epoch, fingerprint, results),
        other => return fail(&format!("eval: unexpected reply {other:?}")),
    };
    println!("benchmark\ttrue_rate\tpredicted_rate\terror_pp");
    for r in &results {
        println!(
            "{}\t{:.6}\t{:.6}\t{:.3}",
            r.name,
            r.true_rate,
            r.predicted_rate,
            r.abs_pct_diff()
        );
    }
    eprintln!(
        "serve_client: eval of {} benchmarks served by epoch {epoch0} ({fp0:016x})",
        results.len()
    );

    // Bitwise cross-check against the in-process sweep. Only meaningful
    // when the service booted an untrained generator whose seed we know.
    if let Some(seed) = args.verify_seed {
        let pipeline = Pipeline::new(&args.scale);
        let suite = Suite::build(suite_id(&args.suite), args.count.max(1), args.bench_seed);
        let benches = suite.benchmarks().to_vec();
        let config = cachebox_sim::CacheConfig::new(args.sets, args.ways);
        let unet = UNetConfig::for_image_size(args.scale.image_size(), args.scale.ngf)
            .with_param_features(2);
        let mut generator = UNetGenerator::new(unet, seed);
        let local = pipeline.evaluate_sweep(
            Parallelism::serial(),
            &mut generator,
            &benches,
            &config,
            true,
            args.batch,
        );
        if local.len() != results.len() {
            return fail(&format!(
                "verify: {} local rows vs {} served",
                local.len(),
                results.len()
            ));
        }
        for (l, s) in local.iter().zip(&results) {
            if l.name != s.name
                || l.true_rate.to_bits() != s.true_rate.to_bits()
                || l.predicted_rate.to_bits() != s.predicted_rate.to_bits()
            {
                return fail(&format!("verify: served {s:?} != local {l:?}"));
            }
        }
        eprintln!("serve_client: served answers bitwise identical to in-process evaluate_sweep");
    }

    // Hot-reload leg: write a fresh checkpoint, swap it in, re-eval,
    // and require a new fingerprint on the answers.
    if let Some(path) = &args.write_reload {
        let unet = UNetConfig::for_image_size(args.scale.image_size(), args.scale.ngf)
            .with_param_features(2);
        let mut generator = UNetGenerator::new(unet, args.reload_seed);
        if let Err(e) = Checkpoint::capture(&mut generator).save(path) {
            return fail(&format!("cannot write reload checkpoint: {e}"));
        }
        let (epoch1, fp1) = match client.reload(&path.display().to_string()) {
            Ok(Response::Reload { epoch, fingerprint }) => (epoch, fingerprint),
            other => return fail(&format!("reload: unexpected reply {other:?}")),
        };
        if epoch1 <= epoch0 {
            return fail(&format!("reload did not advance the epoch: {epoch0} -> {epoch1}"));
        }
        let (epoch2, fp2, _) = match client.eval(request) {
            Ok(Response::Eval { epoch, fingerprint, results }) => (epoch, fingerprint, results),
            other => return fail(&format!("post-reload eval: unexpected reply {other:?}")),
        };
        if epoch2 != epoch1 || fp2 != fp1 {
            return fail(&format!(
                "post-reload eval served by epoch {epoch2} ({fp2:016x}), expected {epoch1} ({fp1:016x})"
            ));
        }
        if fp1 == fp0 {
            return fail("reload installed an arena with an unchanged fingerprint");
        }
        eprintln!("serve_client: reload swapped arena {fp0:016x} -> {fp1:016x} (epoch {epoch1})");
    }

    if args.shutdown {
        match client.shutdown() {
            Ok(Response::Shutdown) => eprintln!("serve_client: service acknowledged shutdown"),
            other => return fail(&format!("shutdown: unexpected reply {other:?}")),
        }
    }
    ExitCode::SUCCESS
}
