//! Regenerates Fig. 11: inference time vs batch size, and the
//! MultiCacheSim comparison.

use cachebox::experiments::{rq2, rq5};
use cachebox_bench::{banner, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse("small");
    let _telemetry = args.init_telemetry("fig11_rq5_batching");
    banner(
        "Figure 11 (RQ5: parallelized inference)",
        "2.4x speedup at batch 32 vs batch 1; sequential CBox 1.61-1.81x vs MultiCacheSim",
        &args.scale,
    );
    let mut artifacts =
        rq2::train_or_load(&args.scale, &cachebox_bench::rq2_cache_path(&args.scale));
    let result = rq5::run_with(&mut artifacts);
    println!("{:>6} {:>14} {:>9}", "batch", "mean time", "speedup");
    for b in &result.batches {
        println!("{:>6} {:>12.2?} {:>8.2}x", b.batch_size, b.mean_time, b.speedup);
    }
    println!();
    println!("MultiCacheSim mean per-benchmark time: {:.2?}", result.multicache_time);
    println!(
        "sequential CBox / MultiCacheSim time ratio: {:.2} (paper reports CBox 1.61-1.81x faster on GPU)",
        result.cbox_over_multicache
    );
    args.maybe_save(&result);
}
