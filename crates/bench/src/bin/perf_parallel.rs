//! Measures the parallel GEMM kernel, the parallel dataset pipeline,
//! and the replica-parallel GAN train step against their serial
//! baselines, verifying numerical equivalence, and writes the results
//! as JSON (see `BENCH_parallel.json` at the repo root for a recorded
//! run).
//!
//! ```text
//! cargo run --release -p cachebox-bench --bin perf_parallel -- \
//!     [--threads N[,N...]] [--smoke] [--out PATH] [--telemetry PATH] \
//!     [--heartbeat-every N]
//! ```

use cachebox::{Pipeline, Scale};
use cachebox_gan::{
    GanTrainer, PatchGan, PatchGanConfig, TrainConfig, TrainSample, UNetConfig, UNetGenerator,
};
use cachebox_nn::gemm;
use cachebox_nn::parallel::{gemm_with, Parallelism};
use cachebox_nn::Tensor;
use cachebox_sim::CacheConfig;
use cachebox_telemetry::progress;
use cachebox_workloads::{Suite, SuiteId};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct KernelRecord {
    threads: usize,
    seconds: f64,
    speedup: f64,
    max_abs_diff: f32,
}

#[derive(Serialize)]
struct PipelineRecord {
    threads: usize,
    seconds: f64,
    speedup: f64,
    samples_identical: bool,
}

#[derive(Serialize)]
struct ReplicaRecord {
    replicas: usize,
    seconds_per_step: f64,
    speedup: f64,
    losses_identical: bool,
}

#[derive(Serialize)]
struct MicroBatchRecord {
    micro_batches: usize,
    replicas: usize,
    seconds_per_step: f64,
    speedup: f64,
    losses_identical: bool,
    /// Fraction of optimizer-step work (the streamed discriminator
    /// update plus the previous step's deferred generator update) that
    /// ran while forward/backward workers were still busy.
    overlap_ratio: f64,
}

#[derive(Serialize)]
struct Report {
    host_cpus: usize,
    gemm_shape: [usize; 3],
    gemm_serial_seconds: f64,
    gemm: Vec<KernelRecord>,
    pipeline_benchmarks: usize,
    pipeline_configs: usize,
    pipeline_serial_seconds: f64,
    pipeline: Vec<PipelineRecord>,
    replica_batch: usize,
    replica_image: usize,
    replica_serial_seconds: f64,
    replica: Vec<ReplicaRecord>,
    micro_batch: Vec<MicroBatchRecord>,
    /// Micro-batch count the autotuner derived from the
    /// `nn.gemm.shard_ns` histogram; `null` when telemetry was off or
    /// the histogram argued against splitting.
    micro_batches_tuned: Option<usize>,
    /// Scalars per segment-streamed optimizer chunk (the tuned value,
    /// or the default when telemetry was off).
    pipeline_chunk: usize,
    /// Conv batch-parallel chunk derived from the `nn.gemm.shard_ns`
    /// histogram by the autotuner; `null` when telemetry was off.
    conv_chunk: Option<usize>,
    /// Telemetry-refined GEMM blocking (`mc=…,kc=…,nc=…`); `null` when
    /// telemetry was off (the analytical blocking stays active).
    gemm_blocking: Option<String>,
    /// Provenance of the blocking active at the end of the run.
    gemm_blocking_source: String,
    note: String,
}

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

type Args = (Vec<usize>, Vec<usize>, bool, std::path::PathBuf, Option<std::path::PathBuf>);

fn parse_args() -> Args {
    let mut threads = vec![2usize, 4, 8];
    let mut micro = vec![1usize, 2, 3, 4, 8];
    let mut smoke = false;
    let mut out = std::path::PathBuf::from("BENCH_parallel.json");
    let mut telemetry = None;
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--threads" => {
                threads = value("--threads")
                    .split(',')
                    .map(|t| {
                        t.trim().parse().unwrap_or_else(|e| {
                            eprintln!("error: bad --threads entry {t:?}: {e}");
                            std::process::exit(2);
                        })
                    })
                    .filter(|&n| n > 1)
                    .collect();
            }
            "--micro-batches" => {
                micro = value("--micro-batches")
                    .split(',')
                    .map(|t| {
                        t.trim().parse().unwrap_or_else(|e| {
                            eprintln!("error: bad --micro-batches entry {t:?}: {e}");
                            std::process::exit(2);
                        })
                    })
                    .filter(|&n| n > 0)
                    .collect();
            }
            "--smoke" => smoke = true,
            "--out" => out = std::path::PathBuf::from(value("--out")),
            "--telemetry" => telemetry = Some(std::path::PathBuf::from(value("--telemetry"))),
            "--heartbeat-every" => {
                let every = value("--heartbeat-every").parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --heartbeat-every: {e}");
                    std::process::exit(2);
                });
                cachebox_telemetry::set_heartbeat_every(every);
            }
            other => {
                eprintln!("error: unknown flag {other:?}");
                eprintln!(
                    "usage: perf_parallel [--threads N[,N...]] [--micro-batches N[,N...]] \
                     [--smoke] [--out PATH] [--telemetry PATH] [--heartbeat-every N]"
                );
                std::process::exit(2);
            }
        }
    }
    (threads, micro, smoke, out, telemetry)
}

/// A deterministic synthetic batch in the generator's tanh domain.
fn synth_batch(n: usize, hw: usize) -> TrainSample {
    let len = n * hw * hw;
    let input: Vec<f32> = (0..len).map(|i| ((i * 7 % 13) as f32 - 6.0) / 6.5).collect();
    let target: Vec<f32> = (0..len).map(|i| ((i * 5 % 11) as f32 - 5.0) / 5.5).collect();
    TrainSample {
        input: Tensor::from_vec([n, 1, hw, hw], input),
        target: Tensor::from_vec([n, 1, hw, hw], target),
        params: None,
    }
}

fn replica_trainer(hw: usize, replicas: usize, micro: usize, threads: usize) -> GanTrainer {
    let g = UNetGenerator::new(UNetConfig::for_image_size(hw, 8), 11);
    let d = PatchGan::new(PatchGanConfig::new(2, 8, 1), 12);
    GanTrainer::new(g, d, TrainConfig::default())
        .with_parallelism(Parallelism::new(threads))
        .with_replicas(replicas)
        .with_micro_batches(micro)
}

fn main() {
    let (thread_counts, micro_counts, smoke, out, telemetry) = parse_args();
    let _telemetry = match telemetry {
        Some(path) => {
            let config = cachebox_telemetry::TelemetryConfig::new("perf_parallel")
                .with_jsonl(path)
                .with_threads(thread_counts.iter().copied().max().unwrap_or(1));
            Some(cachebox_telemetry::init(config))
        }
        None => cachebox_telemetry::init_from_env("perf_parallel"),
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    progress!("=== CacheBox parallel speedup measurement (host cpus: {host_cpus}) ===");
    if host_cpus <= 1 {
        eprintln!(
            "warning: single-CPU host; speedups will not exceed 1x and this report \
             measures dispatch overhead, not scaling"
        );
    }

    // ---- GEMM kernel: serial baseline vs row-partitioned parallel.
    let (m, k, n) = (256usize, 256, 256);
    let a: Vec<f32> = (0..m * k).map(|i| ((i * 7 % 13) as f32 - 6.0) / 6.0).collect();
    let b: Vec<f32> = (0..k * n).map(|i| ((i * 5 % 11) as f32 - 5.0) / 5.0).collect();
    let mut reference = vec![0.0f32; m * n];
    let gemm_serial_seconds = best_of(5, || gemm::gemm(&a, &b, m, k, n, &mut reference));
    progress!("gemm {m}x{k}x{n} serial: {gemm_serial_seconds:.4}s");

    let mut gemm_records = Vec::new();
    for &threads in &thread_counts {
        let par = Parallelism::new(threads);
        let mut out_par = vec![0.0f32; m * n];
        let seconds = best_of(5, || gemm_with(par, &a, &b, m, k, n, &mut out_par));
        let max_abs_diff =
            reference.iter().zip(&out_par).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max);
        assert!(max_abs_diff <= 1e-5, "parallel GEMM diverged: {max_abs_diff}");
        let speedup = gemm_serial_seconds / seconds;
        progress!(
            "gemm {threads} threads: {seconds:.4}s ({speedup:.2}x, max diff {max_abs_diff:e})"
        );
        gemm_records.push(KernelRecord { threads, seconds, speedup, max_abs_diff });
    }

    // ---- Dataset pipeline: trace → simulate → heatmaps across a
    // benchmark × config grid.
    let scale = Scale::tiny();
    let pipeline = Pipeline::new(&scale);
    let suite = Suite::build(SuiteId::Polybench, 6, 3);
    let benches = suite.benchmarks().to_vec();
    let configs = [CacheConfig::new(16, 2), CacheConfig::new(32, 4), CacheConfig::new(64, 8)];
    let serial_samples = pipeline.training_samples_with(Parallelism::serial(), &benches, &configs);
    let pipeline_serial_seconds = best_of(3, || {
        pipeline.training_samples_with(Parallelism::serial(), &benches, &configs);
    });
    progress!("pipeline {}x{} serial: {pipeline_serial_seconds:.4}s", benches.len(), configs.len());

    let mut pipeline_records = Vec::new();
    for &threads in &thread_counts {
        let par = Parallelism::new(threads);
        let parallel_samples = pipeline.training_samples_with(par, &benches, &configs);
        let samples_identical = parallel_samples == serial_samples;
        assert!(samples_identical, "parallel pipeline diverged at {threads} threads");
        let seconds = best_of(3, || {
            pipeline.training_samples_with(par, &benches, &configs);
        });
        let speedup = pipeline_serial_seconds / seconds;
        progress!("pipeline {threads} threads: {seconds:.4}s ({speedup:.2}x)");
        pipeline_records.push(PipelineRecord { threads, seconds, speedup, samples_identical });
    }

    // ---- Replica-parallel GAN train step: the batch is sharded across
    // model replicas (any count, ragged included — the padded halving
    // tree keeps the reduction order fixed) and the flat gradient arenas
    // tree-reduce in fixed replica order, so losses are bitwise
    // invariant in R (asserted below) and only wall-clock changes.
    let hw = if smoke { 8 } else { 16 };
    let batch_n = 8usize;
    let steps = if smoke { 1 } else { 3 };
    let total_threads =
        thread_counts.iter().copied().max().unwrap_or(host_cpus).min(host_cpus.max(1)).max(1);
    // The GEMM legs above filled the `nn.gemm.shard_ns` histogram, so
    // the replica train steps below run with the telemetry-derived conv
    // chunk and GEMM blocking — both also recorded in the report and
    // manifest.
    if !cachebox_telemetry::enabled() {
        eprintln!(
            "warning: telemetry is off, so conv_chunk/gemm_blocking will be untuned \
             (rerun with --telemetry PATH to record them)"
        );
    }
    let conv_chunk =
        cachebox_nn::tuning::autotune_conv_chunk(Parallelism::new(total_threads), batch_n);
    if let Some(chunk) = conv_chunk {
        progress!("conv chunk autotuned to {chunk} (from nn.gemm.shard_ns)");
    }
    let gemm_blocking = cachebox_nn::tuning::autotune_gemm_blocking();
    if let Some(blocking) = gemm_blocking {
        progress!("gemm blocking autotuned to {} (from nn.gemm.shard_ns)", blocking.label());
    }
    let batch = synth_batch(batch_n, hw);
    let mut ref_stats: Option<cachebox_gan::TrainStats> = None;
    let mut check_ref = |first: cachebox_gan::TrainStats| match &ref_stats {
        None => {
            ref_stats = Some(first);
            true
        }
        Some(s0) => {
            s0.d_loss.to_bits() == first.d_loss.to_bits()
                && s0.g_adv.to_bits() == first.g_adv.to_bits()
                && s0.g_l1.to_bits() == first.g_l1.to_bits()
        }
    };
    let mut replica_records = Vec::new();
    let mut replica_serial_seconds = 0.0;
    for r in [1usize, 2, 3, 4, 6] {
        let mut check = replica_trainer(hw, r, 1, total_threads);
        let first = check.train_step(&batch).expect("finite gradients");
        let losses_identical = check_ref(first);
        assert!(losses_identical, "replica training diverged at R={r}");
        let mut timed = replica_trainer(hw, r, 1, total_threads);
        timed.train_step(&batch).expect("finite gradients"); // warmup
        let seconds = best_of(if smoke { 1 } else { 3 }, || {
            for _ in 0..steps {
                timed.train_step(&batch).expect("finite gradients");
            }
        }) / steps as f64;
        if r == 1 {
            replica_serial_seconds = seconds;
        }
        let speedup = replica_serial_seconds / seconds;
        progress!(
            "train_step batch {batch_n} R={r} ({total_threads} threads): \
             {seconds:.4}s/step ({speedup:.2}x, losses identical: {losses_identical})"
        );
        replica_records.push(ReplicaRecord {
            replicas: r,
            seconds_per_step: seconds,
            speedup,
            losses_identical,
        });
    }

    // ---- Micro-batch pipelined train step: each batch splits into M
    // micro-batches whose gradient terms stream into the reducer as
    // they finish, the discriminator's optimizer step overlaps the
    // still-running workers, and the generator's step runs in the
    // background of the next step's forward. Losses and weights stay
    // bitwise invariant in M (and jointly in R × M) — only the overlap
    // ratio and wall-clock change.
    let micro_batches_tuned =
        cachebox_nn::tuning::autotune_micro_batches(Parallelism::new(total_threads), batch_n);
    if let Some(m) = micro_batches_tuned {
        progress!("micro-batch count autotuned to {m} (from nn.gemm.shard_ns)");
    }
    let pipeline_chunk_tuned = cachebox_nn::tuning::autotune_pipeline_chunk();
    if let Some(chunk) = pipeline_chunk_tuned {
        progress!("pipeline chunk autotuned to {chunk} scalars (from nn.gemm.shard_ns)");
    }
    let mut micro_records = Vec::new();
    let joint = (5usize, 3usize); // ragged joint leg: M=5 micro-batches × R=3 replicas
    let legs = micro_counts.iter().map(|&m| (m, 1usize)).chain(std::iter::once(joint));
    for (m, r) in legs {
        let mut check = replica_trainer(hw, r, m, total_threads);
        let first = check.train_step(&batch).expect("finite gradients");
        let losses_identical = check_ref(first);
        assert!(losses_identical, "micro-batch training diverged at M={m} R={r}");
        let mut timed = replica_trainer(hw, r, m, total_threads);
        timed.train_step(&batch).expect("finite gradients"); // warmup
        let seconds = best_of(if smoke { 1 } else { 3 }, || {
            for _ in 0..steps {
                timed.train_step(&batch).expect("finite gradients");
            }
        }) / steps as f64;
        let overlap_ratio = timed.last_overlap_ratio();
        let speedup = replica_serial_seconds / seconds;
        progress!(
            "train_step batch {batch_n} M={m} R={r} ({total_threads} threads): \
             {seconds:.4}s/step ({speedup:.2}x, losses identical: {losses_identical}, \
             overlap {overlap_ratio:.2})"
        );
        micro_records.push(MicroBatchRecord {
            micro_batches: m,
            replicas: r,
            seconds_per_step: seconds,
            speedup,
            losses_identical,
            overlap_ratio,
        });
    }

    let report = Report {
        host_cpus,
        gemm_shape: [m, k, n],
        gemm_serial_seconds,
        gemm: gemm_records,
        pipeline_benchmarks: benches.len(),
        pipeline_configs: configs.len(),
        pipeline_serial_seconds,
        pipeline: pipeline_records,
        replica_batch: batch_n,
        replica_image: hw,
        replica_serial_seconds,
        replica: replica_records,
        micro_batch: micro_records,
        micro_batches_tuned,
        pipeline_chunk: cachebox_nn::tuning::pipeline_chunk(),
        conv_chunk,
        gemm_blocking: gemm_blocking.map(|b| b.label()),
        gemm_blocking_source: cachebox_nn::geometry::blocking_source().to_string(),
        note: "best-of-N wall-clock; speedups are machine-dependent (see host_cpus)".to_string(),
    };
    match cachebox::report::save_json(&out, &report) {
        Ok(()) => progress!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}
