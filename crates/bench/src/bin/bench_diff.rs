//! Noise-aware perf-regression gate: compares two telemetry JSONL
//! streams or two `BENCH_*.json` reports and exits nonzero when the
//! candidate regresses against the baseline.
//!
//! ```text
//! cargo run -p cachebox-bench --bin bench_diff -- \
//!     <baseline> <candidate> [--rel-tol X] [--min-samples N] [--strict] [--verbose]
//! ```
//!
//! The comparison rules (per-metric direction, relative tolerance,
//! minimum-sample gating, strict mode for machine-dependent timings)
//! live in [`cachebox_telemetry::diff`]; this binary is the CLI and the
//! CI exit-code contract: `0` no regressions, `1` at least one
//! regression, `2` usage or parse errors.

use cachebox_telemetry::diff::{diff_files, DiffConfig};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff <baseline> <candidate> [--rel-tol X] [--min-samples N] \
         [--strict] [--verbose]"
    );
    std::process::exit(2);
}

fn main() {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut config = DiffConfig::default();
    let mut verbose = false;
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                usage();
            })
        };
        match flag.as_str() {
            "--rel-tol" => {
                config.rel_tolerance = value("--rel-tol").parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --rel-tol: {e}");
                    usage();
                })
            }
            "--min-samples" => {
                config.min_samples = value("--min-samples").parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --min-samples: {e}");
                    usage();
                })
            }
            "--strict" => config.strict = true,
            "--verbose" => verbose = true,
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag {other:?}");
                usage();
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    let [baseline, candidate] = paths.as_slice() else { usage() };

    let report = match diff_files(baseline, candidate, &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "bench_diff: {} vs {} (rel tol {:.0}%, min samples {}{})",
        baseline.display(),
        candidate.display(),
        100.0 * config.rel_tolerance,
        config.min_samples,
        if config.strict { ", strict" } else { "" }
    );
    print!("{}", report.render(verbose));
    if report.regressions() > 0 {
        std::process::exit(1);
    }
}
