//! Regenerates Fig. 7: true/predicted hit rates across benchmark suites.

use cachebox::experiments::rq1;
use cachebox::report;
use cachebox_bench::{banner, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse("small");
    let _telemetry = args.init_telemetry("fig07_rq1_suites");
    banner(
        "Figure 7 (RQ1: unseen applications across SPEC/Ligra/Polybench)",
        "average absolute hit-rate difference 3.05% on a 64set-12way L1",
        &args.scale,
    );
    let result = rq1::run(&args.scale);
    println!("{}", report::accuracy_table(&result.records));
    println!("summary: {}", report::summary_line(&result.summary));
    if let Some(last) = result.history.last() {
        println!(
            "final losses: D={:.3} G_adv={:.3} G_L1={:.4}",
            last.d_loss, last.g_adv, last.g_l1
        );
    }
    args.maybe_save(&result);
}
