//! Shared harness utilities for the figure/table binaries.
//!
//! Every binary regenerates one artifact of the paper's evaluation and
//! accepts the same flags:
//!
//! ```text
//! --scale tiny|small|experiment   experiment size (default: small)
//! --seed N                        master seed (default: 42)
//! --epochs N                      override training epochs
//! --threads N                     worker threads (default: CACHEBOX_THREADS
//!                                 or the machine's available parallelism)
//! --out PATH                      also write the result as JSON
//! --telemetry PATH                stream a telemetry JSONL + run manifest
//!                                 (default: CACHEBOX_TELEMETRY if set)
//! --heartbeat-every N             emit a training heartbeat record every
//!                                 N optimizer steps (default:
//!                                 CACHEBOX_HEARTBEAT_EVERY, else off)
//! ```
//!
//! | Binary | Artifact |
//! |---|---|
//! | `fig07_rq1_suites` | Fig. 7 |
//! | `fig08_rq2_configs` | Fig. 8 |
//! | `fig09_rq3_unseen_configs` | Fig. 9 |
//! | `fig10_rq4_levels` | Fig. 10 |
//! | `fig11_rq5_batching` | Fig. 11 |
//! | `fig12_rq6_scatter` | Fig. 12 |
//! | `fig13_rq7_prefetch` | Fig. 13 |
//! | `fig14_hitrate_histogram` | Fig. 14 |
//! | `table1_baselines` | Table 1 |
//! | `ablation_overlap`, `ablation_lambda`, `ablation_geometry` | §3.1.1/§4.2/§4.3 |

use cachebox::Scale;
use cachebox_nn::Parallelism;
use std::path::PathBuf;

/// Parsed command-line options shared by all harness binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// Experiment scale.
    pub scale: Scale,
    /// Worker-thread budget for simulation and GEMM kernels.
    pub parallelism: Parallelism,
    /// Optional JSON output path.
    pub out: Option<PathBuf>,
    /// Optional telemetry JSONL sink (`--telemetry`).
    pub telemetry: Option<PathBuf>,
    /// Heartbeat cadence in optimizer steps (`--heartbeat-every`);
    /// `None` defers to `CACHEBOX_HEARTBEAT_EVERY` / disabled.
    pub heartbeat_every: Option<usize>,
}

impl HarnessArgs {
    /// Parses `std::env::args`, exiting with a usage message on error.
    /// `default_scale` names the scale used when `--scale` is absent.
    ///
    /// Installs the parsed thread budget process-wide, so pipeline and
    /// trainer code picks it up via [`Parallelism::current`].
    pub fn parse(default_scale: &str) -> HarnessArgs {
        let args = Self::parse_from(std::env::args().skip(1), default_scale).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            eprintln!(
                "usage: [--scale tiny|small|experiment] [--seed N] [--epochs N] \
                 [--threads N] [--out PATH] [--telemetry PATH] [--heartbeat-every N]"
            );
            std::process::exit(2);
        });
        args.parallelism.install();
        args
    }

    /// Parses an explicit argument iterator (testable form).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed flag.
    pub fn parse_from(
        args: impl IntoIterator<Item = String>,
        default_scale: &str,
    ) -> Result<HarnessArgs, String> {
        let mut scale_name = default_scale.to_string();
        let mut seed: Option<u64> = None;
        let mut epochs: Option<usize> = None;
        let mut threads: Option<usize> = None;
        let mut out = None;
        let mut telemetry = None;
        let mut heartbeat_every = None;
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value =
                |name: &str| iter.next().ok_or_else(|| format!("{name} requires a value"));
            match flag.as_str() {
                "--scale" => scale_name = value("--scale")?,
                "--seed" => {
                    seed = Some(value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?)
                }
                "--epochs" => {
                    epochs =
                        Some(value("--epochs")?.parse().map_err(|e| format!("bad --epochs: {e}"))?)
                }
                "--threads" => {
                    let n: usize =
                        value("--threads")?.parse().map_err(|e| format!("bad --threads: {e}"))?;
                    if n == 0 {
                        return Err("bad --threads: must be at least 1".to_string());
                    }
                    threads = Some(n);
                }
                "--out" => out = Some(PathBuf::from(value("--out")?)),
                "--telemetry" => telemetry = Some(PathBuf::from(value("--telemetry")?)),
                "--heartbeat-every" => {
                    heartbeat_every = Some(
                        value("--heartbeat-every")?
                            .parse()
                            .map_err(|e| format!("bad --heartbeat-every: {e}"))?,
                    )
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        let mut scale = match scale_name.as_str() {
            "tiny" => Scale::tiny(),
            "small" => Scale::small(),
            "experiment" => Scale::experiment(),
            other => return Err(format!("unknown scale {other:?}")),
        };
        if let Some(seed) = seed {
            scale = scale.with_seed(seed);
        }
        if let Some(epochs) = epochs {
            scale = scale.with_epochs(epochs);
        }
        let parallelism = match threads {
            Some(n) => Parallelism::new(n),
            None => Parallelism::from_env(),
        };
        Ok(HarnessArgs { scale, parallelism, out, telemetry, heartbeat_every })
    }

    /// Starts a telemetry run named `run` when `--telemetry` (or, absent
    /// the flag, the `CACHEBOX_TELEMETRY` variable) requests one. The
    /// manifest records the scale, seed, and thread budget. Hold the
    /// returned guard for the lifetime of the instrumented work; it
    /// flushes the run (and renders the summary table) on drop.
    pub fn init_telemetry(&self, run: &str) -> Option<cachebox_telemetry::TelemetryGuard> {
        if let Some(every) = self.heartbeat_every {
            cachebox_telemetry::set_heartbeat_every(every);
        }
        let path = self.telemetry.clone().or_else(|| {
            std::env::var_os(cachebox_telemetry::TELEMETRY_ENV_VAR)
                .filter(|v| !v.is_empty())
                .map(PathBuf::from)
        })?;
        let config = cachebox_telemetry::TelemetryConfig::new(run)
            .with_jsonl(path)
            .with_threads(self.parallelism.threads())
            .with_seed(self.scale.seed)
            .with_kv("image_size", self.scale.image_size() as u64)
            .with_kv("epochs", self.scale.epochs as u64)
            .with_kv("trace_accesses", self.scale.trace_accesses as u64)
            .with_kv("heartbeat_every", cachebox_telemetry::heartbeat_every() as u64);
        Some(cachebox_telemetry::init(config))
    }

    /// Writes `value` as JSON to `--out` if given, logging the path.
    pub fn maybe_save<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.out {
            match cachebox::report::save_json(path, value) {
                Ok(()) => cachebox_telemetry::progress!("wrote {}", path.display()),
                Err(e) => cachebox_telemetry::progress!("failed to write {}: {e}", path.display()),
            }
        }
    }
}

/// Canonical cache path for the shared RQ2 model at a given scale.
/// fig08/fig09/fig11/fig12 all build on the same four-configuration
/// model; the first binary to run trains and caches it, the rest load.
pub fn rq2_cache_path(scale: &Scale) -> PathBuf {
    PathBuf::from(format!(
        "results/rq2_model_{}x{}_ngf{}_e{}_n{}_s{}.json",
        scale.geometry.height,
        scale.geometry.width,
        scale.ngf,
        scale.epochs,
        scale.spec_benchmarks,
        scale.seed
    ))
}

/// Announces the artifact being regenerated. The banner goes to stderr
/// (and the telemetry stream, when active) so stdout carries only the
/// machine-parseable result tables.
pub fn banner(artifact: &str, claim: &str, scale: &Scale) {
    cachebox_telemetry::progress!("=== CacheBox reproduction: {artifact} ===");
    cachebox_telemetry::progress!("paper claim: {claim}");
    cachebox_telemetry::progress!(
        "scale: {}x{} heatmaps, window {}, {} accesses/trace, ngf {}, {} epochs, seed {}",
        scale.geometry.height,
        scale.geometry.width,
        scale.geometry.window,
        scale.trace_accesses,
        scale.ngf,
        scale.epochs,
        scale.seed,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse_from(args.iter().map(|s| s.to_string()), "small")
    }

    #[test]
    fn defaults_to_named_scale() {
        let args = parse(&[]).unwrap();
        assert_eq!(args.scale, Scale::small());
        assert_eq!(args.out, None);
        assert_eq!(args.telemetry, None);
    }

    #[test]
    fn parses_telemetry_flag() {
        let args = parse(&["--telemetry", "/tmp/run.jsonl"]).unwrap();
        assert_eq!(args.telemetry, Some(PathBuf::from("/tmp/run.jsonl")));
        assert!(parse(&["--telemetry"]).is_err());
    }

    #[test]
    fn parses_all_flags() {
        let args =
            parse(&["--scale", "tiny", "--seed", "7", "--epochs", "3", "--out", "/tmp/x.json"])
                .unwrap();
        assert_eq!(args.scale.seed, 7);
        assert_eq!(args.scale.epochs, 3);
        assert_eq!(args.scale.image_size(), Scale::tiny().image_size());
        assert_eq!(args.out, Some(PathBuf::from("/tmp/x.json")));
    }

    #[test]
    fn rejects_unknown_flag_and_scale() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scale", "huge"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "x"]).is_err());
    }

    #[test]
    fn parses_heartbeat_cadence() {
        let args = parse(&["--heartbeat-every", "25"]).unwrap();
        assert_eq!(args.heartbeat_every, Some(25));
        assert_eq!(parse(&[]).unwrap().heartbeat_every, None);
        assert!(parse(&["--heartbeat-every"]).is_err());
        assert!(parse(&["--heartbeat-every", "x"]).is_err());
    }

    #[test]
    fn parses_thread_budget() {
        let args = parse(&["--threads", "3"]).unwrap();
        assert_eq!(args.parallelism.threads(), 3);
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads", "lots"]).is_err());
    }
}
