//! Experiment sizing.
//!
//! The paper trains Unet256/Unet512 models on 512×512 heatmaps of
//! billion-instruction traces using an RTX A6000. This reproduction runs
//! on a single CPU core, so every dimension — image size, trace length,
//! model width, dataset size, epochs — is a tunable [`Scale`]. The
//! *pipeline* is identical at every scale; only the sizes change.

use cachebox_heatmap::HeatmapGeometry;
use serde::{Deserialize, Serialize};

/// All experiment size knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Heatmap geometry (image size, window, overlap).
    pub geometry: HeatmapGeometry,
    /// Accesses generated per benchmark trace.
    pub trace_accesses: usize,
    /// Generator base width (paper: 128).
    pub ngf: usize,
    /// Discriminator base width (paper: 64).
    pub ndf: usize,
    /// Discriminator depth (paper: 1 ⇒ 16×16 patches; 4 ⇒ 142×142).
    pub d_layers: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Training batch size.
    pub batch_size: usize,
    /// SPEC-like benchmarks in the experiment pool.
    pub spec_benchmarks: usize,
    /// Ligra-like benchmarks in the pool.
    pub ligra_benchmarks: usize,
    /// Polybench-like benchmarks in the pool.
    pub polybench_benchmarks: usize,
    /// Pixel pre-scale fed to the normalizer (the paper scales pixel
    /// values by two; larger values boost the contrast of sparse miss
    /// pixels at the cost of earlier saturation of dense access pixels).
    pub norm_scale: f32,
    /// Reconstruction weight λ. The paper uses 150; the scaled-down
    /// presets use 20 — at small model/step budgets a large λ lets the
    /// L1 term's "all-background" optimum drown the adversarial
    /// gradient and the generator never learns miss structure (see the
    /// `ablation_lambda` harness).
    pub lambda: f32,
    /// Master seed for dataset construction and training.
    pub seed: u64,
}

impl Scale {
    /// Minimal scale for unit/integration tests: 16×16 heatmaps, a
    /// handful of benchmarks, seconds of CPU time.
    pub fn tiny() -> Self {
        Scale {
            geometry: HeatmapGeometry::new(16, 16, 8),
            trace_accesses: 2_000,
            ngf: 4,
            ndf: 4,
            d_layers: 1,
            epochs: 2,
            batch_size: 4,
            spec_benchmarks: 6,
            ligra_benchmarks: 3,
            polybench_benchmarks: 3,
            norm_scale: 4.0,
            lambda: 20.0,
            seed: 42,
        }
    }

    /// Small demo scale: 32×32 heatmaps, a few minutes of CPU time.
    pub fn small() -> Self {
        Scale {
            geometry: HeatmapGeometry::new(32, 32, 16),
            trace_accesses: 8_000,
            ngf: 8,
            ndf: 8,
            d_layers: 1,
            epochs: 60,
            batch_size: 8,
            spec_benchmarks: 16,
            ligra_benchmarks: 6,
            polybench_benchmarks: 6,
            norm_scale: 4.0,
            lambda: 20.0,
            seed: 42,
        }
    }

    /// The default experiment scale used by the `cachebox-bench` figure
    /// binaries: 64×64 heatmaps, tens of minutes of CPU time per figure.
    pub fn experiment() -> Self {
        Scale {
            geometry: HeatmapGeometry::new(64, 64, 32),
            trace_accesses: 14_000,
            ngf: 16,
            ndf: 16,
            d_layers: 1,
            epochs: 40,
            batch_size: 8,
            spec_benchmarks: 20,
            ligra_benchmarks: 10,
            polybench_benchmarks: 8,
            norm_scale: 4.0,
            lambda: 20.0,
            seed: 42,
        }
    }

    /// The paper's full scale (for reference and for users with time to
    /// burn): 512×512 heatmaps, paper-sized suites and model widths.
    pub fn paper() -> Self {
        Scale {
            geometry: HeatmapGeometry::paper(),
            trace_accesses: 50_000_000,
            ngf: 128,
            ndf: 64,
            d_layers: 1,
            epochs: 100,
            batch_size: 16,
            spec_benchmarks: 189,
            ligra_benchmarks: 100,
            polybench_benchmarks: 32,
            norm_scale: 2.0,
            lambda: 150.0,
            seed: 42,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Image side length (heatmaps are square at every preset).
    pub fn image_size(&self) -> usize {
        self.geometry.height
    }

    /// The cache hierarchy matching this scale. At paper scale this is
    /// the paper's 64s12w / 1024s8w / 2048s16w hierarchy; the CPU-scale
    /// presets shrink L2/L3 proportionally to their much shorter traces
    /// so the outer levels see meaningful reuse (with billion-access
    /// traces, L1 misses recirculate at a 8192-block L2; with 8k-access
    /// traces they would all be cold).
    pub fn hierarchy(&self) -> cachebox_sim::HierarchyConfig {
        if self.geometry.height >= 512 {
            cachebox_sim::HierarchyConfig::paper_default()
        } else {
            cachebox_sim::HierarchyConfig::three_level(
                cachebox_sim::CacheConfig::new(64, 12),
                cachebox_sim::CacheConfig::new(256, 4),
                cachebox_sim::CacheConfig::new(512, 8),
            )
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::experiment()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_square_power_of_two_images() {
        for scale in [Scale::tiny(), Scale::small(), Scale::experiment(), Scale::paper()] {
            assert_eq!(scale.geometry.height, scale.geometry.width);
            assert!(scale.image_size().is_power_of_two());
        }
    }

    #[test]
    fn presets_grow_monotonically() {
        let t = Scale::tiny();
        let s = Scale::small();
        let e = Scale::experiment();
        assert!(t.image_size() < s.image_size());
        assert!(s.image_size() < e.image_size());
        assert!(t.trace_accesses < e.trace_accesses);
    }

    #[test]
    fn builder_methods() {
        let s = Scale::tiny().with_seed(7).with_epochs(9);
        assert_eq!(s.seed, 7);
        assert_eq!(s.epochs, 9);
    }

    #[test]
    fn paper_scale_matches_paper_constants() {
        let p = Scale::paper();
        assert_eq!(p.geometry.height, 512);
        assert_eq!(p.geometry.window, 100);
        assert_eq!(p.ngf, 128);
        assert_eq!(p.ndf, 64);
        assert_eq!(p.spec_benchmarks, 189);
    }
}
