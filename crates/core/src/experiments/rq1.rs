//! RQ1 (Fig. 7): generalizing to unseen applications across suites.
//!
//! One CB-GAN is trained on a mixture of SPEC-, Ligra-, and
//! Polybench-like benchmarks for the 64set-12way L1 configuration; every
//! inference benchmark comes from an application never seen in training.

use crate::dataset::Pipeline;
use crate::experiments::{filter_with_fallback, train_cbgan, LEVEL_THRESHOLDS};
use crate::scale::Scale;
use cachebox_gan::TrainStats;
use cachebox_metrics::{AccuracySummary, BenchmarkAccuracy};
use cachebox_sim::CacheConfig;
use cachebox_workloads::Dataset;
use serde::{Deserialize, Serialize};

/// Fig. 7 output: per-benchmark true/predicted hit rates and the summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rq1Result {
    /// Per-benchmark accuracies (test set only).
    pub records: Vec<BenchmarkAccuracy>,
    /// Aggregate statistics (the paper reports 3.05 % average).
    pub summary: AccuracySummary,
    /// Per-epoch training losses.
    pub history: Vec<TrainStats>,
}

/// Runs the experiment at the given scale.
pub fn run(scale: &Scale) -> Rq1Result {
    let _stage = cachebox_telemetry::stage("rq1.run");
    let pipeline = Pipeline::new(scale);
    let config = CacheConfig::new(64, 12);
    let dataset = Dataset::build(
        scale.spec_benchmarks,
        scale.ligra_benchmarks,
        scale.polybench_benchmarks,
        scale.seed,
    );
    // §6.1: train and evaluate in the high-data regime only.
    let train = filter_with_fallback(&pipeline, &dataset.split.train, &config, LEVEL_THRESHOLDS[0]);
    let test = filter_with_fallback(&pipeline, &dataset.split.test, &config, LEVEL_THRESHOLDS[0]);
    let samples = pipeline.training_samples(&train, &[config]);
    let (mut generator, history) = train_cbgan(scale, &samples, true);
    let records: Vec<BenchmarkAccuracy> = test
        .iter()
        .map(|b| pipeline.evaluate(&mut generator, b, &config, true, scale.batch_size))
        .collect();
    let summary = AccuracySummary::from_records(&records);
    Rq1Result { records, summary, history }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_rq1_end_to_end() {
        let scale = Scale::tiny().with_epochs(1);
        let result = run(&scale);
        assert!(!result.records.is_empty(), "test set must survive filtering");
        assert_eq!(result.summary.count, result.records.len());
        for r in &result.records {
            assert!(r.true_rate > 0.65, "filter must hold for {}", r.name);
            assert!((0.0..=1.0).contains(&r.predicted_rate));
        }
        assert_eq!(result.history.len(), 1);
    }
}
