//! Extension experiment beyond the paper (§6.3 future work):
//! replacement-policy transfer.
//!
//! The paper's ground truth is always LRU. A natural question its future
//!-work section raises is how far a CB-GAN trained on one policy's miss
//! behaviour transfers to others. This experiment trains on LRU miss
//! heatmaps (the paper's setting) and evaluates the same model against
//! ground truth produced under FIFO, tree-PLRU, SRRIP, and Random
//! replacement — quantifying how policy-specific the learned filter is.

use crate::dataset::Pipeline;
use crate::experiments::{filter_with_fallback, train_cbgan, LEVEL_THRESHOLDS};
use crate::scale::Scale;
use cachebox_gan::infer::infer_batched;
use cachebox_gan::CacheParams;
use cachebox_heatmap::{hitrate, Heatmap, HeatmapBuilder};
use cachebox_metrics::{AccuracySummary, BenchmarkAccuracy};
use cachebox_sim::{Cache, CacheConfig, ReplacementPolicyKind};
use cachebox_workloads::{Benchmark, Suite, SuiteId};
use serde::{Deserialize, Serialize};

/// Transfer accuracy against one target policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyTransfer {
    /// Ground-truth replacement policy evaluated against.
    pub policy: String,
    /// Per-benchmark records.
    pub records: Vec<BenchmarkAccuracy>,
    /// Aggregate statistics.
    pub summary: AccuracySummary,
}

/// Policy-transfer experiment output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyTransferResult {
    /// One entry per target policy; the first is LRU (the training
    /// policy, i.e. the in-distribution reference).
    pub per_policy: Vec<PolicyTransfer>,
}

/// Policies evaluated, training policy first.
pub const POLICIES: [ReplacementPolicyKind; 5] = [
    ReplacementPolicyKind::Lru,
    ReplacementPolicyKind::Fifo,
    ReplacementPolicyKind::TreePlru,
    ReplacementPolicyKind::Srrip,
    ReplacementPolicyKind::Random,
];

fn evaluate_against_policy(
    pipeline: &Pipeline,
    generator: &mut cachebox_gan::UNetGenerator,
    bench: &Benchmark,
    config: CacheConfig,
    scale: &Scale,
) -> BenchmarkAccuracy {
    // Ground truth under the *target* policy.
    let trace = bench.generate(scale.trace_accesses);
    let mut cache = Cache::new(config);
    let result = cache.run(&trace);
    let pairs = HeatmapBuilder::new(*pipeline.geometry()).build_pairs(&trace, &result.hit_flags);
    let access: Vec<Heatmap> = pairs.iter().map(|p| p.access.clone()).collect();
    let real: Vec<Heatmap> = pairs.iter().map(|p| p.miss.clone()).collect();
    // Prediction from the LRU-trained model.
    let params = CacheParams::new(config.sets as u32, config.ways as u32);
    let synthetic = infer_batched(
        generator,
        &access,
        Some(params),
        &pipeline.eval_normalizer(),
        scale.batch_size,
    );
    BenchmarkAccuracy {
        name: bench.display_name().to_string(),
        true_rate: hitrate::hit_rate_from_sequences(&access, &real, pipeline.geometry()).hit_rate(),
        predicted_rate: hitrate::predicted_hit_rate(&access, &synthetic, pipeline.geometry())
            .hit_rate(),
    }
}

/// Runs the policy-transfer experiment at the given scale.
pub fn policy_transfer(scale: &Scale) -> PolicyTransferResult {
    let _stage = cachebox_telemetry::stage("extension.policy_transfer");
    let pipeline = Pipeline::new(scale);
    let lru_config = CacheConfig::new(64, 12);
    let suite = Suite::build(SuiteId::Spec, scale.spec_benchmarks, scale.seed);
    let split = suite.split_80_20(scale.seed);
    let train = filter_with_fallback(&pipeline, &split.train, &lru_config, LEVEL_THRESHOLDS[0]);
    let test = filter_with_fallback(&pipeline, &split.test, &lru_config, LEVEL_THRESHOLDS[0]);
    let samples = pipeline.training_samples(&train, &[lru_config]);
    let (mut generator, _) = train_cbgan(scale, &samples, true);
    let per_policy = POLICIES
        .iter()
        .map(|&policy| {
            let config = CacheConfig::new(64, 12).with_policy(policy);
            let records: Vec<BenchmarkAccuracy> = test
                .iter()
                .map(|b| evaluate_against_policy(&pipeline, &mut generator, b, config, scale))
                .collect();
            PolicyTransfer {
                policy: policy.to_string(),
                summary: AccuracySummary::from_records(&records),
                records,
            }
        })
        .collect();
    PolicyTransferResult { per_policy }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_policy_transfer_covers_all_policies() {
        let result = policy_transfer(&Scale::tiny().with_epochs(1));
        assert_eq!(result.per_policy.len(), POLICIES.len());
        assert_eq!(result.per_policy[0].policy, "lru");
        for p in &result.per_policy {
            for r in &p.records {
                assert!((0.0..=1.0).contains(&r.true_rate));
                assert!((0.0..=1.0).contains(&r.predicted_rate));
            }
        }
    }
}
