//! RQ6 (Fig. 12): true-vs-predicted scatter and the positive-correlation
//! bias.
//!
//! Every (benchmark, configuration) pair evaluated with the RQ2 model
//! becomes one scatter point. The paper observes tight clustering above
//! 90 % true hit rate and a positive bias in the 70–90 % band, caused by
//! the dataset's skew toward high hit rates.

use crate::experiments::rq2::{evaluate_configs, Rq2Artifacts};
use crate::scale::Scale;
use cachebox_metrics::BenchmarkAccuracy;
use serde::{Deserialize, Serialize};

/// One scatter point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScatterPoint {
    /// Configuration name.
    pub config: String,
    /// Benchmark/accuracy record.
    pub record: BenchmarkAccuracy,
}

/// Fig. 12 output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rq6Result {
    /// All scatter points.
    pub points: Vec<ScatterPoint>,
    /// Mean signed bias (predicted − true) for points with true rate in
    /// `[0.9, 1.0]`.
    pub bias_high_band: f64,
    /// Mean signed bias for points with true rate in `[0.7, 0.9)`.
    pub bias_mid_band: f64,
}

fn mean_bias<'a>(points: impl Iterator<Item = &'a ScatterPoint>) -> f64 {
    let collected: Vec<f64> =
        points.map(|p| p.record.predicted_rate - p.record.true_rate).collect();
    if collected.is_empty() {
        0.0
    } else {
        collected.iter().sum::<f64>() / collected.len() as f64
    }
}

/// Builds the scatter from a trained RQ2 model.
pub fn run_with(artifacts: &mut Rq2Artifacts) -> Rq6Result {
    let _stage = cachebox_telemetry::stage("rq6.scatter");
    let configs = artifacts.train_configs.clone();
    let result = evaluate_configs(artifacts, &configs);
    let points: Vec<ScatterPoint> = result
        .per_config
        .into_iter()
        .flat_map(|c| {
            let config = c.config;
            c.records.into_iter().map(move |record| ScatterPoint { config: config.clone(), record })
        })
        .collect();
    let bias_high_band = mean_bias(points.iter().filter(|p| p.record.true_rate >= 0.9));
    let bias_mid_band =
        mean_bias(points.iter().filter(|p| (0.7..0.9).contains(&p.record.true_rate)));
    Rq6Result { points, bias_high_band, bias_mid_band }
}

/// Convenience: train the RQ2 model and build the scatter.
pub fn run(scale: &Scale) -> Rq6Result {
    let mut artifacts = crate::experiments::rq2::train(scale);
    run_with(&mut artifacts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_rq6_builds_scatter() {
        let result = run(&Scale::tiny().with_epochs(1));
        assert!(!result.points.is_empty());
        for p in &result.points {
            assert!((0.0..=1.0).contains(&p.record.true_rate));
            assert!((0.0..=1.0).contains(&p.record.predicted_rate));
        }
        assert!(result.bias_high_band.is_finite());
        assert!(result.bias_mid_band.is_finite());
    }
}
