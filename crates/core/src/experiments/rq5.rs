//! RQ5 (Fig. 11): parallelized inference through batching.
//!
//! The paper measures per-benchmark inference time at batch sizes 1–32
//! (2.4× speedup at 32 on an A6000) and compares sequential CBox against
//! MultiCacheSim (1.61–1.81×). This harness reproduces both series on
//! CPU: batching amortizes per-call buffer and dispatch costs, and the
//! MultiCacheSim-style baseline simulates the same traces.

use crate::dataset::Pipeline;
use crate::experiments::rq2::Rq2Artifacts;
use crate::scale::Scale;
use cachebox_gan::infer::timed_inference;
use cachebox_gan::CacheParams;
use cachebox_heatmap::Heatmap;
use cachebox_sim::multicache::MultiCacheSim;
use cachebox_sim::CacheConfig;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Timing at one batch size, averaged over benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchTiming {
    /// Batch size used.
    pub batch_size: usize,
    /// Mean per-benchmark inference time.
    pub mean_time: Duration,
    /// Speedup relative to batch size 1.
    pub speedup: f64,
}

/// Fig. 11 output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rq5Result {
    /// CBox inference time per batch size.
    pub batches: Vec<BatchTiming>,
    /// Mean MultiCacheSim simulation time per benchmark (same traces).
    pub multicache_time: Duration,
    /// Sequential CBox time / MultiCacheSim time context for the paper's
    /// 1.61–1.81× discussion (values < 1 mean CBox is faster).
    pub cbox_over_multicache: f64,
}

/// Batch sizes measured in the paper's sweep.
pub const BATCH_SIZES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Runs the sweep using a trained RQ2 model.
pub fn run_with(artifacts: &mut Rq2Artifacts) -> Rq5Result {
    let _stage = cachebox_telemetry::stage("rq5.sweep");
    let scale = artifacts.scale;
    let pipeline = Pipeline::new(&scale);
    let config = CacheConfig::new(64, 12);
    let params = CacheParams::new(64, 12);
    let norm = pipeline.normalizer();
    // Pre-render every test benchmark's access heatmaps.
    let benchmark_maps: Vec<Vec<Heatmap>> = artifacts
        .test
        .iter()
        .map(|b| pipeline.heatmap_pairs(b, &config).into_iter().map(|p| p.access).collect())
        .collect();
    let mut batches = Vec::with_capacity(BATCH_SIZES.len());
    let mut base = Duration::ZERO;
    for &batch_size in &BATCH_SIZES {
        let mut total = Duration::ZERO;
        for maps in &benchmark_maps {
            let (_, timing) =
                timed_inference(&mut artifacts.generator, maps, Some(params), &norm, batch_size);
            total += timing.total;
        }
        let mean_time = total / benchmark_maps.len().max(1) as u32;
        if batch_size == 1 {
            base = mean_time;
        }
        let speedup = base.as_secs_f64() / mean_time.as_secs_f64().max(1e-12);
        batches.push(BatchTiming { batch_size, mean_time, speedup });
    }
    // MultiCacheSim over the same traces.
    let start = std::time::Instant::now();
    for bench in &artifacts.test {
        let trace = bench.generate(scale.trace_accesses);
        let mut sim = MultiCacheSim::new(vec![config]);
        sim.run(&trace);
    }
    let multicache_time = start.elapsed() / artifacts.test.len().max(1) as u32;
    let cbox_over_multicache = base.as_secs_f64() / multicache_time.as_secs_f64().max(1e-12);
    Rq5Result { batches, multicache_time, cbox_over_multicache }
}

/// Convenience: train the RQ2 model and run the sweep.
pub fn run(scale: &Scale) -> Rq5Result {
    let mut artifacts = crate::experiments::rq2::train(scale);
    run_with(&mut artifacts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_rq5_sweeps_batch_sizes() {
        let result = run(&Scale::tiny().with_epochs(1));
        assert_eq!(result.batches.len(), BATCH_SIZES.len());
        assert_eq!(result.batches[0].batch_size, 1);
        assert!((result.batches[0].speedup - 1.0).abs() < 1e-9);
        for b in &result.batches {
            assert!(b.mean_time > Duration::ZERO);
            assert!(b.speedup > 0.0);
        }
        assert!(result.multicache_time > Duration::ZERO);
    }
}
