//! Runnable reproductions of every evaluation in the paper.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`rq1`] | Fig. 7 — generalization across benchmark suites |
//! | [`rq2`] | Fig. 8 — one model, four L1 configurations |
//! | [`rq3`] | Fig. 9 — zero-shot unseen configurations |
//! | [`rq4`] | Fig. 10 — L1/L2/L3, combined vs standalone models |
//! | [`rq5`] | Fig. 11 — batched inference + MultiCacheSim comparison |
//! | [`rq6`] | Fig. 12 — true-vs-predicted scatter |
//! | [`rq7`] | Fig. 13 — next-line prefetcher modelling (MSE/SSIM) |
//! | [`ecosystem`] | Fig. 14 — hit-rate distribution of the dataset |
//! | [`table1`] | Table 1 — CBox vs HRD, STM, tabular synthesis |
//! | [`ablation`] | §3.1.1/§4.2/§4.3 design-choice sweeps |
//! | [`extension`] | §6.3 future work: replacement-policy transfer |
//!
//! Every `run` function takes a [`Scale`], so the same experiment runs in
//! seconds (`Scale::tiny`) for tests or at full fidelity for figures.

pub mod ablation;
pub mod ecosystem;
pub mod extension;
pub mod rq1;
pub mod rq2;
pub mod rq3;
pub mod rq4;
pub mod rq5;
pub mod rq6;
pub mod rq7;
pub mod table1;

use crate::dataset::Pipeline;
use crate::scale::Scale;
use cachebox_gan::data::{Normalizer, Sample};
use cachebox_gan::{
    GanTrainer, PatchGan, PatchGanConfig, TrainConfig, TrainStats, UNetConfig, UNetGenerator,
};
use cachebox_sim::CacheConfig;
use cachebox_workloads::Benchmark;

/// Builds the generator architecture for a scale.
pub fn generator_config(scale: &Scale, conditioned: bool) -> UNetConfig {
    let mut config = UNetConfig::for_image_size(scale.image_size(), scale.ngf);
    if conditioned {
        config = config.with_param_features(2);
    }
    config
}

/// Trains a CB-GAN on prepared samples, returning the generator and the
/// per-epoch loss history.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn train_cbgan(
    scale: &Scale,
    samples: &[Sample],
    conditioned: bool,
) -> (UNetGenerator, Vec<TrainStats>) {
    train_cbgan_with(scale, samples, conditioned, scale.lambda)
}

/// [`train_cbgan`] with an explicit reconstruction weight λ (used by the
/// λ ablation).
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn train_cbgan_with(
    scale: &Scale,
    samples: &[Sample],
    conditioned: bool,
    lambda: f32,
) -> (UNetGenerator, Vec<TrainStats>) {
    let generator = UNetGenerator::new(generator_config(scale, conditioned), scale.seed);
    let discriminator =
        PatchGan::new(PatchGanConfig::new(2, scale.ndf, scale.d_layers), scale.seed + 1);
    let train_config = TrainConfig {
        epochs: scale.epochs,
        batch_size: scale.batch_size,
        seed: scale.seed,
        lambda,
        ..TrainConfig::default()
    };
    let mut trainer = GanTrainer::new(generator, discriminator, train_config);
    let norm = Normalizer::new(scale.geometry.window).with_scale(scale.norm_scale);
    let history = trainer.fit(samples, &norm);
    let (generator, _) = trainer.into_networks();
    (generator, history)
}

/// The paper's low-data-regime rule (§6.1): keep only benchmarks whose
/// *true* hit rate on `config` exceeds `threshold`.
pub fn filter_by_hit_rate(
    pipeline: &Pipeline,
    benchmarks: &[Benchmark],
    config: &CacheConfig,
    threshold: f64,
) -> Vec<Benchmark> {
    let rates = pipeline.true_hit_rates(cachebox_nn::Parallelism::current(), benchmarks, config);
    benchmarks
        .iter()
        .zip(rates)
        .filter(|(_, rate)| *rate > threshold)
        .map(|(b, _)| b.clone())
        .collect()
}

/// The paper's per-level thresholds: 65 % (L1), 40 % (L2), 35 % (L3).
pub const LEVEL_THRESHOLDS: [f64; 3] = [0.65, 0.40, 0.35];

/// [`filter_by_hit_rate`] with a fallback: if the filter would empty the
/// set (possible at small scales), the original set is returned so the
/// experiment remains runnable.
pub fn filter_with_fallback(
    pipeline: &Pipeline,
    benchmarks: &[Benchmark],
    config: &CacheConfig,
    threshold: f64,
) -> Vec<Benchmark> {
    let filtered = filter_by_hit_rate(pipeline, benchmarks, config, threshold);
    if filtered.is_empty() {
        benchmarks.to_vec()
    } else {
        filtered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachebox_workloads::{Suite, SuiteId};

    #[test]
    fn train_cbgan_runs_at_tiny_scale() {
        let scale = Scale::tiny().with_epochs(1);
        let pipeline = Pipeline::new(&scale);
        let suite = Suite::build(SuiteId::Polybench, 2, 1);
        let samples = pipeline.training_samples(suite.benchmarks(), &[CacheConfig::new(64, 12)]);
        let (mut g, history) = train_cbgan(&scale, &samples, true);
        assert_eq!(history.len(), 1);
        assert!(g.param_count() > 0);
    }

    #[test]
    fn filter_keeps_only_high_hit_rates() {
        let scale = Scale::tiny();
        let pipeline = Pipeline::new(&scale);
        let suite = Suite::build(SuiteId::Spec, 6, 3);
        let config = CacheConfig::new(64, 12);
        let kept = filter_by_hit_rate(&pipeline, suite.benchmarks(), &config, 0.65);
        for b in &kept {
            assert!(pipeline.true_hit_rate(b, &config) > 0.65);
        }
        let none = filter_by_hit_rate(&pipeline, suite.benchmarks(), &config, 1.1);
        assert!(none.is_empty());
    }
}
