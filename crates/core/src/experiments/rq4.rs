//! RQ4 (Fig. 10): modelling the full L1/L2/L3 hierarchy.
//!
//! Two paradigms are compared: a **combined** model trained on all three
//! levels at once *without* cache parameters (testing whether CB-GAN can
//! infer the level from the imagery alone), and three **standalone**
//! models each trained on one level with explicit parameters. Benchmarks
//! whose true hit rate at a level falls in the low-data regime (§6.1:
//! below 65/40/35 % for L1/L2/L3) are excluded at that level.

use crate::dataset::Pipeline;
use crate::experiments::{train_cbgan, LEVEL_THRESHOLDS};
use crate::scale::Scale;
use cachebox_gan::data::Sample;
use cachebox_gan::infer::infer_batched;
use cachebox_gan::{CacheParams, UNetGenerator};
use cachebox_heatmap::{hitrate, Heatmap};
use cachebox_metrics::{AccuracySummary, BenchmarkAccuracy};
use cachebox_sim::HierarchyConfig;
use cachebox_workloads::{Benchmark, Suite, SuiteId};
use serde::{Deserialize, Serialize};

/// Accuracy at one hierarchy level under one training paradigm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelAccuracy {
    /// Level name (`L1`, `L2`, `L3`).
    pub level: String,
    /// Per-benchmark records (excluded benchmarks absent).
    pub records: Vec<BenchmarkAccuracy>,
    /// Benchmarks excluded by the low-data-regime rule.
    pub excluded: Vec<String>,
    /// True when the §6.1 threshold would have excluded *every* test
    /// benchmark at this level and was therefore relaxed (small-scale
    /// fallback; the paper's scale always retains some benchmarks).
    pub threshold_relaxed: bool,
    /// Aggregate statistics.
    pub summary: AccuracySummary,
}

/// Fig. 10 output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rq4Result {
    /// Combined (parameter-free, all-level) model accuracy per level.
    pub combined: Vec<LevelAccuracy>,
    /// Standalone per-level model accuracy.
    pub standalone: Vec<LevelAccuracy>,
}

/// Per-benchmark cached dataset: pairs and true rates per level.
struct BenchData {
    bench: Benchmark,
    /// Per level: access/miss pairs of that level's bus.
    pairs: Vec<Vec<cachebox_heatmap::builder::HeatmapPair>>,
    /// Per level: true hit rate.
    true_rates: Vec<f64>,
}

fn prepare(
    pipeline: &Pipeline,
    benchmarks: &[Benchmark],
    hierarchy: &HierarchyConfig,
) -> Vec<BenchData> {
    benchmarks
        .iter()
        .map(|bench| {
            let pairs = pipeline.hierarchy_pairs(bench, hierarchy);
            let true_rates = pairs
                .iter()
                .map(|level_pairs| {
                    hitrate::hit_rate_from_pairs(level_pairs, pipeline.geometry()).hit_rate()
                })
                .collect();
            BenchData { bench: bench.clone(), pairs, true_rates }
        })
        .collect()
}

fn level_samples(
    data: &[BenchData],
    level: usize,
    params: CacheParams,
    threshold: f64,
) -> Vec<Sample> {
    data.iter()
        .filter(|d| d.true_rates[level] > threshold)
        .flat_map(|d| {
            d.pairs[level].iter().map(move |p| Sample {
                access: p.access.clone(),
                miss: p.miss.clone(),
                params,
            })
        })
        .collect()
}

fn evaluate_level(
    generator: &mut UNetGenerator,
    pipeline: &Pipeline,
    data: &[BenchData],
    level: usize,
    params: Option<CacheParams>,
    batch_size: usize,
) -> LevelAccuracy {
    // Relax the low-data-regime threshold when it would exclude every
    // test benchmark (possible at small scales).
    let mut threshold = LEVEL_THRESHOLDS[level];
    let threshold_relaxed = !data.iter().any(|d| d.true_rates[level] > threshold);
    if threshold_relaxed {
        threshold = -1.0;
    }
    let mut records = Vec::new();
    let mut excluded = Vec::new();
    let norm = pipeline.eval_normalizer();
    for d in data {
        if d.true_rates[level] <= threshold {
            excluded.push(d.bench.display_name().to_string());
            continue;
        }
        let access: Vec<Heatmap> = d.pairs[level].iter().map(|p| p.access.clone()).collect();
        if access.is_empty() {
            excluded.push(d.bench.display_name().to_string());
            continue;
        }
        let synthetic = infer_batched(generator, &access, params, &norm, batch_size);
        let predicted = hitrate::predicted_hit_rate(&access, &synthetic, pipeline.geometry());
        records.push(BenchmarkAccuracy {
            name: d.bench.display_name().to_string(),
            true_rate: d.true_rates[level],
            predicted_rate: predicted.hit_rate(),
        });
    }
    LevelAccuracy {
        level: format!("L{}", level + 1),
        summary: AccuracySummary::from_records(&records),
        records,
        excluded,
        threshold_relaxed,
    }
}

/// Runs the experiment at the given scale.
pub fn run(scale: &Scale) -> Rq4Result {
    let _stage = cachebox_telemetry::stage("rq4.run");
    let pipeline = Pipeline::new(scale);
    let hierarchy = scale.hierarchy();
    let suite = Suite::build(SuiteId::Spec, scale.spec_benchmarks, scale.seed);
    let split = suite.split_80_20(scale.seed);
    let train_data = prepare(&pipeline, &split.train, &hierarchy);
    let test_data = prepare(&pipeline, &split.test, &hierarchy);
    let level_params: Vec<CacheParams> =
        hierarchy.levels.iter().map(|c| CacheParams::new(c.sets as u32, c.ways as u32)).collect();

    // Per-level training sets: filtered by the §6.1 thresholds, falling
    // back to the unfiltered level data when filtering empties a level
    // (possible at small scales).
    let samples_for = |level: usize| -> Vec<Sample> {
        let filtered =
            level_samples(&train_data, level, level_params[level], LEVEL_THRESHOLDS[level]);
        if filtered.is_empty() {
            level_samples(&train_data, level, level_params[level], -1.0)
        } else {
            filtered
        }
    };

    // The paper gives the combined and L2/L3 standalone models a larger
    // generator (Unet512) and a wider-receptive-field discriminator
    // (142×142). The scaled analogue: double ngf and add one
    // discriminator stage for those models.
    let mut big = *scale;
    big.ngf = scale.ngf * 2;
    big.d_layers = scale.d_layers + 1;

    // Combined model: all levels together, no cache parameters.
    let combined_samples: Vec<Sample> = (0..3).flat_map(samples_for).collect();
    let (mut combined_model, _) = train_cbgan(&big, &combined_samples, false);
    let combined = (0..3)
        .map(|level| {
            evaluate_level(
                &mut combined_model,
                &pipeline,
                &test_data,
                level,
                None,
                scale.batch_size,
            )
        })
        .collect();

    // Standalone models: one per level, with parameters; L1 keeps the
    // base architecture (the paper's Unet256), L2/L3 use the larger one.
    let standalone = (0..3)
        .map(|level| {
            let arch = if level == 0 { scale } else { &big };
            let (mut model, _) = train_cbgan(arch, &samples_for(level), true);
            evaluate_level(
                &mut model,
                &pipeline,
                &test_data,
                level,
                Some(level_params[level]),
                scale.batch_size,
            )
        })
        .collect();

    Rq4Result { combined, standalone }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_rq4_runs_both_paradigms() {
        let scale = Scale::tiny().with_epochs(1);
        let result = run(&scale);
        assert_eq!(result.combined.len(), 3);
        assert_eq!(result.standalone.len(), 3);
        assert_eq!(result.combined[0].level, "L1");
        assert_eq!(result.standalone[2].level, "L3");
        // Exclusions plus records cover the whole test set at each level.
        let test_count = result.combined[0].records.len() + result.combined[0].excluded.len();
        for l in result.combined.iter().chain(&result.standalone) {
            assert_eq!(l.records.len() + l.excluded.len(), test_count, "level {}", l.level);
        }
    }
}
