//! RQ7 (Fig. 13): learning prefetcher behaviour.
//!
//! The heatmap framing extends beyond caches: the prefetcher's input
//! address stream and its emitted prefetch addresses form paired images
//! on a shared instruction timeline. CB-GAN is trained on
//! access→prefetch pairs for a next-line prefetcher on the 64set-12way
//! L1, and judged per benchmark by MSE and SSIM between real and
//! synthetic prefetch heatmaps.

use crate::dataset::Pipeline;
use crate::experiments::train_cbgan;
use crate::scale::Scale;
use cachebox_gan::data::Sample;
use cachebox_gan::infer::infer_batched;
use cachebox_gan::CacheParams;
use cachebox_metrics::image::{mse, ssim};
use cachebox_sim::{CacheConfig, NextLinePrefetcher, PrefetchTrigger};
use cachebox_workloads::{Suite, SuiteId};
use serde::{Deserialize, Serialize};

/// Image-space accuracy for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefetchAccuracy {
    /// Benchmark name.
    pub name: String,
    /// Mean squared error over all heatmaps, averaged.
    pub mse: f64,
    /// Structural similarity, averaged.
    pub ssim: f64,
}

/// Fig. 13 output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rq7Result {
    /// Per-benchmark records (test set).
    pub records: Vec<PrefetchAccuracy>,
    /// Mean MSE across benchmarks.
    pub mean_mse: f64,
    /// Mean SSIM across benchmarks.
    pub mean_ssim: f64,
}

/// Runs the experiment at the given scale (SPEC-2017-like subset, as the
/// paper restricts RQ7 to SPEC 2017 for compute reasons).
pub fn run(scale: &Scale) -> Rq7Result {
    let _stage = cachebox_telemetry::stage("rq7.run");
    let pipeline = Pipeline::new(scale);
    let config = CacheConfig::new(64, 12);
    let params = CacheParams::new(64, 12);
    let suite = Suite::build(SuiteId::Spec, scale.spec_benchmarks, scale.seed);
    let split = suite.split_80_20(scale.seed);
    let make_pairs = |bench: &cachebox_workloads::Benchmark| {
        let mut prefetcher =
            NextLinePrefetcher::new(config.block_offset_bits, PrefetchTrigger::OnAccess);
        pipeline.prefetch_pairs(bench, &config, &mut prefetcher)
    };
    let samples: Vec<Sample> = split
        .train
        .iter()
        .flat_map(|b| {
            make_pairs(b).into_iter().map(|(access, prefetch)| Sample {
                access,
                miss: prefetch,
                params,
            })
        })
        .collect();
    let (mut generator, _) = train_cbgan(scale, &samples, true);
    let norm = pipeline.eval_normalizer();
    let mut records = Vec::new();
    for bench in &split.test {
        let pairs = make_pairs(bench);
        if pairs.is_empty() {
            continue;
        }
        let access: Vec<_> = pairs.iter().map(|(a, _)| a.clone()).collect();
        let real: Vec<_> = pairs.iter().map(|(_, p)| p.clone()).collect();
        let synthetic =
            infer_batched(&mut generator, &access, Some(params), &norm, scale.batch_size);
        let mut total_mse = 0.0;
        let mut total_ssim = 0.0;
        for (r, s) in real.iter().zip(&synthetic) {
            total_mse += mse(r, &s.relu());
            total_ssim += ssim(r, &s.relu());
        }
        records.push(PrefetchAccuracy {
            name: bench.display_name().to_string(),
            mse: total_mse / real.len() as f64,
            ssim: total_ssim / real.len() as f64,
        });
    }
    let n = records.len().max(1) as f64;
    let mean_mse = records.iter().map(|r| r.mse).sum::<f64>() / n;
    let mean_ssim = records.iter().map(|r| r.ssim).sum::<f64>() / n;
    Rq7Result { records, mean_mse, mean_ssim }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_rq7_produces_image_metrics() {
        let result = run(&Scale::tiny().with_epochs(1));
        assert!(!result.records.is_empty());
        for r in &result.records {
            assert!(r.mse >= 0.0, "{}: mse {}", r.name, r.mse);
            assert!((-1.0..=1.0).contains(&r.ssim), "{}: ssim {}", r.name, r.ssim);
        }
        assert!(result.mean_mse.is_finite());
    }
}
