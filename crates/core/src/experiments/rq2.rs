//! RQ2 (Fig. 8): one model, four L1 configurations.
//!
//! A single CB-GAN is trained on SPEC-like benchmarks with the
//! access/miss pairs of *four* L1 configurations batched together; the
//! cache-parameter inputs let it tell the configurations apart.

use crate::dataset::Pipeline;
use crate::experiments::{filter_with_fallback, train_cbgan, LEVEL_THRESHOLDS};
use crate::scale::Scale;
use cachebox_gan::{TrainStats, UNetGenerator};
use cachebox_metrics::{AccuracySummary, BenchmarkAccuracy};
use cachebox_nn::parallel::{par_map, Parallelism};
use cachebox_sim::config::presets;
use cachebox_sim::CacheConfig;
use cachebox_workloads::{Benchmark, Suite, SuiteId};
use serde::{Deserialize, Serialize};

/// The trained multi-configuration model plus its evaluation context.
/// RQ3, RQ5, and RQ6 reuse these artifacts.
#[derive(Debug)]
pub struct Rq2Artifacts {
    /// The trained conditioned generator.
    pub generator: UNetGenerator,
    /// Held-out test benchmarks (unseen applications, high-data regime).
    pub test: Vec<Benchmark>,
    /// The four training configurations.
    pub train_configs: Vec<CacheConfig>,
    /// Scale used for training (evaluation must match).
    pub scale: Scale,
    /// Per-epoch training losses.
    pub history: Vec<TrainStats>,
}

/// Accuracy of one cache configuration's predictions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigAccuracy {
    /// Configuration name (`64set-12way`, …).
    pub config: String,
    /// Per-benchmark records.
    pub records: Vec<BenchmarkAccuracy>,
    /// Aggregate statistics.
    pub summary: AccuracySummary,
}

/// Fig. 8 output: accuracy per training configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rq2Result {
    /// One entry per configuration, in preset order.
    pub per_config: Vec<ConfigAccuracy>,
}

/// Trains the four-configuration model.
pub fn train(scale: &Scale) -> Rq2Artifacts {
    let _stage = cachebox_telemetry::stage("rq2.train");
    let pipeline = Pipeline::new(scale);
    let configs = presets::rq2_train_configs();
    let suite = Suite::build(SuiteId::Spec, scale.spec_benchmarks, scale.seed);
    let split = suite.split_80_20(scale.seed);
    let reference = CacheConfig::new(64, 12);
    let train = filter_with_fallback(&pipeline, &split.train, &reference, LEVEL_THRESHOLDS[0]);
    let test = filter_with_fallback(&pipeline, &split.test, &reference, LEVEL_THRESHOLDS[0]);
    let samples = pipeline.training_samples(&train, &configs);
    let (generator, history) = train_cbgan(scale, &samples, true);
    Rq2Artifacts { generator, test, train_configs: configs, scale: *scale, history }
}

/// Like [`train`], but caching the trained generator at `cache_path`:
/// if a checkpoint trained at an identical [`Scale`] exists there it is
/// loaded instead of retraining (the dataset and split are deterministic
/// in the scale, so only the weights need caching). Used by the RQ3/
/// RQ5/RQ6 harness binaries, which all build on the RQ2 model.
pub fn train_or_load(scale: &Scale, cache_path: &std::path::Path) -> Rq2Artifacts {
    use cachebox_gan::checkpoint::Checkpoint;
    #[derive(serde::Serialize, serde::Deserialize)]
    struct CachedModel {
        scale: Scale,
        checkpoint: Checkpoint,
    }
    if let Ok(file) = std::fs::File::open(cache_path) {
        if let Ok(cached) = serde_json::from_reader::<_, CachedModel>(std::io::BufReader::new(file))
        {
            if cached.scale == *scale {
                if let Ok(generator) = cached.checkpoint.restore() {
                    cachebox_telemetry::progress!(
                        "loaded cached RQ2 model from {}",
                        cache_path.display()
                    );
                    // Rebuild the deterministic evaluation context.
                    let pipeline = Pipeline::new(scale);
                    let suite = Suite::build(SuiteId::Spec, scale.spec_benchmarks, scale.seed);
                    let split = suite.split_80_20(scale.seed);
                    let reference = CacheConfig::new(64, 12);
                    let test = filter_with_fallback(
                        &pipeline,
                        &split.test,
                        &reference,
                        LEVEL_THRESHOLDS[0],
                    );
                    return Rq2Artifacts {
                        generator,
                        test,
                        train_configs: presets::rq2_train_configs(),
                        scale: *scale,
                        history: Vec::new(),
                    };
                }
            }
        }
    }
    let mut artifacts = train(scale);
    let cached =
        CachedModel { scale: *scale, checkpoint: Checkpoint::capture(&mut artifacts.generator) };
    if let Some(parent) = cache_path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match std::fs::File::create(cache_path) {
        Ok(file) => {
            if serde_json::to_writer(std::io::BufWriter::new(file), &cached).is_ok() {
                cachebox_telemetry::progress!("cached RQ2 model at {}", cache_path.display());
            }
        }
        Err(e) => cachebox_telemetry::progress!("could not cache RQ2 model: {e}"),
    }
    artifacts
}

/// Evaluates a trained model over a set of configurations (used by both
/// RQ2 on the training configs and RQ3 on unseen ones).
pub fn evaluate_configs(artifacts: &mut Rq2Artifacts, configs: &[CacheConfig]) -> Rq2Result {
    let _stage = cachebox_telemetry::stage("rq2.evaluate");
    let pipeline = Pipeline::new(&artifacts.scale);
    let par = Parallelism::current();
    // One trace per test benchmark, shared by every configuration's
    // simulation; the per-config sweeps then simulate in parallel.
    let traces = par_map(par, &artifacts.test, |b| pipeline.trace(b));
    let per_config = configs
        .iter()
        .map(|config| {
            let records: Vec<BenchmarkAccuracy> = pipeline.evaluate_sweep_traced(
                par,
                &mut artifacts.generator,
                &artifacts.test,
                &traces,
                config,
                true,
                artifacts.scale.batch_size,
            );
            ConfigAccuracy {
                config: config.name(),
                summary: AccuracySummary::from_records(&records),
                records,
            }
        })
        .collect();
    Rq2Result { per_config }
}

/// Runs the full RQ2 experiment: train once, evaluate on the four
/// training configurations.
pub fn run(scale: &Scale) -> (Rq2Artifacts, Rq2Result) {
    let mut artifacts = train(scale);
    let configs = artifacts.train_configs.clone();
    let result = evaluate_configs(&mut artifacts, &configs);
    (artifacts, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_rq2_trains_and_evaluates_four_configs() {
        let scale = Scale::tiny().with_epochs(1);
        let (artifacts, result) = run(&scale);
        assert_eq!(result.per_config.len(), 4);
        assert_eq!(result.per_config[0].config, "64set-12way");
        assert!(!artifacts.test.is_empty());
        for c in &result.per_config {
            assert_eq!(c.records.len(), artifacts.test.len());
        }
    }
}
