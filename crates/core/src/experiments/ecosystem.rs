//! Data-ecosystem analysis (Fig. 14, §6.1).
//!
//! Histograms the *true* hit rates of the whole benchmark pool and
//! checks the paper's distribution claims: the SPEC-dominated dataset is
//! heavily skewed toward high hit rates (over 95 % of SPEC benchmarks
//! above a 65 % L1 hit rate; over 92 % of all benchmarks combined).

use crate::dataset::Pipeline;
use crate::scale::Scale;
use cachebox_metrics::Histogram;
use cachebox_sim::CacheConfig;
use cachebox_workloads::Dataset;
use serde::{Deserialize, Serialize};

/// Fig. 14 output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EcosystemResult {
    /// Histogram of SPEC true hit rates on the 64set-12way L1 (20 bins).
    pub spec_l1_histogram: Histogram,
    /// Fraction of SPEC benchmarks above 65 % L1 hit rate.
    pub spec_above_65: f64,
    /// Fraction of *all* benchmarks above 65 % L1 hit rate.
    pub all_above_65: f64,
    /// Fraction of SPEC benchmarks above 40 % hit rate on the L2.
    pub spec_l2_above_40: f64,
    /// Fraction of SPEC benchmarks above 35 % hit rate on the L3.
    pub spec_l3_above_35: f64,
}

/// Runs the analysis at the given scale.
pub fn run(scale: &Scale) -> EcosystemResult {
    let _stage = cachebox_telemetry::stage("ecosystem.run");
    let pipeline = Pipeline::new(scale);
    let l1 = CacheConfig::new(64, 12);
    let hierarchy = scale.hierarchy();
    let dataset = Dataset::build(
        scale.spec_benchmarks,
        scale.ligra_benchmarks,
        scale.polybench_benchmarks,
        scale.seed,
    );
    let mut spec_l1_histogram = Histogram::new(0.0, 1.0, 20);
    let mut spec_above = 0usize;
    let mut spec_total = 0usize;
    let mut all_above = 0usize;
    let mut all_total = 0usize;
    let mut l2_above = 0usize;
    let mut l3_above = 0usize;
    for suite in &dataset.suites {
        let is_spec = suite.id() == cachebox_workloads::SuiteId::Spec;
        for bench in suite.benchmarks() {
            let rate = pipeline.true_hit_rate(bench, &l1);
            all_total += 1;
            if rate > 0.65 {
                all_above += 1;
            }
            if is_spec {
                spec_total += 1;
                spec_l1_histogram.record(rate);
                if rate > 0.65 {
                    spec_above += 1;
                }
                let rates = pipeline.hierarchy_true_rates(bench, &hierarchy);
                if rates[1] > 0.40 {
                    l2_above += 1;
                }
                if rates[2] > 0.35 {
                    l3_above += 1;
                }
            }
        }
    }
    let frac = |n: usize, d: usize| n as f64 / d.max(1) as f64;
    EcosystemResult {
        spec_l1_histogram,
        spec_above_65: frac(spec_above, spec_total),
        all_above_65: frac(all_above, all_total),
        spec_l2_above_40: frac(l2_above, spec_total),
        spec_l3_above_35: frac(l3_above, spec_total),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_ecosystem_reports_fractions() {
        let result = run(&Scale::tiny());
        assert!(result.spec_l1_histogram.total() > 0);
        for f in [
            result.spec_above_65,
            result.all_above_65,
            result.spec_l2_above_40,
            result.spec_l3_above_35,
        ] {
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn distribution_skews_high_at_small_scale() {
        // The suites are built to mirror Fig. 14: a solid majority of
        // SPEC benchmarks must land above the 65 % threshold.
        let mut scale = Scale::tiny();
        scale.spec_benchmarks = 12;
        let result = run(&scale);
        assert!(result.spec_above_65 >= 0.5, "spec_above_65 = {}", result.spec_above_65);
    }
}
