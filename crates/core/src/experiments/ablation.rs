//! Design-choice ablations backing the paper's stated choices:
//! the 30 % overlap (§3.1.1), the modulo-512/window-100 geometry (§4.2),
//! and the λ = 150 loss weight (§4.3).

use crate::dataset::Pipeline;
use crate::experiments::{generator_config, LEVEL_THRESHOLDS};
use crate::scale::Scale;
use cachebox_gan::data::Normalizer;
use cachebox_gan::{GanTrainer, PatchGan, PatchGanConfig, TrainConfig, UNetGenerator};
use cachebox_heatmap::HeatmapGeometry;
use cachebox_metrics::{AccuracySummary, BenchmarkAccuracy};
use cachebox_sim::CacheConfig;
use cachebox_workloads::{Suite, SuiteId};
use serde::{Deserialize, Serialize};

/// One ablation setting's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Human-readable setting (e.g. `overlap=0.30`).
    pub setting: String,
    /// Accuracy summary at this setting.
    pub summary: AccuracySummary,
}

/// A full sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationResult {
    /// Which knob was swept.
    pub knob: String,
    /// One point per setting, in sweep order.
    pub points: Vec<AblationPoint>,
}

fn train_and_eval(scale: &Scale, lambda: f32) -> AccuracySummary {
    let pipeline = Pipeline::new(scale);
    let config = CacheConfig::new(64, 12);
    let suite = Suite::build(SuiteId::Spec, scale.spec_benchmarks, scale.seed);
    let split = suite.split_80_20(scale.seed);
    let train = crate::experiments::filter_by_hit_rate(
        &pipeline,
        &split.train,
        &config,
        LEVEL_THRESHOLDS[0],
    );
    let test = crate::experiments::filter_by_hit_rate(
        &pipeline,
        &split.test,
        &config,
        LEVEL_THRESHOLDS[0],
    );
    let samples = pipeline.training_samples(&train, &[config]);
    let generator = UNetGenerator::new(generator_config(scale, true), scale.seed);
    let discriminator =
        PatchGan::new(PatchGanConfig::new(2, scale.ndf, scale.d_layers), scale.seed + 1);
    let train_config = TrainConfig {
        epochs: scale.epochs,
        batch_size: scale.batch_size,
        seed: scale.seed,
        lambda,
        ..TrainConfig::default()
    };
    let mut trainer = GanTrainer::new(generator, discriminator, train_config);
    trainer.fit(&samples, &Normalizer::new(scale.geometry.window).with_scale(scale.norm_scale));
    let (mut generator, _) = trainer.into_networks();
    let records: Vec<BenchmarkAccuracy> = test
        .iter()
        .map(|b| pipeline.evaluate(&mut generator, b, &config, true, scale.batch_size))
        .collect();
    AccuracySummary::from_records(&records)
}

/// Sweeps the inter-heatmap overlap fraction (§3.1.1; the paper lands on
/// 30 %).
pub fn overlap_sweep(scale: &Scale, overlaps: &[f64]) -> AblationResult {
    let _stage = cachebox_telemetry::stage("ablation.overlap");
    let points = overlaps
        .iter()
        .map(|&overlap| {
            let mut s = *scale;
            s.geometry = s.geometry.with_overlap(overlap);
            AblationPoint {
                setting: format!("overlap={overlap:.2}"),
                summary: train_and_eval(&s, s.lambda),
            }
        })
        .collect();
    AblationResult { knob: "overlap".to_string(), points }
}

/// Sweeps the reconstruction weight λ (§4.3; the paper uses 150).
pub fn lambda_sweep(scale: &Scale, lambdas: &[f32]) -> AblationResult {
    let _stage = cachebox_telemetry::stage("ablation.lambda");
    let points = lambdas
        .iter()
        .map(|&lambda| AblationPoint {
            setting: format!("lambda={lambda}"),
            summary: train_and_eval(scale, lambda),
        })
        .collect();
    AblationResult { knob: "lambda".to_string(), points }
}

/// Sweeps the per-column window size at fixed image size (§4.2; the
/// paper finds 100-unit windows "compact but lossy" at 512×512).
pub fn window_sweep(scale: &Scale, windows: &[u64]) -> AblationResult {
    let _stage = cachebox_telemetry::stage("ablation.window");
    let points = windows
        .iter()
        .map(|&window| {
            let mut s = *scale;
            s.geometry = HeatmapGeometry::new(scale.geometry.height, scale.geometry.width, window)
                .with_overlap(scale.geometry.overlap_frac);
            AblationPoint {
                setting: format!("window={window}"),
                summary: train_and_eval(&s, s.lambda),
            }
        })
        .collect();
    AblationResult { knob: "window".to_string(), points }
}

/// Sweeps the heatmap modulo height at a fixed pixel budget (§4.2; the
/// paper finds modulo 512 best at full scale).
pub fn geometry_sweep(scale: &Scale, heights: &[usize]) -> AblationResult {
    let _stage = cachebox_telemetry::stage("ablation.geometry");
    let points = heights
        .iter()
        .map(|&height| {
            let mut s = *scale;
            // Keep images square and the per-map access budget constant.
            let budget = scale.geometry.units_per_heatmap();
            s.geometry = HeatmapGeometry::new(height, height, (budget / height as u64).max(1))
                .with_overlap(scale.geometry.overlap_frac);
            AblationPoint {
                setting: format!("modulo={height}"),
                summary: train_and_eval(&s, s.lambda),
            }
        })
        .collect();
    AblationResult { knob: "geometry".to_string(), points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_sweep_runs_at_tiny_scale() {
        let scale = Scale::tiny().with_epochs(1);
        let result = overlap_sweep(&scale, &[0.0, 0.3]);
        assert_eq!(result.points.len(), 2);
        assert_eq!(result.points[1].setting, "overlap=0.30");
        for p in &result.points {
            assert!(p.summary.average.is_finite());
        }
    }

    #[test]
    fn lambda_sweep_runs_at_tiny_scale() {
        let scale = Scale::tiny().with_epochs(1);
        let result = lambda_sweep(&scale, &[150.0]);
        assert_eq!(result.points.len(), 1);
        assert_eq!(result.knob, "lambda");
    }

    #[test]
    fn geometry_sweep_preserves_power_of_two() {
        let scale = Scale::tiny().with_epochs(1);
        let result = geometry_sweep(&scale, &[8, 16]);
        assert_eq!(result.points.len(), 2);
    }
}
