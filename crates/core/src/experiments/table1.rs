//! Table 1 (§6.2): CBox vs baselines on L1 miss-rate prediction.
//!
//! Five SPEC-2017-like applications with multiple traced phases each.
//! The baselines (three tabular-synthesis variants, HRD, STM) predict a
//! miss rate per phase; their per-application score is the mean absolute
//! percentage difference across phases. CBox reports the *best*, *worst*,
//! and *average* phase, as in the paper.

use crate::dataset::Pipeline;
use crate::experiments::train_cbgan;
use crate::scale::Scale;
use cachebox_baselines::{Hrd, MissRatePredictor, Stm, TabSynth, TabVariant};
use cachebox_sim::CacheConfig;
use cachebox_workloads::{Benchmark, BenchmarkId, Recipe, Suite, SuiteId};
use serde::{Deserialize, Serialize};

/// The five evaluated applications (paper rows 600–638).
pub const APPS: [&str; 5] =
    ["600.perlbench_s", "602.gcc_s", "607.cactuBSSN_s", "631.deepsjeng_s", "638.imagick_s"];

/// Phases evaluated per application.
pub const PHASES_PER_APP: u32 = 3;

/// One row of Table 1 (absolute percentage differences of miss rate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Application short name (e.g. `600`).
    pub app: String,
    /// Tab-Base, Tab-RD, Tab-IC mean differences.
    pub tabular: [f64; 3],
    /// HRD mean difference.
    pub hrd: f64,
    /// STM mean difference.
    pub stm: f64,
    /// CBox best phase.
    pub cbox_best: f64,
    /// CBox worst phase.
    pub cbox_worst: f64,
    /// CBox phase average.
    pub cbox_avg: f64,
}

/// Table 1 output: one row per application plus the averages row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Result {
    /// Per-application rows.
    pub rows: Vec<Table1Row>,
    /// Column means (the paper's `avg % diff` row), in the same order as
    /// the row fields.
    pub averages: Table1Row,
}

fn phase_benchmarks(seed: u64) -> Vec<Benchmark> {
    APPS.iter()
        .flat_map(|&app| {
            (0..PHASES_PER_APP).map(move |phase| {
                Benchmark::new(
                    BenchmarkId { suite: SuiteId::Spec, app: app.to_string(), phase },
                    cachebox_workloads::spec::phase_name(app, phase),
                    Recipe::Spec { seed },
                )
            })
        })
        .collect()
}

/// Runs the comparison at the given scale.
pub fn run(scale: &Scale) -> Table1Result {
    let _stage = cachebox_telemetry::stage("table1.run");
    let pipeline = Pipeline::new(scale);
    let config = CacheConfig::new(64, 12);
    // CBox training set: SPEC-like benchmarks *excluding* the five
    // evaluated applications (strict train/test separation).
    let suite = Suite::build(SuiteId::Spec, scale.spec_benchmarks, scale.seed);
    let train: Vec<Benchmark> = suite
        .benchmarks()
        .iter()
        .filter(|b| !APPS.contains(&b.id().app.as_str()))
        .cloned()
        .collect();
    let samples = pipeline.training_samples(&train, &[config]);
    let (mut generator, _) = train_cbgan(scale, &samples, true);

    let baselines: Vec<Box<dyn MissRatePredictor>> = vec![
        Box::new(TabSynth::new(TabVariant::Base, scale.seed)),
        Box::new(TabSynth::new(TabVariant::ReuseDistance, scale.seed)),
        Box::new(TabSynth::new(TabVariant::InContext, scale.seed)),
        Box::new(Hrd::new()),
        Box::new(Stm::new(scale.seed)),
    ];

    let mut rows = Vec::with_capacity(APPS.len());
    for app in APPS {
        let phases: Vec<Benchmark> =
            phase_benchmarks(scale.seed).into_iter().filter(|b| b.id().app == app).collect();
        // Baseline error per phase (miss-rate absolute % difference).
        let mut baseline_errors = vec![Vec::new(); baselines.len()];
        let mut cbox_errors = Vec::new();
        for bench in &phases {
            let trace = bench.generate(scale.trace_accesses);
            let truth = cachebox_baselines::true_miss_rate(&trace, &config);
            for (i, b) in baselines.iter().enumerate() {
                let predicted = b.predict_miss_rate(&trace, &config);
                baseline_errors[i].push((predicted - truth).abs() * 100.0);
            }
            let acc = pipeline.evaluate(&mut generator, bench, &config, true, scale.batch_size);
            // Hit-rate difference equals miss-rate difference in magnitude.
            cbox_errors.push(acc.abs_pct_diff());
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        rows.push(Table1Row {
            app: app.split('.').next().unwrap_or(app).to_string(),
            tabular: [
                mean(&baseline_errors[0]),
                mean(&baseline_errors[1]),
                mean(&baseline_errors[2]),
            ],
            hrd: mean(&baseline_errors[3]),
            stm: mean(&baseline_errors[4]),
            cbox_best: cbox_errors.iter().cloned().fold(f64::INFINITY, f64::min),
            cbox_worst: cbox_errors.iter().cloned().fold(0.0, f64::max),
            cbox_avg: mean(&cbox_errors),
        });
    }
    let col = |f: &dyn Fn(&Table1Row) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
    let averages = Table1Row {
        app: "avg".to_string(),
        tabular: [col(&|r| r.tabular[0]), col(&|r| r.tabular[1]), col(&|r| r.tabular[2])],
        hrd: col(&|r| r.hrd),
        stm: col(&|r| r.stm),
        cbox_best: col(&|r| r.cbox_best),
        cbox_worst: col(&|r| r.cbox_worst),
        cbox_avg: col(&|r| r.cbox_avg),
    };
    Table1Result { rows, averages }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_table1_has_all_rows() {
        let result = run(&Scale::tiny().with_epochs(1));
        assert_eq!(result.rows.len(), 5);
        assert_eq!(result.rows[0].app, "600");
        for row in &result.rows {
            assert!(row.cbox_best <= row.cbox_avg + 1e-9);
            assert!(row.cbox_avg <= row.cbox_worst + 1e-9);
            assert!(row.hrd >= 0.0 && row.stm >= 0.0);
        }
        assert_eq!(result.averages.app, "avg");
    }
}
