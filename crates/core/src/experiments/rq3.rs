//! RQ3 (Fig. 9): zero-shot generalization to unseen cache
//! configurations.
//!
//! The RQ2 model (trained on four L1 configurations) is evaluated on
//! three configurations entirely absent from training: 256set-6way,
//! 256set-12way, and 32set-12way.

use crate::experiments::rq2::{evaluate_configs, Rq2Artifacts, Rq2Result};
use crate::scale::Scale;
use cachebox_sim::config::presets;

/// Evaluates RQ2 artifacts on the unseen configurations.
pub fn evaluate(artifacts: &mut Rq2Artifacts) -> Rq2Result {
    let _stage = cachebox_telemetry::stage("rq3.evaluate");
    evaluate_configs(artifacts, &presets::rq3_unseen_configs())
}

/// Convenience: train the RQ2 model and run the RQ3 evaluation.
pub fn run(scale: &Scale) -> Rq2Result {
    let mut artifacts = crate::experiments::rq2::train(scale);
    evaluate(&mut artifacts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_rq3_covers_unseen_configs() {
        let result = run(&Scale::tiny().with_epochs(1));
        let names: Vec<&str> = result.per_config.iter().map(|c| c.config.as_str()).collect();
        assert_eq!(names, ["256set-6way", "256set-12way", "32set-12way"]);
        for c in &result.per_config {
            for r in &c.records {
                assert!((0.0..=1.0).contains(&r.predicted_rate));
            }
        }
    }
}
