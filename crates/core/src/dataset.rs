//! Benchmark → trace → simulation → heatmap-pair datasets, and model
//! evaluation against simulated ground truth.

use crate::scale::Scale;
use cachebox_gan::data::{Normalizer, Sample};
use cachebox_gan::infer::{infer_batched, FrozenGenerator};
use cachebox_gan::{CacheParams, UNetGenerator};
use cachebox_heatmap::builder::HeatmapPair;
use cachebox_heatmap::{hitrate, Heatmap, HeatmapBuilder, HeatmapGeometry};
use cachebox_metrics::BenchmarkAccuracy;
use cachebox_nn::parallel::{par_map, Parallelism};
use cachebox_sim::{Cache, CacheConfig};
use cachebox_trace::Trace;
use cachebox_workloads::Benchmark;

/// The data pipeline: fixed geometry and trace length, shared by
/// training-set construction and evaluation.
///
/// See the [crate-level quickstart](crate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pipeline {
    geometry: HeatmapGeometry,
    trace_accesses: usize,
    norm_scale: f32,
}

impl Pipeline {
    /// Creates a pipeline from an experiment scale.
    pub fn new(scale: &Scale) -> Self {
        Pipeline {
            geometry: scale.geometry,
            trace_accesses: scale.trace_accesses,
            norm_scale: scale.norm_scale,
        }
    }

    /// The heatmap geometry in use.
    pub fn geometry(&self) -> &HeatmapGeometry {
        &self.geometry
    }

    /// The normalizer matching this geometry's window size (used for
    /// training batches).
    pub fn normalizer(&self) -> Normalizer {
        Normalizer::new(self.geometry.window).with_scale(self.norm_scale)
    }

    /// The evaluation-side normalizer. Background noise in generated
    /// maps is handled structurally — synthetic miss pixels are clamped
    /// to the access ceiling in
    /// [`predicted_hit_rate`](cachebox_heatmap::hitrate::predicted_hit_rate) —
    /// so counts are left unrounded to preserve weak real-miss signal.
    pub fn eval_normalizer(&self) -> Normalizer {
        self.normalizer()
    }

    /// Generates the benchmark's access trace once, so callers sweeping
    /// several configurations can share it instead of regenerating.
    pub fn trace(&self, bench: &Benchmark) -> Trace {
        let _span = cachebox_telemetry::span("pipeline.trace");
        bench.generate(self.trace_accesses)
    }

    /// Generates the benchmark's trace, simulates `config`, and renders
    /// the paired access/miss heatmaps.
    pub fn heatmap_pairs(&self, bench: &Benchmark, config: &CacheConfig) -> Vec<HeatmapPair> {
        self.pairs_from_trace(&self.trace(bench), config)
    }

    /// [`Pipeline::heatmap_pairs`] against an already generated trace.
    pub fn pairs_from_trace(&self, trace: &Trace, config: &CacheConfig) -> Vec<HeatmapPair> {
        let _span = cachebox_telemetry::span("pipeline.heatmaps");
        let mut cache = Cache::new(*config);
        let result = cache.run(trace);
        HeatmapBuilder::new(self.geometry).build_pairs(trace, &result.hit_flags)
    }

    /// Like [`Pipeline::heatmap_pairs`] but producing GAN training
    /// [`Sample`]s carrying the cache parameters.
    pub fn samples(&self, bench: &Benchmark, config: &CacheConfig) -> Vec<Sample> {
        self.samples_from_trace(&self.trace(bench), config)
    }

    /// [`Pipeline::samples`] against an already generated trace.
    pub fn samples_from_trace(&self, trace: &Trace, config: &CacheConfig) -> Vec<Sample> {
        let params = CacheParams::new(config.sets as u32, config.ways as u32);
        self.pairs_from_trace(trace, config)
            .into_iter()
            .map(|p| Sample { access: p.access, miss: p.miss, params })
            .collect()
    }

    /// Builds the full training set: every benchmark × every
    /// configuration, batched together (the paper's multi-config
    /// training, §5.2). Uses the process-wide
    /// [`Parallelism::current`] thread budget.
    pub fn training_samples(
        &self,
        benchmarks: &[Benchmark],
        configs: &[CacheConfig],
    ) -> Vec<Sample> {
        self.training_samples_with(Parallelism::current(), benchmarks, configs)
    }

    /// [`Pipeline::training_samples`] with an explicit thread budget.
    ///
    /// Each benchmark's trace is generated once and simulated against
    /// every configuration; (benchmark, config) jobs run across `par`
    /// threads. The sample order is identical to the serial nested loop
    /// (benchmark-major, configuration-minor) for any thread count.
    pub fn training_samples_with(
        &self,
        par: Parallelism,
        benchmarks: &[Benchmark],
        configs: &[CacheConfig],
    ) -> Vec<Sample> {
        let _span = cachebox_telemetry::span("pipeline.training_samples");
        let traces = par_map(par, benchmarks, |b| self.trace(b));
        let jobs: Vec<(usize, CacheConfig)> =
            (0..benchmarks.len()).flat_map(|bi| configs.iter().map(move |c| (bi, *c))).collect();
        par_map(par, &jobs, |(bi, config)| self.samples_from_trace(&traces[*bi], config))
            .into_iter()
            .flatten()
            .collect()
    }

    /// Replays the benchmark through a multi-level hierarchy and renders
    /// per-level access/miss heatmap pairs: index 0 is L1's bus, index 1
    /// the L1→L2 bus, and so on (the paper's "every bus is a heatmap"
    /// observation, §2).
    pub fn hierarchy_pairs(
        &self,
        bench: &Benchmark,
        hierarchy: &cachebox_sim::HierarchyConfig,
    ) -> Vec<Vec<HeatmapPair>> {
        let trace = bench.generate(self.trace_accesses);
        let mut sim = cachebox_sim::CacheHierarchy::new(hierarchy.clone());
        let result = sim.run(&trace);
        let builder = HeatmapBuilder::new(self.geometry);
        result
            .levels
            .iter()
            .map(|level| builder.build_pairs(&level.accesses, &level.hit_flags))
            .collect()
    }

    /// True per-level hit rates for a hierarchy run.
    pub fn hierarchy_true_rates(
        &self,
        bench: &Benchmark,
        hierarchy: &cachebox_sim::HierarchyConfig,
    ) -> Vec<f64> {
        let trace = bench.generate(self.trace_accesses);
        let mut sim = cachebox_sim::CacheHierarchy::new(hierarchy.clone());
        sim.run(&trace).levels.iter().map(|l| l.hit_rate()).collect()
    }

    /// Replays the benchmark with a prefetcher attached and renders the
    /// RQ7 access/prefetch heatmap pairs on a shared instruction
    /// timeline.
    pub fn prefetch_pairs(
        &self,
        bench: &Benchmark,
        config: &CacheConfig,
        prefetcher: &mut dyn cachebox_sim::Prefetcher,
    ) -> Vec<(Heatmap, Heatmap)> {
        let trace = bench.generate(self.trace_accesses);
        let mut cache = Cache::new(*config);
        let (_result, prefetch_trace) = cache.run_with_prefetcher(&trace, prefetcher);
        HeatmapBuilder::new(self.geometry)
            .with_axis(cachebox_heatmap::TimeAxis::Instructions)
            .build_aligned(&trace, &prefetch_trace)
    }

    /// Exact simulated hit rate (the experiments' ground truth).
    pub fn true_hit_rate(&self, bench: &Benchmark, config: &CacheConfig) -> f64 {
        self.true_hit_rate_from_trace(&self.trace(bench), config)
    }

    /// [`Pipeline::true_hit_rate`] against an already generated trace.
    pub fn true_hit_rate_from_trace(&self, trace: &Trace, config: &CacheConfig) -> f64 {
        Cache::new(*config).run(trace).hit_rate()
    }

    /// [`Pipeline::true_hit_rate`] for many benchmarks at once, with
    /// trace generation and simulation spread across `par` threads.
    pub fn true_hit_rates(
        &self,
        par: Parallelism,
        benchmarks: &[Benchmark],
        config: &CacheConfig,
    ) -> Vec<f64> {
        par_map(par, benchmarks, |b| self.true_hit_rate(b, config))
    }

    /// Evaluates a trained generator on one benchmark/configuration:
    /// renders the access heatmaps, generates synthetic miss heatmaps,
    /// and recovers both the *true* and the *predicted* hit rate via the
    /// overlap-deduplicated pixel sums of §4.4.
    ///
    /// `conditioned` must match how the generator was built (with or
    /// without the cache-parameter head).
    pub fn evaluate(
        &self,
        generator: &mut UNetGenerator,
        bench: &Benchmark,
        config: &CacheConfig,
        conditioned: bool,
        batch_size: usize,
    ) -> BenchmarkAccuracy {
        let pairs = self.heatmap_pairs(bench, config);
        self.accuracy_from_pairs(generator, bench, config, &pairs, conditioned, batch_size)
    }

    /// Evaluates one configuration across many benchmarks. Trace
    /// generation, simulation, and generator inference all run across
    /// `par` threads; inference workers thaw local models from one
    /// shared read-only [`FrozenGenerator`] arena, so results are
    /// identical to the serial per-benchmark path.
    pub fn evaluate_sweep(
        &self,
        par: Parallelism,
        generator: &mut UNetGenerator,
        benchmarks: &[Benchmark],
        config: &CacheConfig,
        conditioned: bool,
        batch_size: usize,
    ) -> Vec<BenchmarkAccuracy> {
        let traces = par_map(par, benchmarks, |b| self.trace(b));
        self.evaluate_sweep_traced(
            par,
            generator,
            benchmarks,
            &traces,
            config,
            conditioned,
            batch_size,
        )
    }

    /// [`Pipeline::evaluate_sweep`] against traces generated up front
    /// (one per benchmark), so a multi-configuration sweep pays for
    /// trace generation once.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_sweep_traced(
        &self,
        par: Parallelism,
        generator: &mut UNetGenerator,
        benchmarks: &[Benchmark],
        traces: &[Trace],
        config: &CacheConfig,
        conditioned: bool,
        batch_size: usize,
    ) -> Vec<BenchmarkAccuracy> {
        assert_eq!(benchmarks.len(), traces.len(), "one trace per benchmark");
        if par.threads() <= 1 {
            // Serial: run against the caller's generator directly.
            let sims = par_map(par, traces, |t| self.pairs_from_trace(t, config));
            return benchmarks
                .iter()
                .zip(&sims)
                .map(|(bench, pairs)| {
                    self.accuracy_from_pairs(
                        generator,
                        bench,
                        config,
                        pairs,
                        conditioned,
                        batch_size,
                    )
                })
                .collect();
        }
        // Freeze the weights once; each worker thaws a private model
        // from the shared arena. Inference is eval-mode and
        // deterministic, so sharding cannot change any result.
        let frozen = FrozenGenerator::of(generator);
        self.evaluate_sweep_frozen(
            par,
            &frozen,
            benchmarks,
            traces,
            config,
            conditioned,
            batch_size,
        )
    }

    /// Evaluates one benchmark/configuration against an already frozen
    /// weight arena. This is the shared eval-loop entry used by the
    /// serving front-end (`cachebox-serve`): thawing a private model
    /// keeps the arena read-only, so any number of threads can call
    /// this concurrently over one [`FrozenGenerator`], and the result
    /// is bitwise identical to [`Pipeline::evaluate`] on the generator
    /// the arena was frozen from.
    pub fn evaluate_frozen(
        &self,
        frozen: &FrozenGenerator,
        bench: &Benchmark,
        config: &CacheConfig,
        conditioned: bool,
        batch_size: usize,
    ) -> BenchmarkAccuracy {
        let pairs = self.heatmap_pairs(bench, config);
        let mut local = frozen.thaw();
        self.accuracy_from_pairs(&mut local, bench, config, &pairs, conditioned, batch_size)
    }

    /// [`Pipeline::evaluate_frozen`] over many benchmarks with traces
    /// generated up front (one per benchmark). Simulation and inference
    /// fan out across `par` threads; each worker thaws a private model
    /// from the shared arena, so results match the serial path exactly.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_sweep_frozen(
        &self,
        par: Parallelism,
        frozen: &FrozenGenerator,
        benchmarks: &[Benchmark],
        traces: &[Trace],
        config: &CacheConfig,
        conditioned: bool,
        batch_size: usize,
    ) -> Vec<BenchmarkAccuracy> {
        assert_eq!(benchmarks.len(), traces.len(), "one trace per benchmark");
        let sims = par_map(par, traces, |t| self.pairs_from_trace(t, config));
        let jobs: Vec<(&Benchmark, &[HeatmapPair])> =
            benchmarks.iter().zip(sims.iter().map(Vec::as_slice)).collect();
        par_map(par, &jobs, |(bench, pairs)| {
            let mut local = frozen.thaw();
            self.accuracy_from_pairs(&mut local, bench, config, pairs, conditioned, batch_size)
        })
    }

    fn accuracy_from_pairs(
        &self,
        generator: &mut UNetGenerator,
        bench: &Benchmark,
        config: &CacheConfig,
        pairs: &[HeatmapPair],
        conditioned: bool,
        batch_size: usize,
    ) -> BenchmarkAccuracy {
        let _span = cachebox_telemetry::span("pipeline.evaluate");
        let access: Vec<Heatmap> = pairs.iter().map(|p| p.access.clone()).collect();
        let real_miss: Vec<Heatmap> = pairs.iter().map(|p| p.miss.clone()).collect();
        let norm = self.eval_normalizer();
        let params = conditioned.then(|| CacheParams::new(config.sets as u32, config.ways as u32));
        let synthetic = infer_batched(generator, &access, params, &norm, batch_size);
        let true_rate = hitrate::hit_rate_from_sequences(&access, &real_miss, &self.geometry);
        let predicted = hitrate::predicted_hit_rate(&access, &synthetic, &self.geometry);
        BenchmarkAccuracy {
            name: bench.display_name().to_string(),
            true_rate: true_rate.hit_rate(),
            predicted_rate: predicted.hit_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachebox_gan::{UNetConfig, UNetGenerator};
    use cachebox_workloads::{Suite, SuiteId};

    fn pipeline_and_bench() -> (Pipeline, Benchmark) {
        let scale = Scale::tiny();
        let suite = Suite::build(SuiteId::Polybench, 2, 3);
        (Pipeline::new(&scale), suite.benchmarks()[0].clone())
    }

    #[test]
    fn pairs_have_miss_subset_of_access() {
        let (p, b) = pipeline_and_bench();
        let pairs = p.heatmap_pairs(&b, &CacheConfig::new(16, 2));
        assert!(!pairs.is_empty());
        for pair in &pairs {
            assert!(pair.miss.pixel_sum() <= pair.access.pixel_sum());
        }
    }

    #[test]
    fn heatmap_hit_rate_matches_simulator_hit_rate() {
        // The §4.4 recovery from heatmap pixel sums must agree exactly
        // with the simulator's counters.
        let (p, b) = pipeline_and_bench();
        let config = CacheConfig::new(16, 2);
        let pairs = p.heatmap_pairs(&b, &config);
        let truth = p.true_hit_rate(&b, &config);
        let from_maps = hitrate::hit_rate_from_pairs(&pairs, p.geometry());
        assert!(
            (from_maps.hit_rate() - truth).abs() < 1e-9,
            "heatmap {} vs sim {truth}",
            from_maps.hit_rate()
        );
    }

    #[test]
    fn training_samples_cross_product() {
        let (p, b) = pipeline_and_bench();
        let configs = [CacheConfig::new(16, 2), CacheConfig::new(32, 4)];
        let per_config = p.samples(&b, &configs[0]).len();
        let all = p.training_samples(&[b], &configs);
        assert_eq!(all.len(), 2 * per_config);
    }

    #[test]
    fn parallel_training_samples_match_serial_exactly() {
        let scale = Scale::tiny();
        let p = Pipeline::new(&scale);
        let suite = Suite::build(SuiteId::Polybench, 3, 3);
        let benches = suite.benchmarks().to_vec();
        let configs = [CacheConfig::new(16, 2), CacheConfig::new(32, 4)];
        let serial = p.training_samples_with(Parallelism::serial(), &benches, &configs);
        for threads in [2, 3, 8] {
            let parallel = p.training_samples_with(Parallelism::new(threads), &benches, &configs);
            assert_eq!(serial, parallel, "divergence at {threads} threads");
        }
    }

    #[test]
    fn shared_trace_matches_regeneration() {
        let (p, b) = pipeline_and_bench();
        let config = CacheConfig::new(16, 2);
        let trace = p.trace(&b);
        assert_eq!(p.heatmap_pairs(&b, &config), p.pairs_from_trace(&trace, &config));
        assert_eq!(p.true_hit_rate(&b, &config), p.true_hit_rate_from_trace(&trace, &config));
    }

    #[test]
    fn true_hit_rates_match_individual_calls() {
        let scale = Scale::tiny();
        let p = Pipeline::new(&scale);
        let suite = Suite::build(SuiteId::Polybench, 3, 3);
        let benches = suite.benchmarks().to_vec();
        let config = CacheConfig::new(16, 2);
        let batch = p.true_hit_rates(Parallelism::new(4), &benches, &config);
        let single: Vec<f64> = benches.iter().map(|b| p.true_hit_rate(b, &config)).collect();
        assert_eq!(batch, single);
    }

    #[test]
    fn evaluate_sweep_matches_per_benchmark_evaluate() {
        let scale = Scale::tiny();
        let p = Pipeline::new(&scale);
        let suite = Suite::build(SuiteId::Polybench, 2, 3);
        let benches = suite.benchmarks().to_vec();
        let config = CacheConfig::new(16, 2);
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(16, 4).with_param_features(2), 1);
        let swept = p.evaluate_sweep(Parallelism::new(4), &mut g, &benches, &config, true, 4);
        let single: Vec<_> =
            benches.iter().map(|b| p.evaluate(&mut g, b, &config, true, 4)).collect();
        assert_eq!(swept.len(), single.len());
        for (s, e) in swept.iter().zip(&single) {
            assert_eq!(s.name, e.name);
            assert_eq!(s.true_rate, e.true_rate);
            assert_eq!(s.predicted_rate, e.predicted_rate);
        }
    }

    #[test]
    fn frozen_eval_entries_match_in_process_paths_bitwise() {
        let scale = Scale::tiny();
        let p = Pipeline::new(&scale);
        let suite = Suite::build(SuiteId::Polybench, 2, 3);
        let benches = suite.benchmarks().to_vec();
        let config = CacheConfig::new(16, 2);
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(16, 4).with_param_features(2), 1);
        let frozen = cachebox_gan::infer::FrozenGenerator::of(&mut g);

        // Single-benchmark entry vs the mutable-generator path.
        for b in &benches {
            let direct = p.evaluate(&mut g, b, &config, true, 4);
            let via_arena = p.evaluate_frozen(&frozen, b, &config, true, 4);
            assert_eq!(direct.name, via_arena.name);
            assert_eq!(direct.true_rate.to_bits(), via_arena.true_rate.to_bits());
            assert_eq!(direct.predicted_rate.to_bits(), via_arena.predicted_rate.to_bits());
        }

        // Sweep entry vs evaluate_sweep, serial and parallel budgets.
        let traces: Vec<_> = benches.iter().map(|b| p.trace(b)).collect();
        let swept = p.evaluate_sweep(Parallelism::new(4), &mut g, &benches, &config, true, 4);
        for par in [Parallelism::serial(), Parallelism::new(4)] {
            let via_arena =
                p.evaluate_sweep_frozen(par, &frozen, &benches, &traces, &config, true, 4);
            assert_eq!(swept.len(), via_arena.len());
            for (s, a) in swept.iter().zip(&via_arena) {
                assert_eq!(s.name, a.name);
                assert_eq!(s.true_rate.to_bits(), a.true_rate.to_bits());
                assert_eq!(s.predicted_rate.to_bits(), a.predicted_rate.to_bits());
            }
        }
    }

    #[test]
    fn evaluate_produces_valid_rates() {
        let (p, b) = pipeline_and_bench();
        let mut g = UNetGenerator::new(UNetConfig::for_image_size(16, 4).with_param_features(2), 1);
        let acc = p.evaluate(&mut g, &b, &CacheConfig::new(16, 2), true, 4);
        assert!((0.0..=1.0).contains(&acc.true_rate));
        assert!((0.0..=1.0).contains(&acc.predicted_rate));
        assert!(!acc.name.is_empty());
    }
}
