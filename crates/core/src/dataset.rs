//! Benchmark → trace → simulation → heatmap-pair datasets, and model
//! evaluation against simulated ground truth.

use crate::scale::Scale;
use cachebox_gan::data::{Normalizer, Sample};
use cachebox_gan::infer::infer_batched;
use cachebox_gan::{CacheParams, UNetGenerator};
use cachebox_heatmap::builder::HeatmapPair;
use cachebox_heatmap::{hitrate, Heatmap, HeatmapBuilder, HeatmapGeometry};
use cachebox_metrics::BenchmarkAccuracy;
use cachebox_sim::{Cache, CacheConfig};
use cachebox_workloads::Benchmark;

/// The data pipeline: fixed geometry and trace length, shared by
/// training-set construction and evaluation.
///
/// See the [crate-level quickstart](crate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pipeline {
    geometry: HeatmapGeometry,
    trace_accesses: usize,
    norm_scale: f32,
}

impl Pipeline {
    /// Creates a pipeline from an experiment scale.
    pub fn new(scale: &Scale) -> Self {
        Pipeline {
            geometry: scale.geometry,
            trace_accesses: scale.trace_accesses,
            norm_scale: scale.norm_scale,
        }
    }

    /// The heatmap geometry in use.
    pub fn geometry(&self) -> &HeatmapGeometry {
        &self.geometry
    }

    /// The normalizer matching this geometry's window size (used for
    /// training batches).
    pub fn normalizer(&self) -> Normalizer {
        Normalizer::new(self.geometry.window).with_scale(self.norm_scale)
    }

    /// The evaluation-side normalizer. Background noise in generated
    /// maps is handled structurally — synthetic miss pixels are clamped
    /// to the access ceiling in
    /// [`predicted_hit_rate`](cachebox_heatmap::hitrate::predicted_hit_rate) —
    /// so counts are left unrounded to preserve weak real-miss signal.
    pub fn eval_normalizer(&self) -> Normalizer {
        self.normalizer()
    }

    /// Generates the benchmark's trace, simulates `config`, and renders
    /// the paired access/miss heatmaps.
    pub fn heatmap_pairs(&self, bench: &Benchmark, config: &CacheConfig) -> Vec<HeatmapPair> {
        let trace = bench.generate(self.trace_accesses);
        let mut cache = Cache::new(*config);
        let result = cache.run(&trace);
        HeatmapBuilder::new(self.geometry).build_pairs(&trace, &result.hit_flags)
    }

    /// Like [`Pipeline::heatmap_pairs`] but producing GAN training
    /// [`Sample`]s carrying the cache parameters.
    pub fn samples(&self, bench: &Benchmark, config: &CacheConfig) -> Vec<Sample> {
        let params = CacheParams::new(config.sets as u32, config.ways as u32);
        self.heatmap_pairs(bench, config)
            .into_iter()
            .map(|p| Sample { access: p.access, miss: p.miss, params })
            .collect()
    }

    /// Builds the full training set: every benchmark × every
    /// configuration, batched together (the paper's multi-config
    /// training, §5.2).
    pub fn training_samples(
        &self,
        benchmarks: &[Benchmark],
        configs: &[CacheConfig],
    ) -> Vec<Sample> {
        let mut out = Vec::new();
        for bench in benchmarks {
            for config in configs {
                out.extend(self.samples(bench, config));
            }
        }
        out
    }

    /// Replays the benchmark through a multi-level hierarchy and renders
    /// per-level access/miss heatmap pairs: index 0 is L1's bus, index 1
    /// the L1→L2 bus, and so on (the paper's "every bus is a heatmap"
    /// observation, §2).
    pub fn hierarchy_pairs(
        &self,
        bench: &Benchmark,
        hierarchy: &cachebox_sim::HierarchyConfig,
    ) -> Vec<Vec<HeatmapPair>> {
        let trace = bench.generate(self.trace_accesses);
        let mut sim = cachebox_sim::CacheHierarchy::new(hierarchy.clone());
        let result = sim.run(&trace);
        let builder = HeatmapBuilder::new(self.geometry);
        result
            .levels
            .iter()
            .map(|level| builder.build_pairs(&level.accesses, &level.hit_flags))
            .collect()
    }

    /// True per-level hit rates for a hierarchy run.
    pub fn hierarchy_true_rates(
        &self,
        bench: &Benchmark,
        hierarchy: &cachebox_sim::HierarchyConfig,
    ) -> Vec<f64> {
        let trace = bench.generate(self.trace_accesses);
        let mut sim = cachebox_sim::CacheHierarchy::new(hierarchy.clone());
        sim.run(&trace).levels.iter().map(|l| l.hit_rate()).collect()
    }

    /// Replays the benchmark with a prefetcher attached and renders the
    /// RQ7 access/prefetch heatmap pairs on a shared instruction
    /// timeline.
    pub fn prefetch_pairs(
        &self,
        bench: &Benchmark,
        config: &CacheConfig,
        prefetcher: &mut dyn cachebox_sim::Prefetcher,
    ) -> Vec<(Heatmap, Heatmap)> {
        let trace = bench.generate(self.trace_accesses);
        let mut cache = Cache::new(*config);
        let (_result, prefetch_trace) = cache.run_with_prefetcher(&trace, prefetcher);
        HeatmapBuilder::new(self.geometry)
            .with_axis(cachebox_heatmap::TimeAxis::Instructions)
            .build_aligned(&trace, &prefetch_trace)
    }

    /// Exact simulated hit rate (the experiments' ground truth).
    pub fn true_hit_rate(&self, bench: &Benchmark, config: &CacheConfig) -> f64 {
        let trace = bench.generate(self.trace_accesses);
        let mut cache = Cache::new(*config);
        cache.run(&trace).hit_rate()
    }

    /// Evaluates a trained generator on one benchmark/configuration:
    /// renders the access heatmaps, generates synthetic miss heatmaps,
    /// and recovers both the *true* and the *predicted* hit rate via the
    /// overlap-deduplicated pixel sums of §4.4.
    ///
    /// `conditioned` must match how the generator was built (with or
    /// without the cache-parameter head).
    pub fn evaluate(
        &self,
        generator: &mut UNetGenerator,
        bench: &Benchmark,
        config: &CacheConfig,
        conditioned: bool,
        batch_size: usize,
    ) -> BenchmarkAccuracy {
        let pairs = self.heatmap_pairs(bench, config);
        let access: Vec<Heatmap> = pairs.iter().map(|p| p.access.clone()).collect();
        let real_miss: Vec<Heatmap> = pairs.iter().map(|p| p.miss.clone()).collect();
        let norm = self.eval_normalizer();
        let params = conditioned
            .then(|| CacheParams::new(config.sets as u32, config.ways as u32));
        let synthetic = infer_batched(generator, &access, params, &norm, batch_size);
        let true_rate = hitrate::hit_rate_from_sequences(&access, &real_miss, &self.geometry);
        let predicted = hitrate::predicted_hit_rate(&access, &synthetic, &self.geometry);
        BenchmarkAccuracy {
            name: bench.display_name().to_string(),
            true_rate: true_rate.hit_rate(),
            predicted_rate: predicted.hit_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachebox_gan::{UNetConfig, UNetGenerator};
    use cachebox_workloads::{Suite, SuiteId};

    fn pipeline_and_bench() -> (Pipeline, Benchmark) {
        let scale = Scale::tiny();
        let suite = Suite::build(SuiteId::Polybench, 2, 3);
        (Pipeline::new(&scale), suite.benchmarks()[0].clone())
    }

    #[test]
    fn pairs_have_miss_subset_of_access() {
        let (p, b) = pipeline_and_bench();
        let pairs = p.heatmap_pairs(&b, &CacheConfig::new(16, 2));
        assert!(!pairs.is_empty());
        for pair in &pairs {
            assert!(pair.miss.pixel_sum() <= pair.access.pixel_sum());
        }
    }

    #[test]
    fn heatmap_hit_rate_matches_simulator_hit_rate() {
        // The §4.4 recovery from heatmap pixel sums must agree exactly
        // with the simulator's counters.
        let (p, b) = pipeline_and_bench();
        let config = CacheConfig::new(16, 2);
        let pairs = p.heatmap_pairs(&b, &config);
        let truth = p.true_hit_rate(&b, &config);
        let from_maps = hitrate::hit_rate_from_pairs(&pairs, p.geometry());
        assert!(
            (from_maps.hit_rate() - truth).abs() < 1e-9,
            "heatmap {} vs sim {truth}",
            from_maps.hit_rate()
        );
    }

    #[test]
    fn training_samples_cross_product() {
        let (p, b) = pipeline_and_bench();
        let configs = [CacheConfig::new(16, 2), CacheConfig::new(32, 4)];
        let per_config = p.samples(&b, &configs[0]).len();
        let all = p.training_samples(&[b], &configs);
        assert_eq!(all.len(), 2 * per_config);
    }

    #[test]
    fn evaluate_produces_valid_rates() {
        let (p, b) = pipeline_and_bench();
        let mut g = UNetGenerator::new(
            UNetConfig::for_image_size(16, 4).with_param_features(2),
            1,
        );
        let acc = p.evaluate(&mut g, &b, &CacheConfig::new(16, 2), true, 4);
        assert!((0.0..=1.0).contains(&acc.true_rate));
        assert!((0.0..=1.0).contains(&acc.predicted_rate));
        assert!(!acc.name.is_empty());
    }
}
