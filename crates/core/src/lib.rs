//! # CacheBox
//!
//! A from-scratch Rust reproduction of *"Learning Architectural Cache
//! Simulator Behaviour"* (IISWC 2025): cache simulation reframed as
//! image-to-image translation over memory-access heatmaps, learned by a
//! conditional GAN (**CB-GAN**).
//!
//! This crate is the public façade tying the substrates together:
//!
//! * [`scale`] — experiment sizing presets (the paper runs 512×512
//!   heatmaps on an A6000; the presets here scale every knob for
//!   single-core CPU execution while preserving the pipeline).
//! * [`dataset`] — benchmark ⇒ trace ⇒ ground-truth simulation ⇒
//!   heatmap-pair datasets, and model evaluation against ground truth.
//! * [`experiments`] — runnable reproductions of every evaluation in the
//!   paper: RQ1–RQ7, the data-ecosystem analysis (Fig. 14), Table 1, and
//!   the design-choice ablations.
//! * [`report`] — result rendering and JSON export.
//!
//! # Quickstart
//!
//! ```
//! use cachebox::dataset::Pipeline;
//! use cachebox::scale::Scale;
//! use cachebox_sim::CacheConfig;
//! use cachebox_workloads::{Suite, SuiteId};
//!
//! // Generate a benchmark, simulate the cache, and inspect ground truth.
//! let scale = Scale::tiny();
//! let pipeline = Pipeline::new(&scale);
//! let suite = Suite::build(SuiteId::Polybench, 1, 7);
//! let truth = pipeline.true_hit_rate(&suite.benchmarks()[0], &CacheConfig::new(64, 12));
//! assert!((0.0..=1.0).contains(&truth));
//! ```

pub mod dataset;
pub mod experiments;
pub mod report;
pub mod scale;

pub use dataset::Pipeline;
pub use scale::Scale;
