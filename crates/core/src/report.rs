//! Result rendering and JSON export for the experiment binaries.

use cachebox_metrics::{AccuracySummary, BenchmarkAccuracy};
use serde::Serialize;
use std::path::Path;

/// Renders per-benchmark accuracies as a fixed-width text table with the
/// paper's `<1 %` / `1–2 %` markers (● and ★).
pub fn accuracy_table(records: &[BenchmarkAccuracy]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<28} {:>8} {:>9} {:>9}  \n", "benchmark", "true%", "pred%", "|diff|"));
    for r in records {
        let diff = r.abs_pct_diff();
        let marker = if diff < 1.0 {
            "●"
        } else if diff < 2.0 {
            "★"
        } else {
            " "
        };
        out.push_str(&format!(
            "{:<28} {:>8.2} {:>9.2} {:>8.2} {}\n",
            truncate(&r.name, 28),
            r.true_rate * 100.0,
            r.predicted_rate * 100.0,
            diff,
            marker
        ));
    }
    out
}

/// Renders an accuracy summary line.
pub fn summary_line(summary: &AccuracySummary) -> String {
    format!(
        "n={} avg={:.2}% best={:.2}% worst={:.2}% (<1%: {}, 1-2%: {})",
        summary.count,
        summary.average,
        if summary.count == 0 { 0.0 } else { summary.best },
        summary.worst,
        summary.under_1pct,
        summary.between_1_and_2pct
    )
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..max.saturating_sub(1)])
    }
}

/// Serializes any experiment result to pretty JSON at `path`, creating
/// parent directories as needed.
///
/// # Errors
///
/// Returns I/O or serialization failures.
pub fn save_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), value)
        .map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records() -> Vec<BenchmarkAccuracy> {
        vec![
            BenchmarkAccuracy {
                name: "a-very-long-benchmark-name-overflowing".into(),
                true_rate: 0.95,
                predicted_rate: 0.952,
            },
            BenchmarkAccuracy { name: "b".into(), true_rate: 0.8, predicted_rate: 0.75 },
        ]
    }

    #[test]
    fn table_marks_accuracy_tiers() {
        let text = accuracy_table(&records());
        assert!(text.contains('●'));
        assert!(text.lines().count() == 3);
        assert!(text.contains('…'), "long names are truncated");
    }

    #[test]
    fn summary_line_formats() {
        let s = AccuracySummary::from_records(&records());
        let line = summary_line(&s);
        assert!(line.contains("n=2"));
        assert!(line.contains("avg="));
    }

    #[test]
    fn save_json_roundtrip() {
        let dir = std::env::temp_dir().join("cachebox_report_test");
        let path = dir.join("out.json");
        save_json(&path, &records()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("true_rate"));
        std::fs::remove_file(&path).ok();
    }
}
