//! Noise-aware comparison of two performance records — either two
//! telemetry JSONL streams or two `BENCH_*.json` reports — behind the
//! `bench_diff` binary and its CI gate.
//!
//! Perf numbers are noisy and host-dependent, so a naive "any number
//! got worse" gate would flap. The rules here:
//!
//! * **Per-metric direction.** Durations regress upward, throughput
//!   regresses downward, correctness flags (`losses_identical`,
//!   `samples_identical`, `max_abs_diff`) regress on *any* change for
//!   the worse and are always gated.
//! * **Relative tolerance.** A directional metric only regresses when
//!   its relative delta exceeds [`DiffConfig::rel_tolerance`].
//! * **Minimum samples.** A stream metric backed by fewer than
//!   [`DiffConfig::min_samples`] observations (span scopes, histogram
//!   entries, heartbeats) is reported but never gates — one noisy
//!   scope proves nothing.
//! * **Strict mode.** Absolute wall-clock seconds and speedups in a
//!   bench report are machine-dependent, so comparing a fresh run
//!   against a *checked-in* baseline from different hardware gates
//!   only the hardware-independent invariants by default;
//!   [`DiffConfig::strict`] additionally gates the timings (same-host
//!   comparisons).
//!
//! The module parses with its own minimal JSON reader rather than a
//! serde deserializer: a diff tool must accept *any* record the repo
//! ever wrote (older schema versions included) without a strict schema
//! rejecting the file.

use std::collections::BTreeMap;
use std::path::Path;

// ---------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser.
// ---------------------------------------------------------------------

/// A parsed JSON value. Numbers are kept as `f64` (every numeric field
/// a CacheBox record writes is exactly representable or tolerance-
/// compared anyway).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key of an object (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("json parse error at byte {}: {what}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self.bytes.get(self.pos..end).ok_or_else(|| self.err("short \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        s.parse::<f64>().map(Json::Num).map_err(|_| self.err(&format!("bad number {s:?}")))
    }
}

/// Parses one JSON document (object, array, or scalar).
///
/// # Errors
///
/// Returns a byte-offset description of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Metric extraction.
// ---------------------------------------------------------------------

/// How a metric's delta maps to a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// A duration: regresses when it grows past the tolerance.
    LowerIsBetter,
    /// A throughput/speedup: regresses when it shrinks past it.
    HigherIsBetter,
    /// A correctness invariant: any mismatch is a regression.
    Exact,
    /// Context only (thread counts, shapes, gauges): never gates.
    Info,
}

/// One comparable scalar extracted from a record.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Hierarchical name, `{group}:{key}` / `leg[id=N]:{key}`.
    pub name: String,
    /// The value (booleans map to 0/1).
    pub value: f64,
    /// Observations behind the value (`0` = not sample-gated).
    pub samples: u64,
    /// Delta semantics.
    pub direction: Direction,
    /// Machine-dependent absolute timing: gated only under
    /// [`DiffConfig::strict`].
    pub strict_only: bool,
}

impl Metric {
    fn new(name: String, value: f64, direction: Direction) -> Metric {
        Metric { name, value, samples: 0, direction, strict_only: false }
    }
}

fn duration_like(name: &str) -> bool {
    name.ends_with("_ns") || name.ends_with("_ms") || name.ends_with("seconds")
}

/// Extracts metrics from the parsed lines of a telemetry stream:
/// spans merge across threads into `span:{path}:total_ns`, histograms
/// contribute `hist:{name}:{p50,p90}`, counters compare exactly, and
/// heartbeats aggregate into a mean-throughput metric.
pub fn stream_metrics(lines: &[Json]) -> Vec<Metric> {
    let mut spans: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    let mut metrics = Vec::new();
    let mut hb_count = 0u64;
    let mut hb_sps_sum = 0.0f64;
    for line in lines {
        let Some(kind) = line.get("type").and_then(Json::as_str) else { continue };
        let name = line.get("name").and_then(Json::as_str).unwrap_or("");
        let num = |key: &str| line.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        match kind {
            "span" => {
                let path = line.get("path").and_then(Json::as_str).unwrap_or("");
                let entry = spans.entry(path.to_string()).or_insert((0, 0.0));
                entry.0 += num("count") as u64;
                entry.1 += num("total_ns");
            }
            "counter" => {
                metrics.push(Metric::new(
                    format!("counter:{name}"),
                    num("value"),
                    Direction::Exact,
                ));
            }
            "gauge" => {
                metrics.push(Metric::new(format!("gauge:{name}"), num("value"), Direction::Info));
            }
            "histogram" => {
                let direction =
                    if duration_like(name) { Direction::LowerIsBetter } else { Direction::Info };
                for p in ["p50", "p90"] {
                    let mut m = Metric::new(format!("hist:{name}:{p}"), num(p), direction);
                    m.samples = num("count") as u64;
                    metrics.push(m);
                }
            }
            "heartbeat" => {
                hb_count += 1;
                hb_sps_sum += num("samples_per_sec");
            }
            _ => {}
        }
    }
    for (path, (count, total_ns)) in spans {
        let mut m =
            Metric::new(format!("span:{path}:total_ns"), total_ns, Direction::LowerIsBetter);
        m.samples = count;
        metrics.push(m);
    }
    if hb_count > 0 {
        let mut m = Metric::new(
            "heartbeat:samples_per_sec:mean".to_string(),
            hb_sps_sum / hb_count as f64,
            Direction::HigherIsBetter,
        );
        m.samples = hb_count;
        metrics.push(m);
    }
    metrics.sort_by(|a, b| a.name.cmp(&b.name));
    metrics
}

/// Extracts metrics from one `BENCH_*.json` report document. Array
/// legs are keyed by their identity fields (`layer` / `shape` /
/// `threads` / `replicas` / `micro_batches`, composed when several are
/// present), by index
/// otherwise, so legs match across reports that measured different
/// sweeps — and legs that share a thread count (e.g. the two conv
/// layers) stay distinct.
pub fn bench_metrics(doc: &Json) -> Vec<Metric> {
    let mut metrics = Vec::new();
    walk_bench("", doc, &mut metrics);
    metrics.sort_by(|a, b| a.name.cmp(&b.name));
    metrics
}

/// The composed identity of one array leg, `None` when it carries no
/// recognised identity field.
fn leg_identity(item: &Json) -> Option<String> {
    let mut parts = Vec::new();
    if let Some(Json::Str(layer)) = item.get("layer") {
        parts.push(format!("layer={layer}"));
    }
    if let Some(Json::Arr(dims)) = item.get("shape") {
        let dims: Vec<String> =
            dims.iter().filter_map(Json::as_f64).map(|v| format!("{v}")).collect();
        if !dims.is_empty() {
            parts.push(format!("shape={}", dims.join("x")));
        }
    }
    for k in ["threads", "replicas", "micro_batches"] {
        if let Some(v) = item.get(k).and_then(Json::as_f64) {
            parts.push(format!("{k}={v}"));
        }
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(","))
    }
}

fn walk_bench(prefix: &str, value: &Json, out: &mut Vec<Metric>) {
    match value {
        Json::Obj(fields) => {
            for (key, v) in fields {
                let name = if prefix.is_empty() { key.clone() } else { format!("{prefix}.{key}") };
                match v {
                    Json::Num(x) => out.push(classify_bench(&name, key, *x)),
                    Json::Bool(b) => out.push(Metric::new(
                        name.clone(),
                        if *b { 1.0 } else { 0.0 },
                        Direction::Exact,
                    )),
                    Json::Arr(items) => {
                        for (i, item) in items.iter().enumerate() {
                            let leg = leg_identity(item).unwrap_or_else(|| i.to_string());
                            walk_bench(&format!("{name}[{leg}]"), item, out);
                        }
                    }
                    Json::Obj(_) => walk_bench(&name, v, out),
                    // Strings (notes) and nulls carry no comparable value.
                    Json::Str(_) | Json::Null => {}
                }
            }
        }
        Json::Num(x) => out.push(classify_bench(prefix, prefix, *x)),
        _ => {}
    }
}

fn classify_bench(name: &str, key: &str, value: f64) -> Metric {
    let key = key.rsplit('.').next().unwrap_or(key);
    let mut m = if key == "max_abs_diff" {
        // Near-zero divergence bound: compared absolutely (see
        // `compare`), always gated.
        Metric::new(name.to_string(), value, Direction::Exact)
    } else if duration_like(key) || key == "seconds_per_step" {
        let mut m = Metric::new(name.to_string(), value, Direction::LowerIsBetter);
        m.strict_only = true;
        m
    } else if key == "speedup" || key.ends_with("per_sec") {
        let mut m = Metric::new(name.to_string(), value, Direction::HigherIsBetter);
        m.strict_only = true;
        m
    } else {
        // Shapes, thread counts, leg identities: context.
        Metric::new(name.to_string(), value, Direction::Info)
    };
    if key == "max_abs_diff" {
        m.direction = Direction::LowerIsBetter;
    }
    m
}

// ---------------------------------------------------------------------
// Comparison.
// ---------------------------------------------------------------------

/// Gate thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffConfig {
    /// Relative delta above which a directional metric regresses.
    pub rel_tolerance: f64,
    /// Minimum observations behind a sample-gated stream metric.
    pub min_samples: u64,
    /// Also gate machine-dependent absolute timings (same-host runs).
    pub strict: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        // 35 % guards against real regressions (the degradations worth
        // catching are 2×+) while riding out scheduler noise on loaded
        // CI hosts; 8 samples filters one-scope outliers.
        DiffConfig { rel_tolerance: 0.35, min_samples: 8, strict: false }
    }
}

/// Absolute floor for `max_abs_diff`-style near-zero comparisons.
const ABS_EPSILON: f64 = 1e-5;

/// Verdict for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or informational).
    Pass,
    /// Got better past the tolerance.
    Improvement,
    /// Got worse past the tolerance — gates the exit code.
    Regression,
    /// Not gated (too few samples, strict-only without `--strict`,
    /// or the candidate did not measure this leg).
    Skipped,
}

/// One row of a [`DiffReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDiff {
    /// Metric name.
    pub name: String,
    /// Baseline value (`None` when new in the candidate).
    pub base: Option<f64>,
    /// Candidate value (`None` when missing).
    pub new: Option<f64>,
    /// Relative delta `(new - base) / base` when both sides exist.
    pub rel_delta: Option<f64>,
    /// The verdict.
    pub verdict: Verdict,
    /// Human-readable reason.
    pub note: String,
}

/// The full comparison result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Per-metric rows, sorted by name.
    pub rows: Vec<MetricDiff>,
}

impl DiffReport {
    /// Number of regressed metrics (the gate).
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.verdict == Verdict::Regression).count()
    }

    /// Renders the comparison as an aligned table plus a summary line.
    /// `verbose` includes passing/informational rows; otherwise only
    /// regressions, improvements, and skips are listed.
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<52} {:>12} {:>12} {:>8}  verdict\n",
            "metric", "base", "new", "Δ%"
        ));
        let mut shown = 0usize;
        for row in &self.rows {
            if !verbose && row.verdict == Verdict::Pass {
                continue;
            }
            shown += 1;
            let delta = row
                .rel_delta
                .map(|d| format!("{:+.1}%", d * 100.0))
                .unwrap_or_else(|| "-".to_string());
            let verdict = match row.verdict {
                Verdict::Pass => "ok",
                Verdict::Improvement => "IMPROVED",
                Verdict::Regression => "REGRESSED",
                Verdict::Skipped => "skipped",
            };
            out.push_str(&format!(
                "{:<52} {:>12} {:>12} {:>8}  {verdict} ({})\n",
                crate::summary::clip(&row.name, 52),
                fmt_opt(row.base),
                fmt_opt(row.new),
                delta,
                row.note,
            ));
        }
        if shown == 0 {
            out.push_str("(no rows outside tolerance)\n");
        }
        let improved = self.rows.iter().filter(|r| r.verdict == Verdict::Improvement).count();
        let skipped = self.rows.iter().filter(|r| r.verdict == Verdict::Skipped).count();
        out.push_str(&format!(
            "{} metrics: {} regressed, {improved} improved, {skipped} skipped\n",
            self.rows.len(),
            self.regressions(),
        ));
        out
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        None => "-".to_string(),
        Some(v) => crate::summary::fmt_f64(v),
    }
}

/// Compares candidate metrics against a baseline under `config`.
pub fn diff_metrics(base: &[Metric], new: &[Metric], config: &DiffConfig) -> DiffReport {
    let new_by_name: BTreeMap<&str, &Metric> = new.iter().map(|m| (m.name.as_str(), m)).collect();
    let base_names: std::collections::BTreeSet<&str> =
        base.iter().map(|m| m.name.as_str()).collect();
    let mut rows: Vec<MetricDiff> = base
        .iter()
        .map(|b| match new_by_name.get(b.name.as_str()) {
            Some(n) => compare(b, n, config),
            None => missing(b, &new_by_name, config),
        })
        .collect();
    for n in new {
        if !base_names.contains(n.name.as_str()) {
            rows.push(MetricDiff {
                name: n.name.clone(),
                base: None,
                new: Some(n.value),
                rel_delta: None,
                verdict: Verdict::Pass,
                note: "new metric (no baseline)".to_string(),
            });
        }
    }
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    DiffReport { rows }
}

/// A baseline metric the candidate lacks entirely. If the candidate
/// has no metric from the same group (`prefix:` up to the last `:` or
/// the `leg[...]`), the whole leg was not measured — skipped unless
/// strict; a missing key inside a measured leg always regresses.
fn missing(b: &Metric, new: &BTreeMap<&str, &Metric>, config: &DiffConfig) -> MetricDiff {
    let prefix = b.name.rsplit_once([':', '.']).map(|(p, _)| p).unwrap_or("");
    let leg_measured =
        !prefix.is_empty() && new.keys().any(|k| k.starts_with(prefix) && *k != b.name);
    let (verdict, note) = if leg_measured {
        (Verdict::Regression, "metric missing from candidate".to_string())
    } else if config.strict {
        (Verdict::Regression, "leg not measured by candidate (strict)".to_string())
    } else {
        (Verdict::Skipped, "leg not measured by candidate".to_string())
    };
    MetricDiff {
        name: b.name.clone(),
        base: Some(b.value),
        new: None,
        rel_delta: None,
        verdict,
        note,
    }
}

fn compare(b: &Metric, n: &Metric, config: &DiffConfig) -> MetricDiff {
    let rel_delta =
        if b.value.abs() > f64::EPSILON { Some((n.value - b.value) / b.value) } else { None };
    let mut row = MetricDiff {
        name: b.name.clone(),
        base: Some(b.value),
        new: Some(n.value),
        rel_delta,
        verdict: Verdict::Pass,
        note: String::new(),
    };
    if b.direction == Direction::Info {
        row.note = "informational".to_string();
        return row;
    }
    if b.strict_only && !config.strict {
        row.verdict = Verdict::Skipped;
        row.note = "machine-dependent timing (gate with --strict)".to_string();
        return row;
    }
    let samples = b.samples.min(n.samples.max(b.samples.min(n.samples)));
    if b.samples > 0 && n.samples > 0 && samples < config.min_samples {
        row.verdict = Verdict::Skipped;
        row.note = format!("only {samples} samples (< {})", config.min_samples);
        return row;
    }
    match b.direction {
        Direction::Exact => {
            if (n.value - b.value).abs() > f64::EPSILON {
                row.verdict = Verdict::Regression;
                row.note = "exact-match invariant changed".to_string();
            } else {
                row.note = "exact match".to_string();
            }
        }
        Direction::LowerIsBetter | Direction::HigherIsBetter => {
            // Near-zero baselines (max_abs_diff ≡ 0) compare absolutely.
            let delta = match rel_delta {
                Some(d) => d,
                None => {
                    if n.value.abs() <= ABS_EPSILON {
                        0.0
                    } else if b.direction == Direction::LowerIsBetter {
                        f64::INFINITY
                    } else {
                        f64::NEG_INFINITY
                    }
                }
            };
            let worse = if b.direction == Direction::LowerIsBetter { delta } else { -delta };
            if worse > config.rel_tolerance {
                row.verdict = Verdict::Regression;
                row.note = format!("beyond {:.0}% tolerance", config.rel_tolerance * 100.0);
            } else if worse < -config.rel_tolerance {
                row.verdict = Verdict::Improvement;
                row.note = "beyond tolerance, in the good direction".to_string();
            } else {
                row.note = "within tolerance".to_string();
            }
        }
        Direction::Info => unreachable!("handled above"),
    }
    row
}

// ---------------------------------------------------------------------
// File-level entry points.
// ---------------------------------------------------------------------

/// What a diffed file turned out to contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// A telemetry JSONL stream.
    Stream,
    /// A single-document bench report.
    BenchReport,
}

/// Loads a file as either a telemetry stream (first line is a typed
/// JSONL record) or a bench-report document, and extracts its metrics.
///
/// # Errors
///
/// Returns read and parse errors naming the path.
pub fn load_metrics(path: &Path) -> Result<(SourceKind, Vec<Metric>), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let first_line = text.lines().next().unwrap_or("");
    let is_stream = parse_json(first_line).map(|v| v.get("type").is_some()).unwrap_or(false);
    if is_stream {
        let mut lines = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let v =
                parse_json(line).map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?;
            lines.push(v);
        }
        Ok((SourceKind::Stream, stream_metrics(&lines)))
    } else {
        let doc = parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok((SourceKind::BenchReport, bench_metrics(&doc)))
    }
}

/// Compares two files (streams or bench reports).
///
/// # Errors
///
/// Returns read/parse errors, or a mismatch when one file is a stream
/// and the other a report.
pub fn diff_files(base: &Path, new: &Path, config: &DiffConfig) -> Result<DiffReport, String> {
    let (kind_a, metrics_a) = load_metrics(base)?;
    let (kind_b, metrics_b) = load_metrics(new)?;
    if kind_a != kind_b {
        return Err(format!(
            "cannot compare a {kind_a:?} against a {kind_b:?} ({} vs {})",
            base.display(),
            new.display()
        ));
    }
    Ok(diff_metrics(&metrics_a, &metrics_b, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_nesting_escapes_and_numbers() {
        let doc = parse_json(
            r#"{"a": [1, -2.5, 3e2], "s": "q\"\\\nA", "b": true, "n": null, "o": {"k": 0}}"#,
        )
        .unwrap();
        let arr = match doc.get("a").unwrap() {
            Json::Arr(items) => items,
            other => panic!("not an array: {other:?}"),
        };
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_f64(), Some(300.0));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("q\"\\\nA"));
        assert_eq!(doc.get("b"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("n"), Some(&Json::Null));
        assert_eq!(doc.get("o").unwrap().get("k").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"open", "1 2", ""] {
            assert!(parse_json(bad).is_err(), "{bad:?} should not parse");
        }
    }

    fn span_line(path: &str, thread: u32, count: u64, total_ns: u64) -> Json {
        parse_json(&format!(
            r#"{{"type":"span","path":"{path}","thread":{thread},"count":{count},"total_ns":{total_ns},"min_ns":1,"max_ns":{total_ns}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn stream_metrics_merge_spans_across_threads() {
        let lines = vec![
            span_line("a", 0, 10, 1000),
            span_line("a", 1, 10, 3000),
            parse_json(r#"{"type":"counter","name":"c","value":7}"#).unwrap(),
            parse_json(r#"{"type":"heartbeat","t_ms":1,"step":1,"samples_per_sec":10.0}"#).unwrap(),
            parse_json(r#"{"type":"heartbeat","t_ms":2,"step":2,"samples_per_sec":30.0}"#).unwrap(),
        ];
        let metrics = stream_metrics(&lines);
        let span = metrics.iter().find(|m| m.name == "span:a:total_ns").unwrap();
        assert_eq!(span.value, 4000.0);
        assert_eq!(span.samples, 20);
        assert_eq!(span.direction, Direction::LowerIsBetter);
        let counter = metrics.iter().find(|m| m.name == "counter:c").unwrap();
        assert_eq!(counter.direction, Direction::Exact);
        let hb = metrics.iter().find(|m| m.name == "heartbeat:samples_per_sec:mean").unwrap();
        assert_eq!(hb.value, 20.0);
        assert_eq!(hb.direction, Direction::HigherIsBetter);
    }

    #[test]
    fn self_diff_is_clean_and_degradation_regresses() {
        let lines = vec![span_line("gan.train_step", 0, 50, 1_000_000)];
        let base = stream_metrics(&lines);
        let report = diff_metrics(&base, &base, &DiffConfig::default());
        assert_eq!(report.regressions(), 0, "{}", report.render(true));

        let degraded = stream_metrics(&[span_line("gan.train_step", 0, 50, 9_000_000)]);
        let report = diff_metrics(&base, &degraded, &DiffConfig::default());
        assert_eq!(report.regressions(), 1, "{}", report.render(true));
        assert!(report.render(false).contains("REGRESSED"));
    }

    #[test]
    fn few_samples_never_gate() {
        let base = stream_metrics(&[span_line("x", 0, 2, 100)]);
        let bad = stream_metrics(&[span_line("x", 0, 2, 100_000)]);
        let report = diff_metrics(&base, &bad, &DiffConfig::default());
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.rows[0].verdict, Verdict::Skipped);
    }

    #[test]
    fn exact_counters_gate_on_any_change() {
        let base = vec![Metric::new("counter:flops".into(), 100.0, Direction::Exact)];
        let same = diff_metrics(&base, &base, &DiffConfig::default());
        assert_eq!(same.regressions(), 0);
        let changed = vec![Metric::new("counter:flops".into(), 101.0, Direction::Exact)];
        assert_eq!(diff_metrics(&base, &changed, &DiffConfig::default()).regressions(), 1);
    }

    fn bench_doc() -> Json {
        parse_json(
            r#"{
                "host_cpus": 16,
                "gemm_serial_seconds": 0.01,
                "gemm": [
                    {"threads": 2, "seconds": 0.006, "speedup": 1.7, "max_abs_diff": 0.0},
                    {"threads": 4, "seconds": 0.004, "speedup": 2.5, "max_abs_diff": 0.0}
                ],
                "replica": [
                    {"replicas": 1, "seconds_per_step": 0.5, "speedup": 1.0, "losses_identical": true}
                ],
                "note": "text is ignored"
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn bench_booleans_gate_but_timings_need_strict() {
        let base = bench_metrics(&bench_doc());
        // Identical: clean under both modes.
        assert_eq!(diff_metrics(&base, &base, &DiffConfig::default()).regressions(), 0);

        // 3× slower + a broken invariant.
        let degraded = parse_json(
            r#"{
                "host_cpus": 16,
                "gemm_serial_seconds": 0.01,
                "gemm": [
                    {"threads": 2, "seconds": 0.018, "speedup": 0.55, "max_abs_diff": 0.5},
                    {"threads": 4, "seconds": 0.012, "speedup": 0.83, "max_abs_diff": 0.0}
                ],
                "replica": [
                    {"replicas": 1, "seconds_per_step": 1.5, "speedup": 1.0, "losses_identical": false}
                ],
                "note": "degraded"
            }"#,
        )
        .unwrap();
        let new = bench_metrics(&degraded);
        let relaxed = diff_metrics(&base, &new, &DiffConfig::default());
        // Non-strict: the flipped boolean and the max_abs_diff blowup
        // gate; absolute timings are skipped.
        assert_eq!(relaxed.regressions(), 2, "{}", relaxed.render(true));
        let strict =
            diff_metrics(&base, &new, &DiffConfig { strict: true, ..DiffConfig::default() });
        assert!(strict.regressions() > 2, "{}", strict.render(true));
    }

    #[test]
    fn missing_leg_skips_but_missing_key_regresses() {
        let base = bench_metrics(&bench_doc());
        // Candidate measured threads=2 only, and dropped max_abs_diff
        // from that leg.
        let partial = parse_json(
            r#"{
                "host_cpus": 16,
                "gemm_serial_seconds": 0.01,
                "gemm": [
                    {"threads": 2, "seconds": 0.006, "speedup": 1.7}
                ],
                "replica": [
                    {"replicas": 1, "seconds_per_step": 0.5, "speedup": 1.0, "losses_identical": true}
                ]
            }"#,
        )
        .unwrap();
        let report = diff_metrics(&base, &bench_metrics(&partial), &DiffConfig::default());
        let by_name: BTreeMap<&str, &MetricDiff> =
            report.rows.iter().map(|r| (r.name.as_str(), r)).collect();
        assert_eq!(
            by_name["gemm[threads=2].max_abs_diff"].verdict,
            Verdict::Regression,
            "missing key inside a measured leg"
        );
        assert_eq!(
            by_name["gemm[threads=4].max_abs_diff"].verdict,
            Verdict::Skipped,
            "whole leg not measured"
        );
    }

    #[test]
    fn leg_identity_composes_layer_shape_and_threads() {
        // The kernels report has two conv legs sharing threads=1 and
        // gemm legs identified by their shape: composed identities keep
        // every leg's metrics distinct.
        let doc = parse_json(
            r#"{
                "gemm": [
                    {"shape": [256, 256, 256], "speedup": 3.0},
                    {"shape": [512, 512, 512], "speedup": 3.5}
                ],
                "conv": [
                    {"layer": "conv2d", "threads": 1, "forward_seconds": 0.1},
                    {"layer": "conv_transpose2d", "threads": 1, "forward_seconds": 0.2}
                ]
            }"#,
        )
        .unwrap();
        let names: Vec<String> = bench_metrics(&doc).into_iter().map(|m| m.name).collect();
        for expected in [
            "conv[layer=conv2d,threads=1].forward_seconds",
            "conv[layer=conv_transpose2d,threads=1].forward_seconds",
            "gemm[shape=256x256x256].speedup",
            "gemm[shape=512x512x512].speedup",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected} in {names:?}");
        }
    }

    #[test]
    fn stream_vs_report_is_an_error() {
        let dir = std::env::temp_dir().join("cachebox-telemetry-diff-test");
        std::fs::create_dir_all(&dir).unwrap();
        let stream = dir.join("s.jsonl");
        std::fs::write(
            &stream,
            "{\"type\":\"meta\",\"run\":\"x\",\"schema\":2,\"version\":\"0\"}\n",
        )
        .unwrap();
        let report = dir.join("r.json");
        std::fs::write(&report, "{\"host_cpus\": 1}\n").unwrap();
        assert_eq!(load_metrics(&stream).unwrap().0, SourceKind::Stream);
        assert_eq!(load_metrics(&report).unwrap().0, SourceKind::BenchReport);
        assert!(diff_files(&stream, &report, &DiffConfig::default()).is_err());
        let clean = diff_files(&stream, &stream, &DiffConfig::default()).unwrap();
        assert_eq!(clean.regressions(), 0);
    }
}
