//! Thread-local recording buffers and the process-global collector.
//!
//! The fast path (spans, counters, gauges, histograms) touches only a
//! `thread_local!` buffer — no locks. Buffers merge into the global
//! collector under a mutex when their thread exits (scoped GEMM and
//! pipeline workers die at the end of each parallel region), on an
//! explicit [`crate::flush_thread`], and for the finishing thread inside
//! [`finish`]. Point events and progress lines go straight to the JSONL
//! sink under the same mutex; they are cold-path by contract.

use crate::histogram::Histogram;
use crate::manifest::RunManifest;
use crate::record::Record;
use crate::summary::{HistogramSummary, SpanSummary, Summary};
use crate::value::Value;
use crate::{TelemetryConfig, SCHEMA_VERSION};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Aggregated timings of one span path on one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SpanStat {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl SpanStat {
    fn new() -> Self {
        SpanStat { count: 0, total_ns: 0, min_ns: u64::MAX, max_ns: 0 }
    }

    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    fn merge(&mut self, other: &SpanStat) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// One open span scope on the thread-local stack.
#[derive(Debug)]
struct Frame {
    start: Instant,
    /// Length of `LocalBuf::path` before this span was pushed.
    prev_len: usize,
}

/// Hands out stable small ordinals identifying recording threads.
static THREAD_ORDINAL: AtomicU32 = AtomicU32::new(0);

/// Per-thread recording buffer. Dropping it (thread exit) merges its
/// contents into the global collector.
pub(crate) struct LocalBuf {
    thread: u32,
    /// Current hierarchical span path (`a/b/c`), extended on enter and
    /// truncated on exit.
    path: String,
    stack: Vec<Frame>,
    spans: HashMap<String, SpanStat>,
    counters: HashMap<String, u64>,
    gauges: HashMap<String, f64>,
    hists: HashMap<String, Histogram>,
}

impl LocalBuf {
    fn new() -> Self {
        LocalBuf {
            thread: THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed),
            path: String::new(),
            stack: Vec::new(),
            spans: HashMap::new(),
            counters: HashMap::new(),
            gauges: HashMap::new(),
            hists: HashMap::new(),
        }
    }

    fn push_span(&mut self, name: &'static str) {
        let prev_len = self.path.len();
        if !self.path.is_empty() {
            self.path.push('/');
        }
        self.path.push_str(name);
        self.stack.push(Frame { start: Instant::now(), prev_len });
    }

    fn pop_span(&mut self) {
        // Tolerate unbalanced pops: a guard created before `finish`
        // may drop after the buffer was drained.
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let ns = frame.start.elapsed().as_nanos() as u64;
        if let Some(stat) = self.spans.get_mut(self.path.as_str()) {
            stat.record(ns);
        } else {
            let mut stat = SpanStat::new();
            stat.record(ns);
            self.spans.insert(self.path.clone(), stat);
        }
        self.path.truncate(frame.prev_len);
    }

    fn add_counter(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    fn set_gauge(&mut self, name: &str, value: f64) {
        if let Some(v) = self.gauges.get_mut(name) {
            *v = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    fn observe(&mut self, name: &str, value: f64) {
        if let Some(h) = self.hists.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            self.hists.insert(name.to_string(), h);
        }
    }

    fn is_drained(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
    }

    /// Moves all aggregates into the global collector (open span frames
    /// stay: their guards are still live on this thread). Data recorded
    /// after the collector is gone is discarded.
    fn merge_into_global(&mut self) {
        if self.is_drained() {
            return;
        }
        let thread = self.thread;
        let mut slot = lock_global();
        let Some(global) = slot.as_mut() else {
            self.spans.clear();
            self.counters.clear();
            self.gauges.clear();
            self.hists.clear();
            return;
        };
        for (path, stat) in self.spans.drain() {
            global.spans.entry((path, thread)).and_modify(|s| s.merge(&stat)).or_insert(stat);
        }
        for (name, delta) in self.counters.drain() {
            *global.counters.entry(name).or_insert(0) += delta;
        }
        for (name, value) in self.gauges.drain() {
            global.gauges.insert(name, value);
        }
        for (name, hist) in self.hists.drain() {
            global.hists.entry(name).and_modify(|h| h.merge(&hist)).or_insert(hist);
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.merge_into_global();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf::new());
}

/// Runs `f` on the thread-local buffer, silently skipping threads whose
/// TLS is already torn down.
fn with_local(f: impl FnOnce(&mut LocalBuf)) {
    let _ = LOCAL.try_with(|cell| f(&mut cell.borrow_mut()));
}

pub(crate) fn enter_span(name: &'static str) {
    with_local(|l| l.push_span(name));
}

pub(crate) fn exit_span() {
    with_local(|l| l.pop_span());
}

pub(crate) fn add_counter(name: &str, delta: u64) {
    with_local(|l| l.add_counter(name, delta));
}

pub(crate) fn set_gauge(name: &str, value: f64) {
    with_local(|l| l.set_gauge(name, value));
}

pub(crate) fn observe(name: &str, value: f64) {
    with_local(|l| l.observe(name, value));
}

pub(crate) fn flush_current_thread() {
    with_local(|l| l.merge_into_global());
}

/// The process-global collector state behind [`GLOBAL`].
struct Global {
    run: String,
    summary: bool,
    threads_budget: usize,
    seed: Option<u64>,
    config: BTreeMap<String, Value>,
    jsonl_path: Option<PathBuf>,
    writer: Option<std::io::BufWriter<std::fs::File>>,
    records: u64,
    start: Instant,
    started_unix_ms: u64,
    spans: HashMap<(String, u32), SpanStat>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

impl Global {
    fn t_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn write_record(&mut self, record: &Record) {
        if let Some(writer) = self.writer.as_mut() {
            if writeln!(writer, "{}", record.to_jsonl()).is_ok() {
                self.records += 1;
            }
        }
    }
}

static GLOBAL: Mutex<Option<Global>> = Mutex::new(None);

fn lock_global() -> std::sync::MutexGuard<'static, Option<Global>> {
    GLOBAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Installs the collector described by `config` and enables recording.
///
/// # Panics
///
/// Panics if a collector is already installed or the sink file cannot
/// be created.
pub(crate) fn install(config: TelemetryConfig) {
    let TelemetryConfig { run, jsonl, summary, threads, seed, config } = config;
    let writer = jsonl.as_ref().map(|path| {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        std::io::BufWriter::new(
            std::fs::File::create(path)
                .unwrap_or_else(|e| panic!("cannot create telemetry sink {}: {e}", path.display())),
        )
    });
    let started_unix_ms =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
    let mut global = Global {
        run,
        summary,
        threads_budget: threads,
        seed,
        config,
        jsonl_path: jsonl,
        writer,
        records: 0,
        start: Instant::now(),
        started_unix_ms,
        spans: HashMap::new(),
        counters: BTreeMap::new(),
        gauges: BTreeMap::new(),
        hists: BTreeMap::new(),
    };
    global.write_record(&Record::Meta {
        run: global.run.clone(),
        schema: SCHEMA_VERSION,
        version: env!("CARGO_PKG_VERSION").to_string(),
    });
    let mut slot = lock_global();
    assert!(slot.is_none(), "telemetry already active (one run per process)");
    *slot = Some(global);
    drop(slot);
    crate::set_enabled(true);
}

pub(crate) fn write_event(name: &str, fields: &[(&str, Value)]) {
    let mut slot = lock_global();
    if let Some(global) = slot.as_mut() {
        let record = Record::Event {
            t_ms: global.t_ms(),
            name: name.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        };
        global.write_record(&record);
    }
}

pub(crate) fn write_progress(msg: &str) {
    let mut slot = lock_global();
    if let Some(global) = slot.as_mut() {
        let record = Record::Progress { t_ms: global.t_ms(), msg: msg.to_string() };
        global.write_record(&record);
    }
}

pub(crate) fn write_heartbeat(hb: &crate::heartbeat::Heartbeat) {
    let mut slot = lock_global();
    if let Some(global) = slot.as_mut() {
        let record = Record::Heartbeat {
            t_ms: global.t_ms(),
            step: hb.step,
            epoch: hb.epoch,
            d_loss: hb.d_loss,
            g_adv: hb.g_adv,
            g_l1: hb.g_l1,
            grad_norm_d: hb.grad_norm_d,
            grad_norm_g: hb.grad_norm_g,
            samples_per_sec: hb.samples_per_sec,
            shard_p50_ns: hb.shard_p50_ns,
            shard_p90_ns: hb.shard_p90_ns,
            rss_peak_kb: hb.rss_peak_kb,
        };
        global.write_record(&record);
    }
}

/// Inserts a runtime-derived entry into the manifest's config map
/// (e.g. a telemetry-tuned chunk size), visible when `finish` writes
/// the manifest. Last write wins.
pub(crate) fn manifest_kv(key: &str, value: Value) {
    let mut slot = lock_global();
    if let Some(global) = slot.as_mut() {
        global.config.insert(key.to_string(), value);
    }
}

/// Clones the named histogram as merged so far: the calling thread is
/// flushed first, so its own observations (and those of any already
/// exited workers, e.g. scoped GEMM shards) are included.
pub(crate) fn histogram_snapshot(name: &str) -> Option<Histogram> {
    flush_current_thread();
    let slot = lock_global();
    slot.as_ref()?.hists.get(name).cloned()
}

/// Disables recording, drains the finishing thread, writes the
/// aggregate records and the run manifest, optionally renders the
/// summary table to stderr, and returns the in-process [`Summary`].
pub(crate) fn finish() -> Summary {
    crate::set_enabled(false);
    flush_current_thread();
    let taken = lock_global().take();
    let Some(mut global) = taken else {
        return Summary::default();
    };

    // Deterministic record order: spans by (path, thread), then the
    // BTreeMap-ordered counters, gauges, and histograms.
    let mut span_entries: Vec<((String, u32), SpanStat)> = global.spans.drain().collect();
    span_entries.sort_by(|a, b| a.0.cmp(&b.0));
    for ((path, thread), stat) in &span_entries {
        global.write_record(&Record::Span {
            path: path.clone(),
            thread: *thread,
            count: stat.count,
            total_ns: stat.total_ns,
            min_ns: stat.min_ns,
            max_ns: stat.max_ns,
        });
    }
    let counters = global.counters.clone();
    for (name, value) in &counters {
        global.write_record(&Record::Counter { name: name.clone(), value: *value });
    }
    let gauges = global.gauges.clone();
    for (name, value) in &gauges {
        global.write_record(&Record::Gauge { name: name.clone(), value: *value });
    }
    let histograms: BTreeMap<String, HistogramSummary> = global
        .hists
        .iter()
        .map(|(name, h)| {
            (
                name.clone(),
                HistogramSummary {
                    count: h.count(),
                    sum: h.sum(),
                    min: h.min(),
                    max: h.max(),
                    p50: h.percentile(50.0),
                    p90: h.percentile(90.0),
                    p99: h.percentile(99.0),
                },
            )
        })
        .collect();
    for (name, h) in &histograms {
        global.write_record(&Record::Histogram {
            name: name.clone(),
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            p50: h.p50,
            p90: h.p90,
            p99: h.p99,
        });
    }
    if let Some(writer) = global.writer.as_mut() {
        let _ = writer.flush();
    }

    // Merge span stats across threads for the summary.
    let mut merged: BTreeMap<String, (SpanStat, u32)> = BTreeMap::new();
    for ((path, _thread), stat) in &span_entries {
        match merged.get_mut(path) {
            Some((s, threads)) => {
                s.merge(stat);
                *threads += 1;
            }
            None => {
                merged.insert(path.clone(), (*stat, 1));
            }
        }
    }
    let spans: Vec<SpanSummary> = merged
        .into_iter()
        .map(|(path, (s, threads))| SpanSummary {
            path,
            threads,
            count: s.count,
            total_ns: s.total_ns,
            min_ns: s.min_ns,
            max_ns: s.max_ns,
        })
        .collect();

    let wall_seconds = global.start.elapsed().as_secs_f64();
    let summary = Summary {
        run: global.run.clone(),
        wall_seconds,
        spans,
        counters,
        gauges,
        histograms,
        records: global.records,
    };

    if let Some(jsonl_path) = &global.jsonl_path {
        let manifest = RunManifest {
            schema_version: SCHEMA_VERSION,
            run: global.run.clone(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            git_rev: crate::git_revision(),
            started_unix_ms: global.started_unix_ms,
            wall_seconds,
            threads: global.threads_budget,
            seed: global.seed,
            config: global.config.clone(),
            records: global.records,
            jsonl: Some(jsonl_path.to_string_lossy().into_owned()),
            counters: summary.counters.clone(),
        };
        let manifest_path = RunManifest::manifest_path_for(jsonl_path);
        if let Err(e) = manifest.save(&manifest_path) {
            eprintln!("telemetry: could not write manifest {}: {e}", manifest_path.display());
        }
    }

    if global.summary {
        eprintln!("{}", summary.render());
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_stat_records_and_merges() {
        let mut a = SpanStat::new();
        a.record(10);
        a.record(30);
        let mut b = SpanStat::new();
        b.record(5);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.total_ns, 45);
        assert_eq!(a.min_ns, 5);
        assert_eq!(a.max_ns, 30);
    }

    #[test]
    fn local_buf_builds_hierarchical_paths() {
        let mut l = LocalBuf::new();
        l.push_span("train_step");
        l.push_span("d_forward");
        l.pop_span();
        l.push_span("d_forward");
        l.pop_span();
        l.push_span("g_backward");
        l.pop_span();
        l.pop_span();
        assert_eq!(l.spans["train_step"].count, 1);
        assert_eq!(l.spans["train_step/d_forward"].count, 2);
        assert_eq!(l.spans["train_step/g_backward"].count, 1);
        assert!(l.path.is_empty(), "path fully unwound");
        assert!(l.stack.is_empty());
        // Leftovers must not panic.
        l.pop_span();
    }

    #[test]
    fn local_buf_sibling_spans_do_not_nest() {
        let mut l = LocalBuf::new();
        l.push_span("a");
        l.pop_span();
        l.push_span("b");
        l.pop_span();
        assert!(l.spans.contains_key("a"));
        assert!(l.spans.contains_key("b"));
        assert!(!l.spans.keys().any(|k| k.contains('/')));
    }

    #[test]
    fn local_buf_metrics_accumulate() {
        let mut l = LocalBuf::new();
        l.add_counter("c", 2);
        l.add_counter("c", 3);
        l.set_gauge("g", 1.0);
        l.set_gauge("g", 2.5);
        l.observe("h", 10.0);
        l.observe("h", 20.0);
        assert_eq!(l.counters["c"], 5);
        assert_eq!(l.gauges["g"], 2.5);
        assert_eq!(l.hists["h"].count(), 2);
        // No global collector installed: merging discards quietly.
        l.merge_into_global();
        assert!(l.is_drained());
    }

    #[test]
    fn thread_ordinals_are_unique() {
        let a = LocalBuf::new();
        let b = LocalBuf::new();
        assert_ne!(a.thread, b.thread);
    }
}
